//! Property-based tests for the merge sort tree core.

use holistic_core::aggregate::{DistinctAggregate, SumI64};
use holistic_core::{
    dense_codes, prev_idcs_by_key, AnnotatedMst, MergeSortTree, MstParams, RangeSet,
};
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = MstParams> {
    (2usize..=33, 1usize..=33, any::<bool>()).prop_map(|(f, k, par)| {
        let p = MstParams::new(f, k);
        if par {
            p
        } else {
            p.serial()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// count_below agrees with a linear scan for arbitrary inputs, ranges and
    /// thresholds, across fanout/sampling parameters.
    #[test]
    fn count_below_matches_scan(
        vals in prop::collection::vec(0u32..64, 0..200),
        params in params_strategy(),
        queries in prop::collection::vec((0usize..220, 0usize..220, 0u32..70), 1..20),
    ) {
        let tree = MergeSortTree::<u32>::build(&vals, params);
        for (a, b, t) in queries {
            let expect = if a < b.min(vals.len()) {
                vals[a.min(vals.len())..b.min(vals.len())].iter().filter(|&&v| v < t).count()
            } else { 0 };
            let a_c = a.min(vals.len());
            prop_assert_eq!(tree.count_below(a_c, b, t), expect);
        }
    }

    /// select agrees with a position-order scan over qualifying elements.
    #[test]
    fn select_matches_scan(
        vals in prop::collection::vec(0u32..64, 0..150),
        params in params_strategy(),
        queries in prop::collection::vec((0usize..70, 0usize..70, 0usize..160), 1..20),
    ) {
        let tree = MergeSortTree::<u32>::build(&vals, params);
        for (lo, hi, j) in queries {
            let expect = vals
                .iter()
                .enumerate()
                .filter(|(_, &v)| (v as usize) >= lo && (v as usize) < hi)
                .map(|(i, _)| i)
                .nth(j);
            prop_assert_eq!(tree.select_in_range(lo, hi, j), expect);
        }
    }

    /// select over a holey range set agrees with a scan.
    #[test]
    fn select_multi_matches_scan(
        vals in prop::collection::vec(0u32..40, 0..120),
        params in params_strategy(),
        r1 in (0usize..40, 0usize..40),
        r2 in (0usize..40, 0usize..40),
        j in 0usize..130,
    ) {
        let (a1, b1) = (r1.0.min(r1.1), r1.0.max(r1.1));
        let (a2, b2) = (r2.0.min(r2.1), r2.0.max(r2.1));
        // Make disjoint ascending pieces.
        let (a2, b2) = (a2.max(b1), b2.max(b1));
        let rs = RangeSet::from_ranges(&[(a1, b1), (a2, b2)]);
        let tree = MergeSortTree::<u32>::build(&vals, params);
        let expect = vals
            .iter()
            .enumerate()
            .filter(|(_, &v)| {
                let v = v as usize;
                (v >= a1 && v < b1) || (v >= a2 && v < b2)
            })
            .map(|(i, _)| i)
            .nth(j);
        prop_assert_eq!(tree.select(&rs, j), expect);
    }

    /// Distinct-count identity: count_below over shifted prevIdcs equals the
    /// hash-set distinct count on every frame.
    #[test]
    fn distinct_count_identity(
        keys in prop::collection::vec(-10i64..10, 0..150),
        params in params_strategy(),
        frames in prop::collection::vec((0usize..160, 0usize..160), 1..15),
    ) {
        let prev: Vec<u32> =
            prev_idcs_by_key(&keys, false).iter().map(|&p| p as u32).collect();
        let tree = MergeSortTree::<u32>::build(&prev, params);
        for (a, b) in frames {
            let a = a.min(keys.len());
            let b = b.min(keys.len()).max(a);
            let expect: std::collections::HashSet<_> = keys[a..b].iter().collect();
            prop_assert_eq!(tree.count_below(a, b, a as u32 + 1), expect.len());
        }
    }

    /// SUM(DISTINCT) via the annotated tree equals a scan with a seen-set.
    #[test]
    fn annotated_sum_distinct(
        keys in prop::collection::vec(-8i64..8, 0..120),
        params in params_strategy(),
        frames in prop::collection::vec((0usize..130, 0usize..130), 1..10),
    ) {
        let prev: Vec<u32> =
            prev_idcs_by_key(&keys, false).iter().map(|&p| p as u32).collect();
        let tree = AnnotatedMst::<u32, SumI64>::build(&prev, &keys, params);
        for (a, b) in frames {
            let a = a.min(keys.len());
            let b = b.min(keys.len()).max(a);
            let mut seen = std::collections::HashSet::new();
            let expect: i128 = keys[a..b]
                .iter()
                .filter(|v| seen.insert(**v))
                .map(|&v| v as i128)
                .sum();
            let (s, _) = tree.aggregate_below(a, b, a as u32 + 1);
            prop_assert_eq!(SumI64::finish(s), expect);
        }
    }

    /// Every tree level is a sorted-runs permutation of the input.
    #[test]
    fn tree_structure_invariants(
        vals in prop::collection::vec(0u32..1000, 0..300),
        params in params_strategy(),
    ) {
        let tree = MergeSortTree::<u32>::build(&vals, params);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        // count_below over the full range with t = max+1 equals n.
        let n = vals.len();
        prop_assert_eq!(tree.count_below(0, n, 1000), n);
        prop_assert_eq!(tree.count_below(0, n, 0), 0);
        // Select of the j-th element over the full value domain walks
        // positions in order.
        for j in 0..n.min(5) {
            prop_assert_eq!(tree.select_in_range(0, 1000, j), Some(j));
        }
        prop_assert_eq!(tree.stored_elements(), tree.height() * n);
    }

    /// dense_codes: rank identities hold against scans.
    #[test]
    fn dense_codes_rank_identity(
        keys in prop::collection::vec(0i64..12, 1..120),
        frames in prop::collection::vec((0usize..130, 0usize..130), 1..10),
    ) {
        let dc = dense_codes(&keys, false);
        let codes: Vec<u32> = dc.code.iter().map(|&c| c as u32).collect();
        let tree = MergeSortTree::<u32>::build(&codes, MstParams::default());
        for (a, b) in frames {
            let a = a.min(keys.len());
            let b = b.min(keys.len()).max(a);
            for i in a..b {
                // RANK: 1 + number of frame rows strictly smaller.
                let rank = tree.count_below(a, b, dc.group_min[i] as u32) + 1;
                let expect = 1 + keys[a..b].iter().filter(|&&k| k < keys[i]).count();
                prop_assert_eq!(rank, expect);
                // ROW_NUMBER: 1 + rows (key, idx)-lexicographically smaller.
                let rn = tree.count_below(a, b, dc.code[i] as u32) + 1;
                let expect_rn = 1 + keys[a..b]
                    .iter()
                    .enumerate()
                    .filter(|&(jj, &k)| (k, jj + a) < (keys[i], i))
                    .count();
                prop_assert_eq!(rn, expect_rn);
            }
        }
    }
}
