//! Property tests for the level-synchronous block probe kernels:
//! `count_below_block` / `select_block` must be bit-identical to the scalar
//! `count_below_multi` / `select` over arbitrary data, arbitrary tree
//! parameters (fanout, sampling, cascading and prefetch ablations), u32 and
//! u64 indices, single- and multi-piece range sets, and arbitrary block
//! sizes (the drivers chop query streams at arbitrary boundaries).

use holistic_core::{BlockScratch, MergeSortTree, MstParams, RangeSet, TreeIndex};
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = MstParams> {
    (2usize..=33, 1usize..=33, 0u8..4).prop_map(|(f, k, abl)| {
        let p = MstParams::new(f, k).serial();
        match abl {
            0 => p,
            1 => p.no_cascading(),
            2 => p.no_prefetch(),
            _ => p.no_cascading().no_prefetch(),
        }
    })
}

/// Raw generator material for one select query: a hull, a hole, and `j`.
type RawSelect = ((usize, usize, usize, usize), usize);

/// Multi-piece range sets the evaluators actually produce: a hull minus at
/// most two holes.
fn pieces_of(n: usize, raw: (usize, usize, usize, usize)) -> RangeSet {
    if n == 0 {
        return RangeSet::empty();
    }
    let (a, b, h1, h2) = (raw.0 % (n + 1), raw.1 % (n + 1), raw.2 % (n + 1), raw.3 % (n + 1));
    let (a, b) = (a.min(b), a.max(b));
    let (h1, h2) = (h1.min(h2), h1.max(h2));
    RangeSet::frame_minus_holes(a, b, &[(h1, h2)])
}

fn check_counts<I: TreeIndex>(
    vals: &[usize],
    params: MstParams,
    queries: &[(usize, usize, usize)],
    chunk: usize,
) {
    let v: Vec<I> = vals.iter().map(|&x| I::from_usize(x)).collect();
    let tree = MergeSortTree::<I>::build(&v, params);
    let qs: Vec<(usize, usize, I)> = queries
        .iter()
        .map(|&(a, b, t)| {
            let (a, b) = (a.min(b), a.max(b));
            (a, b, I::from_usize(t))
        })
        .collect();
    let mut scratch = BlockScratch::<I>::new();
    let mut out = vec![0usize; qs.len()];
    for (qc, oc) in qs.chunks(chunk.max(1)).zip(out.chunks_mut(chunk.max(1))) {
        tree.count_below_block(qc, oc, &mut scratch);
    }
    for (i, &(a, b, t)) in qs.iter().enumerate() {
        prop_assert_eq!(
            out[i],
            tree.count_below(a, b, t),
            "count query {} of {:?} (params {:?})",
            i,
            qs,
            params
        );
    }
    prop_assert_eq!(scratch.stats.block_queries, qs.len() as u64);
}

fn check_selects<I: TreeIndex>(
    vals: &[usize],
    params: MstParams,
    queries: &[RawSelect],
    chunk: usize,
) {
    let v: Vec<I> = vals.iter().map(|&x| I::from_usize(x)).collect();
    let tree = MergeSortTree::<I>::build(&v, params);
    let qs: Vec<(RangeSet, usize)> =
        queries.iter().map(|&(raw, j)| (pieces_of(vals.len(), raw), j)).collect();
    let mut scratch = BlockScratch::<I>::new();
    let mut out = vec![None; qs.len()];
    for (qc, oc) in qs.chunks(chunk.max(1)).zip(out.chunks_mut(chunk.max(1))) {
        tree.select_block(qc, oc, &mut scratch);
    }
    for (i, (rs, j)) in qs.iter().enumerate() {
        prop_assert_eq!(
            out[i],
            tree.select(rs, *j),
            "select query {} (ranges {:?}, j {})",
            i,
            rs,
            j
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn block_counts_match_scalar_u32(
        vals in prop::collection::vec(0usize..300, 0..260),
        params in params_strategy(),
        queries in prop::collection::vec((0usize..301, 0usize..301, 0usize..301), 1..80),
        chunk in 1usize..70,
    ) {
        check_counts::<u32>(&vals, params, &queries, chunk);
    }

    #[test]
    fn block_counts_match_scalar_u64(
        vals in prop::collection::vec(0usize..300, 0..200),
        params in params_strategy(),
        queries in prop::collection::vec((0usize..301, 0usize..301, 0usize..301), 1..60),
        chunk in 1usize..70,
    ) {
        check_counts::<u64>(&vals, params, &queries, chunk);
    }

    #[test]
    fn block_selects_match_scalar_u32(
        vals in prop::collection::vec(0usize..260, 0..260),
        params in params_strategy(),
        queries in prop::collection::vec(
            ((0usize..400, 0usize..400, 0usize..400, 0usize..400), 0usize..300), 1..60),
        chunk in 1usize..50,
    ) {
        check_selects::<u32>(&vals, params, &queries, chunk);
    }

    #[test]
    fn block_selects_match_scalar_u64(
        vals in prop::collection::vec(0usize..260, 0..180),
        params in params_strategy(),
        queries in prop::collection::vec(
            ((0usize..400, 0usize..400, 0usize..400, 0usize..400), 0usize..300), 1..50),
        chunk in 1usize..50,
    ) {
        check_selects::<u64>(&vals, params, &queries, chunk);
    }
}
