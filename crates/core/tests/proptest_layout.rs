//! Property-based tests: the arena-backed tree layout is observationally
//! identical to the pre-arena per-run-allocation baseline.
//!
//! Both layouts share the merge kernel, so run contents are bit-identical by
//! construction; these tests pin that the *probe paths* — stateless,
//! cursor-seeded, prefetched and not — also agree on every query, for u32 and
//! u64 keys and arbitrary frames. A regression here means the arena refactor
//! changed something observable.

use holistic_core::aggregate::{AvgF64, SumI64};
use holistic_core::layout_baseline::{PerRunAnnotated, PerRunMst};
use holistic_core::{
    prev_idcs_by_key, AnnotatedMst, MergeSortTree, MstParams, ProbeCursor, RangeSet,
};
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = MstParams> {
    // Prefetch distance rides on sampling; disabling it exercises the
    // non-prefetching descent against the same baseline.
    (2usize..=33, 1usize..=33, any::<bool>(), any::<bool>()).prop_map(|(f, k, par, pf)| {
        let p = MstParams::new(f, k);
        let p = if par { p } else { p.serial() };
        if pf {
            p
        } else {
            p.no_prefetch()
        }
    })
}

/// Frame triples (a, b, t) with a <= b; t doubles as a threshold / rank.
#[derive(Debug, Clone)]
struct FrameSeq {
    frames: Vec<(usize, usize, usize)>,
}

fn frame_seq(n_hint: usize) -> impl Strategy<Value = FrameSeq> {
    prop::collection::vec((0usize..n_hint, 0usize..n_hint, 0usize..n_hint), 1..40).prop_map(
        |mut v| {
            for f in v.iter_mut() {
                if f.0 > f.1 {
                    std::mem::swap(&mut f.0, &mut f.1);
                }
            }
            FrameSeq { frames: v }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// count_below on the arena layout — stateless and through a cursor —
    /// equals the per-run baseline, on u32 and u64 trees.
    #[test]
    fn arena_count_below_matches_baseline(
        vals in prop::collection::vec(0u32..64, 0..220),
        params in params_strategy(),
        seq in frame_seq(230),
    ) {
        let arena32 = MergeSortTree::<u32>::build(&vals, params);
        let base32 = PerRunMst::<u32>::build(&vals, params);
        let vals64: Vec<u64> = vals.iter().map(|&v| v as u64).collect();
        let arena64 = MergeSortTree::<u64>::build(&vals64, params);
        let base64 = PerRunMst::<u64>::build(&vals64, params);
        let mut cur32 = ProbeCursor::new();
        let mut cur64 = ProbeCursor::new();
        for &(a, b, t) in &seq.frames {
            prop_assert_eq!(arena32.count_below(a, b, t as u32), base32.count_below(a, b, t as u32));
            prop_assert_eq!(
                arena32.count_below_with_cursor(a, b, t as u32, &mut cur32),
                base32.count_below(a, b, t as u32)
            );
            prop_assert_eq!(arena64.count_below(a, b, t as u64), base64.count_below(a, b, t as u64));
            prop_assert_eq!(
                arena64.count_below_with_cursor(a, b, t as u64, &mut cur64),
                base64.count_below(a, b, t as u64)
            );
        }
    }

    /// Multi-piece frames (exclusion holes) agree between layouts.
    #[test]
    fn arena_count_multi_matches_baseline(
        vals in prop::collection::vec(0u32..48, 0..200),
        params in params_strategy(),
        seq in frame_seq(210),
    ) {
        let arena = MergeSortTree::<u32>::build(&vals, params);
        let base = PerRunMst::<u32>::build(&vals, params);
        for w in seq.frames.windows(2) {
            let (a, b, t) = w[0];
            let (h1, h2, _) = w[1];
            let mut rs = RangeSet::empty();
            rs.push(a, b.min(h1));
            rs.push(h2.max(a).min(b), b);
            prop_assert_eq!(
                arena.count_below_multi(&rs, t as u32),
                base.count_below_multi(&rs, t as u32)
            );
        }
    }

    /// Selection over a permutation tree (§4.5) agrees between layouts, both
    /// for present ranks and out-of-range ranks (None on both sides).
    #[test]
    fn arena_select_matches_baseline(
        n in 0usize..180,
        shuffle_seed in any::<u64>(),
        params in params_strategy(),
        seq in frame_seq(190),
    ) {
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut s = shuffle_seed | 1;
        for i in (1..n).rev() {
            // Tiny xorshift: deterministic shuffle without extra deps.
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            perm.swap(i, (s as usize) % (i + 1));
        }
        let arena = MergeSortTree::<u32>::build(&perm, params);
        let base = PerRunMst::<u32>::build(&perm, params);
        for &(lo, hi, j) in &seq.frames {
            prop_assert_eq!(arena.select_in_range(lo, hi, j), base.select_in_range(lo, hi, j));
            let mut rs = RangeSet::empty();
            rs.push(lo, hi.min(lo + (hi - lo) / 2));
            rs.push(lo + (hi - lo) / 2 + 1, hi);
            prop_assert_eq!(arena.select(&rs, j), base.select(&rs, j));
        }
    }

    /// Annotated prefix aggregation (SUM and AVG states) agrees between
    /// layouts, single-range and multi-piece.
    #[test]
    fn arena_aggregate_matches_baseline(
        payloads in prop::collection::vec(-40i64..40, 0..200),
        params in params_strategy(),
        seq in frame_seq(210),
    ) {
        let prev: Vec<u32> =
            prev_idcs_by_key(&payloads, false).iter().map(|&p| p as u32).collect();
        let arena = AnnotatedMst::<u32, SumI64>::build(&prev, &payloads, params);
        let base = PerRunAnnotated::<u32, SumI64>::build(&prev, &payloads, params);
        let fpay: Vec<f64> = payloads.iter().map(|&p| p as f64).collect();
        let arena_avg = AnnotatedMst::<u32, AvgF64>::build(&prev, &fpay, params);
        let base_avg = PerRunAnnotated::<u32, AvgF64>::build(&prev, &fpay, params);
        for &(a, b, t) in &seq.frames {
            let (s0, c0) = arena.aggregate_below(a, b, t as u32);
            let (s1, c1) = base.aggregate_below(a, b, t as u32);
            prop_assert_eq!(s0, s1);
            prop_assert_eq!(c0, c1);
            let ((sa, ca), cnt0) = arena_avg.aggregate_below(a, b, t as u32);
            let ((sb, cb), cnt1) = base_avg.aggregate_below(a, b, t as u32);
            prop_assert_eq!(sa.to_bits(), sb.to_bits());
            prop_assert_eq!(ca, cb);
            prop_assert_eq!(cnt0, cnt1);
            let mut rs = RangeSet::empty();
            rs.push(a, a + (b - a) / 3);
            rs.push(a + (b - a) / 2, b);
            let (m0, mc0) = arena.aggregate_below_multi(&rs, t as u32);
            let (m1, mc1) = base.aggregate_below_multi(&rs, t as u32);
            prop_assert_eq!(m0, m1);
            prop_assert_eq!(mc0, mc1);
        }
    }
}
