//! Ignored-by-default micro-timer for the block kernels: core-only builds
//! iterate much faster than the full bench binary. Run with
//! `cargo test --release -p holistic-core --test microbench_block -- --ignored --nocapture`.

use holistic_core::{BlockScratch, MergeSortTree, MstParams, ProbeCursor, RangeSet, SelectCursor};
use std::time::Instant;

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[test]
#[ignore = "micro-timer, run explicitly with --ignored --nocapture"]
fn block_vs_scalar_timing() {
    let n = 1_000_000usize;
    let mut s = 7u64;
    // A random permutation of 0..n (Fisher–Yates), the perm-MST shape.
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = (splitmix(&mut s) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    let tree = MergeSortTree::<u32>::build(&perm, MstParams::default().serial());

    let amp = n / 8;
    let m = 200_000usize;
    // Jittered frames: both edges jump by up to `amp`.
    let frames: Vec<(usize, usize)> = (0..m)
        .map(|i| {
            let c = i * (n / m);
            let a = c.saturating_sub((splitmix(&mut s) % amp as u64) as usize);
            let b = (c + (splitmix(&mut s) % amp as u64) as usize + 1).min(n);
            (a.min(b - 1), b)
        })
        .collect();

    let reps = 7usize;
    // Interleaved best-of: scalar and block alternate within one process so
    // frequency drift hits both sides equally.
    let best2 = |a: &mut dyn FnMut() -> usize,
                 b: &mut dyn FnMut() -> usize|
     -> (usize, std::time::Duration, usize, std::time::Duration) {
        let mut ra = (0usize, std::time::Duration::MAX);
        let mut rb = (0usize, std::time::Duration::MAX);
        for _ in 0..reps {
            let t0 = Instant::now();
            let v = a();
            let d = t0.elapsed();
            if d < ra.1 {
                ra = (v, d);
            }
            let t0 = Instant::now();
            let v = b();
            let d = t0.elapsed();
            if d < rb.1 {
                rb = (v, d);
            }
        }
        (ra.0, ra.1, rb.0, rb.1)
    };

    // ---- counts ----
    let cqs: Vec<(usize, usize, u32)> =
        frames.iter().map(|&(a, b)| (a, b, ((a + b) / 2) as u32)).collect();
    let (scalar_sum, scalar_cnt, block_sum, block_cnt) = best2(
        &mut || {
            let mut cur = ProbeCursor::new();
            let mut sum = 0usize;
            for &(a, b, t) in &cqs {
                sum += tree.count_below_multi_with_cursor(&RangeSet::single(a, b), t, &mut cur);
            }
            sum
        },
        &mut || {
            let mut scratch = BlockScratch::new();
            let mut out = vec![0usize; 256];
            let mut sum = 0usize;
            for ch in cqs.chunks(256) {
                tree.count_below_block(ch, &mut out[..ch.len()], &mut scratch);
                sum += out[..ch.len()].iter().sum::<usize>();
            }
            sum
        },
    );
    assert_eq!(scalar_sum, block_sum);

    // ---- selects ----
    let sqs: Vec<(RangeSet, usize)> =
        frames.iter().map(|&(a, b)| (RangeSet::single(a, b), (b - a) / 2)).collect();
    let (scalar_sel, scalar_sel_t, block_sel, block_sel_t) = best2(
        &mut || {
            let mut cur = SelectCursor::new();
            let mut acc = 0usize;
            for (rs, j) in &sqs {
                acc ^= tree.select_with_cursor(rs, *j, &mut cur).unwrap_or(0);
            }
            acc
        },
        &mut || {
            let mut scratch = BlockScratch::new();
            let mut out = vec![None; 256];
            let mut acc = 0usize;
            for ch in sqs.chunks(256) {
                tree.select_block(ch, &mut out[..ch.len()], &mut scratch);
                for r in &out[..ch.len()] {
                    acc ^= r.unwrap_or(0);
                }
            }
            acc
        },
    );
    assert_eq!(scalar_sel, block_sel);

    let per = |d: std::time::Duration| d.as_nanos() as f64 / m as f64;
    println!(
        "count: scalar {:8.1} ns/q  block {:8.1} ns/q  speedup {:.3}x",
        per(scalar_cnt),
        per(block_cnt),
        per(scalar_cnt) / per(block_cnt)
    );
    println!(
        "select: scalar {:8.1} ns/q  block {:8.1} ns/q  speedup {:.3}x",
        per(scalar_sel_t),
        per(block_sel_t),
        per(scalar_sel_t) / per(block_sel_t)
    );
}
