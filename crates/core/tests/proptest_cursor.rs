//! Property-based tests: cursor-seeded probes are bit-identical to the
//! stateless probe primitives over arbitrary frame sequences — monotonic,
//! non-monotonic, multi-piece (exclusion holes), u32 and u64 trees.

use holistic_core::aggregate::{AvgF64, DistinctAggregate, SumI64};
use holistic_core::{
    prev_idcs_by_key, AnnotatedMst, MergeSortTree, MstParams, ProbeCursor, RangeSet, SelectCursor,
    TreeIndex,
};
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = MstParams> {
    (2usize..=33, 1usize..=33, any::<bool>()).prop_map(|(f, k, par)| {
        let p = MstParams::new(f, k);
        if par {
            p
        } else {
            p.serial()
        }
    })
}

/// A probe sequence: raw (possibly reversed / jumping) frame triples. The
/// `monotonic` flag turns the same triples into a sorted sweep, so both probe
/// orders run against identical trees.
#[derive(Debug, Clone)]
struct FrameSeq {
    frames: Vec<(usize, usize, usize)>,
}

fn frame_seq(n_hint: usize, monotonic: bool) -> impl Strategy<Value = FrameSeq> {
    prop::collection::vec((0usize..n_hint, 0usize..n_hint, 0usize..n_hint), 1..40).prop_map(
        move |mut v| {
            for f in v.iter_mut() {
                if f.0 > f.1 {
                    std::mem::swap(&mut f.0, &mut f.1);
                }
            }
            if monotonic {
                v.sort_unstable();
            }
            FrameSeq { frames: v }
        },
    )
}

fn check_counts<I: TreeIndex>(tree: &MergeSortTree<I>, seq: &FrameSeq) {
    let mut cur = ProbeCursor::new();
    for &(a, b, t) in &seq.frames {
        let t = I::from_usize(t);
        prop_assert_eq!(tree.count_below_with_cursor(a, b, t, &mut cur), tree.count_below(a, b, t));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// count_below through a cursor equals the stateless count on u32 and u64
    /// trees, for monotonic and arbitrary probe orders.
    #[test]
    fn cursor_count_below_bit_identical(
        vals in prop::collection::vec(0u32..64, 0..220),
        params in params_strategy(),
        seq in frame_seq(230, false),
        monotonic_seq in frame_seq(230, true),
    ) {
        let t32 = MergeSortTree::<u32>::build(&vals, params);
        let vals64: Vec<u64> = vals.iter().map(|&v| v as u64).collect();
        let t64 = MergeSortTree::<u64>::build(&vals64, params);
        check_counts(&t32, &seq);
        check_counts(&t32, &monotonic_seq);
        check_counts(&t64, &seq);
        check_counts(&t64, &monotonic_seq);
    }

    /// Multi-piece frames (exclusion holes) through one cursor equal the
    /// stateless multi count; the hole walks with the frame.
    #[test]
    fn cursor_count_multi_bit_identical(
        vals in prop::collection::vec(0u32..48, 0..200),
        params in params_strategy(),
        seq in frame_seq(210, false),
        hole_len in 0usize..4,
    ) {
        let tree = MergeSortTree::<u32>::build(&vals, params);
        let mut cur = ProbeCursor::new();
        for &(a, b, t) in &seq.frames {
            let mid = a + (b - a) / 2;
            let rs = RangeSet::frame_minus_holes(a, b, &[(mid, mid + hole_len)]);
            let t = t as u32;
            prop_assert_eq!(
                tree.count_below_multi_with_cursor(&rs, t, &mut cur),
                tree.count_below_multi(&rs, t)
            );
        }
    }

    /// select through a cursor equals stateless select on multi-piece value
    /// ranges, for arbitrary probe orders.
    #[test]
    fn cursor_select_bit_identical(
        vals in prop::collection::vec(0u32..64, 0..180),
        params in params_strategy(),
        seq in frame_seq(190, false),
        j_off in 0usize..8,
        hole_len in 0usize..3,
    ) {
        let tree = MergeSortTree::<u32>::build(&vals, params);
        let mut cur = SelectCursor::new();
        for &(lo, hi, j) in &seq.frames {
            let mid = lo + (hi - lo) / 2;
            let rs = RangeSet::frame_minus_holes(lo, hi, &[(mid, mid + hole_len)]);
            let j = j.saturating_sub(j_off);
            prop_assert_eq!(tree.select_with_cursor(&rs, j, &mut cur), tree.select(&rs, j));
        }
    }

    /// Annotated aggregates through a cursor are bit-identical, including
    /// floating-point states (combine-order preservation, checked via bits).
    #[test]
    fn cursor_aggregate_bit_identical(
        keys in prop::collection::vec(-8i64..8, 0..160),
        params in params_strategy(),
        seq in frame_seq(170, false),
        hole_len in 0usize..3,
    ) {
        let prev: Vec<u32> =
            prev_idcs_by_key(&keys, false).iter().map(|&p| p as u32).collect();
        let payloads: Vec<f64> = keys.iter().map(|&k| k as f64 / 3.0).collect();
        let sum_tree = AnnotatedMst::<u32, SumI64>::build(&prev, &keys, params);
        let avg_tree = AnnotatedMst::<u32, AvgF64>::build(&prev, &payloads, params);
        let mut sum_cur = ProbeCursor::new();
        let mut avg_cur = ProbeCursor::new();
        for &(a, b, _) in &seq.frames {
            let a = a.min(keys.len());
            let b = b.min(keys.len()).max(a);
            let t = a as u32 + 1;
            let mid = a + (b - a) / 2;
            let rs = RangeSet::frame_minus_holes(a, b, &[(mid, mid + hole_len)]);

            let (s0, c0) = sum_tree.aggregate_below(a, b, t);
            let (s1, c1) = sum_tree.aggregate_below_with_cursor(a, b, t, &mut sum_cur);
            prop_assert_eq!(SumI64::finish(s0), SumI64::finish(s1));
            prop_assert_eq!(c0, c1);

            let (f0, d0) = avg_tree.aggregate_below_multi(&rs, t);
            let (f1, d1) = avg_tree.aggregate_below_multi_with_cursor(&rs, t, &mut avg_cur);
            prop_assert_eq!(
                AvgF64::finish(f0).map(f64::to_bits),
                AvgF64::finish(f1).map(f64::to_bits)
            );
            prop_assert_eq!(d0, d1);
        }
    }

    /// A disabled cursor is exactly the stateless path and counts as such.
    #[test]
    fn disabled_cursor_is_stateless(
        vals in prop::collection::vec(0u32..40, 0..120),
        params in params_strategy(),
        seq in frame_seq(130, false),
    ) {
        let tree = MergeSortTree::<u32>::build(&vals, params);
        let mut cur = ProbeCursor::disabled();
        for &(a, b, t) in &seq.frames {
            prop_assert_eq!(
                tree.count_below_with_cursor(a, b, t as u32, &mut cur),
                tree.count_below(a, b, t as u32)
            );
        }
        prop_assert_eq!(cur.stats.cursor_probes, 0);
        prop_assert_eq!(cur.stats.gallop_seeded, 0);
        prop_assert_eq!(cur.stats.stateless_probes, seq.frames.len() as u64);
    }
}
