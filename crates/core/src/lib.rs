//! # holistic-core — merge sort trees for framed holistic aggregates
//!
//! This crate implements the *merge sort tree* (MST) of Vogelsgesang et al.,
//! "Efficient Evaluation of Arbitrarily-Framed Holistic SQL Aggregates and
//! Window Functions" (SIGMOD 2022), together with the preprocessing steps that
//! map SQL window functions onto MST queries.
//!
//! A merge sort tree keeps the intermediate sorted runs of a bottom-up
//! multiway merge sort instead of discarding them: level 0 is the input array,
//! level ℓ consists of sorted runs of length `fanout^ℓ`, and the top level is a
//! single sorted run. The tree is annotated with *sampled fractional-cascading
//! pointers* (one pointer bundle every `sampling`-th element of every run)
//! which turn all but the first binary search of a query into O(1) refinements.
//!
//! Three query primitives cover all framed holistic aggregates:
//!
//! * [`MergeSortTree::count_below`] — "how many elements at positions `[a, b)`
//!   are smaller than `t`?" — used by `COUNT(DISTINCT)` (§4.2) and all rank
//!   functions (§4.4).
//! * [`AnnotatedMst::aggregate_below`] — the same range decomposition, but
//!   combining per-run prefix aggregates — used by arbitrary `DISTINCT`
//!   aggregates such as `SUM(DISTINCT)` (§4.3).
//! * [`MergeSortTree::select`] — "which position holds the `j`-th element
//!   whose value lies in the given ranges?" — used by percentiles, value
//!   functions and `LEAD`/`LAG` (§4.5, §4.6).
//!
//! All build phases are parallelized with rayon: lower levels merge runs
//! independently, upper levels split a single merge across threads via
//! multisequence selection (§5.2). Queries are read-only and embarrassingly
//! parallel.
//!
//! ```
//! use holistic_core::{MergeSortTree, MstParams};
//!
//! // The prevIdcs array of Figure 1 (shifted encoding: 0 = "no previous").
//! let prev: Vec<u32> = vec![0, 0, 2, 1, 0, 3, 5, 4];
//! let tree = MergeSortTree::<u32>::build(&prev, MstParams::default());
//! // Frame = last 5 positions [3, 8): count entries pointing before the frame
//! // (strictly below 3 + 1 in shifted encoding).
//! assert_eq!(tree.count_below(3, 8, 4), 3); // three distinct values: a, b, c
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregate;
pub mod annotated;
pub mod arena;
pub mod codes;
pub mod cursor;
pub mod index;
pub mod layout_baseline;
pub mod leveled;
pub mod loser_tree;
pub mod merge;
pub mod mst;
pub mod params;
pub mod prev_idcs;
pub mod range_set;
pub mod sort;
pub mod stats;

pub use aggregate::{AvgF64, CountAgg, DistinctAggregate, MaxI64, MinI64, SumF64, SumI64};
pub use annotated::AnnotatedMst;
pub use arena::SpillableArena;
pub use codes::{dense_codes, DenseCodes};
pub use cursor::{CursorStats, ProbeCursor, SelectCursor};
pub use index::TreeIndex;
pub use leveled::{ForestCursor, MstForest};
pub use mst::{
    mst_arena_len, mst_spill_build_len, BlockScratch, BlockStats, MergeSortTree, MstShell,
};
pub use params::MstParams;
pub use prev_idcs::{prev_idcs_by_key, prev_idcs_u64};
pub use range_set::RangeSet;
pub use stats::{paper_element_estimate, MstStats};
