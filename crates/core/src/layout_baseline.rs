//! The pre-arena merge sort tree layout, kept as a measurement baseline.
//!
//! Before the flat arena (see [`crate::arena`]) the tree allocated each
//! sorted run and its cascading-sample vector independently, so a probe
//! descent hopped between unrelated heap allocations at every level and a
//! build at n = 1M performed tens of thousands of small allocations. This
//! module preserves that representation — per-run owned `Vec`s, stateless
//! probes, no prefetching — so `layout_ext` can measure the arena layout
//! against its predecessor and the equivalence proptests can assert that the
//! refactor changed nothing observable.
//!
//! The merge kernel (`merge::merge_run`) is shared with the arena
//! build, so per-run *contents* are bit-identical between the two layouts;
//! only the storage strategy differs. Not used by the execution engine.

use crate::aggregate::DistinctAggregate;
use crate::index::TreeIndex;
use crate::merge::{merge_run, Keyed, RunChildren};
use crate::params::MstParams;
use crate::range_set::{RangeSet, MAX_RANGES};
use rayon::prelude::*;

/// One level above the base: nominal run length plus per-run owned storage
/// (`(sorted data, cascading pointer samples)` per run).
type BaselineLevel<T, I> = (usize, Vec<(Vec<T>, Vec<I>)>);

/// Builds all levels above the base with per-run allocations, using the same
/// merge kernel (and therefore producing the same run contents and pointer
/// snapshots) as the arena build.
fn build_baseline_levels<I: TreeIndex, T: Keyed<I>>(
    base: &[T],
    params: MstParams,
) -> Vec<BaselineLevel<T, I>> {
    params.validate();
    let n = base.len();
    let (f, k) = (params.fanout, params.sampling);
    let mut levels: Vec<BaselineLevel<T, I>> = Vec::new();
    let mut run_len = 1usize;
    while run_len < n {
        let child_run_len = run_len;
        run_len = run_len.saturating_mul(f);
        let num_runs = n.div_ceil(run_len);
        let runs = {
            let prev: Option<&[(Vec<T>, Vec<I>)]> = levels.last().map(|(_, r)| r.as_slice());
            let build_run = |r: usize, inner_parallel: bool| -> (Vec<T>, Vec<I>) {
                let start = r * run_len;
                let end = (start + run_len).min(n);
                let len = end - start;
                let mut children: Vec<&[T]> = Vec::with_capacity(f);
                let mut cs = start;
                while cs < end {
                    let ce = (cs + child_run_len).min(end);
                    children.push(match prev {
                        None => &base[cs..ce],
                        Some(rs) => &rs[cs / child_run_len].0,
                    });
                    cs = ce;
                }
                let mut data = vec![T::default(); len];
                let mut ptrs = vec![I::ZERO; (len / k + 2) * f];
                merge_run(&RunChildren { children }, f, k, &mut data, &mut ptrs, inner_parallel);
                (data, ptrs)
            };
            if params.parallel && num_runs > 1 {
                (0..num_runs).into_par_iter().map(|r| build_run(r, false)).collect()
            } else {
                (0..num_runs).map(|r| build_run(r, params.parallel)).collect()
            }
        };
        levels.push((run_len, runs));
    }
    levels
}

/// A merge sort tree in the pre-arena, per-run-allocation layout.
///
/// Query results are guaranteed identical to [`crate::MergeSortTree`] (the
/// probes run the same decomposition and the same cascaded refinements over
/// the same run contents); only storage and probe locality differ.
pub struct PerRunMst<I: TreeIndex> {
    /// Level 0: the input in its original order.
    base: Vec<I>,
    /// Levels 1..height, each run an independent allocation.
    levels: Vec<BaselineLevel<I, I>>,
    params: MstParams,
    n: usize,
}

impl<I: TreeIndex> PerRunMst<I> {
    /// Builds a baseline tree over `values`.
    pub fn build(values: &[I], params: MstParams) -> Self {
        let levels = build_baseline_levels::<I, I>(values, params);
        PerRunMst { base: values.to_vec(), levels, params, n: values.len() }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of levels including the base.
    pub fn height(&self) -> usize {
        self.levels.len() + 1
    }

    /// Number of independent heap allocations backing this tree (the figure
    /// the arena layout collapses to one).
    pub fn allocations(&self) -> usize {
        1 + self.levels.iter().map(|(_, runs)| 2 * runs.len()).sum::<usize>()
    }

    #[inline]
    fn run_len_of(&self, level: usize) -> usize {
        if level == 0 {
            1
        } else {
            self.levels[level - 1].0
        }
    }

    /// The sorted keys of run `run` at `level`; `cs..ce` are its absolute
    /// bounds (needed to slice the base level, which is one vector).
    #[inline]
    fn keys_of(&self, level: usize, run: usize, cs: usize, ce: usize) -> &[I] {
        if level == 0 {
            &self.base[cs..ce]
        } else {
            &self.levels[level - 1].1[run].0
        }
    }

    /// Cascaded refinement, identical math to the arena tree's — only the
    /// pointer lookup resolves into a per-run vector.
    fn cascade(&self, level: usize, run: usize, pos: usize, c: usize, t: I) -> usize {
        let child_run_len = self.run_len_of(level - 1);
        let ratio = self.run_len_of(level) / child_run_len;
        let child_run = run * ratio + c;
        let cs = child_run * child_run_len;
        let ce = (cs + child_run_len).min(self.n);
        let clen = ce - cs;
        let child = self.keys_of(level - 1, child_run, cs, ce);
        if !self.params.cascading {
            return child.partition_point(|&x| x < t);
        }
        let f = self.params.fanout;
        let s = pos / self.params.sampling;
        let ptrs = &self.levels[level - 1].1[run].1;
        let lo = ptrs[s * f + c].to_usize();
        let hi = ptrs[(s + 1) * f + c].to_usize().min(clen);
        lo + child[lo..hi].partition_point(|&x| x < t)
    }

    /// The stateless range decomposition, mirroring the arena tree's
    /// recursion exactly; `visit(level, run, pos)` per fully-covered run.
    #[allow(clippy::too_many_arguments)]
    fn descend(
        &self,
        level: usize,
        run: usize,
        a: usize,
        b: usize,
        t: I,
        pos: usize,
        visit: &mut impl FnMut(usize, usize, usize),
    ) {
        let run_len = self.run_len_of(level);
        let rs = run * run_len;
        let re = (rs + run_len).min(self.n);
        if a == rs && b == re {
            visit(level, run, pos);
            return;
        }
        let child_len = self.run_len_of(level - 1);
        let ratio = run_len / child_len;
        for c in 0..self.params.fanout.min(ratio) {
            let cs = rs + c * child_len;
            if cs >= re {
                break;
            }
            let ce = (cs + child_len).min(re);
            let lo = a.max(cs);
            let hi = b.min(ce);
            if lo >= hi {
                continue;
            }
            let cpos = self.cascade(level, run, pos, c, t);
            if lo == cs && hi == ce {
                visit(level - 1, cs / child_len, cpos);
            } else {
                self.descend(level - 1, cs / child_len, lo, hi, t, cpos, visit);
            }
        }
    }

    fn decompose(&self, a: usize, b: usize, t: I, visit: &mut impl FnMut(usize, usize, usize)) {
        let b = b.min(self.n);
        if a >= b {
            return;
        }
        let top = self.levels.len();
        let pos = self.keys_of(top, 0, 0, self.n).partition_point(|&x| x < t);
        self.descend(top, 0, a, b, t, pos, visit);
    }

    /// Counts elements at positions `[a, b)` with value smaller than `t`.
    pub fn count_below(&self, a: usize, b: usize, t: I) -> usize {
        let mut total = 0usize;
        self.decompose(a, b, t, &mut |_, _, pos| total += pos);
        total
    }

    /// [`Self::count_below`] summed over disjoint ranges.
    pub fn count_below_multi(&self, ranges: &RangeSet, t: I) -> usize {
        ranges.iter().map(|(a, b)| self.count_below(a, b, t)).sum()
    }

    /// Position of the `j`-th element (in position order) whose value lies in
    /// `ranges`; the §4.5 selection query.
    pub fn select(&self, ranges: &RangeSet, j: usize) -> Option<usize> {
        if self.n == 0 {
            return None;
        }
        let top = self.levels.len();
        let top_keys = self.keys_of(top, 0, 0, self.n);
        let nr = ranges.len();
        let mut bounds = [(0usize, 0usize); MAX_RANGES];
        for (ri, (lo, hi)) in ranges.iter().enumerate() {
            bounds[ri] = (
                top_keys.partition_point(|&x| x.to_usize() < lo),
                top_keys.partition_point(|&x| x.to_usize() < hi),
            );
        }
        let total: usize = bounds[..nr].iter().map(|&(l, h)| h - l).sum();
        if j >= total {
            return None;
        }
        let mut j = j;
        let mut level = top;
        let mut run = 0usize;
        while level > 0 {
            let run_len = self.run_len_of(level);
            let rs = run * run_len;
            let re = (rs + run_len).min(self.n);
            let child_len = self.run_len_of(level - 1);
            let mut found = false;
            let mut scratch = [(0usize, 0usize); MAX_RANGES];
            for c in 0..self.params.fanout {
                let cs = rs + c * child_len;
                if cs >= re {
                    break;
                }
                let mut cnt = 0usize;
                for ri in 0..nr {
                    let (blo, bhi) = bounds[ri];
                    let (lo_v, hi_v) = ranges.nth(ri);
                    let pl = self.cascade(level, run, blo, c, I::from_usize(lo_v));
                    let ph = self.cascade(level, run, bhi, c, I::from_usize(hi_v));
                    cnt += ph - pl;
                    scratch[ri] = (pl, ph);
                }
                if j < cnt {
                    bounds = scratch;
                    run = cs / child_len;
                    level -= 1;
                    found = true;
                    break;
                }
                j -= cnt;
            }
            if !found {
                return None;
            }
        }
        Some(run)
    }

    /// Convenience: select within a single value range `[lo, hi)`.
    pub fn select_in_range(&self, lo: usize, hi: usize, j: usize) -> Option<usize> {
        self.select(&RangeSet::single(lo, hi), j)
    }
}

/// An annotated merge sort tree in the pre-arena layout: per-run key, pointer
/// *and* prefix-state vectors. Baseline counterpart of
/// [`crate::AnnotatedMst`].
pub struct PerRunAnnotated<I: TreeIndex, A: DistinctAggregate> {
    tree: PerRunMst<I>,
    /// Level-0 prefix states: one lifted payload per element.
    base_prefix: Vec<A::State>,
    /// `[level - 1][run][pos]` prefix states for levels above the base.
    prefix: Vec<Vec<Vec<A::State>>>,
}

impl<I: TreeIndex, A: DistinctAggregate> PerRunAnnotated<I, A> {
    /// Builds a baseline annotated tree over merge keys and payloads.
    pub fn build(values: &[I], payloads: &[A::Payload], params: MstParams) -> Self {
        assert_eq!(values.len(), payloads.len());
        let n = values.len();
        let base_pairs: Vec<(I, A::Payload)> =
            values.iter().copied().zip(payloads.iter().copied()).collect();
        let pair_levels = build_baseline_levels::<I, (I, A::Payload)>(&base_pairs, params);
        let mut levels = Vec::with_capacity(pair_levels.len());
        let mut prefix = Vec::with_capacity(pair_levels.len());
        for (run_len, runs) in pair_levels {
            let mut key_runs = Vec::with_capacity(runs.len());
            let mut pf_runs = Vec::with_capacity(runs.len());
            for (data, ptrs) in runs {
                let keys: Vec<I> = data.iter().map(|&(key, _)| key).collect();
                let mut states = Vec::with_capacity(data.len());
                let mut acc = A::identity();
                for &(_, p) in &data {
                    acc = A::combine(acc, A::lift(p));
                    states.push(acc);
                }
                key_runs.push((keys, ptrs));
                pf_runs.push(states);
            }
            levels.push((run_len, key_runs));
            prefix.push(pf_runs);
        }
        let base_prefix = payloads.iter().map(|&p| A::combine(A::identity(), A::lift(p))).collect();
        let tree = PerRunMst { base: values.to_vec(), levels, params, n };
        PerRunAnnotated { tree, base_prefix, prefix }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Combines the payloads of elements at positions `[a, b)` with key
    /// smaller than `t`; mirrors [`crate::AnnotatedMst::aggregate_below`].
    pub fn aggregate_below(&self, a: usize, b: usize, t: I) -> (A::State, usize) {
        let mut state = A::identity();
        let mut count = 0usize;
        self.tree.decompose(a, b, t, &mut |level, run, pos| {
            if pos > 0 {
                let s = if level == 0 {
                    self.base_prefix[run]
                } else {
                    self.prefix[level - 1][run][pos - 1]
                };
                state = A::combine(state, s);
                count += pos;
            }
        });
        (state, count)
    }

    /// [`Self::aggregate_below`] over a frame with exclusion holes.
    pub fn aggregate_below_multi(&self, ranges: &RangeSet, t: I) -> (A::State, usize) {
        let mut state = A::identity();
        let mut count = 0usize;
        for (a, b) in ranges.iter() {
            let (s, c) = self.aggregate_below(a, b, t);
            state = A::combine(state, s);
            count += c;
        }
        (state, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::SumI64;
    use crate::annotated::AnnotatedMst;
    use crate::mst::MergeSortTree;
    use crate::prev_idcs::prev_idcs_by_key;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn baseline_count_and_select_match_arena_tree() {
        let mut rng = StdRng::seed_from_u64(60);
        for &(f, k) in &[(2, 1), (4, 2), (8, 32), (32, 32)] {
            let n = rng.gen_range(1..400);
            let mut perm: Vec<u32> = (0..n as u32).collect();
            for i in (1..n).rev() {
                perm.swap(i, rng.gen_range(0..=i));
            }
            let params = MstParams::new(f, k);
            let arena = MergeSortTree::<u32>::build(&perm, params);
            let baseline = PerRunMst::<u32>::build(&perm, params);
            assert_eq!(arena.height(), baseline.height());
            for _ in 0..80 {
                let a = rng.gen_range(0..=n);
                let b = rng.gen_range(0..=n + 2);
                let t = rng.gen_range(0..n as u32 + 2);
                assert_eq!(arena.count_below(a, b, t), baseline.count_below(a, b, t));
                let (lo, hi) = (rng.gen_range(0..=n), rng.gen_range(0..=n));
                let j = rng.gen_range(0..n + 1);
                assert_eq!(arena.select_in_range(lo, hi, j), baseline.select_in_range(lo, hi, j));
            }
        }
    }

    #[test]
    fn baseline_aggregate_matches_arena_tree() {
        let mut rng = StdRng::seed_from_u64(61);
        let n = 300usize;
        let values: Vec<i64> = (0..n).map(|_| rng.gen_range(-30..30)).collect();
        let prev: Vec<u32> = prev_idcs_by_key(&values, false).iter().map(|&p| p as u32).collect();
        let params = MstParams::new(4, 4);
        let arena = AnnotatedMst::<u32, SumI64>::build(&prev, &values, params);
        let baseline = PerRunAnnotated::<u32, SumI64>::build(&prev, &values, params);
        for a in (0..n).step_by(7) {
            for b in (a..=n).step_by(11) {
                let (s0, c0) = arena.aggregate_below(a, b, a as u32 + 1);
                let (s1, c1) = baseline.aggregate_below(a, b, a as u32 + 1);
                assert_eq!(SumI64::finish(s0), SumI64::finish(s1));
                assert_eq!(c0, c1);
            }
        }
    }

    #[test]
    fn allocation_count_grows_with_runs() {
        let vals: Vec<u32> = (0..1000).collect();
        let t = PerRunMst::<u32>::build(&vals, MstParams::new(4, 8));
        // 250 + 63 + 16 + 4 + 1 runs, two allocations each, plus the base.
        assert_eq!(t.allocations(), 1 + 2 * (250 + 63 + 16 + 4 + 1));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1000);
    }
}
