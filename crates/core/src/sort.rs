//! Parallel sorting substrate (§5.2, §5.3).
//!
//! The paper reuses the database's existing parallel sorter for the MST
//! preprocessing steps: thread-local runs are sorted independently, then
//! merged with a parallel multiway merge whose split points come from
//! multisequence selection. This module provides exactly that pipeline for
//! integer-keyed elements (every MST preprocessing sort is integer-keyed
//! after hashing/encoding, §5.1/§6.7).

use crate::index::TreeIndex;
use crate::loser_tree::LoserTree;
use crate::merge::{multisequence_split, Keyed};
use rayon::prelude::*;

/// Sorts `data` into contiguous runs (one per task) and returns the run
/// boundaries (always starting with 0 and ending with `data.len()`).
///
/// This is the "sort thread-local" phase of Figure 14.
pub fn sort_runs<I: TreeIndex, T: Keyed<I>>(data: &mut [T], num_runs: usize) -> Vec<usize> {
    let n = data.len();
    let num_runs = num_runs.max(1).min(n.max(1));
    let chunk = n.div_ceil(num_runs);
    let mut bounds = vec![0usize];
    for start in (0..n).step_by(chunk.max(1)) {
        bounds.push((start + chunk).min(n));
    }
    if n == 0 {
        bounds.push(0);
        bounds.dedup();
    }
    data.par_chunks_mut(chunk.max(1)).for_each(|c| c.sort_unstable_by_key(|e| e.key()));
    bounds.dedup();
    bounds
}

/// Merges the sorted runs delimited by `bounds` into a fresh vector,
/// splitting the merge across threads via multisequence selection.
///
/// This is the "merge sorted runs" phase of Figure 14.
pub fn merge_runs<I: TreeIndex, T: Keyed<I>>(
    data: &[T],
    bounds: &[usize],
    parallel: bool,
) -> Vec<T> {
    let n = data.len();
    let runs: Vec<&[T]> = bounds.windows(2).map(|w| &data[w[0]..w[1]]).collect();
    if runs.len() <= 1 {
        return data.to_vec();
    }
    let mut out = vec![T::default(); n];
    let threads = rayon::current_num_threads();
    if !parallel || threads <= 1 || n < 8192 {
        let mut lt = LoserTree::new(runs, |a: &T, b: &T| a.key() < b.key());
        for slot in out.iter_mut() {
            *slot = lt.pop().expect("merge underflow").0;
        }
    } else {
        let chunk = n.div_ceil(threads).max(1);
        let ranks: Vec<usize> =
            (0..threads).map(|t| (t * chunk).min(n)).chain(std::iter::once(n)).collect();
        let splits: Vec<Vec<usize>> =
            ranks.iter().map(|&r| multisequence_split(&runs, r)).collect();
        let mut parts: Vec<&mut [T]> = Vec::new();
        let mut rest = &mut out[..];
        for w in ranks.windows(2) {
            let (h, t) = rest.split_at_mut(w[1] - w[0]);
            parts.push(h);
            rest = t;
        }
        parts.into_par_iter().enumerate().for_each(|(i, part)| {
            let sub: Vec<&[T]> = runs
                .iter()
                .enumerate()
                .map(|(r, run)| &run[splits[i][r]..splits[i + 1][r]])
                .collect();
            let mut lt = LoserTree::new(sub, |a: &T, b: &T| a.key() < b.key());
            for slot in part.iter_mut() {
                *slot = lt.pop().expect("merge underflow").0;
            }
        });
    }
    out
}

/// End-to-end parallel merge sort: run formation + multiway merge.
pub fn parallel_sort<I: TreeIndex, T: Keyed<I>>(mut data: Vec<T>, parallel: bool) -> Vec<T> {
    let tasks = if parallel { rayon::current_num_threads().max(1) * 4 } else { 1 };
    let bounds = sort_runs::<I, T>(&mut data, tasks);
    if bounds.len() <= 2 {
        return data;
    }
    merge_runs::<I, T>(&data, &bounds, parallel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn sort_runs_produces_sorted_chunks() {
        let mut data: Vec<u64> = vec![9, 3, 7, 1, 8, 2, 6, 0, 5, 4];
        let bounds = sort_runs::<u64, u64>(&mut data, 3);
        assert_eq!(*bounds.first().unwrap(), 0);
        assert_eq!(*bounds.last().unwrap(), 10);
        for w in bounds.windows(2) {
            assert!(data[w[0]..w[1]].windows(2).all(|p| p[0] <= p[1]));
        }
    }

    #[test]
    fn parallel_sort_matches_std_sort() {
        let mut rng = StdRng::seed_from_u64(77);
        for &n in &[0usize, 1, 2, 100, 10_000, 50_000] {
            let data: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
            let mut expect = data.clone();
            expect.sort_unstable();
            assert_eq!(parallel_sort::<u64, u64>(data.clone(), true), expect, "n={n}");
            assert_eq!(parallel_sort::<u64, u64>(data, false), expect, "n={n} serial");
        }
    }

    #[test]
    fn sorts_keyed_pairs_by_key_only() {
        let data: Vec<(u32, i64)> = vec![(3, 30), (1, 10), (2, 20), (1, 11)];
        let sorted = parallel_sort::<u32, (u32, i64)>(data, false);
        let keys: Vec<u32> = sorted.iter().map(|p| p.0).collect();
        assert_eq!(keys, vec![1, 1, 2, 3]);
        // Both payloads for key 1 survive.
        let p1: Vec<i64> = sorted.iter().filter(|p| p.0 == 1).map(|p| p.1).collect();
        assert_eq!(p1.len(), 2);
        assert!(p1.contains(&10) && p1.contains(&11));
    }

    #[test]
    fn merge_runs_handles_single_run() {
        let data = vec![1u64, 2, 3];
        assert_eq!(merge_runs::<u64, u64>(&data, &[0, 3], false), data);
    }

    #[test]
    fn merge_runs_parallel_matches_serial() {
        let mut rng = StdRng::seed_from_u64(78);
        let mut data: Vec<u64> = (0..30_000).map(|_| rng.gen_range(0..5000)).collect();
        let bounds = sort_runs::<u64, u64>(&mut data, 7);
        let s = merge_runs::<u64, u64>(&data, &bounds, false);
        let p = merge_runs::<u64, u64>(&data, &bounds, true);
        assert_eq!(s, p);
    }
}
