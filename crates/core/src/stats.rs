//! Memory accounting for merge sort trees (§5.1, §6.6).

use crate::index::TreeIndex;
use crate::mst::MergeSortTree;

/// Size report of a built merge sort tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MstStats {
    /// Number of levels, including the base level.
    pub height: usize,
    /// Stored data elements across all levels.
    pub elements: usize,
    /// Stored cascading pointers across all levels.
    pub pointers: usize,
    /// Total bytes of data + pointers (excluding sample offset tables, which
    /// are O(runs) and negligible).
    pub bytes: usize,
}

/// The paper's closed-form element estimate (§5.1):
/// `⌈log_f n⌉·n + (⌈log_f n⌉ − 1)·n·f/k`.
///
/// The first term counts data elements on the levels above the base, the
/// second the sampled cascading pointers. (Our accounting additionally
/// includes the base level itself, which the formula's first term already
/// covers by counting `⌈log_f n⌉` copies.)
pub fn paper_element_estimate(n: usize, fanout: usize, sampling: usize) -> usize {
    if n <= 1 {
        return n;
    }
    let mut height = 0usize;
    let mut run = 1usize;
    while run < n {
        run = run.saturating_mul(fanout);
        height += 1;
    }
    height * n + height.saturating_sub(1) * n * fanout / sampling
}

impl<I: TreeIndex> MergeSortTree<I> {
    /// Measures the built tree.
    pub fn stats(&self) -> MstStats {
        let elements = self.stored_elements();
        let pointers = self.stored_pointers();
        MstStats {
            height: self.height(),
            elements,
            pointers,
            bytes: (elements + pointers) * std::mem::size_of::<I>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MstParams;

    #[test]
    fn stats_counts_match_levels() {
        let vals: Vec<u32> = (0..1000).collect();
        let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(4, 8));
        let s = tree.stats();
        assert_eq!(s.height, tree.height());
        assert_eq!(s.elements, tree.height() * 1000);
        assert_eq!(s.bytes, (s.elements + s.pointers) * 4);
    }

    #[test]
    fn estimate_tracks_actual_within_slack() {
        for &(n, f, k) in &[(1000usize, 32usize, 32usize), (5000, 8, 4), (4096, 2, 1)] {
            let vals: Vec<u32> = (0..n as u32).collect();
            let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(f, k));
            let actual = tree.stats();
            let est = paper_element_estimate(n, f, k);
            let total = actual.elements + actual.pointers;
            // The closed form under-counts our implementation: it excludes
            // the base level, assumes exactly one pointer level per data
            // level minus one, and ignores the two sentinel sample slots per
            // run. All three effects are bounded small factors, so the real
            // footprint must stay within 3x of the estimate (and cannot drop
            // below half of it).
            assert!(total <= 3 * est, "total {total} > 3 * est {est}");
            assert!(2 * total >= est, "total {total} < est {est} / 2");
        }
    }

    #[test]
    fn larger_fanout_means_fewer_elements() {
        let vals: Vec<u32> = (0..100_000).collect();
        let small_f = MergeSortTree::<u32>::build(&vals, MstParams::new(2, 32)).stats();
        let big_f = MergeSortTree::<u32>::build(&vals, MstParams::new(32, 32)).stats();
        assert!(big_f.elements < small_f.elements);
        assert!(big_f.height < small_f.height);
    }

    #[test]
    fn u64_trees_cost_double_bytes_per_slot() {
        let v32: Vec<u32> = (0..5000).collect();
        let v64: Vec<u64> = (0..5000).collect();
        let t32 = MergeSortTree::<u32>::build(&v32, MstParams::default()).stats();
        let t64 = MergeSortTree::<u64>::build(&v64, MstParams::default()).stats();
        assert_eq!(t32.elements, t64.elements);
        assert_eq!(t64.bytes, 2 * t32.bytes);
    }
}
