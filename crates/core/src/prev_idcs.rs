//! Previous-occurrence preprocessing for distinct aggregates (Algorithm 1).
//!
//! `prev_idcs[i]` holds the index of the previous occurrence of `keys[i]`, in
//! the *shifted* encoding of §5.1: `0` means "no previous occurrence" and any
//! other value `v` means "previous occurrence at index `v − 1`". The shifted
//! encoding keeps the array a plain unsigned integer array.
//!
//! The count of distinct values within a frame `[a, b)` equals the number of
//! entries in `prev_idcs[a..b]` that are `< a + 1` (each distinct value is
//! counted exactly once, at its first occurrence inside the frame — Figure 1).
//!
//! Note: Algorithm 1 in the paper writes `prevIdcs[i] ← sorted[i-1].second`,
//! indexing by the *sorted* position `i`; the accompanying text and Figure 1
//! make clear the array must be in input order, so we write to
//! `prev_idcs[sorted[i].second]` instead.

use rayon::prelude::*;

/// Computes shifted previous-occurrence indices for arbitrary ordered keys.
///
/// Runs Algorithm 1: annotate each key with its position, sort
/// lexicographically (a stable sort on the key), then read neighbours.
/// O(n log n); the sort and the scatter loop parallelize.
pub fn prev_idcs_by_key<K: Ord + Copy + Send + Sync>(keys: &[K], parallel: bool) -> Vec<usize> {
    let n = keys.len();
    let mut sorted: Vec<(K, usize)> = keys.iter().copied().zip(0..n).collect();
    if parallel && n >= 4096 {
        sorted.par_sort_unstable();
    } else {
        sorted.sort_unstable();
    }
    let mut prev = vec![0usize; n];
    // In the sorted order, duplicates form runs ordered by original position;
    // the previous occurrence of sorted[i] is sorted[i-1] iff keys match.
    if parallel && n >= 4096 {
        // The scatter targets are a permutation of 0..n, so the writes are
        // disjoint; collect (position, value) updates in parallel and apply.
        let sorted = &sorted;
        let updates: Vec<(usize, usize)> = (1..n)
            .into_par_iter()
            .filter_map(|i| {
                if sorted[i].0 == sorted[i - 1].0 {
                    Some((sorted[i].1, sorted[i - 1].1 + 1))
                } else {
                    None
                }
            })
            .collect();
        for (pos, val) in updates {
            prev[pos] = val;
        }
    } else {
        for i in 1..n {
            if sorted[i].0 == sorted[i - 1].0 {
                prev[sorted[i].1] = sorted[i - 1].1 + 1;
            }
        }
    }
    prev
}

/// [`prev_idcs_by_key`] specialized for 64-bit hashes.
///
/// The engine sorts value *hashes* instead of the values themselves so the
/// merge sort tree preprocessing is independent of SQL types (§6.7). Hash
/// collisions would conflate two distinct values; the window layer documents
/// this and the test-suite cross-checks against the exact-key variant.
pub fn prev_idcs_u64(hashes: &[u64], parallel: bool) -> Vec<usize> {
    prev_idcs_by_key(hashes, parallel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn brute(keys: &[i64]) -> Vec<usize> {
        let mut prev = vec![0usize; keys.len()];
        for i in 0..keys.len() {
            for j in (0..i).rev() {
                if keys[j] == keys[i] {
                    prev[i] = j + 1;
                    break;
                }
            }
        }
        prev
    }

    #[test]
    fn figure1_example() {
        // Input: a b b a c b ... mirroring Figure 1's 8 tuples with 3 values.
        let keys: Vec<i64> = vec![0, 1, 1, 0, 2, 1, 2, 0];
        // prev (unshifted): -, -, 1, 0, -, 2, 4, 3 → shifted: 0 0 2 1 0 3 5 4.
        assert_eq!(prev_idcs_by_key(&keys, false), vec![0, 0, 2, 1, 0, 3, 5, 4]);
    }

    #[test]
    fn all_distinct_is_all_zero() {
        let keys: Vec<i64> = (0..50).collect();
        assert!(prev_idcs_by_key(&keys, false).iter().all(|&p| p == 0));
    }

    #[test]
    fn all_equal_chains() {
        let keys = vec![7i64; 5];
        assert_eq!(prev_idcs_by_key(&keys, false), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        assert!(prev_idcs_by_key::<i64>(&[], false).is_empty());
    }

    #[test]
    fn random_matches_brute_serial_and_parallel() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let n = rng.gen_range(0..400);
            let keys: Vec<i64> = (0..n).map(|_| rng.gen_range(0..30)).collect();
            let expect = brute(&keys);
            assert_eq!(prev_idcs_by_key(&keys, false), expect);
            assert_eq!(prev_idcs_by_key(&keys, true), expect);
        }
        // Force the parallel path past its size threshold.
        let n = 10_000;
        let keys: Vec<i64> = (0..n).map(|_| rng.gen_range(0..100)).collect();
        assert_eq!(prev_idcs_by_key(&keys, true), prev_idcs_by_key(&keys, false));
    }

    #[test]
    fn distinct_count_identity_holds() {
        // Number of entries < a+1 within [a, b) equals the distinct count.
        let mut rng = StdRng::seed_from_u64(6);
        let keys: Vec<i64> = (0..200).map(|_| rng.gen_range(0..15)).collect();
        let prev = prev_idcs_by_key(&keys, false);
        for a in (0..keys.len()).step_by(13) {
            for b in (a..=keys.len()).step_by(17) {
                let counted = prev[a..b].iter().filter(|&&p| p < a + 1).count();
                let distinct: std::collections::HashSet<_> = keys[a..b].iter().collect();
                assert_eq!(counted, distinct.len());
            }
        }
    }
}
