//! Index/payload integer types stored inside merge sort trees.
//!
//! The paper (§5.1) represents merge sort trees as contiguous integer arrays
//! and picks 32-bit or 64-bit integers per window partition at runtime: all
//! payloads (previous-occurrence indices, dense rank codes, permutation
//! entries) are indices into the partition and therefore fit in 32 bits for
//! partitions of up to 2³² rows. Smaller integers halve memory bandwidth.

use std::fmt::Debug;
use std::hash::Hash;

/// An unsigned integer type usable as a merge sort tree element.
///
/// Elements of a merge sort tree are always integers: the preprocessing steps
/// of §5.1 map every SQL type to dense integer codes or positional indices
/// before tree construction. Implementations exist for `u32` and `u64`; the
/// caller picks the narrowest type that fits the partition size (see
/// [`fits_u32`]).
pub trait TreeIndex: Copy + Ord + Eq + Hash + Debug + Send + Sync + Default + 'static {
    /// Largest representable value (used as +∞ sentinel in searches).
    const MAX: Self;
    /// Zero.
    const ZERO: Self;
    /// Converts from `usize`, panicking in debug builds on overflow.
    fn from_usize(v: usize) -> Self;
    /// Converts to `usize` (always lossless on 64-bit targets).
    fn to_usize(self) -> usize;
    /// Midpoint of two values, used by value-domain binary searches.
    fn midpoint(a: Self, b: Self) -> Self;
    /// Successor, saturating at `MAX`.
    fn saturating_succ(self) -> Self;
}

macro_rules! impl_tree_index {
    ($t:ty) => {
        impl TreeIndex for $t {
            const MAX: Self = <$t>::MAX;
            const ZERO: Self = 0;
            #[inline]
            fn from_usize(v: usize) -> Self {
                debug_assert!(v <= <$t>::MAX as usize, "index overflow for {}", stringify!($t));
                v as $t
            }
            #[inline]
            fn to_usize(self) -> usize {
                self as usize
            }
            #[inline]
            fn midpoint(a: Self, b: Self) -> Self {
                a + (b - a) / 2
            }
            #[inline]
            fn saturating_succ(self) -> Self {
                self.saturating_add(1)
            }
        }
    };
}

impl_tree_index!(u32);
impl_tree_index!(u64);

/// Returns true when all positional payloads of a partition with `n` rows fit
/// into `u32` trees (the shifted prevIdcs encoding needs `n + 1` values).
#[inline]
pub fn fits_u32(n: usize) -> bool {
    n < u32::MAX as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(u32::from_usize(42).to_usize(), 42);
        assert_eq!(u64::from_usize(1 << 40).to_usize(), 1 << 40);
        assert_eq!(<u32 as TreeIndex>::MAX, u32::MAX);
    }

    #[test]
    fn midpoint_is_within_bounds() {
        assert_eq!(u32::midpoint(0, 10), 5);
        assert_eq!(u32::midpoint(10, 10), 10);
        assert_eq!(u32::midpoint(u32::MAX - 1, u32::MAX), u32::MAX - 1);
        assert_eq!(u64::midpoint(0, u64::MAX), u64::MAX / 2);
    }

    #[test]
    fn saturating_succ_saturates() {
        assert_eq!(5u32.saturating_succ(), 6);
        assert_eq!(u32::MAX.saturating_succ(), u32::MAX);
    }

    #[test]
    fn fits_u32_boundaries() {
        assert!(fits_u32(0));
        assert!(fits_u32(u32::MAX as usize - 1));
        assert!(!fits_u32(u32::MAX as usize));
    }
}
