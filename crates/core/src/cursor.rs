//! Probe cursors: amortized O(1) merge-sort-tree descents for monotonic
//! frame sequences.
//!
//! The evaluators of `holistic-window` issue one tree probe per output row.
//! For the dominant workloads (`ROWS BETWEEN x PRECEDING AND y FOLLOWING`,
//! RANGE frames over a sorted key) consecutive probes move the frame
//! boundaries and the threshold forward by a handful of positions, yet a
//! stateless probe re-runs a full top-level binary search over all `n`
//! elements plus a cascaded descent from scratch. A [`ProbeCursor`] memoizes
//! the previous probe's per-level lower-bound positions along the two
//! boundary descent paths and re-seeds each search with a **galloping
//! (exponential) search** from the memoized position: moving a position by
//! `Δ` costs O(log Δ) instead of O(log n), so a monotonic pass over the
//! partition costs O(n) per level in total — amortized O(1) per probe per
//! level, exactly like a merge pass. Non-monotonic jumps degrade
//! gracefully: galloping within a run is never worse than ~2× a full binary
//! search, and a memo pointing into a *different* run falls back to the
//! unchanged sampled-cascading refinement (counted as a reset).
//!
//! Correctness does not depend on monotonicity: a galloping lower-bound
//! search returns *exactly* the same position as `slice::partition_point`,
//! so cursor-based probes are bit-identical to stateless probes on every
//! input — the cursor only changes the constant factor. The visit order of
//! the underlying range decomposition is also preserved, so even
//! non-associative-rounding aggregates (`SUM(DISTINCT)` over floats) stay
//! bit-identical.

use crate::index::TreeIndex;
use crate::range_set::MAX_RANGES;

/// Probe-kernel counters accumulated by a cursor over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CursorStats {
    /// Probe primitives that ran through an enabled cursor.
    pub cursor_probes: u64,
    /// Probe primitives that ran through a disabled cursor (the stateless
    /// fallback kept behind `ProbeOptions`).
    pub stateless_probes: u64,
    /// Searches answered by galloping from a memoized position.
    pub gallop_seeded: u64,
    /// Total galloping steps taken across all seeded searches.
    pub gallop_steps: u64,
    /// Full binary searches (no usable memo yet).
    pub full_searches: u64,
    /// Per-level memo misses: the memo pointed into a different run and the
    /// descent fell back to the standard cascaded refinement.
    pub level_resets: u64,
}

impl CursorStats {
    /// Accumulates another counter set into `self`.
    pub fn merge_from(&mut self, o: &CursorStats) {
        self.cursor_probes += o.cursor_probes;
        self.stateless_probes += o.stateless_probes;
        self.gallop_seeded += o.gallop_seeded;
        self.gallop_steps += o.gallop_steps;
        self.full_searches += o.full_searches;
        self.level_resets += o.level_resets;
    }
}

/// Lower bound (`partition_point`) by galloping outward from `seed`.
///
/// `below(x)` must be monotone over `data` (true-prefix), exactly like the
/// predicate of `slice::partition_point`; the return value is identical to
/// `data.partition_point(below)` for every `seed`. Cost is O(log Δ) where
/// `Δ = |result - seed|`.
pub(crate) fn gallop_partition_point<T>(
    data: &[T],
    seed: usize,
    below: impl Fn(&T) -> bool,
    steps: &mut u64,
) -> usize {
    let n = data.len();
    let seed = seed.min(n);
    let (lo, hi);
    if seed < n && below(&data[seed]) {
        // The boundary lies strictly right of the seed: probe seed + 1, 2, 4…
        let mut off = 1usize;
        loop {
            let idx = seed + off;
            if idx >= n || !below(&data[idx]) {
                break;
            }
            *steps += 1;
            off <<= 1;
        }
        lo = seed + (off >> 1) + 1;
        hi = (seed + off).min(n);
    } else {
        // The boundary lies at or left of the seed: probe seed − 1, 2, 4…
        let mut off = 1usize;
        loop {
            if off > seed || below(&data[seed - off]) {
                break;
            }
            *steps += 1;
            off <<= 1;
        }
        lo = if off > seed { 0 } else { seed - off + 1 };
        hi = seed - (off >> 1);
    }
    debug_assert!(lo <= hi && hi <= n);
    lo + data[lo..hi].partition_point(below)
}

/// One memoized per-level position: the lower bound of the last threshold
/// within absolute child run `run`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LevelMemo {
    pub(crate) run: usize,
    pub(crate) pos: usize,
}

const INVALID: usize = usize::MAX;

impl LevelMemo {
    fn invalid() -> Self {
        LevelMemo { run: INVALID, pos: 0 }
    }
}

/// Which boundary descent path a per-level memo belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Side {
    /// The path of the frame start `a` (also the shared joint path while
    /// both boundaries fall into the same child).
    Left,
    /// The path of the frame end `b`.
    Right,
}

/// Cursor for `count_below` / `aggregate_below` style probes on one
/// `(tree, boundary stream)` pair.
///
/// Holds the shared top-level threshold memo plus, per frame piece (up to
/// [`MAX_RANGES`]) and boundary side, one memoized `(run, pos)` per tree
/// level. Construct one per tree and per probe loop (or per parallel probe
/// chunk); never share a cursor across trees with different contents.
#[derive(Debug, Clone)]
pub struct ProbeCursor {
    enabled: bool,
    top_pos: usize,
    top_valid: bool,
    /// Number of memoized child levels (tree height − 1); sized lazily on
    /// first use so a fresh cursor works with any tree.
    levels: usize,
    /// `[slot][side][level]`, flattened with stride `levels`.
    memos: Vec<LevelMemo>,
    /// Counters; drain via [`Self::stats`] or read directly.
    pub stats: CursorStats,
}

impl Default for ProbeCursor {
    fn default() -> Self {
        Self::new()
    }
}

impl ProbeCursor {
    /// A fresh enabled cursor (memo storage grows on first probe).
    pub fn new() -> Self {
        ProbeCursor {
            enabled: true,
            top_pos: 0,
            top_valid: false,
            levels: 0,
            memos: Vec::new(),
            stats: CursorStats::default(),
        }
    }

    /// A disabled cursor: every probe primitive takes the stateless path
    /// (and counts as `stateless_probes`). Used to keep one code path in
    /// probe loops while `ProbeOptions` toggles cursors off.
    pub fn disabled() -> Self {
        ProbeCursor { enabled: false, ..Self::new() }
    }

    /// Whether probes through this cursor use memoized positions.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Invalidates all memos (the next probe pays full searches again).
    pub fn reset(&mut self) {
        self.top_valid = false;
        self.memos.fill(LevelMemo::invalid());
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CursorStats {
        self.stats
    }

    /// Ensures memo storage for `levels` child levels, resetting on growth
    /// (only happens when a cursor is reused against a taller tree).
    pub(crate) fn ensure_levels(&mut self, levels: usize) {
        if self.levels < levels {
            self.levels = levels;
            self.memos = vec![LevelMemo::invalid(); MAX_RANGES * 2 * levels];
            self.top_valid = false;
        }
    }

    /// Flat memo index for `(slot, side, level)`.
    #[inline]
    pub(crate) fn memo_index(&self, slot: usize, side: Side, level: usize) -> usize {
        debug_assert!(slot < MAX_RANGES && level < self.levels);
        let side = match side {
            Side::Left => 0,
            Side::Right => 1,
        };
        (slot * 2 + side) * self.levels + level
    }

    #[inline]
    pub(crate) fn memo(&self, idx: usize) -> LevelMemo {
        self.memos[idx]
    }

    #[inline]
    pub(crate) fn set_memo(&mut self, idx: usize, run: usize, pos: usize) {
        self.memos[idx] = LevelMemo { run, pos };
    }

    /// Top-level lower bound of `below` (a `partition_point` predicate),
    /// galloping from the previous probe's position when available.
    pub(crate) fn top_position<T>(&mut self, data: &[T], below: impl Fn(&T) -> bool) -> usize {
        let pos = if self.top_valid {
            self.stats.gallop_seeded += 1;
            gallop_partition_point(data, self.top_pos, below, &mut self.stats.gallop_steps)
        } else {
            self.stats.full_searches += 1;
            data.partition_point(below)
        };
        self.top_valid = true;
        self.top_pos = pos;
        pos
    }
}

/// Cursor for `select` probes: memoizes the top-level positions of the per
/// frame-piece value bounds (two per piece). The descent below the top level
/// is already O(1) per level via sampled cascading and needs no memo.
#[derive(Debug, Clone)]
pub struct SelectCursor {
    enabled: bool,
    memos: [usize; MAX_RANGES * 2],
    /// Counters; drain via [`Self::stats`] or read directly.
    pub stats: CursorStats,
}

impl Default for SelectCursor {
    fn default() -> Self {
        Self::new()
    }
}

impl SelectCursor {
    /// A fresh enabled cursor.
    pub fn new() -> Self {
        SelectCursor {
            enabled: true,
            memos: [INVALID; MAX_RANGES * 2],
            stats: CursorStats::default(),
        }
    }

    /// A disabled cursor (stateless fallback; see [`ProbeCursor::disabled`]).
    pub fn disabled() -> Self {
        SelectCursor { enabled: false, ..Self::new() }
    }

    /// Whether probes through this cursor use memoized positions.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Invalidates all memos.
    pub fn reset(&mut self) {
        self.memos = [INVALID; MAX_RANGES * 2];
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CursorStats {
        self.stats
    }

    /// Top-level lower bound of value `key` in `data` for memo slot `slot`,
    /// galloping from the previous position when available.
    pub(crate) fn seek<I: TreeIndex>(&mut self, slot: usize, data: &[I], key: usize) -> usize {
        let seed = self.memos[slot];
        let pos = if seed == INVALID {
            self.stats.full_searches += 1;
            data.partition_point(|&x| x.to_usize() < key)
        } else {
            self.stats.gallop_seeded += 1;
            gallop_partition_point(
                data,
                seed,
                |&x| x.to_usize() < key,
                &mut self.stats.gallop_steps,
            )
        };
        self.memos[slot] = pos;
        pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn gallop_matches_partition_point_everywhere() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let n = rng.gen_range(0..120);
            let mut data: Vec<u32> = (0..n).map(|_| rng.gen_range(0..60)).collect();
            data.sort_unstable();
            for _ in 0..40 {
                let t = rng.gen_range(0..65);
                let seed = rng.gen_range(0..=(n as usize) + 3);
                let mut steps = 0u64;
                let got = gallop_partition_point(&data, seed, |&x| x < t, &mut steps);
                assert_eq!(got, data.partition_point(|&x| x < t), "n={n} t={t} seed={seed}");
            }
        }
    }

    #[test]
    fn gallop_near_seed_is_cheap() {
        let data: Vec<u32> = (0..1_000_000).collect();
        // Moving the boundary by one position takes O(1) steps.
        let mut steps = 0u64;
        let p = gallop_partition_point(&data, 500_000, |&x| x < 500_001, &mut steps);
        assert_eq!(p, 500_001);
        assert!(steps <= 2, "steps = {steps}");
        let mut steps = 0u64;
        let p = gallop_partition_point(&data, 500_000, |&x| x < 499_999, &mut steps);
        assert_eq!(p, 499_999);
        assert!(steps <= 2, "steps = {steps}");
    }

    #[test]
    fn disabled_cursors_report_disabled() {
        assert!(!ProbeCursor::disabled().enabled());
        assert!(!SelectCursor::disabled().enabled());
        assert!(ProbeCursor::new().enabled());
        assert!(SelectCursor::new().enabled());
    }

    #[test]
    fn stats_merge_sums_fields() {
        let a = CursorStats {
            cursor_probes: 1,
            stateless_probes: 2,
            gallop_seeded: 3,
            gallop_steps: 4,
            full_searches: 5,
            level_resets: 6,
        };
        let mut b = a;
        b.merge_from(&a);
        assert_eq!(b.cursor_probes, 2);
        assert_eq!(b.level_resets, 12);
    }

    #[test]
    fn select_cursor_seek_matches_partition_point() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut data: Vec<u32> = (0..500).map(|_| rng.gen_range(0..400)).collect();
        data.sort_unstable();
        let mut cur = SelectCursor::new();
        for _ in 0..200 {
            let key = rng.gen_range(0..420usize);
            let slot = rng.gen_range(0..MAX_RANGES * 2);
            assert_eq!(cur.seek(slot, &data, key), data.partition_point(|&x| (x as usize) < key));
        }
        assert!(cur.stats.gallop_seeded > 0);
    }
}
