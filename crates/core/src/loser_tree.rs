//! A loser tree (tournament tree) for k-way merging of sorted runs.
//!
//! Multiway merges are the inner loop of merge sort tree construction: with
//! fanout *f* every produced element costs O(log f) comparisons instead of the
//! O(f) of a naive head scan. Ties are broken towards the lower run index so
//! merges are deterministic.

/// K-way merge iterator over sorted slices.
///
/// `T` is the element type, `F` the strict-weak-order "less" predicate. Ties
/// always break towards the lower run index, making the merge deterministic
/// and stable across serial/parallel builds.
pub struct LoserTree<'a, T, F> {
    runs: Vec<&'a [T]>,
    /// Next unconsumed position per run.
    pos: Vec<usize>,
    /// `tree[i]` (for `1 <= i < leaves`) holds the run index that *lost* the
    /// match at internal node `i`; the overall winner is kept separately.
    tree: Vec<u32>,
    winner: u32,
    leaves: usize,
    less: F,
}

impl<'a, T: Copy, F: Fn(&T, &T) -> bool> LoserTree<'a, T, F> {
    /// Builds the tournament over `runs` (each individually sorted by
    /// `less`). Empty runs are allowed; O(total
    /// elements · log fanout) to drain.
    pub fn new(runs: Vec<&'a [T]>, less: F) -> Self {
        let leaves = runs.len().next_power_of_two().max(1);
        let mut lt = LoserTree {
            pos: vec![0; runs.len()],
            tree: vec![u32::MAX; leaves],
            winner: 0,
            leaves,
            runs,
            less,
        };
        lt.winner = if lt.leaves == 1 { 0 } else { lt.seed(1, 0, lt.leaves) };
        lt
    }

    /// Current head of run `r`, if any. Padding leaves (`r >= runs.len()`)
    /// behave like exhausted runs.
    #[inline]
    fn head(&self, r: usize) -> Option<&T> {
        self.runs.get(r).and_then(|run| run.get(self.pos[r]))
    }

    /// Returns true when run `a` beats run `b` (exhausted runs always lose;
    /// ties go to the lower run index).
    #[inline]
    fn beats(&self, a: usize, b: usize) -> bool {
        match (self.head(a), self.head(b)) {
            (Some(x), Some(y)) => {
                if (self.less)(x, y) {
                    true
                } else if (self.less)(y, x) {
                    false
                } else {
                    a < b
                }
            }
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    /// Plays the initial tournament for the subtree rooted at internal node
    /// `node`, covering `span` leaves starting at `first_leaf`; returns the
    /// subtree winner and records losers along the way.
    fn seed(&mut self, node: usize, first_leaf: usize, span: usize) -> u32 {
        if span == 1 {
            return first_leaf as u32;
        }
        let l = self.seed(2 * node, first_leaf, span / 2);
        let r = self.seed(2 * node + 1, first_leaf + span / 2, span / 2);
        let (w, loser) = if self.beats(l as usize, r as usize) { (l, r) } else { (r, l) };
        self.tree[node] = loser;
        w
    }

    /// Pops the globally smallest head element, returning it with its run.
    #[inline]
    pub fn pop(&mut self) -> Option<(T, usize)> {
        let w = self.winner as usize;
        let item = *self.head(w)?;
        self.pos[w] += 1;
        // Replay the matches on the path from the winner's leaf to the root.
        let mut cur = self.winner;
        let mut node = (w + self.leaves) / 2;
        while node >= 1 {
            let opponent = self.tree[node];
            if opponent != u32::MAX && self.beats(opponent as usize, cur as usize) {
                self.tree[node] = cur;
                cur = opponent;
            }
            node /= 2;
        }
        self.winner = cur;
        Some((item, w))
    }

    /// Consumed position of run `r` (the paper's "input iterator", persisted
    /// as cascading pointer snapshots during tree construction).
    #[inline]
    pub fn position(&self, r: usize) -> usize {
        self.pos[r]
    }

    /// Number of input runs.
    #[inline]
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T: Copy, F: Fn(&T, &T) -> bool>(mut lt: LoserTree<T, F>) -> Vec<T> {
        let mut out = Vec::new();
        while let Some((v, _)) = lt.pop() {
            out.push(v);
        }
        out
    }

    #[test]
    fn merges_two_runs() {
        let a = [1u32, 4, 6];
        let b = [2u32, 3, 7];
        let lt = LoserTree::new(vec![&a[..], &b[..]], |x, y| x < y);
        assert_eq!(drain(lt), vec![1, 2, 3, 4, 6, 7]);
    }

    #[test]
    fn merges_single_run() {
        let a = [5u32, 9];
        let lt = LoserTree::new(vec![&a[..]], |x, y| x < y);
        assert_eq!(drain(lt), vec![5, 9]);
    }

    #[test]
    fn merges_non_power_of_two_runs() {
        let runs: Vec<Vec<u32>> = vec![vec![3, 8], vec![1, 9], vec![2, 7, 10]];
        let slices: Vec<&[u32]> = runs.iter().map(|r| r.as_slice()).collect();
        let lt = LoserTree::new(slices, |x, y| x < y);
        assert_eq!(drain(lt), vec![1, 2, 3, 7, 8, 9, 10]);
    }

    #[test]
    fn handles_empty_runs() {
        let runs: Vec<Vec<u32>> = vec![vec![], vec![4, 5], vec![], vec![1]];
        let slices: Vec<&[u32]> = runs.iter().map(|r| r.as_slice()).collect();
        let lt = LoserTree::new(slices, |x, y| x < y);
        assert_eq!(drain(lt), vec![1, 4, 5]);
    }

    #[test]
    fn all_empty_yields_nothing() {
        let runs: Vec<Vec<u32>> = vec![vec![], vec![]];
        let slices: Vec<&[u32]> = runs.iter().map(|r| r.as_slice()).collect();
        let lt = LoserTree::new(slices, |x, y| x < y);
        assert_eq!(drain(lt), Vec::<u32>::new());
    }

    #[test]
    fn ties_prefer_lower_run_index() {
        let a = [1u32];
        let b = [1u32];
        let mut lt = LoserTree::new(vec![&a[..], &b[..]], |x, y| x < y);
        assert_eq!(lt.pop(), Some((1, 0)));
        assert_eq!(lt.pop(), Some((1, 1)));
        assert_eq!(lt.pop(), None);
    }

    #[test]
    fn positions_track_consumption() {
        let a = [1u32, 3];
        let b = [2u32];
        let mut lt = LoserTree::new(vec![&a[..], &b[..]], |x, y| x < y);
        lt.pop();
        assert_eq!((lt.position(0), lt.position(1)), (1, 0));
        lt.pop();
        assert_eq!((lt.position(0), lt.position(1)), (1, 1));
        assert_eq!(lt.num_runs(), 2);
    }

    #[test]
    fn random_merge_matches_sort() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..60 {
            let nruns = 1 + trial % 9;
            let mut runs: Vec<Vec<u64>> = Vec::new();
            let mut all = Vec::new();
            for _ in 0..nruns {
                let len = rng.gen_range(0..40);
                let mut run: Vec<u64> = (0..len).map(|_| rng.gen_range(0..30)).collect();
                run.sort_unstable();
                all.extend_from_slice(&run);
                runs.push(run);
            }
            all.sort_unstable();
            let slices: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
            let lt = LoserTree::new(slices, |x, y| x < y);
            assert_eq!(drain(lt), all);
        }
    }
}
