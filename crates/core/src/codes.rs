//! Dense integer code preprocessing for rank functions and inner ORDER BY
//! clauses (Figure 8, §5.1).
//!
//! The merge sort tree stores only integers. All intricacies of SQL ORDER BY
//! clauses (multiple criteria, collations, NULLS LAST, descending order) are
//! handled up front by sorting once and numbering the rows:
//!
//! * `code[i]` — the *unique* code of row `i`: its position in the sort
//!   order with ties broken by row index. One merge sort tree over `code`
//!   answers ROW_NUMBER, RANK and CUME_DIST simultaneously:
//!   - `ROW_NUMBER(i) = count_below(frame, code[i]) + 1`
//!   - `RANK(i)       = count_below(frame, group_min[i]) + 1`
//!   - `CUME_DIST(i)  = count_below(frame, group_end[i]) / frame_size`
//! * `group_min[i]` / `group_end[i]` — the code range `[group_min, group_end)`
//!   of row `i`'s tie group (its *peers* under the ranking criterion).
//! * `group_id[i]` — dense tie-group number, the key for DENSE_RANK's
//!   3-dimensional range query.
//! * `perm[r]` — the row at sort position `r` (the permutation array of §4.5,
//!   used to build the selection tree for percentiles and value functions).

use rayon::prelude::*;

/// Output of [`dense_codes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseCodes {
    /// Unique sort position per row (ties broken by row index).
    pub code: Vec<usize>,
    /// First code of the row's tie group.
    pub group_min: Vec<usize>,
    /// One past the last code of the row's tie group.
    pub group_end: Vec<usize>,
    /// Dense tie-group index per row (0, 1, 2, … in key order).
    pub group_id: Vec<usize>,
    /// `perm[r]` = row index at sort position `r` (inverse of `code`).
    pub perm: Vec<usize>,
    /// Number of distinct tie groups.
    pub num_groups: usize,
}

/// Sorts rows by `keys` (ties by row index) and numbers them densely.
pub fn dense_codes<K: Ord + Send + Sync>(keys: &[K], parallel: bool) -> DenseCodes {
    let n = keys.len();
    let mut perm: Vec<usize> = (0..n).collect();
    if parallel && n >= 4096 {
        perm.par_sort_unstable_by(|&a, &b| keys[a].cmp(&keys[b]).then(a.cmp(&b)));
    } else {
        perm.sort_unstable_by(|&a, &b| keys[a].cmp(&keys[b]).then(a.cmp(&b)));
    }
    let mut code = vec![0usize; n];
    let mut group_min = vec![0usize; n];
    let mut group_end = vec![0usize; n];
    let mut group_id = vec![0usize; n];
    let mut num_groups = 0usize;
    let mut r = 0;
    while r < n {
        // Tie group [r, e).
        let mut e = r + 1;
        while e < n && keys[perm[e]] == keys[perm[r]] {
            e += 1;
        }
        for (rank, &row) in perm[r..e].iter().enumerate() {
            code[row] = r + rank;
            group_min[row] = r;
            group_end[row] = e;
            group_id[row] = num_groups;
        }
        num_groups += 1;
        r = e;
    }
    DenseCodes { code, group_min, group_end, group_id, perm, num_groups }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn figure8_style_numbering() {
        // Keys with duplicates; Figure 8 numbers tuples densely by sort order.
        let keys = vec![30i64, 10, 20, 10, 30];
        let dc = dense_codes(&keys, false);
        // Sort order: 10(@1), 10(@3), 20(@2), 30(@0), 30(@4).
        assert_eq!(dc.perm, vec![1, 3, 2, 0, 4]);
        assert_eq!(dc.code, vec![3, 0, 2, 1, 4]);
        assert_eq!(dc.group_min, vec![3, 0, 2, 0, 3]);
        assert_eq!(dc.group_end, vec![5, 2, 3, 2, 5]);
        assert_eq!(dc.group_id, vec![2, 0, 1, 0, 2]);
        assert_eq!(dc.num_groups, 3);
    }

    #[test]
    fn all_distinct() {
        let keys = vec![5i64, 1, 3];
        let dc = dense_codes(&keys, false);
        assert_eq!(dc.code, vec![2, 0, 1]);
        assert_eq!(dc.group_min, dc.code);
        assert_eq!(dc.group_end, vec![3, 1, 2]);
        assert_eq!(dc.num_groups, 3);
    }

    #[test]
    fn empty_input() {
        let dc = dense_codes::<i64>(&[], false);
        assert!(dc.code.is_empty() && dc.perm.is_empty());
        assert_eq!(dc.num_groups, 0);
    }

    #[test]
    fn code_is_inverse_of_perm() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..20 {
            let n = rng.gen_range(0..300);
            let keys: Vec<i64> = (0..n).map(|_| rng.gen_range(0..20)).collect();
            let dc = dense_codes(&keys, false);
            for (r, &row) in dc.perm.iter().enumerate() {
                assert_eq!(dc.code[row], r);
            }
            // Codes are a permutation of 0..n.
            let mut sorted = dc.code.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n as usize).collect::<Vec<_>>());
        }
    }

    #[test]
    fn groups_are_consistent() {
        let mut rng = StdRng::seed_from_u64(9);
        let keys: Vec<i64> = (0..200).map(|_| rng.gen_range(0..10)).collect();
        let dc = dense_codes(&keys, false);
        for i in 0..keys.len() {
            for j in 0..keys.len() {
                if keys[i] == keys[j] {
                    assert_eq!(dc.group_id[i], dc.group_id[j]);
                    assert_eq!(dc.group_min[i], dc.group_min[j]);
                } else if keys[i] < keys[j] {
                    assert!(dc.group_id[i] < dc.group_id[j]);
                    assert!(dc.group_end[i] <= dc.group_min[j]);
                }
            }
            assert!(dc.group_min[i] <= dc.code[i] && dc.code[i] < dc.group_end[i]);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = StdRng::seed_from_u64(10);
        let keys: Vec<i64> = (0..10_000).map(|_| rng.gen_range(0..500)).collect();
        assert_eq!(dense_codes(&keys, true), dense_codes(&keys, false));
    }
}
