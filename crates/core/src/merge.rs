//! Multiway merging with cascading-pointer snapshots and parallel merge
//! splitting via multisequence selection (§5.2 of the paper).
//!
//! A merge sort tree level is produced by merging groups of `fanout` child
//! runs. While merging, the consumed input-iterator positions are persisted
//! every `sampling`-th output element — these snapshots *are* the sampled
//! fractional-cascading pointers of §4.2: snapshot `s` of a run records, for
//! every child run `c`, how many elements of `c` appear among the first
//! `s·k` merged outputs.
//!
//! Parallel merging follows the paper: split points are found by selecting
//! global ranks across all sorted input runs (multisequence selection), then
//! the chunks between consecutive split points are merged independently.

use crate::index::TreeIndex;
use crate::loser_tree::LoserTree;
use rayon::prelude::*;

/// Element types that carry a sortable integer key (the merge order of the
/// tree). Plain indices are their own key; annotated trees merge
/// `(key, payload)` pairs.
pub trait Keyed<I: TreeIndex>: Copy + Default + Send + Sync {
    /// The merge key.
    fn key(&self) -> I;
}

impl<I: TreeIndex> Keyed<I> for I {
    #[inline]
    fn key(&self) -> I {
        *self
    }
}

impl<I: TreeIndex, P: Copy + Default + Send + Sync> Keyed<I> for (I, P) {
    #[inline]
    fn key(&self) -> I {
        self.0
    }
}

/// Multisequence selection: positions splitting each sorted input run such
/// that the prefixes jointly contain exactly the `rank` smallest elements
/// (ties distributed greedily in run order).
///
/// Runs a binary search over the integer key domain — possible because merge
/// sort tree elements are always integers (§5.1) — followed by greedy tie
/// assignment. O(|domain bits| · f · log run_len).
pub fn multisequence_split<I: TreeIndex, T: Keyed<I>>(inputs: &[&[T]], rank: usize) -> Vec<usize> {
    let total: usize = inputs.iter().map(|r| r.len()).sum();
    assert!(rank <= total, "split rank {rank} out of bounds (total {total})");
    if rank == 0 {
        return vec![0; inputs.len()];
    }
    if rank == total {
        return inputs.iter().map(|r| r.len()).collect();
    }
    // Smallest key v with count_le(v) >= rank.
    let count_le =
        |v: I| -> usize { inputs.iter().map(|run| run.partition_point(|e| e.key() <= v)).sum() };
    let (mut lo, mut hi) = (I::ZERO, I::MAX);
    while lo < hi {
        let mid = I::midpoint(lo, hi);
        if count_le(mid) >= rank {
            hi = mid;
        } else {
            lo = mid.saturating_succ();
        }
    }
    let v = lo;
    let mut splits: Vec<usize> =
        inputs.iter().map(|run| run.partition_point(|e| e.key() < v)).collect();
    let mut need = rank - splits.iter().sum::<usize>();
    for (run, split) in inputs.iter().zip(splits.iter_mut()) {
        if need == 0 {
            break;
        }
        let eq = run[*split..].partition_point(|e| e.key() <= v);
        let take = eq.min(need);
        *split += take;
        need -= take;
    }
    debug_assert_eq!(need, 0);
    splits
}

/// Serially merges `parts` (per-child sub-slices plus their base offsets
/// within the full child runs) into `out`, recording iterator snapshots.
///
/// `chunk_rank` is the global output rank of `out[0]` within the full parent
/// run and must be a multiple of `k`. Snapshot slot `s` (with `s·k` inside
/// this chunk) receives, for each of the `fanout` children, the absolute
/// consumed position of that child after `s·k` outputs. `snaps` must hold
/// exactly the slots owned by this chunk, laid out `[s][child]`.
pub(crate) fn merge_chunk<I: TreeIndex, T: Keyed<I>>(
    parts: &[(&[T], usize)],
    fanout: usize,
    k: usize,
    chunk_rank: usize,
    out: &mut [T],
    snaps: &mut [I],
) {
    debug_assert!(chunk_rank.is_multiple_of(k));
    debug_assert_eq!(out.len(), parts.iter().map(|(p, _)| p.len()).sum::<usize>());
    let slices: Vec<&[T]> = parts.iter().map(|(p, _)| *p).collect();
    let mut lt = LoserTree::new(slices, |a: &T, b: &T| a.key() < b.key());
    let mut snap_slot = 0usize;
    for (local, out_elem) in out.iter_mut().enumerate() {
        if (chunk_rank + local).is_multiple_of(k) {
            let base = snap_slot * fanout;
            for (c, (_, off)) in parts.iter().enumerate() {
                snaps[base + c] = I::from_usize(off + lt.position(c));
            }
            // Children beyond the present ones stay at zero (empty runs).
            for c in parts.len()..fanout {
                snaps[base + c] = I::ZERO;
            }
            snap_slot += 1;
        }
        let (item, _) = lt.pop().expect("merge underflow");
        *out_elem = item;
    }
    debug_assert_eq!(snap_slot * fanout, snaps.len());
    debug_assert!(lt.pop().is_none(), "merge overflow");
    let _ = lt.num_runs();
}

/// Description of one parent run's children: sub-slices of the child level.
pub(crate) struct RunChildren<'a, T> {
    /// Child runs, in order (may be fewer than `fanout` for the last run).
    pub children: Vec<&'a [T]>,
}

/// Merges one parent run from its children, writing the merged data and all
/// of the run's snapshot slots (including the trailing "after everything"
/// sentinel slots). Splits the work across rayon threads when `parallel` and
/// the run is large.
pub(crate) fn merge_run<I: TreeIndex, T: Keyed<I>>(
    rc: &RunChildren<'_, T>,
    fanout: usize,
    k: usize,
    out: &mut [T],
    snaps: &mut [I],
    parallel: bool,
) {
    let len = out.len();
    let samples = len / k + 2;
    debug_assert_eq!(snaps.len(), samples * fanout);
    // Slots written by the merge loop: s with s·k < len, i.e. s in
    // [0, ceil(len/k)). The remaining trailing slots record final positions.
    let merge_slots = len.div_ceil(k);

    let threads = rayon::current_num_threads();
    if !parallel || threads <= 1 || len < 4 * k.max(1024) {
        let parts: Vec<(&[T], usize)> = rc.children.iter().map(|c| (*c, 0)).collect();
        merge_chunk(&parts, fanout, k, 0, out, &mut snaps[..merge_slots * fanout]);
    } else {
        // Chunk boundaries at multiples of k so snapshot slots partition.
        let chunk = (len.div_ceil(threads)).div_ceil(k).max(1) * k;
        let bounds: Vec<usize> = (0..)
            .map(|i| (i * chunk).min(len))
            .take_while(|&b| b < len)
            .chain(std::iter::once(len))
            .collect();
        let splits: Vec<Vec<usize>> =
            bounds.iter().map(|&b| multisequence_split(&rc.children, b)).collect();
        // Carve `out` and the merge-loop snapshot region into per-chunk parts.
        let mut out_parts: Vec<&mut [T]> = Vec::with_capacity(bounds.len() - 1);
        let mut snap_parts: Vec<&mut [I]> = Vec::with_capacity(bounds.len() - 1);
        {
            let mut out_rest = &mut *out;
            let mut snap_rest = &mut snaps[..merge_slots * fanout];
            for w in bounds.windows(2) {
                let (g0, g1) = (w[0], w[1]);
                let (head, tail) = out_rest.split_at_mut(g1 - g0);
                out_parts.push(head);
                out_rest = tail;
                let slots = (g1.div_ceil(k)).min(merge_slots) - g0 / k;
                let (shead, stail) = snap_rest.split_at_mut(slots * fanout);
                snap_parts.push(shead);
                snap_rest = stail;
            }
            debug_assert!(out_rest.is_empty() && snap_rest.is_empty());
        }
        out_parts.into_par_iter().zip(snap_parts).enumerate().for_each(|(i, (out_c, snap_c))| {
            let parts: Vec<(&[T], usize)> = rc
                .children
                .iter()
                .enumerate()
                .map(|(c, child)| (&child[splits[i][c]..splits[i + 1][c]], splits[i][c]))
                .collect();
            merge_chunk(&parts, fanout, k, bounds[i], out_c, snap_c);
        });
    }
    // Trailing sentinel slots: final consumed positions = child lengths.
    for s in merge_slots..samples {
        let base = s * fanout;
        for c in 0..fanout {
            snaps[base + c] = I::from_usize(rc.children.get(c).map(|ch| ch.len()).unwrap_or(0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn brute_snapshot(children: &[Vec<u32>], merged: &[u32], upto: usize) -> Vec<usize> {
        // Count, per child, how many of its elements appear among merged[..upto].
        // Valid because all elements < merged[upto] are consumed and ties are
        // consumed in run order by the loser tree.
        let mut counts = vec![0usize; children.len()];
        // Reconstruct by replaying a stable merge.
        let mut pos = vec![0usize; children.len()];
        for _ in 0..upto {
            let mut best: Option<usize> = None;
            for (c, child) in children.iter().enumerate() {
                if pos[c] < child.len() {
                    match best {
                        None => best = Some(c),
                        Some(b) => {
                            if child[pos[c]] < children[b][pos[b]] {
                                best = Some(c);
                            }
                        }
                    }
                }
            }
            let b = best.unwrap();
            pos[b] += 1;
            counts[b] += 1;
        }
        let _ = merged;
        counts
    }

    #[test]
    fn multisequence_split_basic() {
        let a = vec![1u32, 3, 5, 7];
        let b = vec![2u32, 4, 6, 8];
        let runs: Vec<&[u32]> = vec![&a, &b];
        assert_eq!(multisequence_split(&runs, 0), vec![0, 0]);
        assert_eq!(multisequence_split(&runs, 8), vec![4, 4]);
        assert_eq!(multisequence_split(&runs, 4), vec![2, 2]);
        assert_eq!(multisequence_split(&runs, 1), vec![1, 0]);
        assert_eq!(multisequence_split(&runs, 3), vec![2, 1]);
    }

    #[test]
    fn multisequence_split_ties_go_in_run_order() {
        let a = vec![5u32, 5, 5];
        let b = vec![5u32, 5];
        let runs: Vec<&[u32]> = vec![&a, &b];
        assert_eq!(multisequence_split(&runs, 2), vec![2, 0]);
        assert_eq!(multisequence_split(&runs, 4), vec![3, 1]);
    }

    #[test]
    fn multisequence_split_random_is_consistent() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..40 {
            let nruns = rng.gen_range(1..6);
            let runs: Vec<Vec<u64>> = (0..nruns)
                .map(|_| {
                    let len = rng.gen_range(0..30);
                    let mut v: Vec<u64> = (0..len).map(|_| rng.gen_range(0..20)).collect();
                    v.sort_unstable();
                    v
                })
                .collect();
            let slices: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
            let total: usize = runs.iter().map(|r| r.len()).sum();
            for rank in 0..=total {
                let splits = multisequence_split(&slices, rank);
                assert_eq!(splits.iter().sum::<usize>(), rank);
                // Max of prefixes <= min of suffixes.
                let prefix_max =
                    runs.iter().zip(&splits).filter_map(|(r, &s)| r[..s].last().copied()).max();
                let suffix_min =
                    runs.iter().zip(&splits).filter_map(|(r, &s)| r[s..].first().copied()).min();
                if let (Some(pm), Some(sm)) = (prefix_max, suffix_min) {
                    assert!(pm <= sm, "rank {rank}: {pm} > {sm}");
                }
            }
        }
    }

    #[test]
    fn merge_run_serial_matches_sorted_and_snapshots() {
        let children: Vec<Vec<u32>> = vec![vec![2, 4, 9], vec![1, 4, 7], vec![0, 5]];
        let slices: Vec<&[u32]> = children.iter().map(|c| c.as_slice()).collect();
        let rc = RunChildren { children: slices };
        let len = 8;
        let k = 3;
        let fanout = 4;
        let samples = len / k + 2;
        let mut out = vec![0u32; len];
        let mut snaps = vec![0u32; samples * fanout];
        merge_run::<u32, u32>(&rc, fanout, k, &mut out, &mut snaps, false);
        assert_eq!(out, vec![0, 1, 2, 4, 4, 5, 7, 9]);
        // Snapshot s: consumed positions after s*k outputs.
        for s in 0..samples {
            let upto = (s * k).min(len);
            let expect = brute_snapshot(&children, &out, upto);
            for (c, &e) in expect.iter().enumerate() {
                assert_eq!(snaps[s * fanout + c] as usize, e, "sample {s} child {c}");
            }
            assert_eq!(snaps[s * fanout + 3], 0, "missing child stays zero");
        }
    }

    #[test]
    fn merge_run_parallel_matches_serial() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..20 {
            let fanout = rng.gen_range(2..6);
            let nchildren = rng.gen_range(1..=fanout);
            let k = rng.gen_range(1..6);
            let children: Vec<Vec<u64>> = (0..nchildren)
                .map(|_| {
                    let len = rng.gen_range(0..500);
                    let mut v: Vec<u64> = (0..len).map(|_| rng.gen_range(0..100)).collect();
                    v.sort_unstable();
                    v
                })
                .collect();
            let slices: Vec<&[u64]> = children.iter().map(|c| c.as_slice()).collect();
            let len: usize = children.iter().map(|c| c.len()).sum();
            let samples = len / k + 2;

            let rc = RunChildren { children: slices.clone() };
            let mut out_s = vec![0u64; len];
            let mut snaps_s = vec![0u64; samples * fanout];
            merge_run::<u64, u64>(&rc, fanout, k, &mut out_s, &mut snaps_s, false);

            let rc = RunChildren { children: slices };
            let mut out_p = vec![0u64; len];
            let mut snaps_p = vec![0u64; samples * fanout];
            merge_run::<u64, u64>(&rc, fanout, k, &mut out_p, &mut snaps_p, true);

            assert_eq!(out_s, out_p);
            // Snapshots may differ on tie placement across chunk boundaries in
            // theory, but our tie rule (run order) matches the greedy split, so
            // they must agree exactly.
            assert_eq!(snaps_s, snaps_p);
        }
    }

    #[test]
    fn merge_chunk_pairs_carry_payloads() {
        let a: Vec<(u32, i64)> = vec![(1, 10), (5, 50)];
        let b: Vec<(u32, i64)> = vec![(3, 30)];
        let parts: Vec<(&[(u32, i64)], usize)> = vec![(&a, 0), (&b, 0)];
        let mut out = vec![(0u32, 0i64); 3];
        let mut snaps = vec![0u32; 2 * 2];
        merge_chunk(&parts, 2, 2, 0, &mut out, &mut snaps);
        assert_eq!(out, vec![(1, 10), (3, 30), (5, 50)]);
    }
}
