//! Small sets of disjoint half-open ranges.
//!
//! Window frames are usually one contiguous range, but frame exclusion
//! clauses (EXCLUDE CURRENT ROW / GROUP / TIES, §4.7) punch up to two holes
//! into it, leaving at most three contiguous pieces. All merge sort tree
//! query primitives therefore accept a [`RangeSet`] instead of a single range.

/// Up to [`MAX_RANGES`] disjoint, ascending half-open `[lo, hi)` ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeSet {
    ranges: [(usize, usize); MAX_RANGES],
    len: u8,
}

/// Maximum number of pieces a frame can decompose into (§4.7: three).
pub const MAX_RANGES: usize = 3;

impl RangeSet {
    /// An empty set.
    pub fn empty() -> Self {
        RangeSet { ranges: [(0, 0); MAX_RANGES], len: 0 }
    }

    /// A single range `[lo, hi)`; empty input ranges are dropped.
    pub fn single(lo: usize, hi: usize) -> Self {
        let mut rs = Self::empty();
        rs.push(lo, hi);
        rs
    }

    /// Builds from ascending disjoint ranges, dropping empty ones.
    ///
    /// Panics if more than [`MAX_RANGES`] non-empty ranges are given or if
    /// they are not ascending and disjoint.
    pub fn from_ranges(ranges: &[(usize, usize)]) -> Self {
        let mut rs = Self::empty();
        for &(lo, hi) in ranges {
            rs.push(lo, hi);
        }
        rs
    }

    /// Appends a range; no-op when empty.
    pub fn push(&mut self, lo: usize, hi: usize) {
        if lo >= hi {
            return;
        }
        assert!((self.len as usize) < MAX_RANGES, "too many frame pieces");
        if self.len > 0 {
            let prev = self.ranges[self.len as usize - 1];
            assert!(prev.1 <= lo, "frame pieces must be ascending and disjoint");
        }
        self.ranges[self.len as usize] = (lo, hi);
        self.len += 1;
    }

    /// The frame `[start, end)` minus the given holes (each optional, both
    /// clipped to the frame). This is exactly the shape produced by frame
    /// exclusion: EXCLUDE TIES yields two holes around the current row.
    ///
    /// Runs per output row inside the probe loops, so it is allocation-free:
    /// clipped holes go into fixed scratch (frame exclusion produces at most
    /// two) sorted by insertion.
    pub fn frame_minus_holes(start: usize, end: usize, holes: &[(usize, usize)]) -> Self {
        const MAX_HOLES: usize = 4;
        let mut sorted = [(0usize, 0usize); MAX_HOLES];
        let mut nh = 0usize;
        for &(a, b) in holes {
            let (a, b) = (a.max(start), b.min(end));
            if a >= b {
                continue;
            }
            assert!(nh < MAX_HOLES, "too many holes");
            // Insertion sort by (start, end); nh ≤ 2 in practice.
            let mut i = nh;
            while i > 0 && sorted[i - 1] > (a, b) {
                sorted[i] = sorted[i - 1];
                i -= 1;
            }
            sorted[i] = (a, b);
            nh += 1;
        }
        let mut rs = Self::empty();
        let mut cursor = start;
        for &(a, b) in &sorted[..nh] {
            if a > cursor {
                rs.push(cursor, a);
            }
            cursor = cursor.max(b);
        }
        if cursor < end {
            rs.push(cursor, end);
        }
        rs
    }

    /// Number of stored ranges.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no positions are covered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th range.
    pub fn nth(&self, i: usize) -> (usize, usize) {
        debug_assert!(i < self.len as usize);
        self.ranges[i]
    }

    /// Iterates over the ranges.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.ranges[..self.len as usize].iter().copied()
    }

    /// Total number of covered positions.
    pub fn count(&self) -> usize {
        self.iter().map(|(a, b)| b - a).sum()
    }

    /// True when `pos` is covered by any range.
    pub fn contains(&self, pos: usize) -> bool {
        self.iter().any(|(a, b)| a <= pos && pos < b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_drops_empty() {
        assert!(RangeSet::single(5, 5).is_empty());
        assert_eq!(RangeSet::single(2, 6).count(), 4);
    }

    #[test]
    fn frame_minus_no_holes() {
        let rs = RangeSet::frame_minus_holes(3, 9, &[]);
        assert_eq!(rs.iter().collect::<Vec<_>>(), vec![(3, 9)]);
    }

    #[test]
    fn frame_minus_middle_hole() {
        // EXCLUDE CURRENT ROW at position 5 within [3, 9).
        let rs = RangeSet::frame_minus_holes(3, 9, &[(5, 6)]);
        assert_eq!(rs.iter().collect::<Vec<_>>(), vec![(3, 5), (6, 9)]);
    }

    #[test]
    fn frame_minus_two_holes_ties() {
        // EXCLUDE TIES: peer group [4, 8), current row 6 → holes [4,6), [7,8).
        let rs = RangeSet::frame_minus_holes(3, 9, &[(4, 6), (7, 8)]);
        assert_eq!(rs.iter().collect::<Vec<_>>(), vec![(3, 4), (6, 7), (8, 9)]);
    }

    #[test]
    fn frame_minus_hole_at_edges() {
        let rs = RangeSet::frame_minus_holes(3, 9, &[(0, 4), (8, 20)]);
        assert_eq!(rs.iter().collect::<Vec<_>>(), vec![(4, 8)]);
        let rs = RangeSet::frame_minus_holes(3, 9, &[(0, 20)]);
        assert!(rs.is_empty());
    }

    #[test]
    fn contains_and_count() {
        let rs = RangeSet::from_ranges(&[(1, 3), (5, 6)]);
        assert_eq!(rs.count(), 3);
        assert!(rs.contains(1) && rs.contains(2) && rs.contains(5));
        assert!(!rs.contains(0) && !rs.contains(3) && !rs.contains(4) && !rs.contains(6));
        assert_eq!(rs.nth(1), (5, 6));
        assert_eq!(rs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn rejects_overlapping() {
        RangeSet::from_ranges(&[(1, 5), (4, 8)]);
    }

    #[test]
    fn holes_out_of_order_are_sorted() {
        let rs = RangeSet::frame_minus_holes(0, 10, &[(7, 8), (2, 3)]);
        assert_eq!(rs.iter().collect::<Vec<_>>(), vec![(0, 2), (3, 7), (8, 10)]);
    }

    #[test]
    fn overlapping_holes_merge() {
        let rs = RangeSet::frame_minus_holes(0, 10, &[(2, 6), (4, 8)]);
        assert_eq!(rs.iter().collect::<Vec<_>>(), vec![(0, 2), (8, 10)]);
    }
}
