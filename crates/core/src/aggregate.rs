//! Distributive aggregate interface for annotated merge sort trees (§4.3).
//!
//! Framed `DISTINCT` aggregates combine per-run *prefix* aggregation states.
//! Crucially, only a `combine` function is required — no inverse ("remove a
//! value") function, which makes the scheme applicable to arbitrary
//! user-defined aggregates (§4.3).

/// A distributive (or algebraic) aggregate, usable as `AGG(DISTINCT x) OVER`.
///
/// Implementations must form a commutative monoid over `State` with
/// [`identity`](Self::identity) as the neutral element. Per-run prefix states
/// are precomputed at build time; each query combines O(log n) of them.
pub trait DistinctAggregate: Send + Sync + 'static {
    /// Per-row input value carried through the merge.
    type Payload: Copy + Default + Send + Sync + 'static;
    /// Aggregation state (stored in prefix arrays, hence `Copy`).
    type State: Copy + Send + Sync + 'static;
    /// Final result type.
    type Output;

    /// The neutral aggregation state.
    fn identity() -> Self::State;
    /// Lifts one input value into a state.
    fn lift(payload: Self::Payload) -> Self::State;
    /// Combines two states. Must be associative.
    fn combine(a: Self::State, b: Self::State) -> Self::State;
    /// Produces the final aggregate value.
    fn finish(state: Self::State) -> Self::Output;
}

/// `SUM(DISTINCT x)` over 64-bit integers; accumulates in 128 bits so that no
/// realistic frame can overflow.
pub struct SumI64;

impl DistinctAggregate for SumI64 {
    type Payload = i64;
    type State = i128;
    type Output = i128;
    fn identity() -> i128 {
        0
    }
    fn lift(p: i64) -> i128 {
        p as i128
    }
    fn combine(a: i128, b: i128) -> i128 {
        a + b
    }
    fn finish(s: i128) -> i128 {
        s
    }
}

/// `SUM(DISTINCT x)` over floats.
pub struct SumF64;

impl DistinctAggregate for SumF64 {
    type Payload = f64;
    type State = f64;
    type Output = f64;
    fn identity() -> f64 {
        0.0
    }
    fn lift(p: f64) -> f64 {
        p
    }
    fn combine(a: f64, b: f64) -> f64 {
        a + b
    }
    fn finish(s: f64) -> f64 {
        s
    }
}

/// `MIN(DISTINCT x)` ≡ `MIN(x)`, included for completeness of the DISTINCT
/// machinery (and used to test non-invertible aggregates: MIN has no remove).
pub struct MinI64;

impl DistinctAggregate for MinI64 {
    type Payload = i64;
    type State = i64;
    type Output = i64;
    fn identity() -> i64 {
        i64::MAX
    }
    fn lift(p: i64) -> i64 {
        p
    }
    fn combine(a: i64, b: i64) -> i64 {
        a.min(b)
    }
    fn finish(s: i64) -> i64 {
        s
    }
}

/// `MAX(DISTINCT x)`.
pub struct MaxI64;

impl DistinctAggregate for MaxI64 {
    type Payload = i64;
    type State = i64;
    type Output = i64;
    fn identity() -> i64 {
        i64::MIN
    }
    fn lift(p: i64) -> i64 {
        p
    }
    fn combine(a: i64, b: i64) -> i64 {
        a.max(b)
    }
    fn finish(s: i64) -> i64 {
        s
    }
}

/// `COUNT(DISTINCT x)` expressed through the annotated-tree interface (the
/// plain tree's `count_below` is the faster path; this exists so the generic
/// machinery can be cross-checked against it).
pub struct CountAgg;

impl DistinctAggregate for CountAgg {
    type Payload = i64;
    type State = u64;
    type Output = u64;
    fn identity() -> u64 {
        0
    }
    fn lift(_: i64) -> u64 {
        1
    }
    fn combine(a: u64, b: u64) -> u64 {
        a + b
    }
    fn finish(s: u64) -> u64 {
        s
    }
}

/// `AVG(DISTINCT x)`: the classic algebraic decomposition into SUM and COUNT.
pub struct AvgF64;

impl DistinctAggregate for AvgF64 {
    type Payload = f64;
    type State = (f64, u64);
    type Output = Option<f64>;
    fn identity() -> (f64, u64) {
        (0.0, 0)
    }
    fn lift(p: f64) -> (f64, u64) {
        (p, 1)
    }
    fn combine(a: (f64, u64), b: (f64, u64)) -> (f64, u64) {
        (a.0 + b.0, a.1 + b.1)
    }
    fn finish((sum, cnt): (f64, u64)) -> Option<f64> {
        if cnt == 0 {
            None
        } else {
            Some(sum / cnt as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_monoid_laws() {
        let vals = [3i64, -7, 11];
        let mut acc = SumI64::identity();
        for v in vals {
            acc = SumI64::combine(acc, SumI64::lift(v));
        }
        assert_eq!(SumI64::finish(acc), 7);
        assert_eq!(SumI64::combine(SumI64::identity(), 5), 5);
    }

    #[test]
    fn min_max_identities() {
        assert_eq!(MinI64::combine(MinI64::identity(), 42), 42);
        assert_eq!(MaxI64::combine(MaxI64::identity(), -42), -42);
        assert_eq!(MinI64::combine(3, 9), 3);
        assert_eq!(MaxI64::combine(3, 9), 9);
    }

    #[test]
    fn avg_counts_and_divides() {
        let mut s = AvgF64::identity();
        for v in [1.0, 2.0, 6.0] {
            s = AvgF64::combine(s, AvgF64::lift(v));
        }
        assert_eq!(AvgF64::finish(s), Some(3.0));
        assert_eq!(AvgF64::finish(AvgF64::identity()), None);
    }

    #[test]
    fn count_ignores_payload() {
        let s = CountAgg::combine(CountAgg::lift(99), CountAgg::lift(-1));
        assert_eq!(CountAgg::finish(s), 2);
    }
}
