//! Leveled mergeable merge-sort-tree forest — amortized incremental appends.
//!
//! A [`crate::MergeSortTree`] is a static structure: the window engine builds
//! it once per partition and discards it after the query. A growing table
//! (live dashboard, CDC replay) would pay the full O(n log n) rebuild on
//! every refresh. This module makes the MST *mergeable* with the classic
//! LSM / binary-counter run discipline of merge-based sorting (Graefe's run
//! consolidation): the position space `[0, n)` is covered by a small forest
//! of contiguous *runs*, each carrying its own arena-flat MST. An append of
//! `b` elements pushes a new run of length `b` and then merges trailing runs
//! while the second-to-last is no longer than the merged tail span.
//!
//! The invariant after every append is that run lengths decrease by more
//! than 2× front to back, so there are at most ⌈log₂ n⌉ runs and every
//! element participates in O(log n) rebuilds over its lifetime — amortized
//! O(b log n) per append. Each rebuild goes through
//! [`MergeSortTree::build`], which internally performs the parallel multiway
//! merge of [`crate::merge`] (§5.2): the forest *reuses* the existing merge
//! machinery rather than re-implementing it.
//!
//! Probes decompose across runs:
//!
//! * [`MstForest::count_below`] — counts sum across runs (each run clamps
//!   the query ranges to its own position span and delegates to its tree's
//!   block/cursor kernels);
//! * [`MstForest::select`] — a cross-run rank search over the shared value
//!   domain: bisect for the smallest value `v` whose cumulative
//!   `count_leq(v)` across all runs exceeds the requested rank.
//!
//! Values are order-preserving `u64` encodings (the window layer encodes
//! `i64`/`f64` sort keys bijectively); `u64::MAX` is reserved so that
//! `count_leq(t)` can always be phrased as `count_below(t + 1)`. Annotated
//! (SUM/AVG DISTINCT) aggregates are not forest-accelerated — callers fall
//! back to a full rebuild for those, which the window layer's append engine
//! does automatically.

use crate::cursor::ProbeCursor;
use crate::mst::MergeSortTree;
use crate::params::MstParams;
use crate::range_set::RangeSet;

/// One leveled run: a contiguous position span `[start, start + len)` with
/// its own merge sort tree over the values in that span. The run's value
/// bounds let probes skip (or fully count) it without descending the tree:
/// a probe threshold at or below `min_val` contributes nothing, one above
/// `max_val` contributes every clamped position.
struct Run {
    start: usize,
    tree: MergeSortTree<u64>,
    min_val: u64,
    max_val: u64,
}

/// An appendable forest of merge sort trees over a growing value sequence.
///
/// ```
/// use holistic_core::{MstForest, MstParams, RangeSet};
///
/// let mut f = MstForest::new(MstParams::default().serial());
/// f.append(&[5, 1, 4]);
/// f.append(&[2, 8]);
/// assert_eq!(f.len(), 5);
/// // Two values below 4 in the full span:
/// assert_eq!(f.count_below(&RangeSet::single(0, 5), 4), 2);
/// // The 0-based rank-2 value (third smallest) is 4:
/// assert_eq!(f.select(&RangeSet::single(0, 5), 2), Some(4));
/// ```
pub struct MstForest {
    params: MstParams,
    /// All values in position (append) order; run `r` owns the slice
    /// `vals[runs[r].start .. runs[r].start + runs[r].tree.len()]`.
    vals: Vec<u64>,
    runs: Vec<Run>,
    merges: u64,
    rebuilt: u64,
}

impl MstForest {
    /// An empty forest.
    pub fn new(params: MstParams) -> Self {
        params.validate();
        MstForest { params, vals: Vec::new(), runs: Vec::new(), merges: 0, rebuilt: 0 }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True when no elements have been appended.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Number of live runs (≤ ⌈log₂ n⌉ + 1).
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Run merges performed across all appends.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Total elements passed through tree rebuilds (the amortization
    /// currency: O(n log n) over the forest's lifetime).
    pub fn rebuilt_elements(&self) -> u64 {
        self.rebuilt
    }

    /// Arena bytes across all run trees.
    pub fn arena_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.tree.arena_bytes()).sum()
    }

    /// The values in position order.
    pub fn values(&self) -> &[u64] {
        &self.vals
    }

    /// Appends `new_vals` at the end of the position space, merging trailing
    /// runs per the binary-counter discipline. Values must be below
    /// `u64::MAX` (reserved for the `count_leq` encoding).
    pub fn append(&mut self, new_vals: &[u64]) {
        if new_vals.is_empty() {
            return;
        }
        debug_assert!(
            new_vals.iter().all(|&v| v < u64::MAX),
            "u64::MAX is reserved; encode values below it"
        );
        let mut span_start = self.vals.len();
        self.vals.extend_from_slice(new_vals);
        // Collapse trailing runs while the second-to-last run is no longer
        // than the pending merged span, then rebuild once over the final
        // span — one tree build no matter how many runs collapse.
        while let Some(last) = self.runs.last() {
            if last.tree.len() <= self.vals.len() - span_start {
                span_start = last.start;
                self.runs.pop();
                self.merges += 1;
            } else {
                break;
            }
        }
        let slice = &self.vals[span_start..];
        self.rebuilt += slice.len() as u64;
        let (mut min_val, mut max_val) = (u64::MAX, 0u64);
        for &v in slice {
            min_val = min_val.min(v);
            max_val = max_val.max(v);
        }
        self.runs.push(Run {
            start: span_start,
            tree: MergeSortTree::build(slice, self.params),
            min_val,
            max_val,
        });
    }

    /// Number of positions of `ranges` that exist in the forest (ranges are
    /// clamped to `[0, len)`).
    pub fn positions(&self, ranges: &RangeSet) -> usize {
        let n = self.vals.len();
        ranges.iter().map(|(a, b)| b.min(n).saturating_sub(a.min(n))).sum()
    }

    /// How many values at positions in `ranges` are strictly below `t` —
    /// the per-run counts sum across runs.
    pub fn count_below(&self, ranges: &RangeSet, t: u64) -> usize {
        let mut total = 0usize;
        for run in &self.runs {
            if t <= run.min_val {
                continue;
            }
            let saturated = t > run.max_val;
            let end = run.start + run.tree.len();
            for (a, b) in ranges.iter() {
                let (la, lb) = (a.max(run.start), b.min(end));
                if la < lb {
                    total += if saturated {
                        lb - la
                    } else {
                        run.tree.count_below(la - run.start, lb - run.start, t)
                    };
                }
            }
        }
        total
    }

    /// How many values at positions in `ranges` are ≤ `t` (requires
    /// `t < u64::MAX`, guaranteed by the append-time reservation).
    pub fn count_leq(&self, ranges: &RangeSet, t: u64) -> usize {
        debug_assert!(t < u64::MAX);
        self.count_below(ranges, t + 1)
    }

    /// Cursor-seeded [`Self::count_below`]: one [`ProbeCursor`] per run, so
    /// batches of probes advancing monotonically (the append engine's
    /// freshly-appended suffix) amortize the per-level binary searches
    /// exactly as the single-tree cursors do.
    pub fn count_below_with(&self, ranges: &RangeSet, t: u64, cur: &mut ForestCursor) -> usize {
        cur.ensure(self.runs.len());
        let mut total = 0usize;
        for (ri, run) in self.runs.iter().enumerate() {
            if t <= run.min_val {
                continue;
            }
            let end = run.start + run.tree.len();
            if t > run.max_val {
                for (a, b) in ranges.iter() {
                    let (la, lb) = (a.max(run.start), b.min(end));
                    total += lb.saturating_sub(la);
                }
                continue;
            }
            let mut clamped = RangeSet::empty();
            for (a, b) in ranges.iter() {
                let (la, lb) = (a.max(run.start), b.min(end));
                if la < lb {
                    clamped.push(la - run.start, lb - run.start);
                }
            }
            if !clamped.is_empty() {
                total += run.tree.count_below_multi_with_cursor(&clamped, t, &mut cur.cursors[ri]);
            }
        }
        total
    }

    /// Cursor-seeded [`Self::count_leq`].
    pub fn count_leq_with(&self, ranges: &RangeSet, t: u64, cur: &mut ForestCursor) -> usize {
        debug_assert!(t < u64::MAX);
        self.count_below_with(ranges, t + 1, cur)
    }

    /// The `j`-th smallest value (0-based) among the positions in `ranges`,
    /// or `None` when fewer than `j + 1` positions exist. Cross-run rank
    /// search: bisect the value domain for the smallest `v` with
    /// `count_leq(ranges, v) > j`; per-run `count_below` probes decompose
    /// the rank without ever materializing a merged run.
    pub fn select(&self, ranges: &RangeSet, j: usize) -> Option<u64> {
        self.select_from(ranges, j, None)
    }

    /// [`Self::select`] seeded with a guess (typically the previous probe's
    /// answer when frames slide by one row). A correct guess costs two
    /// `count_below` probes; a miss still halves the bisection domain.
    pub fn select_from(&self, ranges: &RangeSet, j: usize, hint: Option<u64>) -> Option<u64> {
        if j >= self.positions(ranges) {
            return None;
        }
        // Invariant: the answer lies in [lo, hi]. Starting from the
        // observed per-run value bounds (rather than the full `u64` domain)
        // makes the bisection O(log of the live value spread) — for typical
        // integer domains a handful of iterations instead of 64.
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for run in &self.runs {
            lo = lo.min(run.min_val);
            hi = hi.max(run.max_val);
        }
        if let Some(h) = hint.filter(|&h| lo <= h && h <= hi) {
            let below = self.count_below(ranges, h);
            if below > j {
                // At least j + 1 values sit strictly below the hint.
                hi = h - 1;
            } else if self.count_below(ranges, h + 1) > j {
                return Some(h);
            } else {
                lo = h + 1;
            }
        }
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.count_below(ranges, mid + 1) > j {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(lo)
    }
}

/// Per-run probe cursors for batched monotone probes over a forest. Resized
/// (and reset) automatically whenever the run structure changed since the
/// cursor was last used.
#[derive(Default)]
pub struct ForestCursor {
    cursors: Vec<ProbeCursor>,
}

impl ForestCursor {
    /// A cursor bundle with no per-run state yet.
    pub fn new() -> Self {
        ForestCursor::default()
    }

    fn ensure(&mut self, runs: usize) {
        if self.cursors.len() != runs {
            self.cursors = (0..runs).map(|_| ProbeCursor::new()).collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_count_below(vals: &[u64], ranges: &RangeSet, t: u64) -> usize {
        ranges
            .iter()
            .flat_map(|(a, b)| a..b.min(vals.len()))
            .filter(|&p| p < vals.len() && vals[p] < t)
            .count()
    }

    fn brute_select(vals: &[u64], ranges: &RangeSet, j: usize) -> Option<u64> {
        let mut xs: Vec<u64> = ranges
            .iter()
            .flat_map(|(a, b)| a..b.min(vals.len()))
            .filter(|&p| p < vals.len())
            .map(|p| vals[p])
            .collect();
        xs.sort_unstable();
        xs.get(j).copied()
    }

    #[test]
    fn binary_counter_run_lengths() {
        let mut f = MstForest::new(MstParams::new(2, 2).serial());
        for i in 0..100u64 {
            f.append(&[i]);
            // Run lengths strictly decrease front to back.
            let lens: Vec<usize> = f.runs.iter().map(|r| r.tree.len()).collect();
            assert!(lens.windows(2).all(|w| w[0] > w[1]), "{lens:?}");
            assert_eq!(lens.iter().sum::<usize>(), (i + 1) as usize);
            assert!(f.num_runs() <= 64 - (i + 1).leading_zeros() as usize + 1);
        }
        // Amortization: ~n log n elements rebuilt in total for 1-by-1 appends.
        assert!(f.rebuilt_elements() <= 100 * 8);
    }

    #[test]
    fn forest_matches_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x1EAF);
        for case in 0..40 {
            let params = if case % 2 == 0 {
                MstParams::new(2, 1).serial()
            } else {
                MstParams::new(4, 2).serial()
            };
            let mut f = MstForest::new(params);
            let mut vals: Vec<u64> = Vec::new();
            let batches = rng.gen_range(1..6);
            for _ in 0..batches {
                let b: Vec<u64> =
                    (0..rng.gen_range(0..12)).map(|_| rng.gen_range(0..30u64)).collect();
                f.append(&b);
                vals.extend_from_slice(&b);
            }
            let n = vals.len();
            let mut ranges = RangeSet::empty();
            let mut lo = 0usize;
            while lo < n && ranges.len() < 3 {
                let a = lo + rng.gen_range(0..3usize);
                let b = a + rng.gen_range(0..6usize);
                if a < b && a < n {
                    ranges.push(a, b.min(n));
                }
                lo = b + 1;
            }
            let mut cur = ForestCursor::new();
            for t in 0..31u64 {
                assert_eq!(f.count_below(&ranges, t), brute_count_below(&vals, &ranges, t));
                assert_eq!(f.count_below_with(&ranges, t, &mut cur), f.count_below(&ranges, t));
                assert_eq!(f.count_leq(&ranges, t), brute_count_below(&vals, &ranges, t + 1));
            }
            for j in 0..f.positions(&ranges) + 2 {
                assert_eq!(f.select(&ranges, j), brute_select(&vals, &ranges, j), "j={j}");
            }
        }
    }

    #[test]
    fn empty_and_single_run_edges() {
        let mut f = MstForest::new(MstParams::default().serial());
        assert!(f.is_empty());
        assert_eq!(f.count_below(&RangeSet::single(0, 10), 5), 0);
        assert_eq!(f.select(&RangeSet::single(0, 10), 0), None);
        f.append(&[]);
        assert!(f.is_empty());
        f.append(&[7]);
        assert_eq!(f.len(), 1);
        assert_eq!(f.num_runs(), 1);
        assert_eq!(f.select(&RangeSet::single(0, 1), 0), Some(7));
        assert_eq!(f.count_leq(&RangeSet::single(0, 1), 7), 1);
        assert_eq!(f.count_below(&RangeSet::single(0, 1), 7), 0);
    }

    #[test]
    fn extreme_values_roundtrip() {
        let mut f = MstForest::new(MstParams::default().serial());
        f.append(&[0, u64::MAX - 1, 1 << 63]);
        let all = RangeSet::single(0, 3);
        assert_eq!(f.select(&all, 0), Some(0));
        assert_eq!(f.select(&all, 1), Some(1 << 63));
        assert_eq!(f.select(&all, 2), Some(u64::MAX - 1));
        assert_eq!(f.count_leq(&all, u64::MAX - 1), 3);
    }
}
