//! Tuning parameters of a merge sort tree (§5.1, §6.6).

/// Build parameters of a [`crate::MergeSortTree`].
///
/// * `fanout` (the paper's *f*): each level-ℓ run is the merge of `fanout`
///   level-(ℓ−1) runs. A larger fanout shrinks the tree height — and thereby
///   total memory — exponentially, at the cost of more binary searches per
///   level during queries (bounded by `2·fanout`).
/// * `sampling` (the paper's *k*): cascading pointer bundles are stored for
///   every `sampling`-th element of every run. A larger `k` reduces pointer
///   memory linearly but widens each cascaded refinement search to at most
///   `k + 1` candidates.
///
/// The paper's empirical sweep (Figure 13) selects `f = k = 32` as the default
/// because it is within a few percent of the fastest configuration while using
/// far less memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MstParams {
    /// Merge fanout *f* (≥ 2).
    pub fanout: usize,
    /// Cascading pointer sampling stride *k* (≥ 1).
    pub sampling: usize,
    /// Build levels in parallel with rayon. Queries are unaffected.
    pub parallel: bool,
    /// Use fractional cascading pointers during queries. Disabling re-runs a
    /// full binary search on every tree level — the O((log n)²) query of
    /// Figure 2 instead of Figure 3's O(log n) — and exists for the ablation
    /// benchmark; production use keeps it on.
    pub cascading: bool,
    /// Issue software prefetches (safe cache-warming reads, see
    /// [`crate::arena`]) for the next level's cascaded landing run during
    /// probe descents. Pure reads: query results are bit-identical either
    /// way. Requires `cascading`; a no-op in the ablation mode.
    pub prefetch: bool,
}

impl Default for MstParams {
    fn default() -> Self {
        MstParams { fanout: 32, sampling: 32, parallel: true, cascading: true, prefetch: true }
    }
}

impl MstParams {
    /// Parameters with the given fanout and sampling stride (parallel build).
    pub fn new(fanout: usize, sampling: usize) -> Self {
        let p = MstParams { fanout, sampling, ..Self::default() };
        p.validate();
        p
    }

    /// Disables parallel construction (used by the single-threaded parameter
    /// sweep of Figure 13).
    pub fn serial(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Disables fractional cascading during queries (ablation only).
    pub fn no_cascading(mut self) -> Self {
        self.cascading = false;
        self
    }

    /// Disables probe-descent software prefetching (ablation / measurement).
    pub fn no_prefetch(mut self) -> Self {
        self.prefetch = false;
        self
    }

    /// Panics if the parameters are out of their documented domains.
    pub fn validate(&self) {
        assert!(self.fanout >= 2, "merge sort tree fanout must be at least 2");
        assert!(self.sampling >= 1, "cascading pointer sampling stride must be at least 1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let p = MstParams::default();
        assert_eq!(p.fanout, 32);
        assert_eq!(p.sampling, 32);
        assert!(p.parallel);
        assert!(p.cascading);
        assert!(p.prefetch);
    }

    #[test]
    fn no_prefetch_toggles_prefetch_only() {
        let p = MstParams::new(8, 4).no_prefetch();
        assert!(!p.prefetch);
        assert!(p.cascading);
        assert!(p.parallel);
    }

    #[test]
    fn serial_toggles_parallel_only() {
        let p = MstParams::new(8, 4).serial();
        assert_eq!(p.fanout, 8);
        assert_eq!(p.sampling, 4);
        assert!(!p.parallel);
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn rejects_fanout_one() {
        MstParams::new(1, 32);
    }

    #[test]
    #[should_panic(expected = "sampling")]
    fn rejects_sampling_zero() {
        MstParams::new(2, 0);
    }
}
