//! Flat storage arena for merge sort trees.
//!
//! A merge sort tree is read by tight probe loops that descend one level per
//! step. Storing every level (and every level's cascading-pointer slab) in
//! its own heap allocation makes each descent hop between unrelated
//! allocations; storing the whole tree in **one** contiguous buffer with a
//! small per-level offset table keeps the descent inside a single, predictably
//! laid out region — the "sequential, array-based levels" the paper credits
//! for the structure's practical speed (§5.1).
//!
//! The layout (see DESIGN.md "Memory layout") is struct-of-arrays:
//!
//! ```text
//! arena: [ level-0 keys | level-1 keys | … | level-h keys ‖ level-1 ptrs | … ]
//!          └────────────── keys region ─────────────────┘ └─ pointer slabs ─┘
//! ```
//!
//! Every level holds exactly `n` keys, so the keys region needs no offset
//! table at all (`level * n`); pointer slabs carry explicit [`Span`]s. Run
//! boundaries inside a level are `(offset, len)` arithmetic on `run_len`
//! rather than owned vectors.
//!
//! This module also hosts the safe software-prefetch helper used by the probe
//! descent. The crate forbids `unsafe`, so instead of a prefetch intrinsic we
//! issue a plain *cache-warming read*: the load has no data dependency on the
//! searches that follow, so out-of-order execution overlaps the miss with
//! real work. The descent batches these reads for all of a partial node's
//! children up front ([`prefetch_read`] returns the value, the caller folds
//! it into a sink and [`std::hint::black_box`]es the sink once per query), so
//! the scattered child-window misses are all in flight together rather than
//! each hiding behind the previous child's binary search.

use crate::index::TreeIndex;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// A contiguous `(offset, len)` window into an arena buffer.
///
/// Spans replace owned `Vec`s for run and slab boundaries: they are `Copy`,
/// 16 bytes, and resolve against the arena with a single slice operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Start offset into the arena buffer.
    pub off: usize,
    /// Number of elements.
    pub len: usize,
}

impl Span {
    /// A span covering `[off, off + len)`.
    #[inline]
    pub fn new(off: usize, len: usize) -> Self {
        Span { off, len }
    }

    /// Resolves this span against its arena buffer.
    #[inline]
    pub fn slice<'a, T>(&self, buf: &'a [T]) -> &'a [T] {
        &buf[self.off..self.off + self.len]
    }

    /// Resolves this span mutably.
    #[inline]
    pub fn slice_mut<'a, T>(&self, buf: &'a mut [T]) -> &'a mut [T] {
        &mut buf[self.off..self.off + self.len]
    }

    /// Offset one past the last element.
    #[inline]
    pub fn end(&self) -> usize {
        self.off + self.len
    }
}

/// Software prefetch via a safe cache-warming read.
///
/// Touches `buf[idx]` (if in bounds) and returns the value so the caller can
/// fold it into a sink that is [`std::hint::black_box`]ed *once per query* —
/// a per-read `black_box` would insert a compiler memory barrier into the
/// descent's hot loop, which costs more than the warmed line saves. Out of
/// bounds indices are ignored — prefetching is advisory, never a correctness
/// concern. Results of any computation are unaffected: this is a pure read.
///
/// ```
/// let data = vec![3u32, 1, 4, 1, 5];
/// assert_eq!(holistic_core::arena::prefetch_read(&data, 2), 4); // warms data[2]
/// assert_eq!(holistic_core::arena::prefetch_read(&data, 99), 0); // oob: no-op
/// ```
#[inline(always)]
#[must_use = "fold the warmed value into a black_box'd sink or the read is elided"]
pub fn prefetch_read<I: crate::index::TreeIndex>(buf: &[I], idx: usize) -> usize {
    match buf.get(idx) {
        Some(&v) => v.to_usize(),
        None => 0,
    }
}

/// Elements moved per I/O call when serializing a slab (64 Ki elements:
/// 256 KiB–512 KiB buffers, far above the syscall-overhead knee, far below
/// any budget worth spilling for).
const SPILL_CHUNK: usize = 1 << 16;

/// Process-wide sequence number making concurrent spill-file names unique.
static SPILL_FILE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Creates an anonymous spill file in the system temp directory: the path is
/// unlinked immediately after creation, so the file lives exactly as long as
/// the returned descriptor and can never be leaked by a crash.
fn anon_spill_file() -> io::Result<File> {
    let dir = std::env::temp_dir();
    for _ in 0..16 {
        let name = format!(
            "holistic-spill-{}-{}",
            std::process::id(),
            SPILL_FILE_SEQ.fetch_add(1, Relaxed)
        );
        let path = dir.join(name);
        match std::fs::OpenOptions::new().read(true).write(true).create_new(true).open(&path) {
            Ok(f) => {
                // Unlink the name; the open descriptor keeps the data alive.
                // A failed removal only leaves a stale temp-dir entry behind.
                let _ = std::fs::remove_file(&path);
                return Ok(f);
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
    Err(io::Error::new(io::ErrorKind::AlreadyExists, "could not create a unique spill file"))
}

/// A file-backed parking spot for one arena slab.
///
/// An arena (a merge sort tree's `[keys ‖ pointer slabs]` buffer, see the
/// module docs) can be *parked* — serialized into an anonymous temp-dir file
/// and dropped from memory — and later *re-faulted* segment by segment. The
/// segment table is the slab's level structure (each key level and each
/// pointer slab is one segment), so a re-fault streams the file in
/// level-sized sequential reads and an out-of-core build can write each
/// level as soon as it is merged, without ever materializing the whole slab.
///
/// Slab contents are immutable once fully written, so re-parking an already
/// spilled slab is free: the file still holds the bytes and only the
/// in-memory copy is dropped.
///
/// Elements are serialized as little-endian fixed-width integers of
/// `size_of::<I>()` bytes through the safe [`TreeIndex`] conversions — no
/// `unsafe`, no platform-dependent layout.
#[derive(Debug)]
pub struct SpillableArena<I: TreeIndex> {
    /// Cumulative element boundaries: segment `s` spans
    /// `segments[s]..segments[s + 1]` of the slab.
    segments: Vec<usize>,
    file: Option<File>,
    /// True once every segment is on disk (parking is then free).
    written: bool,
    parks: u64,
    faults: u64,
    bytes_written: u64,
    bytes_read: u64,
    _elem: PhantomData<I>,
}

impl<I: TreeIndex> SpillableArena<I> {
    /// A parking spot for a slab with the given cumulative segment
    /// boundaries (`segments[0]` must be 0; boundaries must be
    /// non-decreasing). No file is created until something is written.
    pub fn new(segments: Vec<usize>) -> Self {
        assert!(segments.first() == Some(&0), "segment table must start at 0");
        assert!(segments.windows(2).all(|w| w[0] <= w[1]), "segment boundaries must ascend");
        SpillableArena {
            segments,
            file: None,
            written: false,
            parks: 0,
            faults: 0,
            bytes_written: 0,
            bytes_read: 0,
            _elem: PhantomData,
        }
    }

    /// Total slab elements covered by the segment table.
    pub fn total_elements(&self) -> usize {
        *self.segments.last().expect("segment table is non-empty")
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len() - 1
    }

    /// On-disk size of the fully written slab, in bytes.
    pub fn spill_bytes(&self) -> usize {
        self.total_elements() * std::mem::size_of::<I>()
    }

    /// Times the slab was parked (re-parks of an already written slab
    /// included — those are free).
    pub fn parks(&self) -> u64 {
        self.parks
    }

    /// Times the whole slab was re-faulted from disk.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Total bytes serialized to the spill file.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Total bytes deserialized from the spill file.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    fn file(&mut self) -> io::Result<&mut File> {
        if self.file.is_none() {
            self.file = Some(anon_spill_file()?);
        }
        Ok(self.file.as_mut().expect("spill file just created"))
    }

    /// Serializes `data` as segment `seg` of the slab (out-of-core builds
    /// write each level the moment it is merged). `data.len()` must equal
    /// the segment's length. Call [`SpillableArena::mark_written`] once
    /// every segment has been written.
    pub fn write_segment(&mut self, seg: usize, data: &[I]) -> io::Result<()> {
        let (start, end) = (self.segments[seg], self.segments[seg + 1]);
        assert_eq!(data.len(), end - start, "segment {seg} length mismatch");
        if data.is_empty() {
            return Ok(());
        }
        let w = std::mem::size_of::<I>();
        let file = self.file()?;
        file.seek(SeekFrom::Start((start * w) as u64))?;
        let mut buf: Vec<u8> = Vec::with_capacity(SPILL_CHUNK.min(data.len()) * w);
        for chunk in data.chunks(SPILL_CHUNK) {
            buf.clear();
            for &e in chunk {
                let le = (e.to_usize() as u64).to_le_bytes();
                buf.extend_from_slice(&le[..w]);
            }
            file.write_all(&buf)?;
        }
        self.bytes_written += std::mem::size_of_val(data) as u64;
        Ok(())
    }

    /// Declares the on-disk image complete (every segment written). Parking
    /// is free from here on: the in-memory copy can simply be dropped.
    pub fn mark_written(&mut self) {
        self.written = true;
    }

    /// Parks the slab: ensures its bytes are on disk (a no-op when already
    /// fully written) so the caller can drop the in-memory copy. Returns the
    /// spilled byte count.
    pub fn park(&mut self, data: &[I]) -> io::Result<usize> {
        assert_eq!(data.len(), self.total_elements(), "parked slab has the wrong length");
        if !self.written {
            for seg in 0..self.num_segments() {
                let (start, end) = (self.segments[seg], self.segments[seg + 1]);
                self.write_segment(seg, &data[start..end])?;
            }
            self.written = true;
        }
        self.parks += 1;
        Ok(self.spill_bytes())
    }

    /// Re-faults one segment from disk into a fresh vector.
    pub fn fault_segment(&mut self, seg: usize) -> io::Result<Vec<I>> {
        assert!(self.written, "fault of a slab that was never parked");
        let (start, end) = (self.segments[seg], self.segments[seg + 1]);
        let mut out: Vec<I> = Vec::with_capacity(end - start);
        if start == end {
            return Ok(out);
        }
        let w = std::mem::size_of::<I>();
        let file = self.file()?;
        file.seek(SeekFrom::Start((start * w) as u64))?;
        let mut buf = vec![0u8; SPILL_CHUNK.min(end - start) * w];
        let mut remaining = end - start;
        while remaining > 0 {
            let take = SPILL_CHUNK.min(remaining);
            let bytes = &mut buf[..take * w];
            file.read_exact(bytes)?;
            for le in bytes.chunks_exact(w) {
                let mut full = [0u8; 8];
                full[..w].copy_from_slice(le);
                out.push(I::from_usize(u64::from_le_bytes(full) as usize));
            }
            remaining -= take;
        }
        self.bytes_read += ((end - start) * w) as u64;
        Ok(out)
    }

    /// Re-faults the whole slab, segment by segment in layout order.
    pub fn fault(&mut self) -> io::Result<Vec<I>> {
        let mut out: Vec<I> = Vec::with_capacity(self.total_elements());
        for seg in 0..self.num_segments() {
            out.extend_from_slice(&self.fault_segment(seg)?);
        }
        self.faults += 1;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_resolves_windows() {
        let buf: Vec<u32> = (0..10).collect();
        let s = Span::new(3, 4);
        assert_eq!(s.slice(&buf), &[3, 4, 5, 6]);
        assert_eq!(s.end(), 7);
        let mut buf = buf;
        s.slice_mut(&mut buf)[0] = 99;
        assert_eq!(buf[3], 99);
    }

    #[test]
    fn empty_span_is_fine() {
        let buf: Vec<u32> = vec![1, 2];
        let s = Span::new(2, 0);
        assert_eq!(s.slice(&buf), &[] as &[u32]);
    }

    #[test]
    fn prefetch_never_panics() {
        let buf: Vec<u64> = vec![7; 8];
        assert_eq!(prefetch_read(&buf, 0), 7);
        assert_eq!(prefetch_read(&buf, 7), 7);
        assert_eq!(prefetch_read(&buf, 8), 0); // out of bounds: ignored
        assert_eq!(prefetch_read::<u64>(&[], 0), 0);
    }

    #[test]
    fn park_fault_roundtrip_is_bit_identical() {
        let data: Vec<u32> = (0..100_000u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let mut arena = SpillableArena::<u32>::new(vec![0, 10, 50_000, 100_000]);
        let spilled = arena.park(&data).unwrap();
        assert_eq!(spilled, data.len() * 4);
        assert_eq!(arena.fault().unwrap(), data);
        assert_eq!(arena.faults(), 1);
        // Re-park is free: the on-disk image is already complete.
        let bw = arena.bytes_written();
        arena.park(&data).unwrap();
        assert_eq!(arena.bytes_written(), bw);
        assert_eq!(arena.parks(), 2);
        assert_eq!(arena.fault().unwrap(), data);
    }

    #[test]
    fn u64_elements_survive_the_roundtrip() {
        let data: Vec<u64> = (0..3000u64).map(|i| i << 20 | i).collect();
        let mut arena = SpillableArena::<u64>::new(vec![0, 3000]);
        arena.park(&data).unwrap();
        assert_eq!(arena.fault().unwrap(), data);
    }

    #[test]
    fn segment_writes_compose_into_a_full_slab() {
        let data: Vec<u32> = (0..1000).rev().collect();
        let mut arena = SpillableArena::<u32>::new(vec![0, 400, 400, 1000]);
        arena.write_segment(0, &data[..400]).unwrap();
        arena.write_segment(1, &[]).unwrap();
        arena.write_segment(2, &data[400..]).unwrap();
        arena.mark_written();
        assert_eq!(arena.fault_segment(1).unwrap(), Vec::<u32>::new());
        assert_eq!(arena.fault().unwrap(), data);
    }

    #[test]
    fn empty_slab_never_touches_disk() {
        let mut arena = SpillableArena::<u32>::new(vec![0]);
        assert_eq!(arena.park(&[]).unwrap(), 0);
        assert_eq!(arena.fault().unwrap(), Vec::<u32>::new());
        assert_eq!(arena.bytes_written(), 0);
    }
}
