//! Flat storage arena for merge sort trees.
//!
//! A merge sort tree is read by tight probe loops that descend one level per
//! step. Storing every level (and every level's cascading-pointer slab) in
//! its own heap allocation makes each descent hop between unrelated
//! allocations; storing the whole tree in **one** contiguous buffer with a
//! small per-level offset table keeps the descent inside a single, predictably
//! laid out region — the "sequential, array-based levels" the paper credits
//! for the structure's practical speed (§5.1).
//!
//! The layout (see DESIGN.md "Memory layout") is struct-of-arrays:
//!
//! ```text
//! arena: [ level-0 keys | level-1 keys | … | level-h keys ‖ level-1 ptrs | … ]
//!          └────────────── keys region ─────────────────┘ └─ pointer slabs ─┘
//! ```
//!
//! Every level holds exactly `n` keys, so the keys region needs no offset
//! table at all (`level * n`); pointer slabs carry explicit [`Span`]s. Run
//! boundaries inside a level are `(offset, len)` arithmetic on `run_len`
//! rather than owned vectors.
//!
//! This module also hosts the safe software-prefetch helper used by the probe
//! descent. The crate forbids `unsafe`, so instead of a prefetch intrinsic we
//! issue a plain *cache-warming read*: the load has no data dependency on the
//! searches that follow, so out-of-order execution overlaps the miss with
//! real work. The descent batches these reads for all of a partial node's
//! children up front ([`prefetch_read`] returns the value, the caller folds
//! it into a sink and [`std::hint::black_box`]es the sink once per query), so
//! the scattered child-window misses are all in flight together rather than
//! each hiding behind the previous child's binary search.

/// A contiguous `(offset, len)` window into an arena buffer.
///
/// Spans replace owned `Vec`s for run and slab boundaries: they are `Copy`,
/// 16 bytes, and resolve against the arena with a single slice operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Start offset into the arena buffer.
    pub off: usize,
    /// Number of elements.
    pub len: usize,
}

impl Span {
    /// A span covering `[off, off + len)`.
    #[inline]
    pub fn new(off: usize, len: usize) -> Self {
        Span { off, len }
    }

    /// Resolves this span against its arena buffer.
    #[inline]
    pub fn slice<'a, T>(&self, buf: &'a [T]) -> &'a [T] {
        &buf[self.off..self.off + self.len]
    }

    /// Resolves this span mutably.
    #[inline]
    pub fn slice_mut<'a, T>(&self, buf: &'a mut [T]) -> &'a mut [T] {
        &mut buf[self.off..self.off + self.len]
    }

    /// Offset one past the last element.
    #[inline]
    pub fn end(&self) -> usize {
        self.off + self.len
    }
}

/// Software prefetch via a safe cache-warming read.
///
/// Touches `buf[idx]` (if in bounds) and returns the value so the caller can
/// fold it into a sink that is [`std::hint::black_box`]ed *once per query* —
/// a per-read `black_box` would insert a compiler memory barrier into the
/// descent's hot loop, which costs more than the warmed line saves. Out of
/// bounds indices are ignored — prefetching is advisory, never a correctness
/// concern. Results of any computation are unaffected: this is a pure read.
///
/// ```
/// let data = vec![3u32, 1, 4, 1, 5];
/// assert_eq!(holistic_core::arena::prefetch_read(&data, 2), 4); // warms data[2]
/// assert_eq!(holistic_core::arena::prefetch_read(&data, 99), 0); // oob: no-op
/// ```
#[inline(always)]
#[must_use = "fold the warmed value into a black_box'd sink or the read is elided"]
pub fn prefetch_read<I: crate::index::TreeIndex>(buf: &[I], idx: usize) -> usize {
    match buf.get(idx) {
        Some(&v) => v.to_usize(),
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_resolves_windows() {
        let buf: Vec<u32> = (0..10).collect();
        let s = Span::new(3, 4);
        assert_eq!(s.slice(&buf), &[3, 4, 5, 6]);
        assert_eq!(s.end(), 7);
        let mut buf = buf;
        s.slice_mut(&mut buf)[0] = 99;
        assert_eq!(buf[3], 99);
    }

    #[test]
    fn empty_span_is_fine() {
        let buf: Vec<u32> = vec![1, 2];
        let s = Span::new(2, 0);
        assert_eq!(s.slice(&buf), &[] as &[u32]);
    }

    #[test]
    fn prefetch_never_panics() {
        let buf: Vec<u64> = vec![7; 8];
        assert_eq!(prefetch_read(&buf, 0), 7);
        assert_eq!(prefetch_read(&buf, 7), 7);
        assert_eq!(prefetch_read(&buf, 8), 0); // out of bounds: ignored
        assert_eq!(prefetch_read::<u64>(&[], 0), 0);
    }
}
