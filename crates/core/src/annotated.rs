//! Annotated merge sort trees for arbitrary framed DISTINCT aggregates (§4.3).
//!
//! Each tree element carries, besides its merge key (the shifted previous-
//! occurrence index), the aggregation payload of its row. After every merge
//! the per-run payloads are folded into *prefix* aggregation states (Figure 5):
//! `prefix[i]` combines the payloads of run elements `0..=i`. A framed
//! distinct aggregate then (1) covers the frame with sorted runs, (2) locates
//! the frame start inside each run, and (3) combines the corresponding prefix
//! states — O(log n) per output row.

use crate::aggregate::DistinctAggregate;
use crate::cursor::ProbeCursor;
use crate::index::TreeIndex;
use crate::mst::{fill_levels, level_geometry, MergeSortTree};
use crate::params::MstParams;
use crate::range_set::RangeSet;
use rayon::prelude::*;

/// A merge sort tree whose runs carry prefix aggregation states.
///
/// Storage follows the same arena discipline as the plain tree (see
/// [`crate::arena`]): keys and cascading pointers share one allocation, and
/// all levels' prefix states live in a single struct-of-arrays slab indexed
/// `level · n + position` — probe lookups resolve against two flat buffers,
/// never per-level vectors.
pub struct AnnotatedMst<I: TreeIndex, A: DistinctAggregate> {
    tree: MergeSortTree<I>,
    /// All levels' prefix states, level-major: entry `level · n + i` combines
    /// the payloads of the elements of `i`'s run up to and including `i`.
    prefix: Vec<A::State>,
}

impl<I: TreeIndex, A: DistinctAggregate> AnnotatedMst<I, A> {
    /// Builds an annotated tree over the merge keys `values` (shifted
    /// prevIdcs) and per-row aggregation `payloads`.
    ///
    /// The merge runs over `(key, payload)` pairs in a scratch arena; keys
    /// are then extracted into the tree's final single allocation and the
    /// payloads folded into the prefix slab (Figure 5), so the scratch pairs
    /// never survive the build.
    pub fn build(values: &[I], payloads: &[A::Payload], params: MstParams) -> Self {
        assert_eq!(values.len(), payloads.len());
        let n = values.len();
        let meta = level_geometry(n, params);
        let h = meta.len();
        let ptrs_len = meta.last().unwrap().ptrs.end();

        // Scratch pair arena for the merge; same geometry as the key arena.
        let mut pairs: Vec<(I, A::Payload)> = vec![Default::default(); h * n];
        for (slot, (&v, &p)) in pairs.iter_mut().zip(values.iter().zip(payloads)) {
            *slot = (v, p);
        }
        let mut ptrs = vec![I::ZERO; ptrs_len];
        fill_levels::<I, (I, A::Payload)>(n, params, &meta, &mut pairs, &mut ptrs);

        // Final key arena: extracted keys followed by the pointer slabs.
        let mut arena = vec![I::ZERO; h * n + ptrs_len];
        let (keys, ptr_region) = arena.split_at_mut(h * n);
        for (k, &(key, _)) in keys.iter_mut().zip(pairs.iter()) {
            *k = key;
        }
        ptr_region.copy_from_slice(&ptrs);

        // Prefix-fold every run of every level into one level-major slab.
        // Runs are independent; fold them in parallel via chunked iteration.
        let mut prefix: Vec<A::State> = vec![A::identity(); h * n];
        for (lvl, m) in meta.iter().enumerate() {
            let dst = &mut prefix[lvl * n..(lvl + 1) * n];
            let src = &pairs[lvl * n..(lvl + 1) * n];
            let fold = |out: &mut [A::State], data: &[(I, A::Payload)]| {
                let mut acc = A::identity();
                for (o, &(_, p)) in out.iter_mut().zip(data.iter()) {
                    acc = A::combine(acc, A::lift(p));
                    *o = acc;
                }
            };
            if params.parallel && n >= 4096 {
                dst.par_chunks_mut(m.run_len).zip(src.par_chunks(m.run_len)).for_each(
                    |(out, data)| {
                        fold(out, data);
                    },
                );
            } else {
                for (out, data) in dst.chunks_mut(m.run_len).zip(src.chunks(m.run_len)) {
                    fold(out, data);
                }
            }
        }
        AnnotatedMst { tree: MergeSortTree::from_parts(arena, meta, params, n), prefix }
    }

    /// The prefix state at `(level, absolute position)`.
    #[inline]
    fn pf(&self, level: usize, i: usize) -> A::State {
        self.prefix[level * self.tree.len() + i]
    }

    /// Size in bytes of the prefix-state slab (for artifact accounting; the
    /// key/pointer arena is reported by [`MergeSortTree::arena_bytes`]).
    pub fn prefix_bytes(&self) -> usize {
        self.prefix.len() * std::mem::size_of::<A::State>()
    }

    /// Total footprint in bytes: the key/pointer arena plus the prefix slab.
    pub fn bytes(&self) -> usize {
        self.tree.arena_bytes() + self.prefix_bytes()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Combines the payloads of all elements at positions `[a, b)` whose key
    /// is smaller than `t`, returning the state and the number of combined
    /// rows. For shifted prevIdcs keys with `t = a + 1` this is exactly
    /// "aggregate each distinct value of the frame once" (§4.3).
    pub fn aggregate_below(&self, a: usize, b: usize, t: I) -> (A::State, usize) {
        let mut state = A::identity();
        let mut count = 0usize;
        self.tree.decompose_below(a, b, t, |level, run_start, pos| {
            if pos > 0 {
                state = A::combine(state, self.pf(level, run_start + pos - 1));
                count += pos;
            }
        });
        (state, count)
    }

    /// [`Self::aggregate_below`] over a frame with exclusion holes.
    ///
    /// Note: for a multi-piece frame, the threshold for "first occurrence"
    /// must still be the start of the *whole* frame region handled by the
    /// caller per piece — see `holistic-window`'s distinct evaluation, which
    /// passes piece-specific thresholds and deduplicates across pieces.
    pub fn aggregate_below_multi(&self, ranges: &RangeSet, t: I) -> (A::State, usize) {
        let mut state = A::identity();
        let mut count = 0usize;
        for (a, b) in ranges.iter() {
            let (s, c) = self.aggregate_below(a, b, t);
            state = A::combine(state, s);
            count += c;
        }
        (state, count)
    }

    /// Cursor-seeded [`Self::aggregate_below`]. The decomposition's visit
    /// order is preserved, so the combine order — and therefore the result,
    /// even for floating-point states — is bit-identical to the stateless
    /// path.
    pub fn aggregate_below_with_cursor(
        &self,
        a: usize,
        b: usize,
        t: I,
        cur: &mut ProbeCursor,
    ) -> (A::State, usize) {
        let mut state = A::identity();
        let mut count = 0usize;
        self.tree.decompose_below_cursor(a, b, t, 0, cur, |level, run_start, pos| {
            if pos > 0 {
                state = A::combine(state, self.pf(level, run_start + pos - 1));
                count += pos;
            }
        });
        (state, count)
    }

    /// Cursor-seeded [`Self::aggregate_below_multi`]; each piece keeps its
    /// own memo slot.
    pub fn aggregate_below_multi_with_cursor(
        &self,
        ranges: &RangeSet,
        t: I,
        cur: &mut ProbeCursor,
    ) -> (A::State, usize) {
        let mut state = A::identity();
        let mut count = 0usize;
        for (ri, (a, b)) in ranges.iter().enumerate() {
            let mut piece = A::identity();
            self.tree.decompose_below_cursor(a, b, t, ri, cur, |level, run_start, pos| {
                if pos > 0 {
                    piece = A::combine(piece, self.pf(level, run_start + pos - 1));
                    count += pos;
                }
            });
            state = A::combine(state, piece);
        }
        (state, count)
    }

    /// The underlying plain tree (for count queries on the same keys).
    pub fn tree(&self) -> &MergeSortTree<I> {
        &self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AvgF64, CountAgg, MaxI64, MinI64, SumI64};
    use crate::prev_idcs::prev_idcs_by_key;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Reference: distinct sum of values[a..b].
    fn brute_distinct_sum(values: &[i64], a: usize, b: usize) -> i128 {
        let mut seen = std::collections::HashSet::new();
        values[a..b].iter().filter(|v| seen.insert(**v)).map(|&v| v as i128).sum()
    }

    fn shifted_prev(values: &[i64]) -> Vec<u32> {
        prev_idcs_by_key(values, false).iter().map(|&p| p as u32).collect()
    }

    #[test]
    fn figure5_sum_distinct() {
        // Values with duplicates; frame = whole input.
        let values: Vec<i64> = vec![10, 20, 20, 10, 30, 20];
        let prev = shifted_prev(&values);
        let t = AnnotatedMst::<u32, SumI64>::build(&prev, &values, MstParams::new(2, 1));
        let (s, cnt) = t.aggregate_below(0, 6, 1);
        assert_eq!(SumI64::finish(s), 60);
        assert_eq!(cnt, 3);
        // Frame [2, 6): distinct values 20, 10, 30.
        let (s, _) = t.aggregate_below(2, 6, 3);
        assert_eq!(SumI64::finish(s), 60);
        // Frame [3, 5): distinct 10, 30.
        let (s, _) = t.aggregate_below(3, 5, 4);
        assert_eq!(SumI64::finish(s), 40);
    }

    #[test]
    fn random_sum_distinct_matches_brute() {
        let mut rng = StdRng::seed_from_u64(99);
        for &(f, k) in &[(2, 1), (4, 8), (32, 32)] {
            for _ in 0..6 {
                let n = rng.gen_range(0..300);
                let values: Vec<i64> = (0..n).map(|_| rng.gen_range(-20..20)).collect();
                let prev = shifted_prev(&values);
                let tree = AnnotatedMst::<u32, SumI64>::build(&prev, &values, MstParams::new(f, k));
                for _ in 0..30 {
                    let a = rng.gen_range(0..=n);
                    let b = rng.gen_range(a..=n);
                    let (s, _) = tree.aggregate_below(a, b, a as u32 + 1);
                    assert_eq!(
                        SumI64::finish(s),
                        brute_distinct_sum(&values, a, b),
                        "n={n} f={f} k={k} a={a} b={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn count_agg_matches_plain_count_below() {
        let mut rng = StdRng::seed_from_u64(100);
        let n = 200;
        let values: Vec<i64> = (0..n).map(|_| rng.gen_range(0..30)).collect();
        let prev = shifted_prev(&values);
        let tree = AnnotatedMst::<u32, CountAgg>::build(&prev, &values, MstParams::default());
        for a in (0..n as usize).step_by(7) {
            for b in (a..=n as usize).step_by(13) {
                let (s, cnt) = tree.aggregate_below(a, b, a as u32 + 1);
                let plain = tree.tree().count_below(a, b, a as u32 + 1);
                assert_eq!(CountAgg::finish(s) as usize, plain);
                assert_eq!(cnt, plain);
            }
        }
    }

    #[test]
    fn min_max_distinct_equal_plain_min_max() {
        let mut rng = StdRng::seed_from_u64(101);
        let n = 150usize;
        let values: Vec<i64> = (0..n).map(|_| rng.gen_range(-50..50)).collect();
        let prev = shifted_prev(&values);
        let tmin = AnnotatedMst::<u32, MinI64>::build(&prev, &values, MstParams::new(4, 4));
        let tmax = AnnotatedMst::<u32, MaxI64>::build(&prev, &values, MstParams::new(4, 4));
        for a in (0..n).step_by(11) {
            for b in ((a + 1)..=n).step_by(17) {
                let (smin, _) = tmin.aggregate_below(a, b, a as u32 + 1);
                let (smax, _) = tmax.aggregate_below(a, b, a as u32 + 1);
                assert_eq!(MinI64::finish(smin), *values[a..b].iter().min().unwrap());
                assert_eq!(MaxI64::finish(smax), *values[a..b].iter().max().unwrap());
            }
        }
    }

    #[test]
    fn avg_distinct_on_floats() {
        let values: Vec<f64> = vec![1.0, 2.0, 1.0, 4.0];
        // prevIdcs on float keys via their bit patterns through i64 keys.
        let keys: Vec<i64> = values.iter().map(|v| v.to_bits() as i64).collect();
        let prev = shifted_prev(&keys);
        let tree = AnnotatedMst::<u32, AvgF64>::build(&prev, &values, MstParams::new(2, 2));
        let (s, _) = tree.aggregate_below(0, 4, 1);
        // Distinct values 1.0, 2.0, 4.0 → avg 7/3.
        assert!((AvgF64::finish(s).unwrap() - 7.0 / 3.0).abs() < 1e-12);
        let (s, _) = tree.aggregate_below(2, 2, 3);
        assert_eq!(AvgF64::finish(s), None);
    }

    #[test]
    fn multi_range_aggregate_sums_pieces() {
        let values: Vec<i64> = vec![5, 6, 7, 8, 9, 10];
        let prev = shifted_prev(&values); // all distinct → all zeros
        let tree = AnnotatedMst::<u32, SumI64>::build(&prev, &values, MstParams::new(2, 1));
        let rs = RangeSet::from_ranges(&[(0, 2), (4, 6)]);
        let (s, cnt) = tree.aggregate_below_multi(&rs, 1);
        assert_eq!(SumI64::finish(s), 5 + 6 + 9 + 10);
        assert_eq!(cnt, 4);
    }

    #[test]
    fn cursor_aggregate_bit_identical_including_floats() {
        let mut rng = StdRng::seed_from_u64(102);
        let n = 257usize;
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-8..8) as f64 / 3.0).collect();
        let keys: Vec<i64> = values.iter().map(|v| v.to_bits() as i64).collect();
        let prev = shifted_prev(&keys);
        let tree = AnnotatedMst::<u32, AvgF64>::build(&prev, &values, MstParams::new(4, 4));
        let mut cur = ProbeCursor::new();
        for i in 0..n {
            let a = i.saturating_sub(13);
            let b = (i + 9).min(n);
            let (s0, c0) = tree.aggregate_below(a, b, a as u32 + 1);
            let (s1, c1) = tree.aggregate_below_with_cursor(a, b, a as u32 + 1, &mut cur);
            // Exact equality of the float state proves combine-order
            // preservation, not just numeric closeness.
            assert_eq!(AvgF64::finish(s0).map(f64::to_bits), AvgF64::finish(s1).map(f64::to_bits));
            assert_eq!(c0, c1);
        }
        // Non-monotonic jumps stay bit-identical too.
        for _ in 0..200 {
            let a = rng.gen_range(0..=n);
            let b = rng.gen_range(0..=n);
            let rs = RangeSet::frame_minus_holes(a.min(b), b.max(a), &[(a, a + 2)]);
            let (s0, c0) = tree.aggregate_below_multi(&rs, a.min(b) as u32 + 1);
            let (s1, c1) =
                tree.aggregate_below_multi_with_cursor(&rs, a.min(b) as u32 + 1, &mut cur);
            assert_eq!(AvgF64::finish(s0).map(f64::to_bits), AvgF64::finish(s1).map(f64::to_bits));
            assert_eq!(c0, c1);
        }
        assert!(cur.stats.gallop_seeded > 0);
    }

    #[test]
    fn empty_tree() {
        let tree = AnnotatedMst::<u32, SumI64>::build(&[], &[], MstParams::default());
        assert!(tree.is_empty());
        let (s, cnt) = tree.aggregate_below(0, 0, 1);
        assert_eq!(SumI64::finish(s), 0);
        assert_eq!(cnt, 0);
    }
}
