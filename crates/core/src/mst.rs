//! The merge sort tree data structure (§4.2, §4.5, §5.1).

use crate::cursor::{gallop_partition_point, ProbeCursor, SelectCursor, Side};
use crate::index::TreeIndex;
use crate::merge::{merge_run, Keyed, RunChildren};
use crate::params::MstParams;
use crate::range_set::{RangeSet, MAX_RANGES};
use rayon::prelude::*;

/// One level of a merge sort tree: sorted runs of nominal length `run_len`
/// stored contiguously, plus sampled cascading pointers into the level below.
#[derive(Debug, Clone)]
pub(crate) struct Level<T, I> {
    /// All runs, concatenated; total length = input length.
    pub data: Vec<T>,
    /// Nominal run length `fanout^level` (the final run may be shorter).
    pub run_len: usize,
    /// Cascading pointers, laid out `[run][sample][child]`; empty at level 0.
    /// Entry `(r, s, c)` is the number of elements of child run `c` among the
    /// first `s·k` elements of run `r` (the persisted merge iterator of §4.2).
    pub ptrs: Vec<I>,
    /// Per-run start offset into `ptrs`, in units of samples (`len + 1`
    /// entries, last = total sample count).
    pub sample_offsets: Vec<usize>,
}

impl<T, I> Level<T, I> {
    /// Actual length of run `r` given `n` total elements.
    #[inline]
    pub fn run_bounds(&self, r: usize, n: usize) -> (usize, usize) {
        let start = r * self.run_len;
        (start, (start + self.run_len).min(n))
    }
}

/// Builds all levels above the provided base level.
pub(crate) fn build_levels<I: TreeIndex, T: Keyed<I>>(
    base: Vec<T>,
    params: MstParams,
) -> Vec<Level<T, I>> {
    params.validate();
    let n = base.len();
    let mut levels =
        vec![Level { data: base, run_len: 1, ptrs: Vec::new(), sample_offsets: Vec::new() }];
    while levels.last().unwrap().run_len < n {
        let next = build_next_level(levels.last().unwrap(), n, params);
        levels.push(next);
    }
    levels
}

/// Merges one level's runs into the next level (fanout-way).
pub(crate) fn build_next_level<I: TreeIndex, T: Keyed<I>>(
    child: &Level<T, I>,
    n: usize,
    params: MstParams,
) -> Level<T, I> {
    let (f, k) = (params.fanout, params.sampling);
    {
        let child_run_len = child.run_len;
        let run_len = child_run_len.saturating_mul(f);
        let num_runs = n.div_ceil(run_len);

        // Per-run sample counts depend on actual run lengths.
        let mut sample_offsets = Vec::with_capacity(num_runs + 1);
        sample_offsets.push(0usize);
        for r in 0..num_runs {
            let start = r * run_len;
            let len = (start + run_len).min(n) - start;
            sample_offsets.push(sample_offsets[r] + len / k + 2);
        }
        let total_samples = *sample_offsets.last().unwrap();

        let mut data = vec![T::default(); n];
        let mut ptrs = vec![I::ZERO; total_samples * f];

        // Carve output and pointer storage into per-run slices.
        let mut out_parts: Vec<&mut [T]> = Vec::with_capacity(num_runs);
        let mut ptr_parts: Vec<&mut [I]> = Vec::with_capacity(num_runs);
        {
            let mut data_rest = &mut data[..];
            let mut ptr_rest = &mut ptrs[..];
            for r in 0..num_runs {
                let start = r * run_len;
                let len = (start + run_len).min(n) - start;
                let (h, t) = data_rest.split_at_mut(len);
                out_parts.push(h);
                data_rest = t;
                let slots = (sample_offsets[r + 1] - sample_offsets[r]) * f;
                let (ph, pt) = ptr_rest.split_at_mut(slots);
                ptr_parts.push(ph);
                ptr_rest = pt;
            }
        }

        let child_data = &child.data;
        let make_children = |r: usize| -> RunChildren<'_, T> {
            let start = r * run_len;
            let end = (start + run_len).min(n);
            let mut children = Vec::with_capacity(f);
            let mut cs = start;
            while cs < end {
                let ce = (cs + child_run_len).min(end);
                children.push(&child_data[cs..ce]);
                cs = ce;
            }
            RunChildren { children }
        };

        if params.parallel && num_runs > 1 {
            // Lower levels: one merge task per run (§5.2).
            out_parts.into_par_iter().zip(ptr_parts).enumerate().for_each(|(r, (out, snaps))| {
                merge_run(&make_children(r), f, k, out, snaps, false);
            });
        } else {
            // Upper levels (single run): parallelize inside the merge.
            for (r, (out, snaps)) in out_parts.into_iter().zip(ptr_parts).enumerate() {
                merge_run(&make_children(r), f, k, out, snaps, params.parallel);
            }
        }

        Level { data, run_len, ptrs, sample_offsets }
    }
}

/// A merge sort tree over integer payloads.
///
/// Payloads are produced by the preprocessing steps of §4/§5.1 (previous
/// occurrence indices, dense rank codes, or permutation entries) and are
/// always integers, so the tree itself is query-independent (§5.4).
#[derive(Debug, Clone)]
pub struct MergeSortTree<I: TreeIndex> {
    pub(crate) levels: Vec<Level<I, I>>,
    pub(crate) params: MstParams,
    pub(crate) n: usize,
}

impl<I: TreeIndex> MergeSortTree<I> {
    /// Builds a tree over `values` (level 0 keeps the original order).
    pub fn build(values: &[I], params: MstParams) -> Self {
        let n = values.len();
        let levels = build_levels(values.to_vec(), params);
        MergeSortTree { levels, params, n }
    }

    /// Like [`Self::build`], but also reports the wall time spent merging
    /// each level — the "build tree layer" phases of the paper's cost
    /// breakdown (Figure 14).
    pub fn build_profiled(values: &[I], params: MstParams) -> (Self, Vec<std::time::Duration>) {
        params.validate();
        let n = values.len();
        let mut levels = vec![Level {
            data: values.to_vec(),
            run_len: 1,
            ptrs: Vec::new(),
            sample_offsets: Vec::new(),
        }];
        let mut times = Vec::new();
        while levels.last().unwrap().run_len < n {
            let t0 = std::time::Instant::now();
            let next = build_next_level(levels.last().unwrap(), n, params);
            times.push(t0.elapsed());
            levels.push(next);
        }
        (MergeSortTree { levels, params, n }, times)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Build parameters.
    pub fn params(&self) -> MstParams {
        self.params
    }

    /// The element stored at (level-0) position `i`.
    #[inline]
    pub fn value(&self, i: usize) -> I {
        self.levels[0].data[i]
    }

    /// Cascaded refinement: given the lower-bound position `pos` of threshold
    /// `t` within run `r` of `level`, returns the lower-bound position of `t`
    /// within child run `c`.
    #[inline]
    pub(crate) fn cascade(&self, level: usize, run: usize, pos: usize, c: usize, t: I) -> usize {
        let lvl = &self.levels[level];
        let child = &self.levels[level - 1];
        let child_run = run * (lvl.run_len / child.run_len) + c;
        let (cs, ce) = child.run_bounds(child_run, self.n);
        let clen = ce - cs;
        if !self.params.cascading {
            // Ablation mode: full binary search on every level (Figure 2's
            // O((log n)²) query instead of Figure 3's O(log n)).
            return child.data[cs..ce].partition_point(|&x| x < t);
        }
        let f = self.params.fanout;
        let k = self.params.sampling;
        let s = pos / k;
        let base = (lvl.sample_offsets[run] + s) * f + c;
        let lo = lvl.ptrs[base].to_usize();
        let hi = lvl.ptrs[base + f].to_usize().min(clen);
        debug_assert!(lo <= hi);
        lo + child.data[cs + lo..cs + hi].partition_point(|&x| x < t)
    }

    /// Counts the elements at positions `[a, b)` whose value is smaller than
    /// `t`. O(log n) with the default parameters. This is the 2-d range
    /// counting query of §4.2 (distinct counts) and §4.4 (rank functions).
    pub fn count_below(&self, a: usize, b: usize, t: I) -> usize {
        let mut total = 0usize;
        self.decompose_below(a, b, t, |_, _, pos| total += pos);
        total
    }

    /// [`Self::count_below`] over a set of disjoint ranges (frames with
    /// exclusion holes, §4.7).
    pub fn count_below_multi(&self, ranges: &RangeSet, t: I) -> usize {
        ranges.iter().map(|(a, b)| self.count_below(a, b, t)).sum()
    }

    /// Cursor-seeded [`Self::count_below`]: bit-identical result, amortized
    /// O(1) per level when `(a, b, t)` advance monotonically across calls.
    pub fn count_below_with_cursor(
        &self,
        a: usize,
        b: usize,
        t: I,
        cur: &mut ProbeCursor,
    ) -> usize {
        let mut total = 0usize;
        self.decompose_below_cursor(a, b, t, 0, cur, |_, _, pos| total += pos);
        total
    }

    /// Cursor-seeded [`Self::count_below_multi`]; each frame piece keeps its
    /// own memo slot so exclusion holes don't destroy locality.
    pub fn count_below_multi_with_cursor(
        &self,
        ranges: &RangeSet,
        t: I,
        cur: &mut ProbeCursor,
    ) -> usize {
        let mut total = 0usize;
        for (ri, (a, b)) in ranges.iter().enumerate() {
            self.decompose_below_cursor(a, b, t, ri, cur, |_, _, pos| total += pos);
        }
        total
    }

    /// Decomposes the position range `[a, b)` into covering runs, invoking
    /// `visit(level, run_start, pos_of_t_in_run)` for every run that is fully
    /// contained in the query range. The visited `pos` values are the per-run
    /// lower bounds of `t`; their sum is `count_below`.
    pub(crate) fn decompose_below(
        &self,
        a: usize,
        b: usize,
        t: I,
        mut visit: impl FnMut(usize, usize, usize),
    ) {
        let b = b.min(self.n);
        if a >= b {
            return;
        }
        let top = self.levels.len() - 1;
        let top_pos = self.levels[top].data[..self.n].partition_point(|&x| x < t);
        self.descend_below(top, 0, a, b, t, top_pos, &mut visit);
    }

    #[allow(clippy::too_many_arguments)]
    fn descend_below(
        &self,
        level: usize,
        run: usize,
        a: usize,
        b: usize,
        t: I,
        pos: usize,
        visit: &mut impl FnMut(usize, usize, usize),
    ) {
        let lvl = &self.levels[level];
        let (rs, re) = lvl.run_bounds(run, self.n);
        debug_assert!(rs <= a && b <= re);
        if a == rs && b == re {
            visit(level, rs, pos);
            return;
        }
        debug_assert!(level > 0, "partial overlap impossible on singleton runs");
        let child_len = self.levels[level - 1].run_len;
        let ratio = lvl.run_len / child_len;
        for c in 0..self.params.fanout.min(ratio) {
            let cs = rs + c * child_len;
            if cs >= re {
                break;
            }
            let ce = (cs + child_len).min(re);
            let lo = a.max(cs);
            let hi = b.min(ce);
            if lo >= hi {
                continue;
            }
            let cpos = self.cascade(level, run, pos, c, t);
            if lo == cs && hi == ce {
                visit(level - 1, cs, cpos);
            } else {
                self.descend_below(level - 1, cs / child_len, lo, hi, t, cpos, visit);
            }
        }
    }

    /// Cursor-seeded [`Self::decompose_below`]: same decomposition, same
    /// visit order, same `pos` values — only the per-level searches are
    /// seeded from `cur`'s memos for slot `slot` instead of running from
    /// scratch. A disabled cursor delegates to the stateless path.
    ///
    /// Visit order is preserved exactly (deepest-left first, each level's
    /// trailing siblings ascending, middles ascending, right path top-down),
    /// so even order-sensitive floating-point combines over the visited runs
    /// stay bit-identical.
    pub(crate) fn decompose_below_cursor(
        &self,
        a: usize,
        b: usize,
        t: I,
        slot: usize,
        cur: &mut ProbeCursor,
        mut visit: impl FnMut(usize, usize, usize),
    ) {
        if !cur.enabled() {
            cur.stats.stateless_probes += 1;
            self.decompose_below(a, b, t, visit);
            return;
        }
        let b = b.min(self.n);
        if a >= b {
            return;
        }
        cur.stats.cursor_probes += 1;
        let top = self.levels.len() - 1;
        cur.ensure_levels(top);
        let mut pos = cur.top_position(&self.levels[top].data[..self.n], |&x| x < t);
        // Joint phase: walk down while [a, b) fits within one child, sharing
        // the left-side memo between both boundaries.
        let mut level = top;
        let mut run = 0usize;
        loop {
            let lvl = &self.levels[level];
            let (rs, re) = lvl.run_bounds(run, self.n);
            debug_assert!(rs <= a && b <= re);
            if a == rs && b == re {
                visit(level, rs, pos);
                return;
            }
            debug_assert!(level > 0, "partial overlap impossible on singleton runs");
            let child_len = self.levels[level - 1].run_len;
            let ca = (a - rs) / child_len;
            let cb = (b - 1 - rs) / child_len;
            if ca == cb {
                pos = self.child_pos(level, run, pos, ca, t, slot, Side::Left, cur);
                run = rs / child_len + ca;
                level -= 1;
                continue;
            }
            // The paths split: descend the left boundary, emit fully-covered
            // middle children, then descend the right boundary.
            let ca_pos = self.child_pos(level, run, pos, ca, t, slot, Side::Left, cur);
            self.left_descend(level - 1, rs / child_len + ca, a, t, ca_pos, slot, cur, &mut visit);
            for c in ca + 1..cb {
                visit(level - 1, rs + c * child_len, self.cascade(level, run, pos, c, t));
            }
            let cb_pos = self.child_pos(level, run, pos, cb, t, slot, Side::Right, cur);
            self.right_descend(level - 1, rs / child_len + cb, b, t, cb_pos, slot, cur, &mut visit);
            return;
        }
    }

    /// Lower bound of `t` in child `c` of `(level, run)`: gallops from the
    /// memoized position when the memo still points at that child run,
    /// otherwise falls back to the standard cascaded refinement (a reset).
    /// Either way the memo is updated for the next probe.
    #[allow(clippy::too_many_arguments)]
    fn child_pos(
        &self,
        level: usize,
        run: usize,
        pos: usize,
        c: usize,
        t: I,
        slot: usize,
        side: Side,
        cur: &mut ProbeCursor,
    ) -> usize {
        let lvl = &self.levels[level];
        let child = &self.levels[level - 1];
        let child_run = run * (lvl.run_len / child.run_len) + c;
        let idx = cur.memo_index(slot, side, level - 1);
        let m = cur.memo(idx);
        let new_pos = if m.run == child_run {
            let (cs, ce) = child.run_bounds(child_run, self.n);
            cur.stats.gallop_seeded += 1;
            gallop_partition_point(
                &child.data[cs..ce],
                m.pos,
                |&x| x < t,
                &mut cur.stats.gallop_steps,
            )
        } else {
            cur.stats.level_resets += 1;
            self.cascade(level, run, pos, c, t)
        };
        cur.set_memo(idx, child_run, new_pos);
        new_pos
    }

    /// Descends the left boundary path: covers `[a, run_end)` of `(level,
    /// run)`. Emits the deeper subtree first, then the fully-covered trailing
    /// siblings in ascending order — the recursion's exact emission order.
    #[allow(clippy::too_many_arguments)]
    fn left_descend(
        &self,
        level: usize,
        run: usize,
        a: usize,
        t: I,
        pos: usize,
        slot: usize,
        cur: &mut ProbeCursor,
        visit: &mut impl FnMut(usize, usize, usize),
    ) {
        let lvl = &self.levels[level];
        let (rs, re) = lvl.run_bounds(run, self.n);
        debug_assert!(rs <= a && a < re);
        if a == rs {
            visit(level, rs, pos);
            return;
        }
        debug_assert!(level > 0);
        let child_len = self.levels[level - 1].run_len;
        let ca = (a - rs) / child_len;
        let ca_pos = self.child_pos(level, run, pos, ca, t, slot, Side::Left, cur);
        self.left_descend(level - 1, rs / child_len + ca, a, t, ca_pos, slot, cur, visit);
        let ratio = lvl.run_len / child_len;
        for c in ca + 1..self.params.fanout.min(ratio) {
            let cs = rs + c * child_len;
            if cs >= re {
                break;
            }
            visit(level - 1, cs, self.cascade(level, run, pos, c, t));
        }
    }

    /// Descends the right boundary path: covers `[run_start, b)` of `(level,
    /// run)`. Emits the fully-covered leading siblings in ascending order,
    /// then the deeper subtree — the recursion's exact emission order.
    #[allow(clippy::too_many_arguments)]
    fn right_descend(
        &self,
        level: usize,
        run: usize,
        b: usize,
        t: I,
        pos: usize,
        slot: usize,
        cur: &mut ProbeCursor,
        visit: &mut impl FnMut(usize, usize, usize),
    ) {
        let lvl = &self.levels[level];
        let (rs, re) = lvl.run_bounds(run, self.n);
        debug_assert!(rs < b && b <= re);
        if b == re {
            visit(level, rs, pos);
            return;
        }
        debug_assert!(level > 0);
        let child_len = self.levels[level - 1].run_len;
        let cb = (b - 1 - rs) / child_len;
        for c in 0..cb {
            visit(level - 1, rs + c * child_len, self.cascade(level, run, pos, c, t));
        }
        let cb_pos = self.child_pos(level, run, pos, cb, t, slot, Side::Right, cur);
        self.right_descend(level - 1, rs / child_len + cb, b, t, cb_pos, slot, cur, visit);
    }

    /// Finds the level-0 position of the `j`-th element (0-based) whose
    /// *value* lies within the given half-open value ranges, or `None` if
    /// fewer than `j + 1` elements qualify.
    ///
    /// Qualifying elements are enumerated in *level-0 position order*. This is
    /// exactly §4.5's "the j-th index pointing into the frame": the tree is
    /// built over a permutation array sorted by the inner ORDER BY, so array
    /// position order *is* rank order, values are original row positions, and
    /// the frame is a value range. The returned position is the rank of the
    /// selected row; `perm[rank]` recovers the row itself.
    pub fn select(&self, ranges: &RangeSet, j: usize) -> Option<usize> {
        if self.n == 0 {
            return None;
        }
        let top = self.levels.len() - 1;
        let top_data = &self.levels[top].data[..self.n];
        // Per-range (lower, upper) positions within the current run; frames
        // decompose into at most MAX_RANGES pieces, so fixed-size scratch
        // keeps the probe loop allocation-free.
        let mut bounds = [(0usize, 0usize); MAX_RANGES];
        for (ri, (lo, hi)) in ranges.iter().enumerate() {
            bounds[ri] = (
                top_data.partition_point(|&x| x.to_usize() < lo),
                top_data.partition_point(|&x| x.to_usize() < hi),
            );
        }
        self.select_descend(ranges, j, bounds)
    }

    /// Cursor-seeded [`Self::select`]: the two top-level value-bound searches
    /// per frame piece gallop from the previous probe's positions (the
    /// descent below the top level is already O(1) per level via sampled
    /// cascading). Bit-identical to the stateless path on every input.
    pub fn select_with_cursor(
        &self,
        ranges: &RangeSet,
        j: usize,
        cur: &mut SelectCursor,
    ) -> Option<usize> {
        if !cur.enabled() {
            cur.stats.stateless_probes += 1;
            return self.select(ranges, j);
        }
        if self.n == 0 {
            return None;
        }
        cur.stats.cursor_probes += 1;
        let top = self.levels.len() - 1;
        let top_data = &self.levels[top].data[..self.n];
        let mut bounds = [(0usize, 0usize); MAX_RANGES];
        for (ri, (lo, hi)) in ranges.iter().enumerate() {
            bounds[ri] = (cur.seek(2 * ri, top_data, lo), cur.seek(2 * ri + 1, top_data, hi));
        }
        self.select_descend(ranges, j, bounds)
    }

    /// Shared select descent from resolved top-level bounds.
    fn select_descend(
        &self,
        ranges: &RangeSet,
        j: usize,
        mut bounds: [(usize, usize); MAX_RANGES],
    ) -> Option<usize> {
        let nr = ranges.len();
        let total: usize = bounds[..nr].iter().map(|&(l, h)| h - l).sum();
        if j >= total {
            return None;
        }
        let mut j = j;
        let mut level = self.levels.len() - 1;
        let mut run = 0usize;
        while level > 0 {
            let lvl = &self.levels[level];
            let (rs, re) = lvl.run_bounds(run, self.n);
            let child_len = self.levels[level - 1].run_len;
            let mut found = false;
            let mut scratch = [(0usize, 0usize); MAX_RANGES];
            for c in 0..self.params.fanout {
                let cs = rs + c * child_len;
                if cs >= re {
                    break;
                }
                let mut cnt = 0usize;
                for ri in 0..nr {
                    let (blo, bhi) = bounds[ri];
                    let (lo_v, hi_v) = ranges.nth(ri);
                    let pl = self.cascade(level, run, blo, c, I::from_usize(lo_v));
                    let ph = self.cascade(level, run, bhi, c, I::from_usize(hi_v));
                    cnt += ph - pl;
                    scratch[ri] = (pl, ph);
                }
                if j < cnt {
                    bounds = scratch;
                    run = cs / child_len;
                    level -= 1;
                    found = true;
                    break;
                }
                j -= cnt;
            }
            debug_assert!(found, "select descent lost the target");
            if !found {
                return None;
            }
        }
        // Level 0: singleton run.
        Some(run)
    }

    /// Convenience: select within a single position... value range `[lo, hi)`.
    pub fn select_in_range(&self, lo: usize, hi: usize, j: usize) -> Option<usize> {
        self.select(&RangeSet::single(lo, hi), j)
    }

    /// Total number of stored elements across all levels (memory accounting,
    /// §5.1/§6.6).
    pub fn stored_elements(&self) -> usize {
        self.levels.iter().map(|l| l.data.len()).sum()
    }

    /// Total number of stored cascading pointers.
    pub fn stored_pointers(&self) -> usize {
        self.levels.iter().map(|l| l.ptrs.len()).sum()
    }

    /// Number of levels (including the base level).
    pub fn height(&self) -> usize {
        self.levels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn brute_count_below(vals: &[u32], a: usize, b: usize, t: u32) -> usize {
        let b = b.min(vals.len());
        if a >= b {
            return 0;
        }
        vals[a..b].iter().filter(|&&v| v < t).count()
    }

    fn brute_select(vals: &[u32], lo: usize, hi: usize, j: usize) -> Option<usize> {
        // j-th qualifying element in POSITION order.
        vals.iter()
            .enumerate()
            .filter(|(_, &v)| (v as usize) >= lo && (v as usize) < hi)
            .map(|(i, _)| i)
            .nth(j)
    }

    #[test]
    fn figure1_distinct_count() {
        // prevIdcs of Figure 1 in shifted encoding (0 = none).
        let prev: Vec<u32> = vec![0, 0, 2, 1, 0, 3, 5, 4];
        let tree = MergeSortTree::<u32>::build(&prev, MstParams::new(2, 1));
        // Frame [3, 8): entries < 3+1 = 4.
        assert_eq!(tree.count_below(3, 8, 4), 3);
        // Whole input: 3 distinct values (entries < 0+1).
        assert_eq!(tree.count_below(0, 8, 1), 3);
    }

    #[test]
    fn empty_and_singleton_trees() {
        let tree = MergeSortTree::<u32>::build(&[], MstParams::default());
        assert_eq!(tree.count_below(0, 0, 5), 0);
        assert!(tree.is_empty());
        assert!(tree.select_in_range(0, 10, 0).is_none());

        let tree = MergeSortTree::<u32>::build(&[7], MstParams::default());
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.count_below(0, 1, 8), 1);
        assert_eq!(tree.count_below(0, 1, 7), 0);
        assert_eq!(tree.select_in_range(7, 8, 0), Some(0));
        assert_eq!(tree.select_in_range(7, 8, 1), None);
    }

    #[test]
    fn height_matches_fanout() {
        let vals: Vec<u32> = (0..100).collect();
        let t2 = MergeSortTree::<u32>::build(&vals, MstParams::new(2, 4));
        assert_eq!(t2.height(), 8); // 2^7 = 128 >= 100
        let t32 = MergeSortTree::<u32>::build(&vals, MstParams::new(32, 4));
        assert_eq!(t32.height(), 3); // 32^2 >= 100
    }

    #[test]
    fn count_below_random_many_params() {
        let mut rng = StdRng::seed_from_u64(42);
        for &(f, k) in &[(2, 1), (2, 3), (4, 2), (8, 32), (32, 32), (5, 7)] {
            for _ in 0..8 {
                let n = rng.gen_range(0..300);
                let vals: Vec<u32> = (0..n).map(|_| rng.gen_range(0..50)).collect();
                let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(f, k));
                for _ in 0..40 {
                    let a = rng.gen_range(0..=n);
                    let b = rng.gen_range(0..=n);
                    let t = rng.gen_range(0..55);
                    assert_eq!(
                        tree.count_below(a, b, t),
                        brute_count_below(&vals, a, b.min(n), t),
                        "n={n} f={f} k={k} a={a} b={b} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn select_random_many_params() {
        let mut rng = StdRng::seed_from_u64(43);
        for &(f, k) in &[(2, 1), (3, 2), (8, 32), (32, 32)] {
            for _ in 0..8 {
                let n = rng.gen_range(1..250);
                // Values are a permutation (the §4.5 use case).
                let mut vals: Vec<u32> = (0..n as u32).collect();
                for i in (1..n).rev() {
                    vals.swap(i, rng.gen_range(0..=i));
                }
                let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(f, k));
                for _ in 0..40 {
                    let lo = rng.gen_range(0..=n);
                    let hi = rng.gen_range(0..=n);
                    let j = rng.gen_range(0..n + 2);
                    assert_eq!(
                        tree.select_in_range(lo, hi, j),
                        brute_select(&vals, lo, hi, j),
                        "n={n} f={f} k={k} lo={lo} hi={hi} j={j}"
                    );
                }
            }
        }
    }

    #[test]
    fn select_with_duplicate_values() {
        // Qualifying elements enumerate in position order.
        let vals: Vec<u32> = vec![5, 3, 5, 3, 5];
        let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(2, 1));
        for j in 0..5 {
            assert_eq!(tree.select_in_range(3, 6, j), Some(j));
        }
        assert_eq!(tree.select_in_range(5, 6, 1), Some(2));
        assert_eq!(tree.select_in_range(3, 4, 1), Some(3));
        assert_eq!(tree.select_in_range(3, 4, 2), None);
    }

    #[test]
    fn select_multi_range() {
        let vals: Vec<u32> = (0..20).rev().collect(); // 19, 18, ..., 0
        let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(4, 2));
        // Value ranges [2,5) and [10,12): qualifying values 11,10,4,3,2 appear
        // at positions 8, 9, 15, 16, 17 (value v sits at position 19 - v).
        let rs = RangeSet::from_ranges(&[(2, 5), (10, 12)]);
        let positions: Vec<Option<usize>> = (0..6).map(|j| tree.select(&rs, j)).collect();
        assert_eq!(positions, vec![Some(8), Some(9), Some(15), Some(16), Some(17), None]);
    }

    #[test]
    fn count_below_multi_sums_ranges() {
        let vals: Vec<u32> = vec![1, 9, 2, 8, 3, 7, 4, 6, 5, 0];
        let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(2, 2));
        let rs = RangeSet::from_ranges(&[(0, 3), (6, 9)]);
        let brute: usize = [0..3usize, 6..9usize]
            .iter()
            .flat_map(|r| vals[r.clone()].iter())
            .filter(|&&v| v < 5)
            .count();
        assert_eq!(tree.count_below_multi(&rs, 5), brute);
    }

    #[test]
    fn u64_tree_matches_u32_tree() {
        let mut rng = StdRng::seed_from_u64(44);
        let n = 200;
        let vals32: Vec<u32> = (0..n).map(|_| rng.gen_range(0..100)).collect();
        let vals64: Vec<u64> = vals32.iter().map(|&v| v as u64).collect();
        let t32 = MergeSortTree::<u32>::build(&vals32, MstParams::default());
        let t64 = MergeSortTree::<u64>::build(&vals64, MstParams::default());
        for a in (0..n as usize).step_by(17) {
            for t in (0..100).step_by(13) {
                assert_eq!(
                    t32.count_below(a, n as usize, t as u32),
                    t64.count_below(a, n as usize, t as u64)
                );
            }
        }
    }

    #[test]
    fn serial_equals_parallel_build() {
        let mut rng = StdRng::seed_from_u64(45);
        let vals: Vec<u32> = (0..5000).map(|_| rng.gen_range(0..1000)).collect();
        let tp = MergeSortTree::<u32>::build(&vals, MstParams::new(8, 8));
        let ts = MergeSortTree::<u32>::build(&vals, MstParams::new(8, 8).serial());
        for lvl in 0..tp.height() {
            assert_eq!(tp.levels[lvl].data, ts.levels[lvl].data, "level {lvl} data");
            assert_eq!(tp.levels[lvl].ptrs, ts.levels[lvl].ptrs, "level {lvl} ptrs");
        }
    }

    #[test]
    fn levels_are_sorted_run_permutations() {
        let mut rng = StdRng::seed_from_u64(46);
        let vals: Vec<u32> = (0..777).map(|_| rng.gen_range(0..100)).collect();
        let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(4, 8));
        let mut sorted_all = vals.clone();
        sorted_all.sort_unstable();
        for lvl in &tree.levels {
            // Each level is a permutation of the input.
            let mut level_sorted = lvl.data.clone();
            level_sorted.sort_unstable();
            assert_eq!(level_sorted, sorted_all);
            // Each run is sorted.
            let mut r = 0;
            while r * lvl.run_len < vals.len() {
                let (s, e) = lvl.run_bounds(r, vals.len());
                assert!(lvl.data[s..e].windows(2).all(|w| w[0] <= w[1]));
                r += 1;
            }
        }
        // Top level is fully sorted.
        assert_eq!(tree.levels.last().unwrap().data, sorted_all);
    }

    #[test]
    fn no_cascading_gives_identical_answers() {
        let mut rng = StdRng::seed_from_u64(48);
        let n = 400;
        let vals: Vec<u32> = (0..n).map(|_| rng.gen_range(0..120)).collect();
        let with = MergeSortTree::<u32>::build(&vals, MstParams::new(8, 16));
        let without = MergeSortTree::<u32>::build(&vals, MstParams::new(8, 16).no_cascading());
        for _ in 0..200 {
            let a = rng.gen_range(0..=n as usize);
            let b = rng.gen_range(a..=n as usize);
            let t = rng.gen_range(0..130);
            assert_eq!(with.count_below(a, b, t), without.count_below(a, b, t));
            let (lo, hi) = (rng.gen_range(0..60), rng.gen_range(60..130));
            let j = rng.gen_range(0..n as usize);
            assert_eq!(with.select_in_range(lo, hi, j), without.select_in_range(lo, hi, j));
        }
    }

    #[test]
    fn cursor_count_below_matches_stateless_on_random_probes() {
        let mut rng = StdRng::seed_from_u64(49);
        for &(f, k) in &[(2, 1), (4, 2), (8, 32), (32, 32), (5, 7)] {
            let n = rng.gen_range(1..400);
            let vals: Vec<u32> = (0..n).map(|_| rng.gen_range(0..80)).collect();
            let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(f, k));
            let mut cur = ProbeCursor::new();
            // Monotonic sweep, then fully random jumps — identical either way.
            let mut a = 0usize;
            let mut b = 0usize;
            for i in 0..n as usize {
                a = a.max(i.saturating_sub(7));
                b = (b.max(i + 1)).min(n as usize);
                let t = rng.gen_range(0..85);
                assert_eq!(
                    tree.count_below_with_cursor(a, b, t, &mut cur),
                    tree.count_below(a, b, t)
                );
            }
            for _ in 0..120 {
                let a = rng.gen_range(0..=n as usize);
                let b = rng.gen_range(0..=n as usize + 2);
                let t = rng.gen_range(0..85);
                assert_eq!(
                    tree.count_below_with_cursor(a, b, t, &mut cur),
                    tree.count_below(a, b, t)
                );
            }
            assert!(cur.stats.cursor_probes > 0);
        }
    }

    #[test]
    fn cursor_multi_and_select_match_stateless() {
        let mut rng = StdRng::seed_from_u64(50);
        let n = 300usize;
        let mut perm: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }
        let tree = MergeSortTree::<u32>::build(&perm, MstParams::new(8, 8));
        let mut pc = ProbeCursor::new();
        let mut sc = SelectCursor::new();
        for i in 0..n {
            // Frame with an exclusion hole around i.
            let lo = i.saturating_sub(20);
            let hi = (i + 20).min(n);
            let rs = RangeSet::frame_minus_holes(lo, hi, &[(i, (i + 1).min(hi))]);
            let t = rng.gen_range(0..n as u32 + 2);
            assert_eq!(
                tree.count_below_multi_with_cursor(&rs, t, &mut pc),
                tree.count_below_multi(&rs, t)
            );
            let j = rng.gen_range(0..25);
            assert_eq!(tree.select_with_cursor(&rs, j, &mut sc), tree.select(&rs, j));
        }
        assert!(pc.stats.gallop_seeded > 0);
        assert!(sc.stats.gallop_seeded > 0);
    }

    #[test]
    fn disabled_cursor_delegates_and_counts() {
        let vals: Vec<u32> = (0..64).collect();
        let tree = MergeSortTree::<u32>::build(&vals, MstParams::default());
        let mut pc = ProbeCursor::disabled();
        let mut sc = SelectCursor::disabled();
        assert_eq!(tree.count_below_with_cursor(3, 40, 20, &mut pc), tree.count_below(3, 40, 20));
        let rs = RangeSet::single(5, 30);
        assert_eq!(tree.select_with_cursor(&rs, 4, &mut sc), tree.select(&rs, 4));
        assert_eq!(pc.stats.stateless_probes, 1);
        assert_eq!(pc.stats.cursor_probes, 0);
        assert_eq!(sc.stats.stateless_probes, 1);
        assert_eq!(sc.stats.gallop_seeded, 0);
    }

    #[test]
    fn cursor_visit_order_matches_stateless() {
        // Order-sensitive downstream combines (float aggregates) require the
        // cursor descent to emit the exact visit sequence of the recursion.
        let mut rng = StdRng::seed_from_u64(51);
        for &(f, k) in &[(2, 1), (3, 2), (8, 8), (32, 32)] {
            let n = 257usize;
            let vals: Vec<u32> = (0..n).map(|_| rng.gen_range(0..64)).collect();
            let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(f, k));
            let mut cur = ProbeCursor::new();
            for _ in 0..200 {
                let a = rng.gen_range(0..=n);
                let b = rng.gen_range(0..=n);
                let t = rng.gen_range(0..70);
                let mut stateless = Vec::new();
                tree.decompose_below(a, b, t, |l, s, p| stateless.push((l, s, p)));
                let mut cursored = Vec::new();
                tree.decompose_below_cursor(a, b, t, 0, &mut cur, |l, s, p| {
                    cursored.push((l, s, p))
                });
                assert_eq!(cursored, stateless, "f={f} k={k} a={a} b={b} t={t}");
            }
        }
    }

    #[test]
    fn memory_accounting_matches_formula() {
        // §5.1: ⌈log_f n⌉·n data elements above... including base level the
        // tree stores (height)·n elements; pointer count ≈ (height−1)·n·f/k.
        let n = 4096usize;
        let vals: Vec<u32> = (0..n as u32).collect();
        let (f, k) = (4, 8);
        let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(f, k));
        assert_eq!(tree.stored_elements(), tree.height() * n);
        let expected_ptrs: usize = (1..tree.height())
            .map(|lvl| {
                let run_len = f.pow(lvl as u32);
                let runs = n.div_ceil(run_len);
                (0..runs)
                    .map(|r| {
                        let len = ((r + 1) * run_len).min(n) - r * run_len;
                        (len / k + 2) * f
                    })
                    .sum::<usize>()
            })
            .sum();
        assert_eq!(tree.stored_pointers(), expected_ptrs);
    }
}
