//! The merge sort tree data structure (§4.2, §4.5, §5.1).
//!
//! Storage is a single contiguous arena per tree (see [`crate::arena`]): all
//! levels' keys live in one allocation, followed by the sampled
//! cascading-pointer slabs, with a small per-level metadata table. Run
//! boundaries are `(offset, len)` arithmetic — no per-run or per-level owned
//! vectors. The probe descent batches software prefetches (safe cache-warming
//! reads) for every overlapped child's cascaded landing window before the
//! cascade loop of each partial node, so the scattered key-line misses
//! overlap in the memory system, and short-circuits partial level-1 runs by
//! scanning the contiguous base keys directly instead of cascading into
//! singleton children.

use crate::arena::{prefetch_read, Span};
use crate::cursor::{gallop_partition_point, ProbeCursor, SelectCursor, Side};
use crate::index::TreeIndex;
use crate::merge::{merge_run, Keyed, RunChildren};
use crate::params::MstParams;
use crate::range_set::{RangeSet, MAX_RANGES};
use rayon::prelude::*;

/// Per-level metadata of an arena-backed merge sort tree.
///
/// A level's keys occupy `[level · n, (level + 1) · n)` of the keys region
/// (every level stores exactly `n` elements, so key offsets need no table);
/// its cascading-pointer slab is addressed by an explicit [`Span`] relative
/// to the pointer region. Per-run pointer-slab offsets are the closed form
/// `run · samples_per_run · fanout` — valid because every run before the last
/// is full-length — replacing the per-level `sample_offsets` vector of the
/// pre-arena representation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LevelMeta {
    /// Nominal run length `fanout^level` (the final run may be shorter).
    pub run_len: usize,
    /// This level's pointer slab within the pointer region (empty at level 0).
    pub ptrs: Span,
    /// Pointer samples per full-length run: `run_len / sampling + 2` (the two
    /// extra slots are the trailing "after everything" sentinels).
    pub samples_per_run: usize,
}

impl LevelMeta {
    /// Bounds `[start, end)` of run `r` given `n` total elements.
    #[inline]
    pub fn run_bounds(&self, r: usize, n: usize) -> (usize, usize) {
        let start = r * self.run_len;
        (start, (start + self.run_len).min(n))
    }
}

/// Computes the level table for `n` elements: run lengths, pointer-slab spans
/// and sample strides, without touching any data. The whole arena size is
/// known from this table alone, so storage is allocated exactly once.
pub(crate) fn level_geometry(n: usize, params: MstParams) -> Vec<LevelMeta> {
    params.validate();
    let (f, k) = (params.fanout, params.sampling);
    let mut meta =
        vec![LevelMeta { run_len: 1, ptrs: Span::new(0, 0), samples_per_run: 1 / k + 2 }];
    while meta.last().unwrap().run_len < n {
        let run_len = meta.last().unwrap().run_len.saturating_mul(f);
        let num_runs = n.div_ceil(run_len);
        let samples_per_run = run_len / k + 2;
        let last_len = n - (num_runs - 1) * run_len;
        let total_samples = (num_runs - 1) * samples_per_run + (last_len / k + 2);
        let off = meta.last().unwrap().ptrs.end();
        meta.push(LevelMeta { run_len, ptrs: Span::new(off, total_samples * f), samples_per_run });
    }
    meta
}

/// Merges level upon level into preallocated storage.
///
/// `data` holds `meta.len() · n` elements with `data[0..n]` prefilled with
/// the base level (input order); `ptrs` holds the concatenated pointer slabs
/// (`meta.last().ptrs.end()` elements). Returns the wall time spent merging
/// each level — the "build tree layer" phases of Figure 14.
///
/// Lower levels parallelize across runs, upper levels inside a single merge
/// via multisequence selection (§5.2), exactly as the per-level-vector build
/// did — outputs are bit-identical, only the backing storage changed.
pub(crate) fn fill_levels<I: TreeIndex, T: Keyed<I>>(
    n: usize,
    params: MstParams,
    meta: &[LevelMeta],
    data: &mut [T],
    ptrs: &mut [I],
) -> Vec<std::time::Duration> {
    let (f, k) = (params.fanout, params.sampling);
    debug_assert_eq!(data.len(), meta.len() * n);
    let mut times = Vec::with_capacity(meta.len().saturating_sub(1));
    for lvl in 1..meta.len() {
        let t0 = std::time::Instant::now();
        let m = meta[lvl];
        let child_run_len = meta[lvl - 1].run_len;
        let run_len = m.run_len;
        let num_runs = n.div_ceil(run_len);

        // The child level is read-only while the current level is written:
        // disjoint regions of the single keys buffer.
        let (lower, upper) = data.split_at_mut(lvl * n);
        let child_data = &lower[(lvl - 1) * n..];
        let out_level = &mut upper[..n];
        let ptr_level = m.ptrs.slice_mut(ptrs);

        // Carve output and pointer storage into per-run slices.
        let mut out_parts: Vec<&mut [T]> = Vec::with_capacity(num_runs);
        let mut ptr_parts: Vec<&mut [I]> = Vec::with_capacity(num_runs);
        {
            let mut data_rest = out_level;
            let mut ptr_rest = ptr_level;
            for r in 0..num_runs {
                let start = r * run_len;
                let len = (start + run_len).min(n) - start;
                let (h, t) = data_rest.split_at_mut(len);
                out_parts.push(h);
                data_rest = t;
                let (ph, pt) = ptr_rest.split_at_mut((len / k + 2) * f);
                ptr_parts.push(ph);
                ptr_rest = pt;
            }
        }

        let make_children = |r: usize| -> RunChildren<'_, T> {
            let start = r * run_len;
            let end = (start + run_len).min(n);
            let mut children = Vec::with_capacity(f);
            let mut cs = start;
            while cs < end {
                let ce = (cs + child_run_len).min(end);
                children.push(&child_data[cs..ce]);
                cs = ce;
            }
            RunChildren { children }
        };

        if params.parallel && num_runs > 1 {
            // Lower levels: one merge task per run (§5.2).
            out_parts.into_par_iter().zip(ptr_parts).enumerate().for_each(|(r, (out, snaps))| {
                merge_run(&make_children(r), f, k, out, snaps, false);
            });
        } else {
            // Upper levels (single run): parallelize inside the merge.
            for (r, (out, snaps)) in out_parts.into_iter().zip(ptr_parts).enumerate() {
                merge_run(&make_children(r), f, k, out, snaps, params.parallel);
            }
        }
        times.push(t0.elapsed());
    }
    times
}

/// A merge sort tree over integer payloads.
///
/// Payloads are produced by the preprocessing steps of §4/§5.1 (previous
/// occurrence indices, dense rank codes, or permutation entries) and are
/// always integers, so the tree itself is query-independent (§5.4).
///
/// The entire tree — every level's keys and every cascading-pointer slab —
/// lives in one contiguous allocation (see [`crate::arena`]); probes descend
/// through one buffer instead of hopping between per-level vectors.
#[derive(Debug, Clone)]
pub struct MergeSortTree<I: TreeIndex> {
    /// `[level-0 keys | … | top keys ‖ level-1 ptrs | … | top ptrs]`.
    arena: Vec<I>,
    levels: Vec<LevelMeta>,
    params: MstParams,
    n: usize,
}

impl<I: TreeIndex> MergeSortTree<I> {
    /// Builds a tree over `values` (level 0 keeps the original order).
    pub fn build(values: &[I], params: MstParams) -> Self {
        Self::build_profiled(values, params).0
    }

    /// Like [`Self::build`], but also reports the wall time spent merging
    /// each level — the "build tree layer" phases of the paper's cost
    /// breakdown (Figure 14).
    pub fn build_profiled(values: &[I], params: MstParams) -> (Self, Vec<std::time::Duration>) {
        let n = values.len();
        let meta = level_geometry(n, params);
        let keys_len = meta.len() * n;
        let ptrs_len = meta.last().unwrap().ptrs.end();
        let mut arena = vec![I::ZERO; keys_len + ptrs_len];
        let (keys, ptrs) = arena.split_at_mut(keys_len);
        keys[..n].copy_from_slice(values);
        let times = fill_levels(n, params, &meta, keys, ptrs);
        (MergeSortTree { arena, levels: meta, params, n }, times)
    }

    /// Wraps storage produced elsewhere (the annotated build fills a pair
    /// arena first, then extracts the keys into a fresh key arena).
    pub(crate) fn from_parts(
        arena: Vec<I>,
        levels: Vec<LevelMeta>,
        params: MstParams,
        n: usize,
    ) -> Self {
        debug_assert_eq!(arena.len(), levels.len() * n + levels.last().unwrap().ptrs.end());
        MergeSortTree { arena, levels, params, n }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Build parameters.
    pub fn params(&self) -> MstParams {
        self.params
    }

    /// The keys of `level`, all runs concatenated (`n` elements).
    #[inline]
    pub(crate) fn keys(&self, level: usize) -> &[I] {
        &self.arena[level * self.n..(level + 1) * self.n]
    }

    /// The cascading-pointer slab of `level`, laid out `[run][sample][child]`.
    #[inline]
    pub(crate) fn ptr_slab(&self, level: usize) -> &[I] {
        let base = self.levels.len() * self.n;
        let s = self.levels[level].ptrs;
        &self.arena[base + s.off..base + s.end()]
    }

    /// The element stored at (level-0) position `i`.
    #[inline]
    pub fn value(&self, i: usize) -> I {
        debug_assert!(i < self.n);
        self.arena[i]
    }

    /// Cascaded refinement: given the lower-bound position `pos` of threshold
    /// `t` within run `r` of `level`, returns the lower-bound position of `t`
    /// within child run `c`.
    ///
    #[inline]
    pub(crate) fn cascade(&self, level: usize, run: usize, pos: usize, c: usize, t: I) -> usize {
        let lvl = &self.levels[level];
        let child = &self.levels[level - 1];
        let child_run = run * (lvl.run_len / child.run_len) + c;
        let (cs, ce) = child.run_bounds(child_run, self.n);
        let clen = ce - cs;
        let child_keys = self.keys(level - 1);
        if !self.params.cascading {
            // Ablation mode: full binary search on every level (Figure 2's
            // O((log n)²) query instead of Figure 3's O(log n)).
            return child_keys[cs..ce].partition_point(|&x| x < t);
        }
        let f = self.params.fanout;
        let k = self.params.sampling;
        let s = pos / k;
        let base = (run * lvl.samples_per_run + s) * f + c;
        let ptrs = self.ptr_slab(level);
        let lo = ptrs[base].to_usize();
        let hi = ptrs[base + f].to_usize().min(clen);
        debug_assert!(lo <= hi);
        lo + child_keys[cs + lo..cs + hi].partition_point(|&x| x < t)
    }

    /// Batched landing-window warm-up for children `c_from..c_to` of `(level,
    /// run)`: reads each child's sampled cascading pointer (the bundle for
    /// all children shares a cache line) and touches the child key it lands
    /// on. Issued *before* the cascade loop so the scattered key-line misses
    /// overlap in the memory system instead of serializing behind each
    /// child's binary search. Pure reads folded into `warm` — results are
    /// unaffected (see [`prefetch_read`]).
    #[inline]
    fn warm_children(
        &self,
        level: usize,
        run: usize,
        pos: usize,
        c_from: usize,
        c_to: usize,
        warm: &mut usize,
    ) {
        if !self.params.prefetch || !self.params.cascading || c_to <= c_from {
            return;
        }
        let lvl = &self.levels[level];
        let child = &self.levels[level - 1];
        let f = self.params.fanout;
        let base = (run * lvl.samples_per_run + pos / self.params.sampling) * f + c_from;
        let ptrs = &self.ptr_slab(level)[base..base + (c_to - c_from)];
        let child_keys = self.keys(level - 1);
        for (i, p) in ptrs.iter().enumerate() {
            let (cs, ce) =
                child.run_bounds(run * (lvl.run_len / child.run_len) + c_from + i, self.n);
            if cs >= ce {
                break;
            }
            *warm ^= prefetch_read(child_keys, cs + p.to_usize().min(ce - cs - 1));
        }
    }

    /// Counts the elements at positions `[a, b)` whose value is smaller than
    /// `t`. O(log n) with the default parameters. This is the 2-d range
    /// counting query of §4.2 (distinct counts) and §4.4 (rank functions).
    ///
    /// ```
    /// use holistic_core::{MergeSortTree, MstParams};
    ///
    /// let vals: Vec<u32> = vec![5, 1, 4, 2, 3];
    /// let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(2, 1));
    /// // Among positions [1, 4) — values {1, 4, 2} — two are smaller than 4:
    /// assert_eq!(tree.count_below(1, 4, 4), 2);
    /// // Empty and clamped ranges are fine:
    /// assert_eq!(tree.count_below(3, 3, 9), 0);
    /// assert_eq!(tree.count_below(0, 100, 6), 5);
    /// ```
    pub fn count_below(&self, a: usize, b: usize, t: I) -> usize {
        let mut total = 0usize;
        self.decompose_below(a, b, t, |_, _, pos| total += pos);
        total
    }

    /// [`Self::count_below`] over a set of disjoint ranges (frames with
    /// exclusion holes, §4.7).
    pub fn count_below_multi(&self, ranges: &RangeSet, t: I) -> usize {
        ranges.iter().map(|(a, b)| self.count_below(a, b, t)).sum()
    }

    /// Cursor-seeded [`Self::count_below`]: bit-identical result, amortized
    /// O(1) per level when `(a, b, t)` advance monotonically across calls.
    pub fn count_below_with_cursor(
        &self,
        a: usize,
        b: usize,
        t: I,
        cur: &mut ProbeCursor,
    ) -> usize {
        let mut total = 0usize;
        self.decompose_below_cursor(a, b, t, 0, cur, |_, _, pos| total += pos);
        total
    }

    /// Cursor-seeded [`Self::count_below_multi`]; each frame piece keeps its
    /// own memo slot so exclusion holes don't destroy locality.
    pub fn count_below_multi_with_cursor(
        &self,
        ranges: &RangeSet,
        t: I,
        cur: &mut ProbeCursor,
    ) -> usize {
        let mut total = 0usize;
        for (ri, (a, b)) in ranges.iter().enumerate() {
            self.decompose_below_cursor(a, b, t, ri, cur, |_, _, pos| total += pos);
        }
        total
    }

    /// Decomposes the position range `[a, b)` into covering runs, invoking
    /// `visit(level, run_start, pos_of_t_in_run)` for every run that is fully
    /// contained in the query range. The visited `pos` values are the per-run
    /// lower bounds of `t`; their sum is `count_below`.
    pub(crate) fn decompose_below(
        &self,
        a: usize,
        b: usize,
        t: I,
        mut visit: impl FnMut(usize, usize, usize),
    ) {
        let b = b.min(self.n);
        if a >= b {
            return;
        }
        let top = self.levels.len() - 1;
        let top_pos = self.keys(top).partition_point(|&x| x < t);
        let mut warm = 0usize;
        self.descend_below(top, 0, a, b, t, top_pos, &mut warm, &mut visit);
        // One opaque use per query keeps every prefetch read alive without
        // putting a compiler barrier inside the descent loops.
        std::hint::black_box(warm);
    }

    /// Visits the covered positions of a *partial* level-1 run by scanning the
    /// contiguous base keys directly. The children are singletons, so each
    /// cascaded refinement degenerates to one comparison; the scan produces
    /// the same visits in the same order with the same per-singleton counts —
    /// bit-identical — while skipping up to `2 · fanout` sampled-pointer loads
    /// per boundary.
    #[inline]
    fn scan_leaves(&self, a: usize, b: usize, t: I, visit: &mut impl FnMut(usize, usize, usize)) {
        let keys0 = self.keys(0);
        for (p, &k) in keys0.iter().enumerate().take(b).skip(a) {
            visit(0, p, usize::from(k < t));
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn descend_below(
        &self,
        level: usize,
        run: usize,
        a: usize,
        b: usize,
        t: I,
        pos: usize,
        warm: &mut usize,
        visit: &mut impl FnMut(usize, usize, usize),
    ) {
        let lvl = &self.levels[level];
        let (rs, re) = lvl.run_bounds(run, self.n);
        debug_assert!(rs <= a && b <= re);
        if a == rs && b == re {
            visit(level, rs, pos);
            return;
        }
        debug_assert!(level > 0, "partial overlap impossible on singleton runs");
        if level == 1 {
            self.scan_leaves(a, b, t, visit);
            return;
        }
        let child_len = self.levels[level - 1].run_len;
        let ratio = lvl.run_len / child_len;
        let nc = self.params.fanout.min(ratio);
        // Issue every overlapped child's landing-window load up front so the
        // scattered misses overlap; the cascade loop then hits in-flight
        // lines instead of paying each miss behind the previous search.
        self.warm_children(
            level,
            run,
            pos,
            (a - rs) / child_len,
            ((b - 1 - rs) / child_len + 1).min(nc),
            warm,
        );
        for c in 0..nc {
            let cs = rs + c * child_len;
            if cs >= re {
                break;
            }
            let ce = (cs + child_len).min(re);
            let lo = a.max(cs);
            let hi = b.min(ce);
            if lo >= hi {
                continue;
            }
            let cpos = self.cascade(level, run, pos, c, t);
            if lo == cs && hi == ce {
                visit(level - 1, cs, cpos);
            } else {
                self.descend_below(level - 1, cs / child_len, lo, hi, t, cpos, warm, visit);
            }
        }
    }

    /// Cursor-seeded [`Self::decompose_below`]: same decomposition, same
    /// visit order, same `pos` values — only the per-level searches are
    /// seeded from `cur`'s memos for slot `slot` instead of running from
    /// scratch. A disabled cursor delegates to the stateless path.
    ///
    /// Visit order is preserved exactly (deepest-left first, each level's
    /// trailing siblings ascending, middles ascending, right path top-down),
    /// so even order-sensitive floating-point combines over the visited runs
    /// stay bit-identical.
    pub(crate) fn decompose_below_cursor(
        &self,
        a: usize,
        b: usize,
        t: I,
        slot: usize,
        cur: &mut ProbeCursor,
        mut visit: impl FnMut(usize, usize, usize),
    ) {
        if !cur.enabled() {
            cur.stats.stateless_probes += 1;
            self.decompose_below(a, b, t, visit);
            return;
        }
        let b = b.min(self.n);
        if a >= b {
            return;
        }
        cur.stats.cursor_probes += 1;
        let top = self.levels.len() - 1;
        cur.ensure_levels(top);
        let mut warm = 0usize;
        let mut pos = cur.top_position(self.keys(top), |&x| x < t);
        // Joint phase: walk down while [a, b) fits within one child, sharing
        // the left-side memo between both boundaries.
        let mut level = top;
        let mut run = 0usize;
        loop {
            let lvl = &self.levels[level];
            let (rs, re) = lvl.run_bounds(run, self.n);
            debug_assert!(rs <= a && b <= re);
            if a == rs && b == re {
                visit(level, rs, pos);
                break;
            }
            debug_assert!(level > 0, "partial overlap impossible on singleton runs");
            if level == 1 {
                // Same leaf fast path as the stateless descent: identical
                // visits, no per-singleton cascades, no memo traffic.
                self.scan_leaves(a, b, t, &mut visit);
                break;
            }
            let child_len = self.levels[level - 1].run_len;
            let ca = (a - rs) / child_len;
            let cb = (b - 1 - rs) / child_len;
            if ca == cb {
                pos = self.child_pos(level, run, pos, ca, t, slot, Side::Left, cur);
                run = rs / child_len + ca;
                level -= 1;
                continue;
            }
            // The paths split: descend the left boundary, emit fully-covered
            // middle children, then descend the right boundary.
            self.warm_children(level, run, pos, ca + 1, cb, &mut warm);
            let ca_pos = self.child_pos(level, run, pos, ca, t, slot, Side::Left, cur);
            self.left_descend(
                level - 1,
                rs / child_len + ca,
                a,
                t,
                ca_pos,
                slot,
                cur,
                &mut warm,
                &mut visit,
            );
            for c in ca + 1..cb {
                visit(level - 1, rs + c * child_len, self.cascade(level, run, pos, c, t));
            }
            let cb_pos = self.child_pos(level, run, pos, cb, t, slot, Side::Right, cur);
            self.right_descend(
                level - 1,
                rs / child_len + cb,
                b,
                t,
                cb_pos,
                slot,
                cur,
                &mut warm,
                &mut visit,
            );
            break;
        }
        std::hint::black_box(warm);
    }

    /// Lower bound of `t` in child `c` of `(level, run)`: gallops from the
    /// memoized position when the memo still points at that child run,
    /// otherwise falls back to the standard cascaded refinement (a reset).
    /// Either way the memo is updated for the next probe.
    #[allow(clippy::too_many_arguments)]
    fn child_pos(
        &self,
        level: usize,
        run: usize,
        pos: usize,
        c: usize,
        t: I,
        slot: usize,
        side: Side,
        cur: &mut ProbeCursor,
    ) -> usize {
        let lvl = &self.levels[level];
        let child = &self.levels[level - 1];
        let child_run = run * (lvl.run_len / child.run_len) + c;
        let idx = cur.memo_index(slot, side, level - 1);
        let m = cur.memo(idx);
        let new_pos = if m.run == child_run {
            let (cs, ce) = child.run_bounds(child_run, self.n);
            cur.stats.gallop_seeded += 1;
            gallop_partition_point(
                &self.keys(level - 1)[cs..ce],
                m.pos,
                |&x| x < t,
                &mut cur.stats.gallop_steps,
            )
        } else {
            cur.stats.level_resets += 1;
            self.cascade(level, run, pos, c, t)
        };
        cur.set_memo(idx, child_run, new_pos);
        new_pos
    }

    /// Descends the left boundary path: covers `[a, run_end)` of `(level,
    /// run)`. Emits the deeper subtree first, then the fully-covered trailing
    /// siblings in ascending order — the recursion's exact emission order.
    #[allow(clippy::too_many_arguments)]
    fn left_descend(
        &self,
        level: usize,
        run: usize,
        a: usize,
        t: I,
        pos: usize,
        slot: usize,
        cur: &mut ProbeCursor,
        warm: &mut usize,
        visit: &mut impl FnMut(usize, usize, usize),
    ) {
        let lvl = &self.levels[level];
        let (rs, re) = lvl.run_bounds(run, self.n);
        debug_assert!(rs <= a && a < re);
        if a == rs {
            visit(level, rs, pos);
            return;
        }
        debug_assert!(level > 0);
        if level == 1 {
            self.scan_leaves(a, re, t, visit);
            return;
        }
        let child_len = self.levels[level - 1].run_len;
        let ca = (a - rs) / child_len;
        let ratio = lvl.run_len / child_len;
        self.warm_children(level, run, pos, ca + 1, self.params.fanout.min(ratio), warm);
        let ca_pos = self.child_pos(level, run, pos, ca, t, slot, Side::Left, cur);
        self.left_descend(level - 1, rs / child_len + ca, a, t, ca_pos, slot, cur, warm, visit);
        for c in ca + 1..self.params.fanout.min(ratio) {
            let cs = rs + c * child_len;
            if cs >= re {
                break;
            }
            visit(level - 1, cs, self.cascade(level, run, pos, c, t));
        }
    }

    /// Descends the right boundary path: covers `[run_start, b)` of `(level,
    /// run)`. Emits the fully-covered leading siblings in ascending order,
    /// then the deeper subtree — the recursion's exact emission order.
    #[allow(clippy::too_many_arguments)]
    fn right_descend(
        &self,
        level: usize,
        run: usize,
        b: usize,
        t: I,
        pos: usize,
        slot: usize,
        cur: &mut ProbeCursor,
        warm: &mut usize,
        visit: &mut impl FnMut(usize, usize, usize),
    ) {
        let lvl = &self.levels[level];
        let (rs, re) = lvl.run_bounds(run, self.n);
        debug_assert!(rs < b && b <= re);
        if b == re {
            visit(level, rs, pos);
            return;
        }
        debug_assert!(level > 0);
        if level == 1 {
            self.scan_leaves(rs, b, t, visit);
            return;
        }
        let child_len = self.levels[level - 1].run_len;
        let cb = (b - 1 - rs) / child_len;
        self.warm_children(level, run, pos, 0, cb, warm);
        for c in 0..cb {
            visit(level - 1, rs + c * child_len, self.cascade(level, run, pos, c, t));
        }
        let cb_pos = self.child_pos(level, run, pos, cb, t, slot, Side::Right, cur);
        self.right_descend(level - 1, rs / child_len + cb, b, t, cb_pos, slot, cur, warm, visit);
    }

    /// Finds the level-0 position of the `j`-th element (0-based) whose
    /// *value* lies within the given half-open value ranges, or `None` if
    /// fewer than `j + 1` elements qualify.
    ///
    /// Qualifying elements are enumerated in *level-0 position order*. This is
    /// exactly §4.5's "the j-th index pointing into the frame": the tree is
    /// built over a permutation array sorted by the inner ORDER BY, so array
    /// position order *is* rank order, values are original row positions, and
    /// the frame is a value range. The returned position is the rank of the
    /// selected row; `perm[rank]` recovers the row itself.
    ///
    /// ```
    /// use holistic_core::{MergeSortTree, MstParams, RangeSet};
    ///
    /// // §4.5 use case: perm[rank] = original row, sorted by some inner key.
    /// let perm: Vec<u32> = vec![3, 0, 4, 1, 2];
    /// let tree = MergeSortTree::<u32>::build(&perm, MstParams::new(2, 1));
    /// // Rows (= values) in the frame [1, 4) sit at positions 0, 3, 4
    /// // (values 3, 1, 2). Select the j-th in position order:
    /// let frame = RangeSet::single(1, 4);
    /// assert_eq!(tree.select(&frame, 0), Some(0));
    /// assert_eq!(tree.select(&frame, 2), Some(4));
    /// assert_eq!(tree.select(&frame, 3), None); // only 3 rows qualify
    /// ```
    pub fn select(&self, ranges: &RangeSet, j: usize) -> Option<usize> {
        if self.n == 0 {
            return None;
        }
        let top = self.levels.len() - 1;
        let top_data = self.keys(top);
        // Per-range (lower, upper) positions within the current run; frames
        // decompose into at most MAX_RANGES pieces, so fixed-size scratch
        // keeps the probe loop allocation-free.
        let mut bounds = [(0usize, 0usize); MAX_RANGES];
        for (ri, (lo, hi)) in ranges.iter().enumerate() {
            bounds[ri] = (
                top_data.partition_point(|&x| x.to_usize() < lo),
                top_data.partition_point(|&x| x.to_usize() < hi),
            );
        }
        self.select_descend(ranges, j, bounds)
    }

    /// Cursor-seeded [`Self::select`]: the two top-level value-bound searches
    /// per frame piece gallop from the previous probe's positions (the
    /// descent below the top level is already O(1) per level via sampled
    /// cascading). Bit-identical to the stateless path on every input.
    pub fn select_with_cursor(
        &self,
        ranges: &RangeSet,
        j: usize,
        cur: &mut SelectCursor,
    ) -> Option<usize> {
        if !cur.enabled() {
            cur.stats.stateless_probes += 1;
            return self.select(ranges, j);
        }
        if self.n == 0 {
            return None;
        }
        cur.stats.cursor_probes += 1;
        let top = self.levels.len() - 1;
        let top_data = self.keys(top);
        let mut bounds = [(0usize, 0usize); MAX_RANGES];
        for (ri, (lo, hi)) in ranges.iter().enumerate() {
            bounds[ri] = (cur.seek(2 * ri, top_data, lo), cur.seek(2 * ri + 1, top_data, hi));
        }
        self.select_descend(ranges, j, bounds)
    }

    /// Shared select descent from resolved top-level bounds.
    fn select_descend(
        &self,
        ranges: &RangeSet,
        j: usize,
        mut bounds: [(usize, usize); MAX_RANGES],
    ) -> Option<usize> {
        let nr = ranges.len();
        let total: usize = bounds[..nr].iter().map(|&(l, h)| h - l).sum();
        if j >= total {
            return None;
        }
        let mut warm = 0usize;
        let mut j = j;
        let mut level = self.levels.len() - 1;
        let mut run = 0usize;
        while level > 0 {
            let lvl = &self.levels[level];
            let (rs, re) = lvl.run_bounds(run, self.n);
            if level == 1 {
                // Leaf fast path: singleton children contribute 0 or 1 per
                // value range, so the cascaded per-range counts degenerate to
                // direct membership tests on the contiguous base keys. Same
                // enumeration order, no sampled-pointer loads.
                std::hint::black_box(warm);
                let keys0 = self.keys(0);
                for (p, &k) in keys0.iter().enumerate().take(re).skip(rs) {
                    let v = k.to_usize();
                    let mut cnt = 0usize;
                    for ri in 0..nr {
                        let (lo_v, hi_v) = ranges.nth(ri);
                        cnt += usize::from(v >= lo_v && v < hi_v);
                    }
                    if j < cnt {
                        return Some(p);
                    }
                    j -= cnt;
                }
                debug_assert!(false, "select descent lost the target");
                return None;
            }
            let child_len = self.levels[level - 1].run_len;
            // Warm every child's landing window for the first range's lower
            // bound before the count loop, overlapping the scattered misses.
            let nc = (re - rs).div_ceil(child_len).min(self.params.fanout);
            self.warm_children(level, run, bounds[0].0, 0, nc, &mut warm);
            let mut found = false;
            let mut scratch = [(0usize, 0usize); MAX_RANGES];
            for c in 0..self.params.fanout {
                let cs = rs + c * child_len;
                if cs >= re {
                    break;
                }
                let mut cnt = 0usize;
                for ri in 0..nr {
                    let (blo, bhi) = bounds[ri];
                    let (lo_v, hi_v) = ranges.nth(ri);
                    let pl = self.cascade(level, run, blo, c, I::from_usize(lo_v));
                    let ph = self.cascade(level, run, bhi, c, I::from_usize(hi_v));
                    cnt += ph - pl;
                    scratch[ri] = (pl, ph);
                }
                if j < cnt {
                    bounds = scratch;
                    run = cs / child_len;
                    level -= 1;
                    found = true;
                    break;
                }
                j -= cnt;
            }
            debug_assert!(found, "select descent lost the target");
            if !found {
                return None;
            }
        }
        std::hint::black_box(warm);
        // Level 0: singleton run.
        Some(run)
    }

    /// Convenience: select within a single value range `[lo, hi)`.
    pub fn select_in_range(&self, lo: usize, hi: usize, j: usize) -> Option<usize> {
        self.select(&RangeSet::single(lo, hi), j)
    }

    /// Total number of stored elements across all levels (memory accounting,
    /// §5.1/§6.6).
    pub fn stored_elements(&self) -> usize {
        self.levels.len() * self.n
    }

    /// Total number of stored cascading pointers.
    pub fn stored_pointers(&self) -> usize {
        self.levels.last().map(|m| m.ptrs.end()).unwrap_or(0)
    }

    /// Number of levels (including the base level).
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Size in bytes of the single backing allocation (keys region plus
    /// pointer slabs). Metadata (`LevelMeta` table) is O(height) and excluded.
    pub fn arena_bytes(&self) -> usize {
        self.arena.len() * std::mem::size_of::<I>()
    }

    /// Internal: the per-level metadata table (for in-crate structure tests).
    #[cfg(test)]
    pub(crate) fn level_meta(&self) -> &[LevelMeta] {
        &self.levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn brute_count_below(vals: &[u32], a: usize, b: usize, t: u32) -> usize {
        let b = b.min(vals.len());
        if a >= b {
            return 0;
        }
        vals[a..b].iter().filter(|&&v| v < t).count()
    }

    fn brute_select(vals: &[u32], lo: usize, hi: usize, j: usize) -> Option<usize> {
        // j-th qualifying element in POSITION order.
        vals.iter()
            .enumerate()
            .filter(|(_, &v)| (v as usize) >= lo && (v as usize) < hi)
            .map(|(i, _)| i)
            .nth(j)
    }

    #[test]
    fn figure1_distinct_count() {
        // prevIdcs of Figure 1 in shifted encoding (0 = none).
        let prev: Vec<u32> = vec![0, 0, 2, 1, 0, 3, 5, 4];
        let tree = MergeSortTree::<u32>::build(&prev, MstParams::new(2, 1));
        // Frame [3, 8): entries < 3+1 = 4.
        assert_eq!(tree.count_below(3, 8, 4), 3);
        // Whole input: 3 distinct values (entries < 0+1).
        assert_eq!(tree.count_below(0, 8, 1), 3);
    }

    #[test]
    fn empty_and_singleton_trees() {
        let tree = MergeSortTree::<u32>::build(&[], MstParams::default());
        assert_eq!(tree.count_below(0, 0, 5), 0);
        assert!(tree.is_empty());
        assert!(tree.select_in_range(0, 10, 0).is_none());
        assert_eq!(tree.arena_bytes(), 0);

        let tree = MergeSortTree::<u32>::build(&[7], MstParams::default());
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.count_below(0, 1, 8), 1);
        assert_eq!(tree.count_below(0, 1, 7), 0);
        assert_eq!(tree.select_in_range(7, 8, 0), Some(0));
        assert_eq!(tree.select_in_range(7, 8, 1), None);
    }

    #[test]
    fn height_matches_fanout() {
        let vals: Vec<u32> = (0..100).collect();
        let t2 = MergeSortTree::<u32>::build(&vals, MstParams::new(2, 4));
        assert_eq!(t2.height(), 8); // 2^7 = 128 >= 100
        let t32 = MergeSortTree::<u32>::build(&vals, MstParams::new(32, 4));
        assert_eq!(t32.height(), 3); // 32^2 >= 100
    }

    #[test]
    fn count_below_random_many_params() {
        let mut rng = StdRng::seed_from_u64(42);
        for &(f, k) in &[(2, 1), (2, 3), (4, 2), (8, 32), (32, 32), (5, 7)] {
            for _ in 0..8 {
                let n = rng.gen_range(0..300);
                let vals: Vec<u32> = (0..n).map(|_| rng.gen_range(0..50)).collect();
                let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(f, k));
                for _ in 0..40 {
                    let a = rng.gen_range(0..=n);
                    let b = rng.gen_range(0..=n);
                    let t = rng.gen_range(0..55);
                    assert_eq!(
                        tree.count_below(a, b, t),
                        brute_count_below(&vals, a, b.min(n), t),
                        "n={n} f={f} k={k} a={a} b={b} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn select_random_many_params() {
        let mut rng = StdRng::seed_from_u64(43);
        for &(f, k) in &[(2, 1), (3, 2), (8, 32), (32, 32)] {
            for _ in 0..8 {
                let n = rng.gen_range(1..250);
                // Values are a permutation (the §4.5 use case).
                let mut vals: Vec<u32> = (0..n as u32).collect();
                for i in (1..n).rev() {
                    vals.swap(i, rng.gen_range(0..=i));
                }
                let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(f, k));
                for _ in 0..40 {
                    let lo = rng.gen_range(0..=n);
                    let hi = rng.gen_range(0..=n);
                    let j = rng.gen_range(0..n + 2);
                    assert_eq!(
                        tree.select_in_range(lo, hi, j),
                        brute_select(&vals, lo, hi, j),
                        "n={n} f={f} k={k} lo={lo} hi={hi} j={j}"
                    );
                }
            }
        }
    }

    #[test]
    fn select_with_duplicate_values() {
        // Qualifying elements enumerate in position order.
        let vals: Vec<u32> = vec![5, 3, 5, 3, 5];
        let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(2, 1));
        for j in 0..5 {
            assert_eq!(tree.select_in_range(3, 6, j), Some(j));
        }
        assert_eq!(tree.select_in_range(5, 6, 1), Some(2));
        assert_eq!(tree.select_in_range(3, 4, 1), Some(3));
        assert_eq!(tree.select_in_range(3, 4, 2), None);
    }

    #[test]
    fn select_multi_range() {
        let vals: Vec<u32> = (0..20).rev().collect(); // 19, 18, ..., 0
        let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(4, 2));
        // Value ranges [2,5) and [10,12): qualifying values 11,10,4,3,2 appear
        // at positions 8, 9, 15, 16, 17 (value v sits at position 19 - v).
        let rs = RangeSet::from_ranges(&[(2, 5), (10, 12)]);
        let positions: Vec<Option<usize>> = (0..6).map(|j| tree.select(&rs, j)).collect();
        assert_eq!(positions, vec![Some(8), Some(9), Some(15), Some(16), Some(17), None]);
    }

    #[test]
    fn count_below_multi_sums_ranges() {
        let vals: Vec<u32> = vec![1, 9, 2, 8, 3, 7, 4, 6, 5, 0];
        let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(2, 2));
        let rs = RangeSet::from_ranges(&[(0, 3), (6, 9)]);
        let brute: usize = [0..3usize, 6..9usize]
            .iter()
            .flat_map(|r| vals[r.clone()].iter())
            .filter(|&&v| v < 5)
            .count();
        assert_eq!(tree.count_below_multi(&rs, 5), brute);
    }

    #[test]
    fn u64_tree_matches_u32_tree() {
        let mut rng = StdRng::seed_from_u64(44);
        let n = 200;
        let vals32: Vec<u32> = (0..n).map(|_| rng.gen_range(0..100)).collect();
        let vals64: Vec<u64> = vals32.iter().map(|&v| v as u64).collect();
        let t32 = MergeSortTree::<u32>::build(&vals32, MstParams::default());
        let t64 = MergeSortTree::<u64>::build(&vals64, MstParams::default());
        for a in (0..n as usize).step_by(17) {
            for t in (0..100).step_by(13) {
                assert_eq!(
                    t32.count_below(a, n as usize, t as u32),
                    t64.count_below(a, n as usize, t as u64)
                );
            }
        }
    }

    #[test]
    fn serial_equals_parallel_build() {
        let mut rng = StdRng::seed_from_u64(45);
        let vals: Vec<u32> = (0..5000).map(|_| rng.gen_range(0..1000)).collect();
        let tp = MergeSortTree::<u32>::build(&vals, MstParams::new(8, 8));
        let ts = MergeSortTree::<u32>::build(&vals, MstParams::new(8, 8).serial());
        for lvl in 0..tp.height() {
            assert_eq!(tp.keys(lvl), ts.keys(lvl), "level {lvl} keys");
            assert_eq!(tp.ptr_slab(lvl), ts.ptr_slab(lvl), "level {lvl} ptrs");
        }
    }

    #[test]
    fn levels_are_sorted_run_permutations() {
        let mut rng = StdRng::seed_from_u64(46);
        let vals: Vec<u32> = (0..777).map(|_| rng.gen_range(0..100)).collect();
        let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(4, 8));
        let mut sorted_all = vals.clone();
        sorted_all.sort_unstable();
        for lvl in 0..tree.height() {
            let meta = tree.level_meta()[lvl];
            let keys = tree.keys(lvl);
            // Each level is a permutation of the input.
            let mut level_sorted = keys.to_vec();
            level_sorted.sort_unstable();
            assert_eq!(level_sorted, sorted_all);
            // Each run is sorted.
            let mut r = 0;
            while r * meta.run_len < vals.len() {
                let (s, e) = meta.run_bounds(r, vals.len());
                assert!(keys[s..e].windows(2).all(|w| w[0] <= w[1]));
                r += 1;
            }
        }
        // Top level is fully sorted.
        assert_eq!(tree.keys(tree.height() - 1), &sorted_all[..]);
    }

    #[test]
    fn arena_is_one_allocation_with_level_major_layout() {
        let vals: Vec<u32> = (0..300).map(|i| (i * 37) % 97).collect();
        let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(4, 4));
        // Keys region: levels stored back-to-back, n elements each; the base
        // level is the input itself.
        assert_eq!(tree.keys(0), &vals[..]);
        assert_eq!(tree.arena_bytes(), (tree.stored_elements() + tree.stored_pointers()) * 4);
        // Pointer slabs are contiguous and non-overlapping in level order.
        let metas = tree.level_meta();
        assert_eq!(metas[0].ptrs.len, 0);
        for w in 1..metas.len() {
            assert_eq!(metas[w].ptrs.off, metas[w - 1].ptrs.end());
        }
    }

    #[test]
    fn no_cascading_gives_identical_answers() {
        let mut rng = StdRng::seed_from_u64(48);
        let n = 400;
        let vals: Vec<u32> = (0..n).map(|_| rng.gen_range(0..120)).collect();
        let with = MergeSortTree::<u32>::build(&vals, MstParams::new(8, 16));
        let without = MergeSortTree::<u32>::build(&vals, MstParams::new(8, 16).no_cascading());
        for _ in 0..200 {
            let a = rng.gen_range(0..=n as usize);
            let b = rng.gen_range(a..=n as usize);
            let t = rng.gen_range(0..130);
            assert_eq!(with.count_below(a, b, t), without.count_below(a, b, t));
            let (lo, hi) = (rng.gen_range(0..60), rng.gen_range(60..130));
            let j = rng.gen_range(0..n as usize);
            assert_eq!(with.select_in_range(lo, hi, j), without.select_in_range(lo, hi, j));
        }
    }

    #[test]
    fn no_prefetch_gives_identical_answers() {
        let mut rng = StdRng::seed_from_u64(52);
        let n = 500;
        let vals: Vec<u32> = (0..n).map(|_| rng.gen_range(0..140)).collect();
        let with = MergeSortTree::<u32>::build(&vals, MstParams::new(8, 4));
        let without = MergeSortTree::<u32>::build(&vals, MstParams::new(8, 4).no_prefetch());
        for _ in 0..200 {
            let a = rng.gen_range(0..=n as usize);
            let b = rng.gen_range(a..=n as usize);
            let t = rng.gen_range(0..150);
            assert_eq!(with.count_below(a, b, t), without.count_below(a, b, t));
            let (lo, hi) = (rng.gen_range(0..70), rng.gen_range(70..150));
            let j = rng.gen_range(0..40);
            assert_eq!(with.select_in_range(lo, hi, j), without.select_in_range(lo, hi, j));
        }
    }

    #[test]
    fn cursor_count_below_matches_stateless_on_random_probes() {
        let mut rng = StdRng::seed_from_u64(49);
        for &(f, k) in &[(2, 1), (4, 2), (8, 32), (32, 32), (5, 7)] {
            let n = rng.gen_range(1..400);
            let vals: Vec<u32> = (0..n).map(|_| rng.gen_range(0..80)).collect();
            let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(f, k));
            let mut cur = ProbeCursor::new();
            // Monotonic sweep, then fully random jumps — identical either way.
            let mut a = 0usize;
            let mut b = 0usize;
            for i in 0..n as usize {
                a = a.max(i.saturating_sub(7));
                b = (b.max(i + 1)).min(n as usize);
                let t = rng.gen_range(0..85);
                assert_eq!(
                    tree.count_below_with_cursor(a, b, t, &mut cur),
                    tree.count_below(a, b, t)
                );
            }
            for _ in 0..120 {
                let a = rng.gen_range(0..=n as usize);
                let b = rng.gen_range(0..=n as usize + 2);
                let t = rng.gen_range(0..85);
                assert_eq!(
                    tree.count_below_with_cursor(a, b, t, &mut cur),
                    tree.count_below(a, b, t)
                );
            }
            assert!(cur.stats.cursor_probes > 0);
        }
    }

    #[test]
    fn cursor_multi_and_select_match_stateless() {
        let mut rng = StdRng::seed_from_u64(50);
        let n = 300usize;
        let mut perm: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }
        let tree = MergeSortTree::<u32>::build(&perm, MstParams::new(8, 8));
        let mut pc = ProbeCursor::new();
        let mut sc = SelectCursor::new();
        for i in 0..n {
            // Frame with an exclusion hole around i.
            let lo = i.saturating_sub(20);
            let hi = (i + 20).min(n);
            let rs = RangeSet::frame_minus_holes(lo, hi, &[(i, (i + 1).min(hi))]);
            let t = rng.gen_range(0..n as u32 + 2);
            assert_eq!(
                tree.count_below_multi_with_cursor(&rs, t, &mut pc),
                tree.count_below_multi(&rs, t)
            );
            let j = rng.gen_range(0..25);
            assert_eq!(tree.select_with_cursor(&rs, j, &mut sc), tree.select(&rs, j));
        }
        assert!(pc.stats.gallop_seeded > 0);
        assert!(sc.stats.gallop_seeded > 0);
    }

    #[test]
    fn disabled_cursor_delegates_and_counts() {
        let vals: Vec<u32> = (0..64).collect();
        let tree = MergeSortTree::<u32>::build(&vals, MstParams::default());
        let mut pc = ProbeCursor::disabled();
        let mut sc = SelectCursor::disabled();
        assert_eq!(tree.count_below_with_cursor(3, 40, 20, &mut pc), tree.count_below(3, 40, 20));
        let rs = RangeSet::single(5, 30);
        assert_eq!(tree.select_with_cursor(&rs, 4, &mut sc), tree.select(&rs, 4));
        assert_eq!(pc.stats.stateless_probes, 1);
        assert_eq!(pc.stats.cursor_probes, 0);
        assert_eq!(sc.stats.stateless_probes, 1);
        assert_eq!(sc.stats.gallop_seeded, 0);
    }

    #[test]
    fn cursor_visit_order_matches_stateless() {
        // Order-sensitive downstream combines (float aggregates) require the
        // cursor descent to emit the exact visit sequence of the recursion.
        let mut rng = StdRng::seed_from_u64(51);
        for &(f, k) in &[(2, 1), (3, 2), (8, 8), (32, 32)] {
            let n = 257usize;
            let vals: Vec<u32> = (0..n).map(|_| rng.gen_range(0..64)).collect();
            let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(f, k));
            let mut cur = ProbeCursor::new();
            for _ in 0..200 {
                let a = rng.gen_range(0..=n);
                let b = rng.gen_range(0..=n);
                let t = rng.gen_range(0..70);
                let mut stateless = Vec::new();
                tree.decompose_below(a, b, t, |l, s, p| stateless.push((l, s, p)));
                let mut cursored = Vec::new();
                tree.decompose_below_cursor(a, b, t, 0, &mut cur, |l, s, p| {
                    cursored.push((l, s, p))
                });
                assert_eq!(cursored, stateless, "f={f} k={k} a={a} b={b} t={t}");
            }
        }
    }

    #[test]
    fn memory_accounting_matches_formula() {
        // §5.1: ⌈log_f n⌉·n data elements above... including base level the
        // tree stores (height)·n elements; pointer count ≈ (height−1)·n·f/k.
        let n = 4096usize;
        let vals: Vec<u32> = (0..n as u32).collect();
        let (f, k) = (4, 8);
        let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(f, k));
        assert_eq!(tree.stored_elements(), tree.height() * n);
        let expected_ptrs: usize = (1..tree.height())
            .map(|lvl| {
                let run_len = f.pow(lvl as u32);
                let runs = n.div_ceil(run_len);
                (0..runs)
                    .map(|r| {
                        let len = ((r + 1) * run_len).min(n) - r * run_len;
                        (len / k + 2) * f
                    })
                    .sum::<usize>()
            })
            .sum();
        assert_eq!(tree.stored_pointers(), expected_ptrs);
    }
}
