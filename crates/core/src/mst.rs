//! The merge sort tree data structure (§4.2, §4.5, §5.1).
//!
//! Storage is a single contiguous arena per tree (see [`crate::arena`]): all
//! levels' keys live in one allocation, followed by the sampled
//! cascading-pointer slabs, with a small per-level metadata table. Run
//! boundaries are `(offset, len)` arithmetic — no per-run or per-level owned
//! vectors. The probe descent batches software prefetches (safe cache-warming
//! reads) for every overlapped child's cascaded landing window before the
//! cascade loop of each partial node, so the scattered key-line misses
//! overlap in the memory system, and short-circuits partial level-1 runs by
//! scanning the contiguous base keys directly instead of cascading into
//! singleton children.

use crate::arena::{prefetch_read, Span, SpillableArena};
use crate::cursor::{gallop_partition_point, ProbeCursor, SelectCursor, Side};
use crate::index::TreeIndex;
use crate::merge::{merge_run, Keyed, RunChildren};
use crate::params::MstParams;
use crate::range_set::{RangeSet, MAX_RANGES};
use rayon::prelude::*;

/// Per-level metadata of an arena-backed merge sort tree.
///
/// A level's keys occupy `[level · n, (level + 1) · n)` of the keys region
/// (every level stores exactly `n` elements, so key offsets need no table);
/// its cascading-pointer slab is addressed by an explicit [`Span`] relative
/// to the pointer region. Per-run pointer-slab offsets are the closed form
/// `run · samples_per_run · fanout` — valid because every run before the last
/// is full-length — replacing the per-level `sample_offsets` vector of the
/// pre-arena representation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LevelMeta {
    /// Nominal run length `fanout^level` (the final run may be shorter).
    pub run_len: usize,
    /// This level's pointer slab within the pointer region (empty at level 0).
    pub ptrs: Span,
    /// Pointer samples per full-length run: `run_len / sampling + 2` (the two
    /// extra slots are the trailing "after everything" sentinels).
    pub samples_per_run: usize,
}

impl LevelMeta {
    /// Bounds `[start, end)` of run `r` given `n` total elements.
    #[inline]
    pub fn run_bounds(&self, r: usize, n: usize) -> (usize, usize) {
        let start = r * self.run_len;
        (start, (start + self.run_len).min(n))
    }
}

/// Computes the level table for `n` elements: run lengths, pointer-slab spans
/// and sample strides, without touching any data. The whole arena size is
/// known from this table alone, so storage is allocated exactly once.
pub(crate) fn level_geometry(n: usize, params: MstParams) -> Vec<LevelMeta> {
    params.validate();
    let (f, k) = (params.fanout, params.sampling);
    let mut meta =
        vec![LevelMeta { run_len: 1, ptrs: Span::new(0, 0), samples_per_run: 1 / k + 2 }];
    while meta.last().unwrap().run_len < n {
        let run_len = meta.last().unwrap().run_len.saturating_mul(f);
        let num_runs = n.div_ceil(run_len);
        let samples_per_run = run_len / k + 2;
        let last_len = n - (num_runs - 1) * run_len;
        let total_samples = (num_runs - 1) * samples_per_run + (last_len / k + 2);
        let off = meta.last().unwrap().ptrs.end();
        meta.push(LevelMeta { run_len, ptrs: Span::new(off, total_samples * f), samples_per_run });
    }
    meta
}

/// Merges level upon level into preallocated storage.
///
/// `data` holds `meta.len() · n` elements with `data[0..n]` prefilled with
/// the base level (input order); `ptrs` holds the concatenated pointer slabs
/// (`meta.last().ptrs.end()` elements). Returns the wall time spent merging
/// each level — the "build tree layer" phases of Figure 14.
///
/// Lower levels parallelize across runs, upper levels inside a single merge
/// via multisequence selection (§5.2), exactly as the per-level-vector build
/// did — outputs are bit-identical, only the backing storage changed.
pub(crate) fn fill_levels<I: TreeIndex, T: Keyed<I>>(
    n: usize,
    params: MstParams,
    meta: &[LevelMeta],
    data: &mut [T],
    ptrs: &mut [I],
) -> Vec<std::time::Duration> {
    debug_assert_eq!(data.len(), meta.len() * n);
    let mut times = Vec::with_capacity(meta.len().saturating_sub(1));
    for lvl in 1..meta.len() {
        let t0 = std::time::Instant::now();
        // The child level is read-only while the current level is written:
        // disjoint regions of the single keys buffer.
        let (lower, upper) = data.split_at_mut(lvl * n);
        let child_data = &lower[(lvl - 1) * n..];
        let out_level = &mut upper[..n];
        let ptr_level = meta[lvl].ptrs.slice_mut(ptrs);
        fill_one_level(n, params, meta, lvl, child_data, out_level, ptr_level);
        times.push(t0.elapsed());
    }
    times
}

/// Merges level `lvl - 1` into level `lvl`'s preallocated key and pointer
/// storage — the per-level body shared by the in-memory build (which walks
/// one big arena) and the out-of-core build (which ping-pongs two `n`-sized
/// buffers, spilling each completed level). Merging is identical either way,
/// so the two builds are bit-identical by construction.
pub(crate) fn fill_one_level<I: TreeIndex, T: Keyed<I>>(
    n: usize,
    params: MstParams,
    meta: &[LevelMeta],
    lvl: usize,
    child_data: &[T],
    out_level: &mut [T],
    ptr_level: &mut [I],
) {
    let (f, k) = (params.fanout, params.sampling);
    let m = meta[lvl];
    let child_run_len = meta[lvl - 1].run_len;
    let run_len = m.run_len;
    let num_runs = n.div_ceil(run_len);

    // Carve output and pointer storage into per-run slices.
    let mut out_parts: Vec<&mut [T]> = Vec::with_capacity(num_runs);
    let mut ptr_parts: Vec<&mut [I]> = Vec::with_capacity(num_runs);
    {
        let mut data_rest = out_level;
        let mut ptr_rest = ptr_level;
        for r in 0..num_runs {
            let start = r * run_len;
            let len = (start + run_len).min(n) - start;
            let (h, t) = data_rest.split_at_mut(len);
            out_parts.push(h);
            data_rest = t;
            let (ph, pt) = ptr_rest.split_at_mut((len / k + 2) * f);
            ptr_parts.push(ph);
            ptr_rest = pt;
        }
    }

    let make_children = |r: usize| -> RunChildren<'_, T> {
        let start = r * run_len;
        let end = (start + run_len).min(n);
        let mut children = Vec::with_capacity(f);
        let mut cs = start;
        while cs < end {
            let ce = (cs + child_run_len).min(end);
            children.push(&child_data[cs..ce]);
            cs = ce;
        }
        RunChildren { children }
    };

    if params.parallel && num_runs > 1 {
        // Lower levels: one merge task per run (§5.2).
        out_parts.into_par_iter().zip(ptr_parts).enumerate().for_each(|(r, (out, snaps))| {
            merge_run(&make_children(r), f, k, out, snaps, false);
        });
    } else {
        // Upper levels (single run): parallelize inside the merge.
        for (r, (out, snaps)) in out_parts.into_iter().zip(ptr_parts).enumerate() {
            merge_run(&make_children(r), f, k, out, snaps, params.parallel);
        }
    }
}

/// Total arena length (keys + pointer slabs, in elements) of a tree over `n`
/// values — a pure function of the geometry, so budget governors can price a
/// build before running it.
pub fn mst_arena_len(n: usize, params: MstParams) -> usize {
    let meta = level_geometry(n, params);
    meta.len() * n + meta.last().expect("geometry has at least one level").ptrs.end()
}

/// Peak resident element count of [`MergeSortTree::build_spilled`]: the two
/// ping-pong key buffers plus the largest single pointer slab — what an
/// out-of-core build keeps in memory instead of the full
/// [`mst_arena_len`]-element arena.
pub fn mst_spill_build_len(n: usize, params: MstParams) -> usize {
    let meta = level_geometry(n, params);
    2 * n + meta.iter().map(|m| m.ptrs.len).max().unwrap_or(0)
}

/// The cumulative segment boundaries of an arena slab in layout order: one
/// segment per key level (each `n` elements), then one per pointer slab.
/// This is the granularity [`crate::arena::SpillableArena`] spills and
/// re-faults at.
fn arena_segments(levels: &[LevelMeta], n: usize) -> Vec<usize> {
    let h = levels.len();
    let mut segs = Vec::with_capacity(2 * h);
    segs.push(0);
    for l in 1..=h {
        segs.push(l * n);
    }
    let base = h * n;
    for m in &levels[1..] {
        segs.push(base + m.ptrs.end());
    }
    segs
}

/// A merge sort tree over integer payloads.
///
/// Payloads are produced by the preprocessing steps of §4/§5.1 (previous
/// occurrence indices, dense rank codes, or permutation entries) and are
/// always integers, so the tree itself is query-independent (§5.4).
///
/// The entire tree — every level's keys and every cascading-pointer slab —
/// lives in one contiguous allocation (see [`crate::arena`]); probes descend
/// through one buffer instead of hopping between per-level vectors.
#[derive(Debug, Clone)]
pub struct MergeSortTree<I: TreeIndex> {
    /// `[level-0 keys | … | top keys ‖ level-1 ptrs | … | top ptrs]`.
    arena: Vec<I>,
    levels: Vec<LevelMeta>,
    params: MstParams,
    n: usize,
    /// True when the top run is the identity permutation `0..n` — always the
    /// case for the executor's position trees (built over a permutation of
    /// `0..n`, whose sorted order is the identity). Rank in the identity is a
    /// clamp, so the block kernels answer top searches arithmetically instead
    /// of binary-searching `log n` scattered lines per threshold.
    identity_top: bool,
    /// Every [`TOP_SAMPLE_STRIDE`]-th top-run key (empty for identity tops).
    /// The sample vector is `n / 64` keys — cache-resident at any realistic
    /// `n` — so the block kernels' top searches binary-search the samples
    /// without missing, then finish inside one warmed `≤ stride` window
    /// instead of chasing `log n` scattered lines.
    top_samples: Vec<I>,
}

/// The metadata of a [`MergeSortTree`] without its arena slab: level table,
/// build parameters and the (cache-sized) top-run samples. A parked tree is
/// exactly a shell plus a spilled slab; [`MergeSortTree::from_shell`]
/// reassembles the tree without rescanning anything.
#[derive(Debug, Clone)]
pub struct MstShell<I: TreeIndex> {
    levels: Vec<LevelMeta>,
    params: MstParams,
    n: usize,
    identity_top: bool,
    top_samples: Vec<I>,
}

impl<I: TreeIndex> MstShell<I> {
    /// Number of elements of the (parked) tree.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the parked tree is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The arena's cumulative segment boundaries in layout order (one
    /// segment per key level, then one per pointer slab) — the segment table
    /// a [`SpillableArena`] for this tree must be built with.
    pub fn segments(&self) -> Vec<usize> {
        arena_segments(&self.levels, self.n)
    }

    /// Full arena footprint of the tree when resident, in bytes.
    pub fn arena_bytes(&self) -> usize {
        (self.levels.len() * self.n + self.levels.last().unwrap().ptrs.end())
            * std::mem::size_of::<I>()
    }
}

impl<I: TreeIndex> MergeSortTree<I> {
    /// Builds a tree over `values` (level 0 keeps the original order).
    pub fn build(values: &[I], params: MstParams) -> Self {
        Self::build_profiled(values, params).0
    }

    /// Like [`Self::build`], but also reports the wall time spent merging
    /// each level — the "build tree layer" phases of the paper's cost
    /// breakdown (Figure 14).
    pub fn build_profiled(values: &[I], params: MstParams) -> (Self, Vec<std::time::Duration>) {
        let n = values.len();
        let meta = level_geometry(n, params);
        let keys_len = meta.len() * n;
        let ptrs_len = meta.last().unwrap().ptrs.end();
        let mut arena = vec![I::ZERO; keys_len + ptrs_len];
        let (keys, ptrs) = arena.split_at_mut(keys_len);
        keys[..n].copy_from_slice(values);
        let times = fill_levels(n, params, &meta, keys, ptrs);
        let top_keys = &keys[(meta.len() - 1) * n..];
        let identity_top = top_is_identity(top_keys, n);
        let top_samples = sample_top(top_keys, identity_top);
        (MergeSortTree { arena, levels: meta, params, n, identity_top, top_samples }, times)
    }

    /// Wraps storage produced elsewhere (the annotated build fills a pair
    /// arena first, then extracts the keys into a fresh key arena).
    pub(crate) fn from_parts(
        arena: Vec<I>,
        levels: Vec<LevelMeta>,
        params: MstParams,
        n: usize,
    ) -> Self {
        debug_assert_eq!(arena.len(), levels.len() * n + levels.last().unwrap().ptrs.end());
        let top_keys = &arena[(levels.len() - 1) * n..levels.len() * n];
        let identity_top = top_is_identity(top_keys, n);
        let top_samples = sample_top(top_keys, identity_top);
        MergeSortTree { arena, levels, params, n, identity_top, top_samples }
    }

    /// Builds a tree over `values` without ever materializing the full
    /// arena: levels are merged into two ping-pong buffers through the same
    /// loser-tree merge as [`Self::build`] and each completed level (keys,
    /// then its cascading-pointer slab) is streamed straight into a spill
    /// file. The result is *born parked*: re-fault the returned arena and
    /// wrap it with [`Self::from_shell`] to probe it.
    ///
    /// Peak resident memory is [`mst_spill_build_len`] elements (two key
    /// buffers plus one pointer slab) instead of the full
    /// [`mst_arena_len`]-element arena — the out-of-core path for partitions
    /// whose tree exceeds the memory budget.
    ///
    /// Bit-identical to [`Self::build`]: both run `fill_one_level` per
    /// level; only the backing storage differs.
    pub fn build_spilled(
        values: &[I],
        params: MstParams,
    ) -> std::io::Result<(MstShell<I>, SpillableArena<I>)> {
        let n = values.len();
        let meta = level_geometry(n, params);
        let h = meta.len();
        let mut arena = SpillableArena::new(arena_segments(&meta, n));
        arena.write_segment(0, values)?;
        let mut prev: Vec<I> = values.to_vec();
        let mut cur: Vec<I> = vec![I::ZERO; n];
        let mut ptr_buf: Vec<I> = Vec::new();
        for lvl in 1..h {
            ptr_buf.clear();
            ptr_buf.resize(meta[lvl].ptrs.len, I::ZERO);
            fill_one_level(n, params, &meta, lvl, &prev, &mut cur, &mut ptr_buf);
            arena.write_segment(lvl, &cur)?;
            arena.write_segment(h + lvl - 1, &ptr_buf)?;
            std::mem::swap(&mut prev, &mut cur);
        }
        arena.mark_written();
        // `prev` now holds the top level's keys.
        let identity_top = top_is_identity(&prev, n);
        let top_samples = sample_top(&prev, identity_top);
        Ok((MstShell { levels: meta, params, n, identity_top, top_samples }, arena))
    }

    /// Splits the tree into its metadata shell and its arena slab — the
    /// parking operation: the shell stays resident (a few dozen bytes plus
    /// the cache-sized top samples), the slab goes to a
    /// [`SpillableArena`].
    pub fn into_shell(self) -> (MstShell<I>, Vec<I>) {
        (
            MstShell {
                levels: self.levels,
                params: self.params,
                n: self.n,
                identity_top: self.identity_top,
                top_samples: self.top_samples,
            },
            self.arena,
        )
    }

    /// Reassembles a tree from a shell and its re-faulted arena. The shell
    /// preserves `identity_top` and the top samples, so — unlike
    /// `Self::from_parts` — nothing is rescanned: the round trip
    /// `into_shell` → `from_shell` is exact and cheap.
    pub fn from_shell(shell: MstShell<I>, arena: Vec<I>) -> Self {
        debug_assert_eq!(
            arena.len(),
            shell.levels.len() * shell.n + shell.levels.last().unwrap().ptrs.end()
        );
        MergeSortTree {
            arena,
            levels: shell.levels,
            params: shell.params,
            n: shell.n,
            identity_top: shell.identity_top,
            top_samples: shell.top_samples,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Build parameters.
    pub fn params(&self) -> MstParams {
        self.params
    }

    /// The keys of `level`, all runs concatenated (`n` elements).
    #[inline]
    pub(crate) fn keys(&self, level: usize) -> &[I] {
        &self.arena[level * self.n..(level + 1) * self.n]
    }

    /// The cascading-pointer slab of `level`, laid out `[run][sample][child]`.
    #[inline]
    pub(crate) fn ptr_slab(&self, level: usize) -> &[I] {
        let base = self.levels.len() * self.n;
        let s = self.levels[level].ptrs;
        &self.arena[base + s.off..base + s.end()]
    }

    /// The element stored at (level-0) position `i`.
    #[inline]
    pub fn value(&self, i: usize) -> I {
        debug_assert!(i < self.n);
        self.arena[i]
    }

    /// Cascaded refinement: given the lower-bound position `pos` of threshold
    /// `t` within run `r` of `level`, returns the lower-bound position of `t`
    /// within child run `c`.
    ///
    #[inline]
    pub(crate) fn cascade(&self, level: usize, run: usize, pos: usize, c: usize, t: I) -> usize {
        let lvl = &self.levels[level];
        let child = &self.levels[level - 1];
        let child_run = run * (lvl.run_len / child.run_len) + c;
        let (cs, ce) = child.run_bounds(child_run, self.n);
        let clen = ce - cs;
        let child_keys = self.keys(level - 1);
        if !self.params.cascading {
            // Ablation mode: full binary search on every level (Figure 2's
            // O((log n)²) query instead of Figure 3's O(log n)).
            return child_keys[cs..ce].partition_point(|&x| x < t);
        }
        let f = self.params.fanout;
        let k = self.params.sampling;
        let s = pos / k;
        let base = (run * lvl.samples_per_run + s) * f + c;
        let ptrs = self.ptr_slab(level);
        let lo = ptrs[base].to_usize();
        let hi = ptrs[base + f].to_usize().min(clen);
        debug_assert!(lo <= hi);
        lo + child_keys[cs + lo..cs + hi].partition_point(|&x| x < t)
    }

    /// Batched landing-window warm-up for children `c_from..c_to` of `(level,
    /// run)`: reads each child's sampled cascading pointer (the bundle for
    /// all children shares a cache line) and touches the child key it lands
    /// on. Issued *before* the cascade loop so the scattered key-line misses
    /// overlap in the memory system instead of serializing behind each
    /// child's binary search. Pure reads folded into `warm` — results are
    /// unaffected (see [`prefetch_read`]).
    #[inline]
    fn warm_children(
        &self,
        level: usize,
        run: usize,
        pos: usize,
        c_from: usize,
        c_to: usize,
        warm: &mut usize,
    ) {
        if !self.params.prefetch || !self.params.cascading || c_to <= c_from {
            return;
        }
        let lvl = &self.levels[level];
        let child = &self.levels[level - 1];
        let f = self.params.fanout;
        let base = (run * lvl.samples_per_run + pos / self.params.sampling) * f + c_from;
        let ptrs = &self.ptr_slab(level)[base..base + (c_to - c_from)];
        let child_keys = self.keys(level - 1);
        for (i, p) in ptrs.iter().enumerate() {
            let (cs, ce) =
                child.run_bounds(run * (lvl.run_len / child.run_len) + c_from + i, self.n);
            if cs >= ce {
                break;
            }
            *warm ^= prefetch_read(child_keys, cs + p.to_usize().min(ce - cs - 1));
        }
    }

    /// Counts the elements at positions `[a, b)` whose value is smaller than
    /// `t`. O(log n) with the default parameters. This is the 2-d range
    /// counting query of §4.2 (distinct counts) and §4.4 (rank functions).
    ///
    /// ```
    /// use holistic_core::{MergeSortTree, MstParams};
    ///
    /// let vals: Vec<u32> = vec![5, 1, 4, 2, 3];
    /// let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(2, 1));
    /// // Among positions [1, 4) — values {1, 4, 2} — two are smaller than 4:
    /// assert_eq!(tree.count_below(1, 4, 4), 2);
    /// // Empty and clamped ranges are fine:
    /// assert_eq!(tree.count_below(3, 3, 9), 0);
    /// assert_eq!(tree.count_below(0, 100, 6), 5);
    /// ```
    pub fn count_below(&self, a: usize, b: usize, t: I) -> usize {
        let mut total = 0usize;
        self.decompose_below(a, b, t, |_, _, pos| total += pos);
        total
    }

    /// [`Self::count_below`] over a set of disjoint ranges (frames with
    /// exclusion holes, §4.7).
    pub fn count_below_multi(&self, ranges: &RangeSet, t: I) -> usize {
        ranges.iter().map(|(a, b)| self.count_below(a, b, t)).sum()
    }

    /// Cursor-seeded [`Self::count_below`]: bit-identical result, amortized
    /// O(1) per level when `(a, b, t)` advance monotonically across calls.
    pub fn count_below_with_cursor(
        &self,
        a: usize,
        b: usize,
        t: I,
        cur: &mut ProbeCursor,
    ) -> usize {
        let mut total = 0usize;
        self.decompose_below_cursor(a, b, t, 0, cur, |_, _, pos| total += pos);
        total
    }

    /// Cursor-seeded [`Self::count_below_multi`]; each frame piece keeps its
    /// own memo slot so exclusion holes don't destroy locality.
    pub fn count_below_multi_with_cursor(
        &self,
        ranges: &RangeSet,
        t: I,
        cur: &mut ProbeCursor,
    ) -> usize {
        let mut total = 0usize;
        for (ri, (a, b)) in ranges.iter().enumerate() {
            self.decompose_below_cursor(a, b, t, ri, cur, |_, _, pos| total += pos);
        }
        total
    }

    /// Decomposes the position range `[a, b)` into covering runs, invoking
    /// `visit(level, run_start, pos_of_t_in_run)` for every run that is fully
    /// contained in the query range. The visited `pos` values are the per-run
    /// lower bounds of `t`; their sum is `count_below`.
    pub(crate) fn decompose_below(
        &self,
        a: usize,
        b: usize,
        t: I,
        mut visit: impl FnMut(usize, usize, usize),
    ) {
        let b = b.min(self.n);
        if a >= b {
            return;
        }
        let top = self.levels.len() - 1;
        let top_pos = self.keys(top).partition_point(|&x| x < t);
        let mut warm = 0usize;
        self.descend_below(top, 0, a, b, t, top_pos, &mut warm, &mut visit);
        // One opaque use per query keeps every prefetch read alive without
        // putting a compiler barrier inside the descent loops.
        std::hint::black_box(warm);
    }

    /// Visits the covered positions of a *partial* level-1 run by scanning the
    /// contiguous base keys directly. The children are singletons, so each
    /// cascaded refinement degenerates to one comparison; the scan produces
    /// the same visits in the same order with the same per-singleton counts —
    /// bit-identical — while skipping up to `2 · fanout` sampled-pointer loads
    /// per boundary.
    #[inline]
    fn scan_leaves(&self, a: usize, b: usize, t: I, visit: &mut impl FnMut(usize, usize, usize)) {
        let keys0 = self.keys(0);
        for (p, &k) in keys0.iter().enumerate().take(b).skip(a) {
            visit(0, p, usize::from(k < t));
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn descend_below(
        &self,
        level: usize,
        run: usize,
        a: usize,
        b: usize,
        t: I,
        pos: usize,
        warm: &mut usize,
        visit: &mut impl FnMut(usize, usize, usize),
    ) {
        let lvl = &self.levels[level];
        let (rs, re) = lvl.run_bounds(run, self.n);
        debug_assert!(rs <= a && b <= re);
        if a == rs && b == re {
            visit(level, rs, pos);
            return;
        }
        debug_assert!(level > 0, "partial overlap impossible on singleton runs");
        if level == 1 {
            self.scan_leaves(a, b, t, visit);
            return;
        }
        let child_len = self.levels[level - 1].run_len;
        let ratio = lvl.run_len / child_len;
        let nc = self.params.fanout.min(ratio);
        // Issue every overlapped child's landing-window load up front so the
        // scattered misses overlap; the cascade loop then hits in-flight
        // lines instead of paying each miss behind the previous search.
        self.warm_children(
            level,
            run,
            pos,
            (a - rs) / child_len,
            ((b - 1 - rs) / child_len + 1).min(nc),
            warm,
        );
        for c in 0..nc {
            let cs = rs + c * child_len;
            if cs >= re {
                break;
            }
            let ce = (cs + child_len).min(re);
            let lo = a.max(cs);
            let hi = b.min(ce);
            if lo >= hi {
                continue;
            }
            let cpos = self.cascade(level, run, pos, c, t);
            if lo == cs && hi == ce {
                visit(level - 1, cs, cpos);
            } else {
                self.descend_below(level - 1, cs / child_len, lo, hi, t, cpos, warm, visit);
            }
        }
    }

    /// Cursor-seeded [`Self::decompose_below`]: same decomposition, same
    /// visit order, same `pos` values — only the per-level searches are
    /// seeded from `cur`'s memos for slot `slot` instead of running from
    /// scratch. A disabled cursor delegates to the stateless path.
    ///
    /// Visit order is preserved exactly (deepest-left first, each level's
    /// trailing siblings ascending, middles ascending, right path top-down),
    /// so even order-sensitive floating-point combines over the visited runs
    /// stay bit-identical.
    pub(crate) fn decompose_below_cursor(
        &self,
        a: usize,
        b: usize,
        t: I,
        slot: usize,
        cur: &mut ProbeCursor,
        mut visit: impl FnMut(usize, usize, usize),
    ) {
        if !cur.enabled() {
            cur.stats.stateless_probes += 1;
            self.decompose_below(a, b, t, visit);
            return;
        }
        let b = b.min(self.n);
        if a >= b {
            return;
        }
        cur.stats.cursor_probes += 1;
        let top = self.levels.len() - 1;
        cur.ensure_levels(top);
        let mut warm = 0usize;
        let mut pos = cur.top_position(self.keys(top), |&x| x < t);
        // Joint phase: walk down while [a, b) fits within one child, sharing
        // the left-side memo between both boundaries.
        let mut level = top;
        let mut run = 0usize;
        loop {
            let lvl = &self.levels[level];
            let (rs, re) = lvl.run_bounds(run, self.n);
            debug_assert!(rs <= a && b <= re);
            if a == rs && b == re {
                visit(level, rs, pos);
                break;
            }
            debug_assert!(level > 0, "partial overlap impossible on singleton runs");
            if level == 1 {
                // Same leaf fast path as the stateless descent: identical
                // visits, no per-singleton cascades, no memo traffic.
                self.scan_leaves(a, b, t, &mut visit);
                break;
            }
            let child_len = self.levels[level - 1].run_len;
            let ca = (a - rs) / child_len;
            let cb = (b - 1 - rs) / child_len;
            if ca == cb {
                pos = self.child_pos(level, run, pos, ca, t, slot, Side::Left, cur);
                run = rs / child_len + ca;
                level -= 1;
                continue;
            }
            // The paths split: descend the left boundary, emit fully-covered
            // middle children, then descend the right boundary.
            self.warm_children(level, run, pos, ca + 1, cb, &mut warm);
            let ca_pos = self.child_pos(level, run, pos, ca, t, slot, Side::Left, cur);
            self.left_descend(
                level - 1,
                rs / child_len + ca,
                a,
                t,
                ca_pos,
                slot,
                cur,
                &mut warm,
                &mut visit,
            );
            for c in ca + 1..cb {
                visit(level - 1, rs + c * child_len, self.cascade(level, run, pos, c, t));
            }
            let cb_pos = self.child_pos(level, run, pos, cb, t, slot, Side::Right, cur);
            self.right_descend(
                level - 1,
                rs / child_len + cb,
                b,
                t,
                cb_pos,
                slot,
                cur,
                &mut warm,
                &mut visit,
            );
            break;
        }
        std::hint::black_box(warm);
    }

    /// Lower bound of `t` in child `c` of `(level, run)`: gallops from the
    /// memoized position when the memo still points at that child run,
    /// otherwise falls back to the standard cascaded refinement (a reset).
    /// Either way the memo is updated for the next probe.
    #[allow(clippy::too_many_arguments)]
    fn child_pos(
        &self,
        level: usize,
        run: usize,
        pos: usize,
        c: usize,
        t: I,
        slot: usize,
        side: Side,
        cur: &mut ProbeCursor,
    ) -> usize {
        let lvl = &self.levels[level];
        let child = &self.levels[level - 1];
        let child_run = run * (lvl.run_len / child.run_len) + c;
        let idx = cur.memo_index(slot, side, level - 1);
        let m = cur.memo(idx);
        let new_pos = if m.run == child_run {
            let (cs, ce) = child.run_bounds(child_run, self.n);
            cur.stats.gallop_seeded += 1;
            gallop_partition_point(
                &self.keys(level - 1)[cs..ce],
                m.pos,
                |&x| x < t,
                &mut cur.stats.gallop_steps,
            )
        } else {
            cur.stats.level_resets += 1;
            self.cascade(level, run, pos, c, t)
        };
        cur.set_memo(idx, child_run, new_pos);
        new_pos
    }

    /// Descends the left boundary path: covers `[a, run_end)` of `(level,
    /// run)`. Emits the deeper subtree first, then the fully-covered trailing
    /// siblings in ascending order — the recursion's exact emission order.
    #[allow(clippy::too_many_arguments)]
    fn left_descend(
        &self,
        level: usize,
        run: usize,
        a: usize,
        t: I,
        pos: usize,
        slot: usize,
        cur: &mut ProbeCursor,
        warm: &mut usize,
        visit: &mut impl FnMut(usize, usize, usize),
    ) {
        let lvl = &self.levels[level];
        let (rs, re) = lvl.run_bounds(run, self.n);
        debug_assert!(rs <= a && a < re);
        if a == rs {
            visit(level, rs, pos);
            return;
        }
        debug_assert!(level > 0);
        if level == 1 {
            self.scan_leaves(a, re, t, visit);
            return;
        }
        let child_len = self.levels[level - 1].run_len;
        let ca = (a - rs) / child_len;
        let ratio = lvl.run_len / child_len;
        self.warm_children(level, run, pos, ca + 1, self.params.fanout.min(ratio), warm);
        let ca_pos = self.child_pos(level, run, pos, ca, t, slot, Side::Left, cur);
        self.left_descend(level - 1, rs / child_len + ca, a, t, ca_pos, slot, cur, warm, visit);
        for c in ca + 1..self.params.fanout.min(ratio) {
            let cs = rs + c * child_len;
            if cs >= re {
                break;
            }
            visit(level - 1, cs, self.cascade(level, run, pos, c, t));
        }
    }

    /// Descends the right boundary path: covers `[run_start, b)` of `(level,
    /// run)`. Emits the fully-covered leading siblings in ascending order,
    /// then the deeper subtree — the recursion's exact emission order.
    #[allow(clippy::too_many_arguments)]
    fn right_descend(
        &self,
        level: usize,
        run: usize,
        b: usize,
        t: I,
        pos: usize,
        slot: usize,
        cur: &mut ProbeCursor,
        warm: &mut usize,
        visit: &mut impl FnMut(usize, usize, usize),
    ) {
        let lvl = &self.levels[level];
        let (rs, re) = lvl.run_bounds(run, self.n);
        debug_assert!(rs < b && b <= re);
        if b == re {
            visit(level, rs, pos);
            return;
        }
        debug_assert!(level > 0);
        if level == 1 {
            self.scan_leaves(rs, b, t, visit);
            return;
        }
        let child_len = self.levels[level - 1].run_len;
        let cb = (b - 1 - rs) / child_len;
        self.warm_children(level, run, pos, 0, cb, warm);
        for c in 0..cb {
            visit(level - 1, rs + c * child_len, self.cascade(level, run, pos, c, t));
        }
        let cb_pos = self.child_pos(level, run, pos, cb, t, slot, Side::Right, cur);
        self.right_descend(level - 1, rs / child_len + cb, b, t, cb_pos, slot, cur, warm, visit);
    }

    /// Finds the level-0 position of the `j`-th element (0-based) whose
    /// *value* lies within the given half-open value ranges, or `None` if
    /// fewer than `j + 1` elements qualify.
    ///
    /// Qualifying elements are enumerated in *level-0 position order*. This is
    /// exactly §4.5's "the j-th index pointing into the frame": the tree is
    /// built over a permutation array sorted by the inner ORDER BY, so array
    /// position order *is* rank order, values are original row positions, and
    /// the frame is a value range. The returned position is the rank of the
    /// selected row; `perm[rank]` recovers the row itself.
    ///
    /// ```
    /// use holistic_core::{MergeSortTree, MstParams, RangeSet};
    ///
    /// // §4.5 use case: perm[rank] = original row, sorted by some inner key.
    /// let perm: Vec<u32> = vec![3, 0, 4, 1, 2];
    /// let tree = MergeSortTree::<u32>::build(&perm, MstParams::new(2, 1));
    /// // Rows (= values) in the frame [1, 4) sit at positions 0, 3, 4
    /// // (values 3, 1, 2). Select the j-th in position order:
    /// let frame = RangeSet::single(1, 4);
    /// assert_eq!(tree.select(&frame, 0), Some(0));
    /// assert_eq!(tree.select(&frame, 2), Some(4));
    /// assert_eq!(tree.select(&frame, 3), None); // only 3 rows qualify
    /// ```
    pub fn select(&self, ranges: &RangeSet, j: usize) -> Option<usize> {
        if self.n == 0 {
            return None;
        }
        let top = self.levels.len() - 1;
        let top_data = self.keys(top);
        // Per-range (lower, upper) positions within the current run; frames
        // decompose into at most MAX_RANGES pieces, so fixed-size scratch
        // keeps the probe loop allocation-free.
        let mut bounds = [(0usize, 0usize); MAX_RANGES];
        for (ri, (lo, hi)) in ranges.iter().enumerate() {
            bounds[ri] = (
                top_data.partition_point(|&x| x.to_usize() < lo),
                top_data.partition_point(|&x| x.to_usize() < hi),
            );
        }
        self.select_descend(ranges, j, bounds)
    }

    /// Cursor-seeded [`Self::select`]: the two top-level value-bound searches
    /// per frame piece gallop from the previous probe's positions (the
    /// descent below the top level is already O(1) per level via sampled
    /// cascading). Bit-identical to the stateless path on every input.
    pub fn select_with_cursor(
        &self,
        ranges: &RangeSet,
        j: usize,
        cur: &mut SelectCursor,
    ) -> Option<usize> {
        if !cur.enabled() {
            cur.stats.stateless_probes += 1;
            return self.select(ranges, j);
        }
        if self.n == 0 {
            return None;
        }
        cur.stats.cursor_probes += 1;
        let top = self.levels.len() - 1;
        let top_data = self.keys(top);
        let mut bounds = [(0usize, 0usize); MAX_RANGES];
        for (ri, (lo, hi)) in ranges.iter().enumerate() {
            bounds[ri] = (cur.seek(2 * ri, top_data, lo), cur.seek(2 * ri + 1, top_data, hi));
        }
        self.select_descend(ranges, j, bounds)
    }

    /// Shared select descent from resolved top-level bounds.
    fn select_descend(
        &self,
        ranges: &RangeSet,
        j: usize,
        mut bounds: [(usize, usize); MAX_RANGES],
    ) -> Option<usize> {
        let nr = ranges.len();
        let total: usize = bounds[..nr].iter().map(|&(l, h)| h - l).sum();
        if j >= total {
            return None;
        }
        let mut warm = 0usize;
        let mut j = j;
        let mut level = self.levels.len() - 1;
        let mut run = 0usize;
        while level > 0 {
            let lvl = &self.levels[level];
            let (rs, re) = lvl.run_bounds(run, self.n);
            if level == 1 {
                // Leaf fast path: singleton children contribute 0 or 1 per
                // value range, so the cascaded per-range counts degenerate to
                // direct membership tests on the contiguous base keys. Same
                // enumeration order, no sampled-pointer loads.
                std::hint::black_box(warm);
                let keys0 = self.keys(0);
                for (p, &k) in keys0.iter().enumerate().take(re).skip(rs) {
                    let v = k.to_usize();
                    let mut cnt = 0usize;
                    for ri in 0..nr {
                        let (lo_v, hi_v) = ranges.nth(ri);
                        cnt += usize::from(v >= lo_v && v < hi_v);
                    }
                    if j < cnt {
                        return Some(p);
                    }
                    j -= cnt;
                }
                debug_assert!(false, "select descent lost the target");
                return None;
            }
            let child_len = self.levels[level - 1].run_len;
            // Warm every child's landing window for the first range's lower
            // bound before the count loop, overlapping the scattered misses.
            let nc = (re - rs).div_ceil(child_len).min(self.params.fanout);
            self.warm_children(level, run, bounds[0].0, 0, nc, &mut warm);
            let mut found = false;
            let mut scratch = [(0usize, 0usize); MAX_RANGES];
            for c in 0..self.params.fanout {
                let cs = rs + c * child_len;
                if cs >= re {
                    break;
                }
                let mut cnt = 0usize;
                for ri in 0..nr {
                    let (blo, bhi) = bounds[ri];
                    let (lo_v, hi_v) = ranges.nth(ri);
                    let pl = self.cascade(level, run, blo, c, I::from_usize(lo_v));
                    let ph = self.cascade(level, run, bhi, c, I::from_usize(hi_v));
                    cnt += ph - pl;
                    scratch[ri] = (pl, ph);
                }
                if j < cnt {
                    bounds = scratch;
                    run = cs / child_len;
                    level -= 1;
                    found = true;
                    break;
                }
                j -= cnt;
            }
            debug_assert!(found, "select descent lost the target");
            if !found {
                return None;
            }
        }
        std::hint::black_box(warm);
        // Level 0: singleton run.
        Some(run)
    }

    /// Convenience: select within a single value range `[lo, hi)`.
    pub fn select_in_range(&self, lo: usize, hi: usize, j: usize) -> Option<usize> {
        self.select(&RangeSet::single(lo, hi), j)
    }

    /// Level-invariant cascade state for the block kernels. The scalar
    /// descent re-derives level metadata and re-slices the arena inside every
    /// [`Self::cascade`]/[`Self::warm_children`] call — unavoidable when each
    /// query walks its own recursion — but a level-synchronous sweep touches
    /// one level at a time, so the block kernels hoist all of it here once
    /// per level and run the cascades against pre-resolved slices.
    fn cascade_ctx(&self, level: usize) -> CascadeCtx<'_, I> {
        let lvl = &self.levels[level];
        let child = &self.levels[level - 1];
        let k = self.params.sampling;
        CascadeCtx {
            child_keys: self.keys(level - 1),
            ptrs: self.ptr_slab(level),
            run_len: lvl.run_len,
            child_run_len: child.run_len,
            ratio: lvl.run_len / child.run_len,
            samples_per_run: lvl.samples_per_run,
            fanout: self.params.fanout,
            sampling: k,
            samp_shift: if k.is_power_of_two() { Some(k.trailing_zeros()) } else { None },
            n: self.n,
            cascading: self.params.cascading,
            prefetch: self.params.prefetch,
        }
    }

    /// Lockstep top searches for a block: rank of every threshold in the top
    /// run. The identity fast path computes the rank arithmetically; the
    /// general path runs the batched (load-before-compare) binary searches.
    /// Both produce `partition_point(|&x| x < thr)` exactly.
    fn top_ranks(&self, scratch: &mut BlockScratch<I>, warm: &mut usize) {
        scratch.tops.resize(scratch.thr.len(), 0);
        if self.identity_top {
            for (o, &t) in scratch.tops.iter_mut().zip(scratch.thr.iter()) {
                *o = t.to_usize().min(self.n);
            }
        } else {
            let top = self.levels.len() - 1;
            let keys = self.keys(top);
            if self.top_samples.is_empty() {
                batched_partition_points(
                    keys,
                    &scratch.thr,
                    &mut scratch.tops,
                    self.params.prefetch,
                    warm,
                );
                return;
            }
            // Two passes: the sample searches never miss, and every window's
            // lines are warmed before any window search consumes them.
            let stride = TOP_SAMPLE_STRIDE;
            scratch.win_lo.resize(scratch.thr.len(), 0);
            for (w, &t) in scratch.win_lo.iter_mut().zip(scratch.thr.iter()) {
                let si = self.top_samples.partition_point(|&x| x < t);
                // `samples[si-1] = keys[(si-1)·stride] < t ≤ keys[si·stride]`,
                // so the rank lies in `((si-1)·stride, si·stride]`.
                let lo = if si > 0 { (si - 1) * stride + 1 } else { 0 };
                let hi = (si * stride).min(self.n);
                if self.params.prefetch && lo < hi {
                    *warm ^= prefetch_read(keys, lo);
                    *warm ^= prefetch_read(keys, hi - 1);
                }
                *w = lo;
            }
            for ((o, &lo), &t) in
                scratch.tops.iter_mut().zip(scratch.win_lo.iter()).zip(scratch.thr.iter())
            {
                let hi = (lo + stride - usize::from(lo > 0)).min(self.n);
                *o = lo + keys[lo..hi].partition_point(|&x| x < t);
            }
        }
    }

    /// Block-batched [`Self::count_below`]: answers a whole block of `(a, b,
    /// t)` queries level-synchronously. Per level, every pending query's
    /// landing windows are warmed a group ahead of the cascade searches that
    /// consume them, so the scattered key-line misses of *different queries*
    /// overlap in the memory system — the scalar path can only overlap misses
    /// within one query's siblings. The top-level binary searches run in
    /// lockstep over the shared sorted top run (all loads of a probe depth
    /// issued before any comparison consumes them).
    ///
    /// Each query performs the exact decomposition and cascade sequence of
    /// [`Self::count_below`]; per-query counts are order-independent integer
    /// sums, so results are bit-identical to the scalar path.
    pub fn count_below_block(
        &self,
        queries: &[(usize, usize, I)],
        out: &mut [usize],
        scratch: &mut BlockScratch<I>,
    ) {
        debug_assert_eq!(queries.len(), out.len());
        scratch.stats.block_calls += 1;
        scratch.stats.block_queries += queries.len() as u64;
        out.fill(0);
        if self.n == 0 || queries.is_empty() {
            return;
        }
        let top = self.levels.len() - 1;
        let mut warm = 0usize;

        scratch.thr.clear();
        scratch.thr.extend(queries.iter().map(|&(_, _, t)| t));
        self.top_ranks(scratch, &mut warm);

        // Seed one task per clamped non-empty query; whole-tree queries are
        // answered by the top search alone.
        let tasks = &mut scratch.cnt_cur;
        let next = &mut scratch.cnt_next;
        tasks.clear();
        let (rs_top, re_top) = self.levels[top].run_bounds(0, self.n);
        for (q, &(a, b, _)) in queries.iter().enumerate() {
            let b = b.min(self.n);
            if a >= b {
                continue;
            }
            if a == rs_top && b == re_top {
                out[q] = scratch.tops[q];
            } else {
                tasks.push(CountTask {
                    run: 0,
                    a,
                    b,
                    pos: scratch.tops[q],
                    q: q as u32,
                    neg: false,
                });
            }
        }

        let mut level = top;
        while level >= 1 && !tasks.is_empty() {
            if level == 1 || self.levels[level].run_len <= SCAN_WIDTH {
                // Residual tasks are narrower than their run, and the run is
                // narrow enough that a contiguous base-key scan beats two
                // more levels of scattered cascade searches: the compares
                // vectorize and the lines stream. The scan counts the same
                // `k < thr` memberships the cascades would have summed, so
                // the (integer) totals are bit-identical.
                let keys0 = self.keys(0);
                let lvl = &self.levels[level];
                let below = |a: usize, b: usize, thr: I| {
                    let mut c = 0usize;
                    for &k in &keys0[a..b] {
                        c += usize::from(k < thr);
                    }
                    c
                };
                // A fragment's count is also `t.pos` (the rank of the
                // threshold in the *whole* run) minus the complement's count,
                // so only the shorter side is ever scanned.
                let sides = |t: &CountTask| {
                    let (rs, re) = lvl.run_bounds(t.run, self.n);
                    (t.b - t.a <= (t.a - rs) + (re - t.b), rs, re)
                };
                // One-task lookahead: the next task's region streams in while
                // this one's (sequential, prefetcher-friendly) compares run.
                let line = (64 / std::mem::size_of::<I>()).max(1);
                let warm_span = |a: usize, b: usize, warm: &mut usize| {
                    let mut p = a;
                    while p < b.min(a + SCAN_WARM) {
                        *warm ^= prefetch_read(keys0, p);
                        p += line;
                    }
                };
                let warm_scan = |t: &CountTask, warm: &mut usize| {
                    let (frag, rs, re) = sides(t);
                    if frag {
                        warm_span(t.a, t.b, warm);
                    } else {
                        warm_span(rs, t.a, warm);
                        warm_span(t.b, re, warm);
                    }
                };
                if let Some(t) = tasks.first() {
                    warm_scan(t, &mut warm);
                }
                for (ti, t) in tasks.iter().enumerate() {
                    if let Some(nt) = tasks.get(ti + 1) {
                        warm_scan(nt, &mut warm);
                    }
                    let thr = queries[t.q as usize].2;
                    let (frag, rs, re) = sides(t);
                    let c = if frag {
                        below(t.a, t.b, thr)
                    } else {
                        t.pos - below(rs, t.a, thr) - below(t.b, re, thr)
                    };
                    let o = &mut out[t.q as usize];
                    *o = if t.neg { o.wrapping_sub(c) } else { o.wrapping_add(c) };
                }
                break;
            }
            next.clear();
            let ctx = self.cascade_ctx(level);
            let child_len = ctx.child_run_len;
            let nc_full = ctx.fanout.min(ctx.ratio);
            // A fragment spanning more than half its run flips to its
            // complement — `count(frag) = t.pos − count(complement)` with
            // `t.pos` (the threshold's whole-run rank) already in hand — so
            // the cascades walk whichever side overlaps fewer children.
            let split = |t: &CountTask| -> (bool, [(usize, usize); 2]) {
                let rs = t.run * ctx.run_len;
                let re = (rs + ctx.run_len).min(self.n);
                if 2 * (t.b - t.a) <= re - rs {
                    (false, [(t.a, t.b), (0, 0)])
                } else {
                    (true, [(rs, t.a), (t.b, re)])
                }
            };
            let nchunks = tasks.len().div_ceil(BLOCK_GROUP);
            for g in 0..nchunks {
                // One-group lookahead: warm the next group's landing windows
                // while this group's cascades consume lines already in flight.
                let warm_group = |grp: usize, warm: &mut usize| {
                    for t in &tasks[grp * BLOCK_GROUP..((grp + 1) * BLOCK_GROUP).min(tasks.len())] {
                        let rs = t.run * ctx.run_len;
                        let (_, pieces) = split(t);
                        for &(pa, pb) in &pieces {
                            if pa < pb {
                                ctx.warm(
                                    t.run,
                                    t.pos,
                                    (pa - rs) / child_len,
                                    ((pb - 1 - rs) / child_len + 1).min(nc_full),
                                    warm,
                                );
                            }
                        }
                    }
                };
                if g == 0 {
                    warm_group(0, &mut warm);
                }
                if g + 1 < nchunks {
                    warm_group(g + 1, &mut warm);
                }
                for t in &tasks[g * BLOCK_GROUP..((g + 1) * BLOCK_GROUP).min(tasks.len())] {
                    let rs = t.run * ctx.run_len;
                    let re = (rs + ctx.run_len).min(self.n);
                    let thr = queries[t.q as usize].2;
                    let (flip, pieces) = split(t);
                    let neg = t.neg ^ flip;
                    if flip {
                        let o = &mut out[t.q as usize];
                        *o = if t.neg { o.wrapping_sub(t.pos) } else { o.wrapping_add(t.pos) };
                    }
                    for &(pa, pb) in &pieces {
                        if pa >= pb {
                            continue;
                        }
                        for c in (pa - rs) / child_len..=(pb - 1 - rs) / child_len {
                            let cs = rs + c * child_len;
                            let ce = (cs + child_len).min(re);
                            let lo = pa.max(cs);
                            let hi = pb.min(ce);
                            let cpos = ctx.cascade_linear(t.run, t.pos, c, thr);
                            if lo == cs && hi == ce {
                                let o = &mut out[t.q as usize];
                                *o = if neg { o.wrapping_sub(cpos) } else { o.wrapping_add(cpos) };
                            } else {
                                next.push(CountTask {
                                    run: cs / child_len,
                                    a: lo,
                                    b: hi,
                                    pos: cpos,
                                    q: t.q,
                                    neg,
                                });
                            }
                        }
                    }
                }
            }
            std::mem::swap(tasks, next);
            level -= 1;
        }
        std::hint::black_box(warm);
    }

    /// Block-batched [`Self::select`]: answers a block of `(ranges, j)`
    /// queries level-synchronously with the same lockstep top searches and
    /// group-ahead warm-up as [`Self::count_below_block`]. Every query walks
    /// the exact cascade-and-count sequence of the scalar descent, so the
    /// selected positions are bit-identical.
    pub fn select_block(
        &self,
        queries: &[(RangeSet, usize)],
        out: &mut [Option<usize>],
        scratch: &mut BlockScratch<I>,
    ) {
        debug_assert_eq!(queries.len(), out.len());
        scratch.stats.block_calls += 1;
        scratch.stats.block_queries += queries.len() as u64;
        out.fill(None);
        if self.n == 0 || queries.is_empty() {
            return;
        }
        let top = self.levels.len() - 1;
        let mut warm = 0usize;

        // Lockstep top searches: two value-bound probes per frame piece,
        // flattened across the block (pieces per query vary).
        scratch.thr.clear();
        for (ranges, _) in queries {
            for (lo, hi) in ranges.iter() {
                scratch.thr.push(I::from_usize(lo));
                scratch.thr.push(I::from_usize(hi));
            }
        }
        self.top_ranks(scratch, &mut warm);

        let tasks = &mut scratch.sel_cur;
        let next = &mut scratch.sel_next;
        tasks.clear();
        let mut off = 0usize;
        for (q, (ranges, j)) in queries.iter().enumerate() {
            let nr = ranges.len();
            let mut bounds = [(0usize, 0usize); MAX_RANGES];
            let mut total = 0usize;
            for (ri, b) in bounds.iter_mut().enumerate().take(nr) {
                *b = (scratch.tops[off + 2 * ri], scratch.tops[off + 2 * ri + 1]);
                total += b.1 - b.0;
            }
            off += 2 * nr;
            if *j < total {
                tasks.push(SelTask { run: 0, bounds, j: *j, q: q as u32 });
            }
        }

        let mut level = top;
        while level > 1 && !tasks.is_empty() && self.levels[level].run_len > SCAN_WIDTH {
            next.clear();
            let ctx = self.cascade_ctx(level);
            let child_len = ctx.child_run_len;
            let nchunks = tasks.len().div_ceil(BLOCK_GROUP);
            for g in 0..nchunks {
                let warm_group = |grp: usize, warm: &mut usize| {
                    for t in &tasks[grp * BLOCK_GROUP..((grp + 1) * BLOCK_GROUP).min(tasks.len())] {
                        let rs = t.run * ctx.run_len;
                        let re = (rs + ctx.run_len).min(self.n);
                        let nc = (re - rs).div_ceil(child_len).min(ctx.fanout);
                        // Both bounds cascade below, so both landing windows
                        // need their lines in flight — but only up to the
                        // walk's exit child. Members spread roughly uniformly
                        // across children, so the expected exit is
                        // `j·nc/total`; warming a small slack past it covers
                        // the variance while skipping the (on average) half of
                        // the run the walk never reaches.
                        let total: usize = t.bounds.iter().map(|b| b.1 - b.0).sum();
                        let wc = (t.j * nc)
                            .checked_div(total)
                            .map_or(nc, |e| (e + SEL_WARM_SLACK).min(nc));
                        ctx.warm(t.run, t.bounds[0].0, 0, wc, warm);
                        ctx.warm(t.run, t.bounds[0].1, 0, wc, warm);
                    }
                };
                if g == 0 {
                    warm_group(0, &mut warm);
                }
                if g + 1 < nchunks {
                    warm_group(g + 1, &mut warm);
                }
                for t in &tasks[g * BLOCK_GROUP..((g + 1) * BLOCK_GROUP).min(tasks.len())] {
                    let rs = t.run * ctx.run_len;
                    let re = (rs + ctx.run_len).min(self.n);
                    let nc = (re - rs).div_ceil(child_len).min(ctx.fanout);
                    let (ranges, _) = &queries[t.q as usize];
                    let nr = ranges.len();
                    let mut vb = [(0usize, 0usize); MAX_RANGES];
                    for (ri, b) in vb.iter_mut().enumerate().take(nr) {
                        *b = ranges.nth(ri);
                    }
                    // Walk toward the exit child from whichever end of the
                    // run is nearer: the `j`-th member from the left is the
                    // `total-1-j`-th from the right, and a right-to-left walk
                    // finds the same exit child with the complementary local
                    // index `cnt-1-jr` — identical integers, half the
                    // expected cascades.
                    let mut j = t.j;
                    let mut found = false;
                    let child_cnt = |c: usize, refs: &mut [(usize, usize); MAX_RANGES]| {
                        let mut cnt = 0usize;
                        for ri in 0..nr {
                            let (blo, bhi) = t.bounds[ri];
                            let (lo_v, hi_v) = vb[ri];
                            let pl = ctx.cascade(t.run, blo, c, I::from_usize(lo_v));
                            let ph = ctx.cascade(t.run, bhi, c, I::from_usize(hi_v));
                            cnt += ph - pl;
                            refs[ri] = (pl, ph);
                        }
                        cnt
                    };
                    let mut refs = [(0usize, 0usize); MAX_RANGES];
                    for c in 0..nc {
                        let cnt = child_cnt(c, &mut refs);
                        if j < cnt {
                            next.push(SelTask {
                                run: t.run * ctx.ratio + c,
                                bounds: refs,
                                j,
                                q: t.q,
                            });
                            found = true;
                            break;
                        }
                        j -= cnt;
                    }
                    debug_assert!(found, "select descent lost the target");
                    let _ = found; // lost targets leave `out[q]` at None
                }
            }
            std::mem::swap(tasks, next);
            level -= 1;
        }
        if level >= 1 {
            // Membership scans over the residual runs: once a run is
            // [`SCAN_WIDTH`]-narrow, counting members in position order over
            // the contiguous base keys beats further cascade descents (and at
            // `level == 1` it is exactly the scalar leaf fast path). The
            // countdown runs a chunk at a time — whole-chunk member counts
            // are branchless (vectorizable), and only the chunk containing
            // the `j`-th member is rescanned position by position. Position
            // order is the descent's child order, so the selected position is
            // bit-identical.
            let lvl = &self.levels[level];
            let keys0 = self.keys(0);
            // The `j`-th member from the left is the `total-1-j`-th from the
            // right (`total` = this run's member count, from the refined
            // bounds) — the countdown starts from whichever end is nearer,
            // halving the expected scan. One-task lookahead streams the next
            // task's region in while this task's scan runs.
            let line = (64 / std::mem::size_of::<I>()).max(1);
            let total_of = |t: &SelTask| t.bounds.iter().map(|b| b.1 - b.0).sum::<usize>();
            let warm_scan = |t: &SelTask, warm: &mut usize| {
                let (rs, re) = lvl.run_bounds(t.run, self.n);
                if 2 * t.j < total_of(t) {
                    let mut p = rs;
                    while p < re.min(rs + SCAN_WARM) {
                        *warm ^= prefetch_read(keys0, p);
                        p += line;
                    }
                } else {
                    let mut p = re.saturating_sub(SCAN_WARM).max(rs);
                    while p < re {
                        *warm ^= prefetch_read(keys0, p);
                        p += line;
                    }
                }
            };
            if let Some(t) = tasks.first() {
                warm_scan(t, &mut warm);
            }
            for (ti, t) in tasks.iter().enumerate() {
                if let Some(nt) = tasks.get(ti + 1) {
                    warm_scan(nt, &mut warm);
                }
                let (rs, re) = lvl.run_bounds(t.run, self.n);
                let (ranges, _) = &queries[t.q as usize];
                let nr = ranges.len();
                let mut vb = [(0usize, 0usize); MAX_RANGES];
                for (ri, b) in vb.iter_mut().enumerate().take(nr) {
                    *b = ranges.nth(ri);
                }
                // Monomorphize the countdown per membership test: the
                // single-range predicate (two compares, no inner loop) is the
                // common case and must vectorize; the multi-piece fallback
                // keeps the general loop.
                let res = if nr == 1 {
                    // Compare in the key's native width: u32 keys pack twice
                    // the SIMD lanes of a usize-widened compare.
                    let (lo_i, hi_i) = (I::from_usize(vb[0].0), I::from_usize(vb[0].1));
                    select_scan(keys0, rs, re, t.j, total_of(t), |k: I| {
                        usize::from(k >= lo_i && k < hi_i)
                    })
                } else {
                    select_scan(keys0, rs, re, t.j, total_of(t), |k: I| {
                        let v = k.to_usize();
                        let mut m = 0usize;
                        for &(lo_v, hi_v) in vb.iter().take(nr) {
                            m += usize::from(v >= lo_v && v < hi_v);
                        }
                        m
                    })
                };
                if let Some(p) = res {
                    out[t.q as usize] = Some(p);
                }
            }
        } else {
            // Height-1 tree (n ≤ 1): `j < total` already proved membership of
            // the single element, which sits at position 0.
            for t in tasks.iter() {
                out[t.q as usize] = Some(0);
            }
        }
        std::hint::black_box(warm);
    }

    /// Total number of stored elements across all levels (memory accounting,
    /// §5.1/§6.6).
    pub fn stored_elements(&self) -> usize {
        self.levels.len() * self.n
    }

    /// Total number of stored cascading pointers.
    pub fn stored_pointers(&self) -> usize {
        self.levels.last().map(|m| m.ptrs.end()).unwrap_or(0)
    }

    /// Number of levels (including the base level).
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Size in bytes of the single backing allocation (keys region plus
    /// pointer slabs). Metadata (`LevelMeta` table) is O(height) and excluded.
    pub fn arena_bytes(&self) -> usize {
        self.arena.len() * std::mem::size_of::<I>()
    }

    /// Internal: the per-level metadata table (for in-crate structure tests).
    #[cfg(test)]
    pub(crate) fn level_meta(&self) -> &[LevelMeta] {
        &self.levels
    }
}

/// Task group size of the block kernels: landing windows are warmed one group
/// ahead of the cascades that consume them, so up to `2 · BLOCK_GROUP` warm
/// reads are in flight while a group's searches run.
const BLOCK_GROUP: usize = 8;

/// Run-width cutoff below which the block kernels answer residual tasks by a
/// contiguous scan of the base keys instead of further cascade descents. A
/// boundary fragment inside a `≤ SCAN_WIDTH`-element run costs at most that
/// many vectorizable compares over streamed lines, which beats one scattered
/// pointer-chase per `fanout`-wide child across the remaining levels. Counts
/// are integer sums and selections follow position order either way, so
/// results stay bit-identical to the scalar descent.
const SCAN_WIDTH: usize = 2048;

/// Chunk size of the select scan's branchless member countdown.
const SCAN_CHUNK: usize = 64;

/// The chunked member countdown of one residual select task: scans the run
/// `[rs, re)` of the base keys from whichever end is nearer to the `j0`-th
/// member (of `total`), counting whole [`SCAN_CHUNK`]s branchlessly and
/// rescanning only the chunk containing the target. Generic over the
/// membership predicate so each range-shape monomorphizes (and vectorizes)
/// separately; position order matches the scalar descent, so the returned
/// position is bit-identical.
#[inline(always)]
fn select_scan<I: TreeIndex>(
    keys0: &[I],
    rs: usize,
    re: usize,
    j0: usize,
    total: usize,
    member: impl Fn(I) -> usize,
) -> Option<usize> {
    if 2 * j0 < total {
        let mut j = j0;
        let mut p = rs;
        while p < re {
            let pe = (p + SCAN_CHUNK).min(re);
            let cnt: usize = keys0[p..pe].iter().map(|&k| member(k)).sum();
            if j < cnt {
                for (pp, &k) in keys0[p..pe].iter().enumerate() {
                    let m = member(k);
                    if j < m {
                        return Some(p + pp);
                    }
                    j -= m;
                }
                return None;
            }
            j -= cnt;
            p = pe;
        }
        None
    } else {
        let mut j = total - 1 - j0;
        let mut p = re;
        while p > rs {
            let ps = p.saturating_sub(SCAN_CHUNK).max(rs);
            let cnt: usize = keys0[ps..p].iter().map(|&k| member(k)).sum();
            if j < cnt {
                for (pp, &k) in keys0[ps..p].iter().enumerate().rev() {
                    let m = member(k);
                    if j < m {
                        return Some(ps + pp);
                    }
                    j -= m;
                }
                return None;
            }
            j -= cnt;
            p = ps;
        }
        None
    }
}

/// Elements of the *next* task's scan region streamed in ahead of its scan.
const SCAN_WARM: usize = 256;

/// Children warmed past the select walk's expected exit child. The kernels
/// sit near the memory-parallelism ceiling, so wasted warm reads cost real
/// throughput; a cold cascade past the slack merely costs latency.
const SEL_WARM_SLACK: usize = 1;

/// One level's pre-resolved cascade state (see [`MergeSortTree::cascade_ctx`]).
struct CascadeCtx<'a, I> {
    child_keys: &'a [I],
    ptrs: &'a [I],
    run_len: usize,
    child_run_len: usize,
    /// Children per full run: `run_len / child_run_len`.
    ratio: usize,
    samples_per_run: usize,
    fanout: usize,
    sampling: usize,
    /// `log2(sampling)` when the stride is a power of two — replaces the
    /// per-cascade integer division with a shift.
    samp_shift: Option<u32>,
    n: usize,
    cascading: bool,
    prefetch: bool,
}

impl<I: TreeIndex> CascadeCtx<'_, I> {
    /// The sample slot of `pos`: `pos / sampling`, as a shift when possible.
    #[inline(always)]
    fn slot(&self, pos: usize) -> usize {
        match self.samp_shift {
            Some(s) => pos >> s,
            None => pos / self.sampling,
        }
    }

    /// Exactly [`MergeSortTree::cascade`] with the level state pre-resolved:
    /// same pointer window, same `partition_point`, bit-identical result.
    #[inline(always)]
    fn cascade(&self, run: usize, pos: usize, c: usize, t: I) -> usize {
        let cs = (run * self.ratio + c) * self.child_run_len;
        let ce = (cs + self.child_run_len).min(self.n);
        if !self.cascading {
            return self.child_keys[cs..ce].partition_point(|&x| x < t);
        }
        let base = (run * self.samples_per_run + self.slot(pos)) * self.fanout + c;
        let lo = self.ptrs[base].to_usize();
        let hi = self.ptrs[base + self.fanout].to_usize().min(ce - cs);
        debug_assert!(lo <= hi);
        lo + self.child_keys[cs + lo..cs + hi].partition_point(|&x| x < t)
    }

    /// [`Self::cascade`] with the landing-window search replaced by a
    /// branchless linear count — bit-identical on the sorted window (the
    /// count of keys `< t` *is* the partition point). The count kernel's
    /// windows are warm when read, so trading the dependent-probe binary
    /// search for vectorizable compares wins there; the select walk's mixed
    /// reuse pattern prefers the probe version.
    #[inline(always)]
    fn cascade_linear(&self, run: usize, pos: usize, c: usize, t: I) -> usize {
        let cs = (run * self.ratio + c) * self.child_run_len;
        let ce = (cs + self.child_run_len).min(self.n);
        if !self.cascading {
            return self.child_keys[cs..ce].partition_point(|&x| x < t);
        }
        let base = (run * self.samples_per_run + self.slot(pos)) * self.fanout + c;
        let lo = self.ptrs[base].to_usize();
        let hi = self.ptrs[base + self.fanout].to_usize().min(ce - cs);
        debug_assert!(lo <= hi);
        let mut cnt = 0usize;
        for &x in &self.child_keys[cs + lo..cs + hi] {
            cnt += usize::from(x < t);
        }
        lo + cnt
    }

    /// Exactly [`MergeSortTree::warm_children`] with the level state
    /// pre-resolved (pure reads folded into `warm`).
    #[inline]
    fn warm(&self, run: usize, pos: usize, c_from: usize, c_to: usize, warm: &mut usize) {
        if !self.prefetch || !self.cascading || c_to <= c_from {
            return;
        }
        let base = (run * self.samples_per_run + self.slot(pos)) * self.fanout + c_from;
        let ptrs = &self.ptrs[base..base + (c_to - c_from)];
        for (i, p) in ptrs.iter().enumerate() {
            let cs = (run * self.ratio + c_from + i) * self.child_run_len;
            let ce = (cs + self.child_run_len).min(self.n);
            if cs >= ce {
                break;
            }
            *warm ^= prefetch_read(self.child_keys, cs + p.to_usize().min(ce - cs - 1));
        }
    }
}

/// A pending partial node of one block count query: covers `[a, b)` of `run`
/// at the current level, with `pos` the lower bound of query `q`'s threshold
/// within that run.
#[derive(Debug, Clone, Copy)]
struct CountTask {
    run: usize,
    a: usize,
    b: usize,
    pos: usize,
    q: u32,
    /// Complement-flipped tasks *subtract* from their query's total (the
    /// flip added `pos`, the whole-run rank, up front). Totals are exact
    /// integers, so transiently-wrapping sums stay bit-identical.
    neg: bool,
}

/// The single active node of one block select query: per-piece value-bound
/// positions within `run`, and the remaining in-frame rank `j` to locate.
#[derive(Debug, Clone, Copy)]
struct SelTask {
    run: usize,
    bounds: [(usize, usize); MAX_RANGES],
    j: usize,
    q: u32,
}

/// Counters of the block-batched probe kernels ([`MergeSortTree::count_below_block`],
/// [`MergeSortTree::select_block`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Kernel invocations (one per query block).
    pub block_calls: u64,
    /// Queries answered across all invocations.
    pub block_queries: u64,
}

impl BlockStats {
    /// Adds `other`'s counters into `self`.
    pub fn merge_from(&mut self, other: &BlockStats) {
        self.block_calls += other.block_calls;
        self.block_queries += other.block_queries;
    }
}

/// Reusable scratch for the block-batched probe kernels: task lists, lockstep
/// search buffers, and accumulated [`BlockStats`]. Buffers grow to the block
/// size on first use and are reused across calls, keeping the kernels
/// allocation-free in steady state.
#[derive(Debug)]
pub struct BlockScratch<I: TreeIndex> {
    /// Counters accumulated across every kernel call on this scratch.
    pub stats: BlockStats,
    thr: Vec<I>,
    tops: Vec<usize>,
    win_lo: Vec<usize>,
    cnt_cur: Vec<CountTask>,
    cnt_next: Vec<CountTask>,
    sel_cur: Vec<SelTask>,
    sel_next: Vec<SelTask>,
}

impl<I: TreeIndex> BlockScratch<I> {
    /// Creates empty scratch.
    pub fn new() -> Self {
        BlockScratch {
            stats: BlockStats::default(),
            thr: Vec::new(),
            tops: Vec::new(),
            win_lo: Vec::new(),
            cnt_cur: Vec::new(),
            cnt_next: Vec::new(),
            sel_cur: Vec::new(),
            sel_next: Vec::new(),
        }
    }
}

impl<I: TreeIndex> Default for BlockScratch<I> {
    fn default() -> Self {
        Self::new()
    }
}

/// Lockstep batched `partition_point(|&x| x < thr[i])` over one shared sorted
/// slice: all searches share the same probe-depth schedule (the interval
/// length shrinks identically regardless of comparison outcomes), so each
/// depth issues every query's load before any comparison consumes one —
/// software pipelining of the block's top-level searches.
/// Stride of the top-run sample vector (see `MergeSortTree::top_samples`).
const TOP_SAMPLE_STRIDE: usize = 64;

/// Every [`TOP_SAMPLE_STRIDE`]-th top-run key; empty when the top is the
/// identity (ranks are a clamp there) or too small to matter.
fn sample_top<I: TreeIndex>(top_keys: &[I], identity: bool) -> Vec<I> {
    if identity || top_keys.len() <= 2 * TOP_SAMPLE_STRIDE {
        return Vec::new();
    }
    top_keys.iter().copied().step_by(TOP_SAMPLE_STRIDE).collect()
}

/// Whether `top_keys` (the sorted top run) is exactly `0, 1, …, n-1`.
fn top_is_identity<I: TreeIndex>(top_keys: &[I], n: usize) -> bool {
    top_keys.len() == n && top_keys.iter().enumerate().all(|(i, &k)| k.to_usize() == i)
}

fn batched_partition_points<I: TreeIndex>(
    keys: &[I],
    thr: &[I],
    out: &mut [usize],
    prefetch: bool,
    warm: &mut usize,
) {
    debug_assert_eq!(thr.len(), out.len());
    out.fill(0);
    let n = keys.len();
    if n == 0 {
        return;
    }
    // Invariant: the answer for query i lies in [out[i], out[i] + len].
    let mut len = n;
    while len > 1 {
        let half = len / 2;
        if prefetch {
            for &base in out.iter() {
                *warm ^= prefetch_read(keys, base + half - 1);
            }
        }
        for (base, &t) in out.iter_mut().zip(thr) {
            if keys[*base + half - 1] < t {
                *base += half;
            }
        }
        len -= half;
    }
    for (base, &t) in out.iter_mut().zip(thr) {
        *base += usize::from(keys[*base] < t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn brute_count_below(vals: &[u32], a: usize, b: usize, t: u32) -> usize {
        let b = b.min(vals.len());
        if a >= b {
            return 0;
        }
        vals[a..b].iter().filter(|&&v| v < t).count()
    }

    fn brute_select(vals: &[u32], lo: usize, hi: usize, j: usize) -> Option<usize> {
        // j-th qualifying element in POSITION order.
        vals.iter()
            .enumerate()
            .filter(|(_, &v)| (v as usize) >= lo && (v as usize) < hi)
            .map(|(i, _)| i)
            .nth(j)
    }

    #[test]
    fn figure1_distinct_count() {
        // prevIdcs of Figure 1 in shifted encoding (0 = none).
        let prev: Vec<u32> = vec![0, 0, 2, 1, 0, 3, 5, 4];
        let tree = MergeSortTree::<u32>::build(&prev, MstParams::new(2, 1));
        // Frame [3, 8): entries < 3+1 = 4.
        assert_eq!(tree.count_below(3, 8, 4), 3);
        // Whole input: 3 distinct values (entries < 0+1).
        assert_eq!(tree.count_below(0, 8, 1), 3);
    }

    #[test]
    fn empty_and_singleton_trees() {
        let tree = MergeSortTree::<u32>::build(&[], MstParams::default());
        assert_eq!(tree.count_below(0, 0, 5), 0);
        assert!(tree.is_empty());
        assert!(tree.select_in_range(0, 10, 0).is_none());
        assert_eq!(tree.arena_bytes(), 0);

        let tree = MergeSortTree::<u32>::build(&[7], MstParams::default());
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.count_below(0, 1, 8), 1);
        assert_eq!(tree.count_below(0, 1, 7), 0);
        assert_eq!(tree.select_in_range(7, 8, 0), Some(0));
        assert_eq!(tree.select_in_range(7, 8, 1), None);
    }

    #[test]
    fn height_matches_fanout() {
        let vals: Vec<u32> = (0..100).collect();
        let t2 = MergeSortTree::<u32>::build(&vals, MstParams::new(2, 4));
        assert_eq!(t2.height(), 8); // 2^7 = 128 >= 100
        let t32 = MergeSortTree::<u32>::build(&vals, MstParams::new(32, 4));
        assert_eq!(t32.height(), 3); // 32^2 >= 100
    }

    #[test]
    fn count_below_random_many_params() {
        let mut rng = StdRng::seed_from_u64(42);
        for &(f, k) in &[(2, 1), (2, 3), (4, 2), (8, 32), (32, 32), (5, 7)] {
            for _ in 0..8 {
                let n = rng.gen_range(0..300);
                let vals: Vec<u32> = (0..n).map(|_| rng.gen_range(0..50)).collect();
                let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(f, k));
                for _ in 0..40 {
                    let a = rng.gen_range(0..=n);
                    let b = rng.gen_range(0..=n);
                    let t = rng.gen_range(0..55);
                    assert_eq!(
                        tree.count_below(a, b, t),
                        brute_count_below(&vals, a, b.min(n), t),
                        "n={n} f={f} k={k} a={a} b={b} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn select_random_many_params() {
        let mut rng = StdRng::seed_from_u64(43);
        for &(f, k) in &[(2, 1), (3, 2), (8, 32), (32, 32)] {
            for _ in 0..8 {
                let n = rng.gen_range(1..250);
                // Values are a permutation (the §4.5 use case).
                let mut vals: Vec<u32> = (0..n as u32).collect();
                for i in (1..n).rev() {
                    vals.swap(i, rng.gen_range(0..=i));
                }
                let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(f, k));
                for _ in 0..40 {
                    let lo = rng.gen_range(0..=n);
                    let hi = rng.gen_range(0..=n);
                    let j = rng.gen_range(0..n + 2);
                    assert_eq!(
                        tree.select_in_range(lo, hi, j),
                        brute_select(&vals, lo, hi, j),
                        "n={n} f={f} k={k} lo={lo} hi={hi} j={j}"
                    );
                }
            }
        }
    }

    #[test]
    fn select_with_duplicate_values() {
        // Qualifying elements enumerate in position order.
        let vals: Vec<u32> = vec![5, 3, 5, 3, 5];
        let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(2, 1));
        for j in 0..5 {
            assert_eq!(tree.select_in_range(3, 6, j), Some(j));
        }
        assert_eq!(tree.select_in_range(5, 6, 1), Some(2));
        assert_eq!(tree.select_in_range(3, 4, 1), Some(3));
        assert_eq!(tree.select_in_range(3, 4, 2), None);
    }

    #[test]
    fn select_multi_range() {
        let vals: Vec<u32> = (0..20).rev().collect(); // 19, 18, ..., 0
        let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(4, 2));
        // Value ranges [2,5) and [10,12): qualifying values 11,10,4,3,2 appear
        // at positions 8, 9, 15, 16, 17 (value v sits at position 19 - v).
        let rs = RangeSet::from_ranges(&[(2, 5), (10, 12)]);
        let positions: Vec<Option<usize>> = (0..6).map(|j| tree.select(&rs, j)).collect();
        assert_eq!(positions, vec![Some(8), Some(9), Some(15), Some(16), Some(17), None]);
    }

    #[test]
    fn count_below_multi_sums_ranges() {
        let vals: Vec<u32> = vec![1, 9, 2, 8, 3, 7, 4, 6, 5, 0];
        let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(2, 2));
        let rs = RangeSet::from_ranges(&[(0, 3), (6, 9)]);
        let brute: usize = [0..3usize, 6..9usize]
            .iter()
            .flat_map(|r| vals[r.clone()].iter())
            .filter(|&&v| v < 5)
            .count();
        assert_eq!(tree.count_below_multi(&rs, 5), brute);
    }

    #[test]
    fn u64_tree_matches_u32_tree() {
        let mut rng = StdRng::seed_from_u64(44);
        let n = 200;
        let vals32: Vec<u32> = (0..n).map(|_| rng.gen_range(0..100)).collect();
        let vals64: Vec<u64> = vals32.iter().map(|&v| v as u64).collect();
        let t32 = MergeSortTree::<u32>::build(&vals32, MstParams::default());
        let t64 = MergeSortTree::<u64>::build(&vals64, MstParams::default());
        for a in (0..n as usize).step_by(17) {
            for t in (0..100).step_by(13) {
                assert_eq!(
                    t32.count_below(a, n as usize, t as u32),
                    t64.count_below(a, n as usize, t as u64)
                );
            }
        }
    }

    #[test]
    fn serial_equals_parallel_build() {
        let mut rng = StdRng::seed_from_u64(45);
        let vals: Vec<u32> = (0..5000).map(|_| rng.gen_range(0..1000)).collect();
        let tp = MergeSortTree::<u32>::build(&vals, MstParams::new(8, 8));
        let ts = MergeSortTree::<u32>::build(&vals, MstParams::new(8, 8).serial());
        for lvl in 0..tp.height() {
            assert_eq!(tp.keys(lvl), ts.keys(lvl), "level {lvl} keys");
            assert_eq!(tp.ptr_slab(lvl), ts.ptr_slab(lvl), "level {lvl} ptrs");
        }
    }

    #[test]
    fn levels_are_sorted_run_permutations() {
        let mut rng = StdRng::seed_from_u64(46);
        let vals: Vec<u32> = (0..777).map(|_| rng.gen_range(0..100)).collect();
        let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(4, 8));
        let mut sorted_all = vals.clone();
        sorted_all.sort_unstable();
        for lvl in 0..tree.height() {
            let meta = tree.level_meta()[lvl];
            let keys = tree.keys(lvl);
            // Each level is a permutation of the input.
            let mut level_sorted = keys.to_vec();
            level_sorted.sort_unstable();
            assert_eq!(level_sorted, sorted_all);
            // Each run is sorted.
            let mut r = 0;
            while r * meta.run_len < vals.len() {
                let (s, e) = meta.run_bounds(r, vals.len());
                assert!(keys[s..e].windows(2).all(|w| w[0] <= w[1]));
                r += 1;
            }
        }
        // Top level is fully sorted.
        assert_eq!(tree.keys(tree.height() - 1), &sorted_all[..]);
    }

    #[test]
    fn arena_is_one_allocation_with_level_major_layout() {
        let vals: Vec<u32> = (0..300).map(|i| (i * 37) % 97).collect();
        let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(4, 4));
        // Keys region: levels stored back-to-back, n elements each; the base
        // level is the input itself.
        assert_eq!(tree.keys(0), &vals[..]);
        assert_eq!(tree.arena_bytes(), (tree.stored_elements() + tree.stored_pointers()) * 4);
        // Pointer slabs are contiguous and non-overlapping in level order.
        let metas = tree.level_meta();
        assert_eq!(metas[0].ptrs.len, 0);
        for w in 1..metas.len() {
            assert_eq!(metas[w].ptrs.off, metas[w - 1].ptrs.end());
        }
    }

    #[test]
    fn no_cascading_gives_identical_answers() {
        let mut rng = StdRng::seed_from_u64(48);
        let n = 400;
        let vals: Vec<u32> = (0..n).map(|_| rng.gen_range(0..120)).collect();
        let with = MergeSortTree::<u32>::build(&vals, MstParams::new(8, 16));
        let without = MergeSortTree::<u32>::build(&vals, MstParams::new(8, 16).no_cascading());
        for _ in 0..200 {
            let a = rng.gen_range(0..=n as usize);
            let b = rng.gen_range(a..=n as usize);
            let t = rng.gen_range(0..130);
            assert_eq!(with.count_below(a, b, t), without.count_below(a, b, t));
            let (lo, hi) = (rng.gen_range(0..60), rng.gen_range(60..130));
            let j = rng.gen_range(0..n as usize);
            assert_eq!(with.select_in_range(lo, hi, j), without.select_in_range(lo, hi, j));
        }
    }

    #[test]
    fn no_prefetch_gives_identical_answers() {
        let mut rng = StdRng::seed_from_u64(52);
        let n = 500;
        let vals: Vec<u32> = (0..n).map(|_| rng.gen_range(0..140)).collect();
        let with = MergeSortTree::<u32>::build(&vals, MstParams::new(8, 4));
        let without = MergeSortTree::<u32>::build(&vals, MstParams::new(8, 4).no_prefetch());
        for _ in 0..200 {
            let a = rng.gen_range(0..=n as usize);
            let b = rng.gen_range(a..=n as usize);
            let t = rng.gen_range(0..150);
            assert_eq!(with.count_below(a, b, t), without.count_below(a, b, t));
            let (lo, hi) = (rng.gen_range(0..70), rng.gen_range(70..150));
            let j = rng.gen_range(0..40);
            assert_eq!(with.select_in_range(lo, hi, j), without.select_in_range(lo, hi, j));
        }
    }

    #[test]
    fn cursor_count_below_matches_stateless_on_random_probes() {
        let mut rng = StdRng::seed_from_u64(49);
        for &(f, k) in &[(2, 1), (4, 2), (8, 32), (32, 32), (5, 7)] {
            let n = rng.gen_range(1..400);
            let vals: Vec<u32> = (0..n).map(|_| rng.gen_range(0..80)).collect();
            let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(f, k));
            let mut cur = ProbeCursor::new();
            // Monotonic sweep, then fully random jumps — identical either way.
            let mut a = 0usize;
            let mut b = 0usize;
            for i in 0..n as usize {
                a = a.max(i.saturating_sub(7));
                b = (b.max(i + 1)).min(n as usize);
                let t = rng.gen_range(0..85);
                assert_eq!(
                    tree.count_below_with_cursor(a, b, t, &mut cur),
                    tree.count_below(a, b, t)
                );
            }
            for _ in 0..120 {
                let a = rng.gen_range(0..=n as usize);
                let b = rng.gen_range(0..=n as usize + 2);
                let t = rng.gen_range(0..85);
                assert_eq!(
                    tree.count_below_with_cursor(a, b, t, &mut cur),
                    tree.count_below(a, b, t)
                );
            }
            assert!(cur.stats.cursor_probes > 0);
        }
    }

    #[test]
    fn cursor_multi_and_select_match_stateless() {
        let mut rng = StdRng::seed_from_u64(50);
        let n = 300usize;
        let mut perm: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }
        let tree = MergeSortTree::<u32>::build(&perm, MstParams::new(8, 8));
        let mut pc = ProbeCursor::new();
        let mut sc = SelectCursor::new();
        for i in 0..n {
            // Frame with an exclusion hole around i.
            let lo = i.saturating_sub(20);
            let hi = (i + 20).min(n);
            let rs = RangeSet::frame_minus_holes(lo, hi, &[(i, (i + 1).min(hi))]);
            let t = rng.gen_range(0..n as u32 + 2);
            assert_eq!(
                tree.count_below_multi_with_cursor(&rs, t, &mut pc),
                tree.count_below_multi(&rs, t)
            );
            let j = rng.gen_range(0..25);
            assert_eq!(tree.select_with_cursor(&rs, j, &mut sc), tree.select(&rs, j));
        }
        assert!(pc.stats.gallop_seeded > 0);
        assert!(sc.stats.gallop_seeded > 0);
    }

    #[test]
    fn disabled_cursor_delegates_and_counts() {
        let vals: Vec<u32> = (0..64).collect();
        let tree = MergeSortTree::<u32>::build(&vals, MstParams::default());
        let mut pc = ProbeCursor::disabled();
        let mut sc = SelectCursor::disabled();
        assert_eq!(tree.count_below_with_cursor(3, 40, 20, &mut pc), tree.count_below(3, 40, 20));
        let rs = RangeSet::single(5, 30);
        assert_eq!(tree.select_with_cursor(&rs, 4, &mut sc), tree.select(&rs, 4));
        assert_eq!(pc.stats.stateless_probes, 1);
        assert_eq!(pc.stats.cursor_probes, 0);
        assert_eq!(sc.stats.stateless_probes, 1);
        assert_eq!(sc.stats.gallop_seeded, 0);
    }

    #[test]
    fn cursor_visit_order_matches_stateless() {
        // Order-sensitive downstream combines (float aggregates) require the
        // cursor descent to emit the exact visit sequence of the recursion.
        let mut rng = StdRng::seed_from_u64(51);
        for &(f, k) in &[(2, 1), (3, 2), (8, 8), (32, 32)] {
            let n = 257usize;
            let vals: Vec<u32> = (0..n).map(|_| rng.gen_range(0..64)).collect();
            let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(f, k));
            let mut cur = ProbeCursor::new();
            for _ in 0..200 {
                let a = rng.gen_range(0..=n);
                let b = rng.gen_range(0..=n);
                let t = rng.gen_range(0..70);
                let mut stateless = Vec::new();
                tree.decompose_below(a, b, t, |l, s, p| stateless.push((l, s, p)));
                let mut cursored = Vec::new();
                tree.decompose_below_cursor(a, b, t, 0, &mut cur, |l, s, p| {
                    cursored.push((l, s, p))
                });
                assert_eq!(cursored, stateless, "f={f} k={k} a={a} b={b} t={t}");
            }
        }
    }

    #[test]
    fn block_count_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(60);
        let param_set = [
            MstParams::new(2, 1),
            MstParams::new(4, 2),
            MstParams::new(8, 32),
            MstParams::new(32, 32),
            MstParams::new(5, 7),
            MstParams::new(8, 16).no_cascading(),
            MstParams::new(8, 16).no_prefetch(),
        ];
        for params in param_set {
            for _ in 0..4 {
                let n = rng.gen_range(0..400);
                let vals: Vec<u32> = (0..n).map(|_| rng.gen_range(0..90)).collect();
                let tree = MergeSortTree::<u32>::build(&vals, params);
                let mut scratch = BlockScratch::new();
                let mut calls = 0u64;
                let mut total = 0u64;
                for &bs in &[1usize, 3, 8, 17, 64] {
                    let queries: Vec<(usize, usize, u32)> = (0..bs)
                        .map(|_| {
                            (
                                rng.gen_range(0..=n as usize),
                                rng.gen_range(0..=n as usize + 2),
                                rng.gen_range(0..95),
                            )
                        })
                        .collect();
                    let mut out = vec![0usize; bs];
                    tree.count_below_block(&queries, &mut out, &mut scratch);
                    calls += 1;
                    total += bs as u64;
                    for (qi, &(a, b, t)) in queries.iter().enumerate() {
                        assert_eq!(out[qi], tree.count_below(a, b, t), "n={n} a={a} b={b} t={t}");
                    }
                }
                assert_eq!(scratch.stats, BlockStats { block_calls: calls, block_queries: total });
            }
        }
    }

    #[test]
    fn block_select_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(61);
        let param_set = [
            MstParams::new(2, 1),
            MstParams::new(3, 2),
            MstParams::new(8, 32),
            MstParams::new(32, 32),
            MstParams::new(8, 16).no_cascading(),
        ];
        for params in param_set {
            for _ in 0..4 {
                let n = rng.gen_range(1..300);
                let mut perm: Vec<u32> = (0..n as u32).collect();
                for i in (1..n).rev() {
                    perm.swap(i, rng.gen_range(0..=i));
                }
                let tree = MergeSortTree::<u32>::build(&perm, params);
                let mut scratch = BlockScratch::new();
                for &bs in &[1usize, 5, 8, 19, 64] {
                    let queries: Vec<(RangeSet, usize)> = (0..bs)
                        .map(|_| {
                            let i = rng.gen_range(0..n);
                            let lo = i.saturating_sub(20);
                            let hi = (i + 20).min(n);
                            let rs = if rng.gen_range(0..2) == 0 {
                                RangeSet::single(lo, hi.max(lo + 1))
                            } else {
                                RangeSet::frame_minus_holes(lo, hi, &[(i, (i + 1).min(hi))])
                            };
                            (rs, rng.gen_range(0..45))
                        })
                        .collect();
                    let mut out = vec![None; bs];
                    tree.select_block(&queries, &mut out, &mut scratch);
                    for (qi, (rs, j)) in queries.iter().enumerate() {
                        assert_eq!(out[qi], tree.select(rs, *j), "n={n} j={j}");
                    }
                }
            }
        }
    }

    #[test]
    fn block_kernels_on_tiny_and_empty_trees() {
        let empty = MergeSortTree::<u32>::build(&[], MstParams::default());
        let mut scratch = BlockScratch::new();
        let mut out = vec![7usize; 2];
        empty.count_below_block(&[(0, 5, 3), (0, 0, 0)], &mut out, &mut scratch);
        assert_eq!(out, vec![0, 0]);
        let mut sel = vec![Some(9usize); 1];
        empty.select_block(&[(RangeSet::single(0, 4), 0)], &mut sel, &mut scratch);
        assert_eq!(sel, vec![None]);

        let one = MergeSortTree::<u32>::build(&[3], MstParams::default());
        let mut out = vec![0usize; 3];
        one.count_below_block(&[(0, 1, 4), (0, 1, 3), (0, 9, 4)], &mut out, &mut scratch);
        assert_eq!(out, vec![1, 0, 1]);
        let mut sel = vec![None; 2];
        one.select_block(
            &[(RangeSet::single(3, 4), 0), (RangeSet::single(0, 3), 0)],
            &mut sel,
            &mut scratch,
        );
        assert_eq!(sel, vec![Some(0), None]);
    }

    #[test]
    fn memory_accounting_matches_formula() {
        // §5.1: ⌈log_f n⌉·n data elements above... including base level the
        // tree stores (height)·n elements; pointer count ≈ (height−1)·n·f/k.
        let n = 4096usize;
        let vals: Vec<u32> = (0..n as u32).collect();
        let (f, k) = (4, 8);
        let tree = MergeSortTree::<u32>::build(&vals, MstParams::new(f, k));
        assert_eq!(tree.stored_elements(), tree.height() * n);
        let expected_ptrs: usize = (1..tree.height())
            .map(|lvl| {
                let run_len = f.pow(lvl as u32);
                let runs = n.div_ceil(run_len);
                (0..runs)
                    .map(|r| {
                        let len = ((r + 1) * run_len).min(n) - r * run_len;
                        (len / k + 2) * f
                    })
                    .sum::<usize>()
            })
            .sum();
        assert_eq!(tree.stored_pointers(), expected_ptrs);
    }

    #[test]
    fn build_spilled_is_bit_identical_to_build() {
        let mut rng = StdRng::seed_from_u64(71);
        for &(f, k) in &[(2, 1), (4, 2), (8, 32), (32, 32), (5, 7)] {
            for &n in &[2usize, 17, 255, 1000] {
                let params = MstParams::new(f, k);
                let vals: Vec<u32> = (0..n).map(|_| rng.gen_range(0..200)).collect();
                let reference = MergeSortTree::<u32>::build(&vals, params);
                let (shell, mut arena) =
                    MergeSortTree::<u32>::build_spilled(&vals, params).unwrap();
                assert_eq!(arena.total_elements(), mst_arena_len(n, params));
                assert_eq!(shell.arena_bytes(), reference.arena_bytes());
                let tree = MergeSortTree::from_shell(shell, arena.fault().unwrap());
                // The slabs are bit-identical, so every probe agrees too.
                assert_eq!(tree.arena, reference.arena, "f={f} k={k} n={n}");
                for _ in 0..50 {
                    let a = rng.gen_range(0..=n);
                    let b = rng.gen_range(0..=n);
                    let t = rng.gen_range(0..210);
                    assert_eq!(tree.count_below(a, b, t), reference.count_below(a, b, t));
                }
            }
        }
    }

    #[test]
    fn shell_roundtrip_is_exact() {
        let vals: Vec<u64> = (0..300u64).rev().collect();
        let params = MstParams::new(4, 2);
        let tree = MergeSortTree::<u64>::build(&vals, params);
        let identity_top = tree.identity_top;
        let samples = tree.top_samples.clone();
        let (shell, slab) = tree.into_shell();
        assert_eq!(shell.len(), 300);
        assert!(!shell.is_empty());
        let back = MergeSortTree::from_shell(shell, slab);
        assert_eq!(back.identity_top, identity_top);
        assert_eq!(back.top_samples, samples);
        assert_eq!(back.count_below(0, 300, 150), 150);
    }

    #[test]
    fn spilled_build_handles_tiny_inputs() {
        for n in 0..2usize {
            let params = MstParams::default();
            let vals: Vec<u32> = (0..n as u32).collect();
            let reference = MergeSortTree::<u32>::build(&vals, params);
            let (shell, mut arena) = MergeSortTree::<u32>::build_spilled(&vals, params).unwrap();
            let tree = MergeSortTree::from_shell(shell, arena.fault().unwrap());
            assert_eq!(tree.arena, reference.arena);
            assert_eq!(tree.count_below(0, n, 1), reference.count_below(0, n, 1));
        }
    }

    #[test]
    fn spill_build_len_is_below_arena_len() {
        // The out-of-core build's resident set must genuinely undercut the
        // full arena for any tree tall enough to spill.
        let params = MstParams::default();
        for &n in &[1000usize, 50_000] {
            assert!(mst_spill_build_len(n, params) < mst_arena_len(n, params));
        }
    }
}
