//! Name resolution and lowering: AST → engine spec types.
//!
//! Planning proceeds in four steps:
//!
//! 1. **Window resolution** — `WINDOW` clause definitions are resolved in
//!    order (a definition may inherit from an *earlier* name), then every
//!    `OVER` clause is resolved to a complete definition. Inheritance
//!    follows the SQL standard: the referencing window may not specify its
//!    own `PARTITION BY`, may add `ORDER BY` only if the base has none, and
//!    the base must not have a frame clause. `OVER name` (no parentheses)
//!    uses the named window as-is, frame included.
//! 2. **Lowering** — AST expressions/sort keys/frames are transcribed onto
//!    [`holistic_window::Expr`], [`SortKey`], [`FrameSpec`]; a missing frame
//!    clause becomes SQL's default (`RANGE UNBOUNDED PRECEDING .. CURRENT
//!    ROW` with `ORDER BY`, the whole partition without).
//! 3. **Grouping** — calls whose resolved OVER clauses are identical (by
//!    canonical rendered form) are packed into one [`WindowQuery`], so the
//!    engine's per-partition artifact cache shares sorts and trees across
//!    them exactly as it does for builder-API multi-call queries.
//! 4. **Validation** — each lowered call runs the engine's structural
//!    [`FunctionCall::validate`]; failures are re-attached to the call's
//!    source span as positional [`PlanError`]s.

use crate::ast::*;
use crate::error::{PlanError, Span, SqlError};
use crate::print;
use holistic_window::frame::{FrameBound, FrameSpec};
use holistic_window::spec::{FuncKind, FunctionCall, WindowSpec};
use holistic_window::{Expr, SortKey, Table, WindowQuery};
use std::collections::HashMap;

/// One planned output column, in SELECT-list order.
#[derive(Debug, Clone)]
pub enum PlannedItem {
    /// `*` — every input column.
    AllColumns {
        /// Span of the `*`.
        span: Span,
    },
    /// A scalar expression column.
    Scalar {
        /// The lowered expression.
        expr: Expr,
        /// Output column name (alias, or the rendered expression).
        name: String,
        /// Source span (for duplicate-name diagnostics).
        span: Span,
    },
    /// A window function column.
    Window {
        /// Index into [`SqlPlan::windows`].
        group: usize,
        /// Call index within that group's [`WindowQuery`].
        call: usize,
        /// Output column name.
        name: String,
        /// Source span (for duplicate-name diagnostics).
        span: Span,
    },
}

/// A fully lowered query plan.
#[derive(Debug, Clone)]
pub struct SqlPlan {
    /// Output columns in SELECT order.
    pub items: Vec<PlannedItem>,
    /// One [`WindowQuery`] per distinct resolved OVER clause; calls naming
    /// the same window (or writing an identical inline one) share a group
    /// and therefore the engine's artifact cache.
    pub windows: Vec<WindowQuery>,
    /// Lowered `WHERE` predicate (applied before window evaluation).
    pub filter: Option<Expr>,
    /// Lowered final `ORDER BY`. Bare-identifier keys naming an output
    /// column sort by that column; everything else evaluates against the
    /// (filtered) input table.
    pub order_by: Vec<SortKey>,
    /// The `FROM` table name as written.
    pub table_name: String,
    /// Span of the `FROM` table name (for unknown-table diagnostics).
    pub table_span: Span,
}

/// Parses and plans `src` in one step.
pub fn compile(src: &str) -> Result<SqlPlan, SqlError> {
    let query = crate::parser::parse_query(src)?;
    plan(src, &query, None)
}

/// Plans a parsed query. `table` (when available) enables positional
/// unknown-column errors; without it, column resolution is deferred to the
/// engine's bind step.
pub fn plan(src: &str, query: &Query, table: Option<&Table>) -> Result<SqlPlan, SqlError> {
    let named = resolve_named_windows(src, &query.windows)?;

    let mut windows: Vec<WindowQuery> = Vec::new();
    let mut group_of: HashMap<String, usize> = HashMap::new();
    let mut items: Vec<PlannedItem> = Vec::new();

    for item in &query.items {
        match item {
            SelectItem::Star(span) => items.push(PlannedItem::AllColumns { span: *span }),
            SelectItem::Scalar { expr, alias } => {
                if let Some(t) = table {
                    check_columns(src, expr, t)?;
                }
                let lowered = lower_expr(expr);
                let name = match alias {
                    Some((a, _)) => a.clone(),
                    None => print::expr_to_sql(&lowered),
                };
                items.push(PlannedItem::Scalar { expr: lowered, name, span: expr.span() });
            }
            SelectItem::Window { call, over, alias } => {
                let spec = resolve_over(src, over, &named)?;
                if let Some(t) = table {
                    check_spec_columns(src, &spec, t)?;
                    check_call_columns(src, call, t)?;
                }
                let spec = lower_spec(&spec);
                let mut lowered = lower_call(src, call)?;
                if let Some((a, _)) = alias {
                    lowered.output_name = a.clone();
                }
                lowered.validate().map_err(|e| PlanError::new(src, call.span, e.to_string()))?;
                let key = print::spec_to_sql(&spec);
                let group = match group_of.get(&key) {
                    Some(&g) => g,
                    None => {
                        let g = windows.len();
                        windows.push(WindowQuery::over(spec));
                        group_of.insert(key, g);
                        g
                    }
                };
                let name = lowered.output_name.clone();
                let call_idx = windows[group].calls.len();
                windows[group].calls.push(lowered);
                items.push(PlannedItem::Window { group, call: call_idx, name, span: call.span });
            }
        }
    }

    let filter = match &query.where_clause {
        Some(pred) => {
            if let Some(t) = table {
                check_columns(src, pred, t)?;
            }
            Some(lower_expr(pred))
        }
        None => None,
    };
    let order_by = query.order_by.iter().map(lower_sort_key).collect();

    Ok(SqlPlan {
        items,
        windows,
        filter,
        order_by,
        table_name: query.from.0.clone(),
        table_span: query.from.1,
    })
}

/// Parses a query of window calls over one shared window and returns the
/// single lowered [`WindowQuery`] plus the `FROM` table name. This is the
/// round-trip entry used by the fuzzer: `parse_window_query(to_sql(q, t))`
/// must reproduce `q` structurally.
pub fn parse_window_query(src: &str) -> Result<(WindowQuery, String), SqlError> {
    let plan = compile(src)?;
    if plan.windows.len() != 1
        || plan.items.len() != plan.windows[0].calls.len()
        || plan.filter.is_some()
        || !plan.order_by.is_empty()
    {
        return Err(SqlError::Plan(PlanError::new(
            src,
            Span::new(0, src.len().min(1)),
            "expected a pure window query: only window calls over one shared window".to_string(),
        )));
    }
    let table = plan.table_name;
    Ok((plan.windows.into_iter().next().expect("one group"), table))
}

// ---- named-window resolution ----

/// A fully resolved window definition (inheritance flattened).
#[derive(Debug, Clone, Default)]
struct ResolvedDef {
    partition_by: Vec<AstExpr>,
    order_by: Vec<AstSortKey>,
    frame: Option<AstFrame>,
}

fn resolve_named_windows(
    src: &str,
    defs: &[WindowDef],
) -> Result<HashMap<String, ResolvedDef>, SqlError> {
    let mut named: HashMap<String, ResolvedDef> = HashMap::new();
    for def in defs {
        if named.contains_key(&def.name) {
            return Err(SqlError::Plan(PlanError::new(
                src,
                def.name_span,
                format!("duplicate window name `{}`", def.name),
            )));
        }
        let resolved = resolve_def(src, &def.def, &named)?;
        named.insert(def.name.clone(), resolved);
    }
    Ok(named)
}

fn resolve_def(
    src: &str,
    def: &AstWindowDef,
    named: &HashMap<String, ResolvedDef>,
) -> Result<ResolvedDef, SqlError> {
    let base = match &def.base {
        Some((name, span)) => {
            let Some(base) = named.get(name) else {
                return Err(SqlError::Plan(PlanError::new(
                    src,
                    *span,
                    format!("unknown window `{name}` (windows may only reference earlier names)"),
                )));
            };
            if base.frame.is_some() {
                return Err(SqlError::Plan(PlanError::new(
                    src,
                    *span,
                    format!("cannot inherit from window `{name}`: it has a frame clause"),
                )));
            }
            if def.partition_by.is_some() {
                return Err(SqlError::Plan(PlanError::new(
                    src,
                    *span,
                    format!("cannot override PARTITION BY of window `{name}`"),
                )));
            }
            if def.order_by.is_some() && !base.order_by.is_empty() {
                return Err(SqlError::Plan(PlanError::new(
                    src,
                    *span,
                    format!("cannot add ORDER BY: window `{name}` already has one"),
                )));
            }
            Some(base.clone())
        }
        None => None,
    };
    let base = base.unwrap_or_default();
    Ok(ResolvedDef {
        partition_by: def.partition_by.clone().unwrap_or(base.partition_by),
        order_by: def.order_by.clone().unwrap_or(base.order_by),
        frame: def.frame.clone().or(base.frame),
    })
}

fn resolve_over(
    src: &str,
    over: &OverClause,
    named: &HashMap<String, ResolvedDef>,
) -> Result<ResolvedDef, SqlError> {
    match over {
        OverClause::Named(name, span) => match named.get(name) {
            Some(def) => Ok(def.clone()),
            None => {
                Err(SqlError::Plan(PlanError::new(src, *span, format!("unknown window `{name}`"))))
            }
        },
        OverClause::Inline(def) => resolve_def(src, def, named),
    }
}

// ---- lowering ----

/// Lowers a scalar AST expression to the engine's [`Expr`].
pub fn lower_expr(e: &AstExpr) -> Expr {
    match e {
        AstExpr::Col(name, _) => Expr::Col(name.clone()),
        AstExpr::Lit(v, _) => Expr::Lit(v.clone()),
        AstExpr::Bin(op, a, b, _) => {
            Expr::Bin(*op, Box::new(lower_expr(a)), Box::new(lower_expr(b)))
        }
        AstExpr::Not(inner, _) => Expr::Not(Box::new(lower_expr(inner))),
        AstExpr::Neg(inner, _) => Expr::Neg(Box::new(lower_expr(inner))),
    }
}

/// Lowers one sort key, applying SQL's direction-dependent NULL placement
/// defaults (`NULLS LAST` for ASC, `NULLS FIRST` for DESC).
pub fn lower_sort_key(k: &AstSortKey) -> SortKey {
    let desc = k.desc.unwrap_or(false);
    SortKey { expr: lower_expr(&k.expr), desc, nulls_first: k.nulls_first.unwrap_or(desc) }
}

fn lower_bound(b: &AstBound) -> FrameBound {
    match b {
        AstBound::UnboundedPreceding => FrameBound::UnboundedPreceding,
        AstBound::Preceding(e) => FrameBound::Preceding(lower_expr(e)),
        AstBound::CurrentRow => FrameBound::CurrentRow,
        AstBound::Following(e) => FrameBound::Following(lower_expr(e)),
        AstBound::UnboundedFollowing => FrameBound::UnboundedFollowing,
    }
}

fn lower_spec(def: &ResolvedDef) -> WindowSpec {
    let frame = match &def.frame {
        Some(f) => {
            FrameSpec {
                mode: f.mode,
                start: lower_bound(&f.start),
                end: lower_bound(&f.end),
                exclusion: f.exclusion.unwrap_or_default(),
            }
        }
        // SQL's default frame depends on ORDER BY presence.
        None if !def.order_by.is_empty() => FrameSpec::default_frame(),
        None => FrameSpec::whole_partition(),
    };
    WindowSpec {
        partition_by: def.partition_by.iter().map(lower_expr).collect(),
        order_by: def.order_by.iter().map(lower_sort_key).collect(),
        frame,
    }
}

fn func_kind(name: &str) -> Option<FuncKind> {
    Some(match name {
        "count" => FuncKind::Count,
        "sum" => FuncKind::Sum,
        "avg" => FuncKind::Avg,
        "min" => FuncKind::Min,
        "max" => FuncKind::Max,
        "row_number" => FuncKind::RowNumber,
        "rank" => FuncKind::Rank,
        "dense_rank" => FuncKind::DenseRank,
        "percent_rank" => FuncKind::PercentRank,
        "cume_dist" => FuncKind::CumeDist,
        "ntile" => FuncKind::Ntile,
        "percentile_disc" => FuncKind::PercentileDisc,
        "percentile_cont" => FuncKind::PercentileCont,
        "median" => FuncKind::Median,
        "first_value" => FuncKind::FirstValue,
        "last_value" => FuncKind::LastValue,
        "nth_value" => FuncKind::NthValue,
        "lead" => FuncKind::Lead,
        "lag" => FuncKind::Lag,
        "mode" => FuncKind::Mode,
        _ => return None,
    })
}

fn lower_call(src: &str, call: &AstCall) -> Result<FunctionCall, SqlError> {
    let Some(kind) = func_kind(&call.name) else {
        return Err(SqlError::Plan(PlanError::new(
            src,
            call.name_span,
            format!("unknown window function `{}`", call.name),
        )));
    };
    if call.star && kind != FuncKind::Count {
        return Err(SqlError::Plan(PlanError::new(
            src,
            call.name_span,
            format!("`*` is only valid in count(*), not {}", call.name),
        )));
    }
    let kind = if call.star { FuncKind::CountStar } else { kind };
    let args: Vec<Expr> = call.args.iter().map(lower_expr).collect();
    let inner: Vec<SortKey> = call.inner_order.iter().map(lower_sort_key).collect();

    let mut lowered = if kind == FuncKind::Median && inner.is_empty() && args.len() == 1 {
        // `median(expr)` shorthand ≡ the builder's `FunctionCall::median`:
        // one implicit ascending function-level ORDER BY key.
        FunctionCall::median(args.into_iter().next().expect("one arg"))
    } else {
        FunctionCall::new(kind, args).order_by(inner)
    };
    if call.distinct {
        lowered = lowered.distinct();
    }
    if call.ignore_nulls {
        lowered = lowered.ignore_nulls();
    }
    if let Some(pred) = &call.filter {
        lowered = lowered.filter(lower_expr(pred));
    }
    Ok(lowered)
}

// ---- positional column checking (when the table is known) ----

fn check_columns(src: &str, e: &AstExpr, table: &Table) -> Result<(), SqlError> {
    match e {
        AstExpr::Col(name, span) => {
            if table.column_index(name).is_err() {
                return Err(SqlError::Plan(PlanError::new(
                    src,
                    *span,
                    format!("unknown column `{name}`"),
                )));
            }
            Ok(())
        }
        AstExpr::Lit(..) => Ok(()),
        AstExpr::Bin(_, a, b, _) => {
            check_columns(src, a, table)?;
            check_columns(src, b, table)
        }
        AstExpr::Not(inner, _) | AstExpr::Neg(inner, _) => check_columns(src, inner, table),
    }
}

fn check_sort_keys(src: &str, keys: &[AstSortKey], table: &Table) -> Result<(), SqlError> {
    for k in keys {
        check_columns(src, &k.expr, table)?;
    }
    Ok(())
}

fn check_spec_columns(src: &str, def: &ResolvedDef, table: &Table) -> Result<(), SqlError> {
    for e in &def.partition_by {
        check_columns(src, e, table)?;
    }
    check_sort_keys(src, &def.order_by, table)?;
    if let Some(frame) = &def.frame {
        for b in [&frame.start, &frame.end] {
            if let AstBound::Preceding(e) | AstBound::Following(e) = b {
                check_columns(src, e, table)?;
            }
        }
    }
    Ok(())
}

fn check_call_columns(src: &str, call: &AstCall, table: &Table) -> Result<(), SqlError> {
    for e in &call.args {
        check_columns(src, e, table)?;
    }
    check_sort_keys(src, &call.inner_order, table)?;
    if let Some(pred) = &call.filter {
        check_columns(src, pred, table)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_calls_by_resolved_window() {
        let plan = compile(
            "SELECT sum(v) OVER w, count(*) OVER w, rank() OVER (PARTITION BY g), \
                    avg(v) OVER (w) \
             FROM t WINDOW w AS (ORDER BY k)",
        )
        .unwrap();
        // `w`, inline `(w)` (same resolved spec) and the PARTITION BY one.
        assert_eq!(plan.windows.len(), 2);
        assert_eq!(plan.windows[0].calls.len(), 3);
        assert_eq!(plan.windows[1].calls.len(), 1);
    }

    #[test]
    fn named_window_inheritance_rules() {
        // Adding ORDER BY to an orderless base is fine.
        assert!(compile("SELECT count(*) OVER (w ORDER BY k) FROM t WINDOW w AS (PARTITION BY g)")
            .is_ok());
        // Overriding PARTITION BY is not.
        let e =
            compile("SELECT count(*) OVER (w PARTITION BY v) FROM t WINDOW w AS (PARTITION BY g)")
                .unwrap_err();
        assert!(e.to_string().contains("cannot override PARTITION BY"), "{e}");
        // A framed base cannot be inherited from...
        let e =
            compile("SELECT count(*) OVER (w) FROM t WINDOW w AS (ORDER BY k ROWS 2 PRECEDING)")
                .unwrap_err();
        assert!(e.to_string().contains("frame clause"), "{e}");
        // ...but can be used directly by name.
        assert!(compile("SELECT count(*) OVER w FROM t WINDOW w AS (ORDER BY k ROWS 2 PRECEDING)")
            .is_ok());
    }

    #[test]
    fn default_frames_follow_order_by_presence() {
        use holistic_window::frame::{FrameBound, FrameMode};
        let plan = compile("SELECT count(*) OVER (ORDER BY k) FROM t").unwrap();
        let f = &plan.windows[0].spec.frame;
        assert_eq!(f.mode, FrameMode::Range);
        assert!(matches!(f.end, FrameBound::CurrentRow));
        let plan = compile("SELECT count(*) OVER () FROM t").unwrap();
        let f = &plan.windows[0].spec.frame;
        assert_eq!(f.mode, FrameMode::Rows);
        assert!(matches!(f.end, FrameBound::UnboundedFollowing));
    }

    #[test]
    fn call_shape_errors_are_positional() {
        let e = compile("SELECT rank(DISTINCT) OVER () FROM t").unwrap_err();
        assert!(e.to_string().contains("DISTINCT"), "{e}");
        let e = compile("SELECT ntile(2, 3) OVER () FROM t").unwrap_err();
        assert!(e.to_string().contains("bucket"), "{e}");
    }
}
