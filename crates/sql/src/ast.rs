//! The abstract syntax tree produced by the parser.
//!
//! Every node keeps the byte [`Span`] of its source text so the planner can
//! attach positions to name-resolution errors. Scalar expressions reuse the
//! engine's [`BinOp`] and [`Value`] directly; lowering to
//! [`holistic_window::Expr`] is a structural transcription in the planner.

use crate::error::Span;
use holistic_window::expr::BinOp;
use holistic_window::frame::{FrameExclusion, FrameMode};
use holistic_window::Value;

/// A scalar expression with source spans.
#[derive(Debug, Clone)]
pub enum AstExpr {
    /// Column reference.
    Col(String, Span),
    /// Literal (including `DATE '...'`).
    Lit(Value, Span),
    /// Binary operation.
    Bin(BinOp, Box<AstExpr>, Box<AstExpr>, Span),
    /// `NOT expr`.
    Not(Box<AstExpr>, Span),
    /// Unary minus.
    Neg(Box<AstExpr>, Span),
}

impl AstExpr {
    /// The source span of this expression.
    pub fn span(&self) -> Span {
        match self {
            AstExpr::Col(_, s)
            | AstExpr::Lit(_, s)
            | AstExpr::Bin(_, _, _, s)
            | AstExpr::Not(_, s)
            | AstExpr::Neg(_, s) => *s,
        }
    }
}

/// One `ORDER BY` criterion.
#[derive(Debug, Clone)]
pub struct AstSortKey {
    /// The key expression.
    pub expr: AstExpr,
    /// `ASC` / `DESC` if written (`None` = default `ASC`).
    pub desc: Option<bool>,
    /// `NULLS FIRST` / `NULLS LAST` if written (`None` = direction default:
    /// `NULLS LAST` for ascending, `NULLS FIRST` for descending).
    pub nulls_first: Option<bool>,
}

/// One frame boundary.
#[derive(Debug, Clone)]
pub enum AstBound {
    /// `UNBOUNDED PRECEDING`.
    UnboundedPreceding,
    /// `expr PRECEDING`.
    Preceding(AstExpr),
    /// `CURRENT ROW`.
    CurrentRow,
    /// `expr FOLLOWING`.
    Following(AstExpr),
    /// `UNBOUNDED FOLLOWING`.
    UnboundedFollowing,
}

/// A frame clause.
#[derive(Debug, Clone)]
pub struct AstFrame {
    /// `ROWS` / `RANGE` / `GROUPS`.
    pub mode: FrameMode,
    /// Lower bound.
    pub start: AstBound,
    /// Upper bound.
    pub end: AstBound,
    /// `EXCLUDE ...` if written (`None` = `EXCLUDE NO OTHERS`).
    pub exclusion: Option<FrameExclusion>,
    /// Span of the whole frame clause.
    pub span: Span,
}

/// The body of a window definition: `[base] [PARTITION BY ...] [ORDER BY ...]
/// [frame]`.
#[derive(Debug, Clone)]
pub struct AstWindowDef {
    /// Referenced (inherited) window name, if any.
    pub base: Option<(String, Span)>,
    /// `PARTITION BY` list if written. `Some` vs. `None` matters for the
    /// inheritance rules: a referencing window may not *specify* one.
    pub partition_by: Option<Vec<AstExpr>>,
    /// `ORDER BY` list if written.
    pub order_by: Option<Vec<AstSortKey>>,
    /// Frame clause if written.
    pub frame: Option<AstFrame>,
    /// Span of the definition body.
    pub span: Span,
}

/// The `OVER` clause of a window call.
#[derive(Debug, Clone)]
pub enum OverClause {
    /// `OVER name` — use the named window as-is (frame included).
    Named(String, Span),
    /// `OVER ( ... )` — inline definition, possibly referencing a base name.
    Inline(AstWindowDef),
}

/// A window function call.
#[derive(Debug, Clone)]
pub struct AstCall {
    /// Function name as written (lowercased for lookup by the planner).
    pub name: String,
    /// Span of the function name.
    pub name_span: Span,
    /// `*` argument (`count(*)`).
    pub star: bool,
    /// `DISTINCT` before the arguments.
    pub distinct: bool,
    /// Positional arguments.
    pub args: Vec<AstExpr>,
    /// Function-level `ORDER BY` (in the parentheses, or `WITHIN GROUP`).
    pub inner_order: Vec<AstSortKey>,
    /// `IGNORE NULLS` after the argument list.
    pub ignore_nulls: bool,
    /// `FILTER (WHERE ...)` predicate.
    pub filter: Option<AstExpr>,
    /// Span of the whole call (name through the last clause before `OVER`).
    pub span: Span,
}

/// One item of the `SELECT` list.
#[derive(Debug, Clone)]
pub enum SelectItem {
    /// `*` — every input column, in table order.
    Star(Span),
    /// A scalar expression, with optional alias.
    Scalar {
        /// The expression.
        expr: AstExpr,
        /// `AS name` if written.
        alias: Option<(String, Span)>,
    },
    /// A window function call, with optional alias.
    Window {
        /// The call (boxed: much larger than the other variants).
        call: Box<AstCall>,
        /// Its `OVER` clause.
        over: OverClause,
        /// `AS name` if written.
        alias: Option<(String, Span)>,
    },
}

/// A named window definition from the `WINDOW` clause.
#[derive(Debug, Clone)]
pub struct WindowDef {
    /// The window name.
    pub name: String,
    /// Span of the name.
    pub name_span: Span,
    /// The definition body.
    pub def: AstWindowDef,
}

/// A parsed window query.
#[derive(Debug, Clone)]
pub struct Query {
    /// The `SELECT` list, in source order.
    pub items: Vec<SelectItem>,
    /// The `FROM` table name.
    pub from: (String, Span),
    /// `WHERE` predicate, if any (applied before window evaluation, per SQL).
    pub where_clause: Option<AstExpr>,
    /// `WINDOW name AS (...)` definitions, in source order.
    pub windows: Vec<WindowDef>,
    /// Final `ORDER BY` over the query output, if any.
    pub order_by: Vec<AstSortKey>,
}
