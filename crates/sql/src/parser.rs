//! Recursive-descent parser for window queries.
//!
//! Grammar (the normative EBNF lives in `SQL.md` at the repository root):
//!
//! ```text
//! query     := SELECT item ("," item)* FROM ident
//!              [WHERE expr] [WINDOW windef ("," windef)*]
//!              [ORDER BY sortkeys] [";"]
//! item      := "*" | call over [AS ident] | expr [AS ident]
//! call      := name "(" body ")" post*
//! body      := "*" | [DISTINCT] [args] [ORDER BY sortkeys] [nulltreat]
//! post      := nulltreat | WITHIN GROUP "(" ORDER BY sortkeys ")"
//!            | FILTER "(" WHERE expr ")"
//! over      := OVER ident | OVER "(" windowbody ")"
//! windef    := ident AS "(" windowbody ")"
//! ```
//!
//! Errors are always typed and positional ([`ParseError`]); the parser never
//! panics on any input.

use crate::ast::*;
use crate::error::{ParseError, Span};
use crate::lexer::{lex, Tok, Token};
use holistic_window::expr::BinOp;
use holistic_window::frame::{FrameExclusion, FrameMode};
use holistic_window::Value;

/// The window function names the parser recognizes as calls.
pub const FUNCTION_NAMES: &[&str] = &[
    "count",
    "sum",
    "avg",
    "min",
    "max",
    "row_number",
    "rank",
    "dense_rank",
    "percent_rank",
    "cume_dist",
    "ntile",
    "percentile_disc",
    "percentile_cont",
    "median",
    "first_value",
    "last_value",
    "nth_value",
    "lead",
    "lag",
    "mode",
];

/// Parses one window query.
pub fn parse_query(src: &str) -> Result<Query, ParseError> {
    let mut p = Parser { src, toks: lex(src)?, pos: 0 };
    p.query()
}

struct Parser<'a> {
    src: &'a str,
    toks: Vec<Token>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }

    fn peek2(&self) -> &Token {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, expected: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError::new(self.src, t.span, expected, t.describe(self.src))
    }

    /// Current token is the keyword `k` (case-insensitive, unquoted).
    fn at_kw(&self, k: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(s) if s.eq_ignore_ascii_case(k))
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(&self.peek().tok, Tok::Punct(q) if *q == p)
    }

    fn eat_kw(&mut self, k: &str) -> bool {
        if self.at_kw(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, k: &str) -> Result<Token, ParseError> {
        if self.at_kw(k) {
            Ok(self.bump())
        } else {
            Err(self.err_here(format!("`{k}`")))
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<Token, ParseError> {
        if self.at_punct(p) {
            Ok(self.bump())
        } else {
            Err(self.err_here(format!("`{p}`")))
        }
    }

    /// Any identifier (quoted or not).
    fn expect_ident(&mut self, what: &str) -> Result<(String, Span), ParseError> {
        match &self.peek().tok {
            Tok::Ident(s) => {
                let s = s.clone();
                let sp = self.bump().span;
                Ok((s, sp))
            }
            Tok::QuotedIdent(s) => {
                let s = s.clone();
                let sp = self.bump().span;
                Ok((s, sp))
            }
            _ => Err(self.err_here(what)),
        }
    }

    // ---- query ----

    fn query(&mut self) -> Result<Query, ParseError> {
        self.expect_kw("SELECT")?;
        let mut items = vec![self.select_item()?];
        while self.eat_punct(",") {
            items.push(self.select_item()?);
        }
        self.expect_kw("FROM")?;
        let from = self.expect_ident("a table name")?;
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        let mut windows = Vec::new();
        if self.eat_kw("WINDOW") {
            loop {
                let (name, name_span) = self.expect_ident("a window name")?;
                self.expect_kw("AS")?;
                self.expect_punct("(")?;
                let def = self.window_body()?;
                self.expect_punct(")")?;
                windows.push(WindowDef { name, name_span, def });
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        let order_by = if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            self.sort_keys()?
        } else {
            Vec::new()
        };
        self.eat_punct(";");
        if !matches!(self.peek().tok, Tok::Eof) {
            return Err(self.err_here("end of input"));
        }
        Ok(Query { items, from, where_clause, windows, order_by })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.at_punct("*") {
            let sp = self.bump().span;
            return Ok(SelectItem::Star(sp));
        }
        if let Tok::Ident(name) = &self.peek().tok {
            let lower = name.to_ascii_lowercase();
            if FUNCTION_NAMES.contains(&lower.as_str())
                && matches!(self.peek2().tok, Tok::Punct("("))
            {
                let call = self.call()?;
                let over = self.over_clause()?;
                let alias = self.alias()?;
                return Ok(SelectItem::Window { call: Box::new(call), over, alias });
            }
        }
        let expr = self.expr()?;
        let alias = self.alias()?;
        Ok(SelectItem::Scalar { expr, alias })
    }

    fn alias(&mut self) -> Result<Option<(String, Span)>, ParseError> {
        if self.eat_kw("AS") {
            Ok(Some(self.expect_ident("an output column name")?))
        } else {
            Ok(None)
        }
    }

    // ---- window calls ----

    fn call(&mut self) -> Result<AstCall, ParseError> {
        let (raw_name, name_span) = self.expect_ident("a function name")?;
        let name = raw_name.to_ascii_lowercase();
        self.expect_punct("(")?;
        let mut call = AstCall {
            name,
            name_span,
            star: false,
            distinct: false,
            args: Vec::new(),
            inner_order: Vec::new(),
            ignore_nulls: false,
            filter: None,
            span: name_span,
        };
        let mut saw_null_treatment = false;
        if self.at_punct("*") {
            self.bump();
            call.star = true;
        } else {
            if self.eat_kw("DISTINCT") {
                call.distinct = true;
            }
            if !self.at_punct(")") && !self.at_kw("ORDER") {
                call.args.push(self.expr()?);
                while self.eat_punct(",") {
                    call.args.push(self.expr()?);
                }
            }
            if self.eat_kw("ORDER") {
                self.expect_kw("BY")?;
                call.inner_order = self.sort_keys()?;
            }
            if self.at_kw("IGNORE") || self.at_kw("RESPECT") {
                call.ignore_nulls = self.null_treatment()?;
                saw_null_treatment = true;
            }
        }
        let close = self.expect_punct(")")?;
        call.span = name_span.to(close.span);
        // Post-parenthesis clauses, each at most once.
        loop {
            if self.at_kw("IGNORE") || self.at_kw("RESPECT") {
                let tok = self.peek().clone();
                if saw_null_treatment {
                    return Err(ParseError::new(
                        self.src,
                        tok.span,
                        "`OVER` (this call already has a null-treatment clause)",
                        tok.describe(self.src),
                    ));
                }
                call.ignore_nulls = self.null_treatment()?;
                saw_null_treatment = true;
            } else if self.at_kw("WITHIN") {
                let within = self.bump();
                self.expect_kw("GROUP")?;
                self.expect_punct("(")?;
                self.expect_kw("ORDER")?;
                self.expect_kw("BY")?;
                let keys = self.sort_keys()?;
                let close = self.expect_punct(")")?;
                if !call.inner_order.is_empty() {
                    return Err(ParseError::new(
                        self.src,
                        within.span,
                        "`OVER` (this call already has a function-level ORDER BY)",
                        "`WITHIN`",
                    ));
                }
                call.inner_order = keys;
                call.span = call.span.to(close.span);
            } else if self.at_kw("FILTER") {
                let filter_tok = self.bump();
                self.expect_punct("(")?;
                self.expect_kw("WHERE")?;
                let pred = self.expr()?;
                let close = self.expect_punct(")")?;
                if call.filter.is_some() {
                    return Err(ParseError::new(
                        self.src,
                        filter_tok.span,
                        "`OVER` (this call already has a FILTER clause)",
                        "`FILTER`",
                    ));
                }
                call.filter = Some(pred);
                call.span = call.span.to(close.span);
            } else {
                break;
            }
        }
        Ok(call)
    }

    /// `IGNORE NULLS` → true, `RESPECT NULLS` → false.
    fn null_treatment(&mut self) -> Result<bool, ParseError> {
        let ignore = self.at_kw("IGNORE");
        self.bump();
        self.expect_kw("NULLS")?;
        Ok(ignore)
    }

    fn over_clause(&mut self) -> Result<OverClause, ParseError> {
        if !self.at_kw("OVER") {
            return Err(self.err_here("`OVER` (window functions require an OVER clause)"));
        }
        self.bump();
        if self.eat_punct("(") {
            let def = self.window_body()?;
            self.expect_punct(")")?;
            Ok(OverClause::Inline(def))
        } else {
            let (name, span) = self.expect_ident("a window name or `(`")?;
            Ok(OverClause::Named(name, span))
        }
    }

    // ---- window definitions ----

    fn window_body(&mut self) -> Result<AstWindowDef, ParseError> {
        let start_span = self.peek().span;
        let mut def = AstWindowDef {
            base: None,
            partition_by: None,
            order_by: None,
            frame: None,
            span: start_span,
        };
        // An optional leading base-window name: any identifier that is not a
        // clause-starting keyword. (A window actually named `partition`,
        // `order`, `rows`, `range` or `groups` must be double-quoted here.)
        match &self.peek().tok {
            Tok::Ident(s)
                if !["PARTITION", "ORDER", "ROWS", "RANGE", "GROUPS"]
                    .iter()
                    .any(|k| s.eq_ignore_ascii_case(k)) =>
            {
                let s = s.clone();
                let sp = self.bump().span;
                def.base = Some((s, sp));
            }
            Tok::QuotedIdent(s) => {
                let s = s.clone();
                let sp = self.bump().span;
                def.base = Some((s, sp));
            }
            _ => {}
        }
        if self.at_kw("PARTITION") {
            self.bump();
            self.expect_kw("BY")?;
            let mut exprs = vec![self.expr()?];
            while self.eat_punct(",") {
                exprs.push(self.expr()?);
            }
            def.partition_by = Some(exprs);
        }
        if self.at_kw("ORDER") {
            self.bump();
            self.expect_kw("BY")?;
            def.order_by = Some(self.sort_keys()?);
        }
        if self.at_kw("ROWS") || self.at_kw("RANGE") || self.at_kw("GROUPS") {
            def.frame = Some(self.frame()?);
        }
        let end = self.peek().span;
        def.span = Span::new(start_span.start, end.start.max(start_span.start));
        Ok(def)
    }

    fn frame(&mut self) -> Result<AstFrame, ParseError> {
        let mode_tok = self.bump();
        let mode = match &mode_tok.tok {
            Tok::Ident(s) if s.eq_ignore_ascii_case("ROWS") => FrameMode::Rows,
            Tok::Ident(s) if s.eq_ignore_ascii_case("RANGE") => FrameMode::Range,
            _ => FrameMode::Groups,
        };
        let (start, end) = if self.eat_kw("BETWEEN") {
            let start = self.bound()?;
            self.expect_kw("AND")?;
            let end = self.bound()?;
            (start, end)
        } else {
            // Single-bound short form: `ROWS n PRECEDING` means
            // `BETWEEN n PRECEDING AND CURRENT ROW` (SQL standard).
            (self.bound()?, AstBound::CurrentRow)
        };
        let exclusion = if self.eat_kw("EXCLUDE") {
            Some(if self.eat_kw("CURRENT") {
                self.expect_kw("ROW")?;
                FrameExclusion::CurrentRow
            } else if self.eat_kw("GROUP") {
                FrameExclusion::Group
            } else if self.eat_kw("TIES") {
                FrameExclusion::Ties
            } else if self.eat_kw("NO") {
                self.expect_kw("OTHERS")?;
                FrameExclusion::NoOthers
            } else {
                return Err(self.err_here("`CURRENT ROW`, `GROUP`, `TIES` or `NO OTHERS`"));
            })
        } else {
            None
        };
        let span = Span::new(mode_tok.span.start, self.toks[self.pos.saturating_sub(1)].span.end);
        Ok(AstFrame { mode, start, end, exclusion, span })
    }

    fn bound(&mut self) -> Result<AstBound, ParseError> {
        if self.eat_kw("UNBOUNDED") {
            return if self.eat_kw("PRECEDING") {
                Ok(AstBound::UnboundedPreceding)
            } else if self.eat_kw("FOLLOWING") {
                Ok(AstBound::UnboundedFollowing)
            } else {
                Err(self.err_here("`PRECEDING` or `FOLLOWING`"))
            };
        }
        if self.eat_kw("CURRENT") {
            self.expect_kw("ROW")?;
            return Ok(AstBound::CurrentRow);
        }
        // Offset expressions stop below AND/OR/NOT so that `BETWEEN a
        // PRECEDING AND b FOLLOWING` parses unambiguously; parenthesize to
        // use a boolean-typed expression (which would be rejected at
        // evaluation anyway).
        let e = self.cmp_expr()?;
        if self.eat_kw("PRECEDING") {
            Ok(AstBound::Preceding(e))
        } else if self.eat_kw("FOLLOWING") {
            Ok(AstBound::Following(e))
        } else {
            Err(self.err_here("`PRECEDING` or `FOLLOWING`"))
        }
    }

    fn sort_keys(&mut self) -> Result<Vec<AstSortKey>, ParseError> {
        let mut keys = vec![self.sort_key()?];
        while self.eat_punct(",") {
            keys.push(self.sort_key()?);
        }
        Ok(keys)
    }

    fn sort_key(&mut self) -> Result<AstSortKey, ParseError> {
        let expr = self.expr()?;
        let desc = if self.eat_kw("ASC") {
            Some(false)
        } else if self.eat_kw("DESC") {
            Some(true)
        } else {
            None
        };
        let nulls_first = if self.eat_kw("NULLS") {
            if self.eat_kw("FIRST") {
                Some(true)
            } else if self.eat_kw("LAST") {
                Some(false)
            } else {
                return Err(self.err_here("`FIRST` or `LAST`"));
            }
        } else {
            None
        };
        Ok(AstSortKey { expr, desc, nulls_first })
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<AstExpr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.at_kw("OR") {
            self.bump();
            let rhs = self.and_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = AstExpr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<AstExpr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.at_kw("AND") {
            self.bump();
            let rhs = self.not_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = AstExpr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<AstExpr, ParseError> {
        if self.at_kw("NOT") {
            let not_span = self.bump().span;
            let inner = self.not_expr()?;
            let span = not_span.to(inner.span());
            return Ok(AstExpr::Not(Box::new(inner), span));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<AstExpr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match &self.peek().tok {
            Tok::Punct("<") => Some(BinOp::Lt),
            Tok::Punct("<=") => Some(BinOp::Le),
            Tok::Punct(">") => Some(BinOp::Gt),
            Tok::Punct(">=") => Some(BinOp::Ge),
            Tok::Punct("=") => Some(BinOp::Eq),
            Tok::Punct("<>") => Some(BinOp::Ne),
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let rhs = self.add_expr()?;
                let span = lhs.span().to(rhs.span());
                Ok(AstExpr::Bin(op, Box::new(lhs), Box::new(rhs), span))
            }
            None => Ok(lhs),
        }
    }

    fn add_expr(&mut self) -> Result<AstExpr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match &self.peek().tok {
                Tok::Punct("+") => BinOp::Add,
                Tok::Punct("-") => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = AstExpr::Bin(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<AstExpr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match &self.peek().tok {
                Tok::Punct("*") => BinOp::Mul,
                Tok::Punct("/") => BinOp::Div,
                Tok::Punct("%") => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = AstExpr::Bin(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<AstExpr, ParseError> {
        if self.at_punct("-") {
            let minus = self.bump();
            // `-123` is a negative literal, not a negation node, so that
            // printed literals (including i64::MIN) round-trip structurally.
            if let Tok::Number(text) = &self.peek().tok {
                let text = text.clone();
                let num = self.bump();
                let span = minus.span.to(num.span);
                return self.number_literal(&text, span, true);
            }
            let inner = self.unary_expr()?;
            let span = minus.span.to(inner.span());
            return Ok(AstExpr::Neg(Box::new(inner), span));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<AstExpr, ParseError> {
        match &self.peek().tok {
            Tok::Number(text) => {
                let text = text.clone();
                let span = self.bump().span;
                self.number_literal(&text, span, false)
            }
            Tok::Str(s) => {
                let v = Value::str(s.clone());
                let span = self.bump().span;
                Ok(AstExpr::Lit(v, span))
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("NULL") => {
                let span = self.bump().span;
                Ok(AstExpr::Lit(Value::Null, span))
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("TRUE") => {
                let span = self.bump().span;
                Ok(AstExpr::Lit(Value::Bool(true), span))
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("FALSE") => {
                let span = self.bump().span;
                Ok(AstExpr::Lit(Value::Bool(false), span))
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("DATE") => {
                let date_span = self.bump().span;
                match &self.peek().tok {
                    Tok::Str(text) => {
                        let text = text.clone();
                        let str_span = self.bump().span;
                        let span = date_span.to(str_span);
                        match crate::date::parse_date(&text) {
                            Some(days) => Ok(AstExpr::Lit(Value::Date(days), span)),
                            None => Err(ParseError::new(
                                self.src,
                                str_span,
                                "a date in `'YYYY-MM-DD'` form",
                                format!("`'{text}'`"),
                            )),
                        }
                    }
                    _ => Err(self.err_here("a `'YYYY-MM-DD'` string after `DATE`")),
                }
            }
            Tok::Ident(s) => {
                if matches!(self.peek2().tok, Tok::Punct("(")) {
                    let lower = s.to_ascii_lowercase();
                    let what = if FUNCTION_NAMES.contains(&lower.as_str()) {
                        "a scalar expression (window function calls are only \
                         allowed at the top level of the SELECT list)"
                    } else {
                        "a scalar expression (function calls are not supported here)"
                    };
                    return Err(self.err_here(what));
                }
                let s = s.clone();
                let span = self.bump().span;
                Ok(AstExpr::Col(s, span))
            }
            Tok::QuotedIdent(s) => {
                let s = s.clone();
                let span = self.bump().span;
                Ok(AstExpr::Col(s, span))
            }
            Tok::Punct("(") => {
                let open = self.bump().span;
                let inner = self.expr()?;
                let close = self.expect_punct(")")?;
                // Keep the inner node; widen its span to the parentheses.
                Ok(match inner {
                    AstExpr::Col(s, _) => AstExpr::Col(s, open.to(close.span)),
                    AstExpr::Lit(v, _) => AstExpr::Lit(v, open.to(close.span)),
                    AstExpr::Bin(op, a, b, _) => AstExpr::Bin(op, a, b, open.to(close.span)),
                    AstExpr::Not(e, _) => AstExpr::Not(e, open.to(close.span)),
                    AstExpr::Neg(e, _) => AstExpr::Neg(e, open.to(close.span)),
                })
            }
            _ => Err(self.err_here("an expression")),
        }
    }

    fn number_literal(
        &self,
        text: &str,
        span: Span,
        negative: bool,
    ) -> Result<AstExpr, ParseError> {
        let is_float = text.contains(['.', 'e', 'E']);
        if is_float {
            let v: f64 = text.parse().map_err(|_| {
                ParseError::new(self.src, span, "a numeric literal", format!("`{text}`"))
            })?;
            Ok(AstExpr::Lit(Value::Float(if negative { -v } else { v }), span))
        } else {
            let joined = if negative { format!("-{text}") } else { text.to_string() };
            match joined.parse::<i64>() {
                Ok(v) => Ok(AstExpr::Lit(Value::Int(v), span)),
                Err(_) => Err(ParseError::new(
                    self.src,
                    span,
                    "an integer literal that fits in i64",
                    format!("`{joined}`"),
                )),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_query() {
        let q = parse_query("SELECT count(*) OVER () FROM t").unwrap();
        assert_eq!(q.items.len(), 1);
        assert_eq!(q.from.0, "t");
    }

    #[test]
    fn parses_full_surface() {
        let q = parse_query(
            "SELECT day, price * 2 AS p2, \
               sum(DISTINCT v) FILTER (WHERE v > 0) OVER w AS s, \
               percentile_cont(0.5) WITHIN GROUP (ORDER BY price) OVER w AS med, \
               lead(v, 2, -1 ORDER BY day DESC) IGNORE NULLS OVER (w2 ROWS 3 PRECEDING) \
             FROM sales \
             WHERE day >= DATE '1970-01-10' \
             WINDOW w AS (PARTITION BY g ORDER BY day \
                          GROUPS BETWEEN 1 PRECEDING AND 1 FOLLOWING EXCLUDE TIES), \
                    w2 AS (PARTITION BY g) \
             ORDER BY day ASC NULLS FIRST, p2 DESC",
        )
        .unwrap();
        assert_eq!(q.items.len(), 5);
        assert_eq!(q.windows.len(), 2);
        assert_eq!(q.order_by.len(), 2);
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn negative_literals_fold() {
        let q = parse_query("SELECT v + -9223372036854775808 FROM t").unwrap();
        let SelectItem::Scalar { expr, .. } = &q.items[0] else { panic!() };
        let AstExpr::Bin(BinOp::Add, _, rhs, _) = expr else { panic!("{expr:?}") };
        assert!(matches!(**rhs, AstExpr::Lit(Value::Int(i64::MIN), _)));
    }

    #[test]
    fn between_and_does_not_swallow_boolean_and() {
        let q = parse_query(
            "SELECT count(*) OVER (ORDER BY k ROWS BETWEEN v % 3 PRECEDING AND 2 FOLLOWING) FROM t",
        )
        .unwrap();
        assert_eq!(q.items.len(), 1);
    }

    #[test]
    fn errors_are_positional() {
        let e = parse_query("SELECT sum(v) FROM t").unwrap_err();
        assert!(e.expected.contains("OVER"), "{e}");
        let e = parse_query("SELECT count(*) OVER () FROM").unwrap_err();
        assert_eq!(e.found, "end of input");
    }

    #[test]
    fn duplicate_null_treatment_is_rejected() {
        // A second clause must error, not be OR-ed into the first.
        for sql in [
            "SELECT first_value(v) IGNORE NULLS RESPECT NULLS OVER () FROM t",
            "SELECT first_value(v) RESPECT NULLS IGNORE NULLS OVER () FROM t",
            "SELECT first_value(v IGNORE NULLS) RESPECT NULLS OVER () FROM t",
        ] {
            let e = parse_query(sql).unwrap_err();
            assert!(e.expected.contains("null-treatment"), "{sql}: {e}");
        }
        // A single clause in either position still parses.
        assert!(parse_query("SELECT lead(v) IGNORE NULLS OVER () FROM t").is_ok());
        assert!(parse_query("SELECT lead(v IGNORE NULLS) OVER () FROM t").is_ok());
    }
}
