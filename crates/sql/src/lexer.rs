//! Hand-rolled SQL lexer.
//!
//! Produces a flat token stream with byte spans. Keywords are not
//! distinguished from identifiers here — SQL keywords are contextual, so the
//! parser matches identifier tokens case-insensitively against the keyword it
//! needs. Numbers keep their raw text; the parser decides int vs. float.

use crate::error::{ParseError, Span};

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Unquoted identifier or keyword (original case preserved).
    Ident(String),
    /// `"..."`-quoted identifier (quotes stripped, `""` unescaped).
    QuotedIdent(String),
    /// Numeric literal, raw text (e.g. `42`, `0.5`, `1e300`).
    Number(String),
    /// `'...'` string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Punctuation / operator: one of `( ) , ; * + - / % < <= > >= = <>`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Byte span in the source.
    pub span: Span,
}

impl Token {
    /// How the token reads in an error message: the source text in backticks,
    /// or `end of input`.
    pub fn describe(&self, src: &str) -> String {
        match self.tok {
            Tok::Eof => "end of input".to_string(),
            _ => format!("`{}`", &src[self.span.start..self.span.end]),
        }
    }
}

/// Lexes `src` into tokens (the final token is always [`Tok::Eof`]).
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c == b'-' && i + 1 < b.len() && b[i + 1] == b'-' {
            // Line comment.
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        if c.is_ascii_alphabetic() || c == b'_' {
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push(Token {
                tok: Tok::Ident(src[start..i].to_string()),
                span: Span::new(start, i),
            });
            continue;
        }
        if c.is_ascii_digit() || (c == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit()) {
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
            if i < b.len() && b[i] == b'.' {
                i += 1;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
            }
            if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                let mut j = i + 1;
                if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                    j += 1;
                }
                if j < b.len() && b[j].is_ascii_digit() {
                    i = j;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            out.push(Token {
                tok: Tok::Number(src[start..i].to_string()),
                span: Span::new(start, i),
            });
            continue;
        }
        if c == b'\'' || c == b'"' {
            let quote = c;
            i += 1;
            let mut text = String::new();
            loop {
                if i >= b.len() {
                    return Err(ParseError::new(
                        src,
                        Span::new(start, src.len()),
                        if quote == b'\'' { "a closing `'`" } else { "a closing `\"`" },
                        "end of input",
                    ));
                }
                if b[i] == quote {
                    if i + 1 < b.len() && b[i + 1] == quote {
                        text.push(quote as char);
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                // Advance one whole UTF-8 character.
                let ch = src[i..].chars().next().expect("in-bounds char");
                text.push(ch);
                i += ch.len_utf8();
            }
            let tok = if quote == b'\'' { Tok::Str(text) } else { Tok::QuotedIdent(text) };
            out.push(Token { tok, span: Span::new(start, i) });
            continue;
        }
        // `get` (not slicing) so a multibyte char after `i` can't split a
        // UTF-8 boundary; a failed lookahead just falls through to single-char
        // punctuation or the error arm below.
        let two = src.get(i..i + 2).unwrap_or("");
        let punct: Option<(&'static str, usize)> = match two {
            "<=" => Some(("<=", 2)),
            ">=" => Some((">=", 2)),
            "<>" => Some(("<>", 2)),
            "!=" => Some(("<>", 2)), // normalized alias
            _ => match c {
                b'(' => Some(("(", 1)),
                b')' => Some((")", 1)),
                b',' => Some((",", 1)),
                b';' => Some((";", 1)),
                b'*' => Some(("*", 1)),
                b'+' => Some(("+", 1)),
                b'-' => Some(("-", 1)),
                b'/' => Some(("/", 1)),
                b'%' => Some(("%", 1)),
                b'<' => Some(("<", 1)),
                b'>' => Some((">", 1)),
                b'=' => Some(("=", 1)),
                _ => None,
            },
        };
        match punct {
            Some((p, len)) => {
                out.push(Token { tok: Tok::Punct(p), span: Span::new(i, i + len) });
                i += len;
            }
            None => {
                let ch = src[i..].chars().next().expect("in-bounds char");
                return Err(ParseError::new(
                    src,
                    Span::new(i, i + ch.len_utf8()),
                    "a token",
                    format!("`{ch}`"),
                ));
            }
        }
    }
    out.push(Token { tok: Tok::Eof, span: Span::new(src.len(), src.len()) });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_basic_query() {
        let toks = kinds("SELECT sum(v) OVER w FROM t");
        assert_eq!(toks[0], Tok::Ident("SELECT".into()));
        assert_eq!(toks[2], Tok::Punct("("));
        assert!(matches!(toks.last(), Some(Tok::Eof)));
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("42 0.5 1e300 2.5e-3")[..4].to_vec(),
            vec![
                Tok::Number("42".into()),
                Tok::Number("0.5".into()),
                Tok::Number("1e300".into()),
                Tok::Number("2.5e-3".into()),
            ]
        );
    }

    #[test]
    fn lexes_strings_and_quoted_idents() {
        assert_eq!(
            kinds("'it''s' \"ORDER\"")[..2].to_vec(),
            vec![Tok::Str("it's".into()), Tok::QuotedIdent("ORDER".into()),]
        );
    }

    #[test]
    fn normalizes_bang_eq() {
        assert_eq!(kinds("a != b")[1], Tok::Punct("<>"));
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(kinds("a -- comment\n b").len(), 3);
    }

    #[test]
    fn unterminated_string_is_positional() {
        let e = lex("SELECT 'oops").unwrap_err();
        assert_eq!(e.found, "end of input");
    }

    #[test]
    fn multibyte_chars_error_instead_of_panicking() {
        // 3- and 4-byte chars, both at the end and mid-input, must hit the
        // typed-error path rather than split a UTF-8 boundary in the
        // two-char punctuation lookahead.
        for src in ["SELECT a €", "SELECT a € FROM t", "a—b", "x 😀 y", "€"] {
            let e = lex(src).unwrap_err();
            assert_eq!(e.expected, "a token", "input {src:?}");
        }
        // Multibyte chars inside strings/quoted idents are still fine.
        assert_eq!(kinds("'€—😀'")[0], Tok::Str("€—😀".into()));
        assert_eq!(kinds("\"naïve\"")[0], Tok::QuotedIdent("naïve".into()));
    }
}
