//! `to_sql()` — pretty-printing engine specs back to parseable SQL.
//!
//! The printer is the inverse of the parser over the engine's spec types:
//! for any [`WindowQuery`] the engine accepts,
//! `parse(print(query))` lowers back to a structurally identical query, and
//! executing both yields bit-identical outputs (asserted over the full fuzz
//! spec space by `fuzz --sql-roundtrip`). Two caveats, documented in
//! `SQL.md`: non-finite float literals print as overflow/NaN-producing
//! arithmetic (`1e999`, `(1e999 - 1e999)`), and `Neg`/`Not` nodes wrapping
//! bare literals print with explicit parentheses so the parser's
//! negative-literal folding cannot collapse them.

use holistic_window::expr::{BinOp, Expr};
use holistic_window::frame::{FrameBound, FrameExclusion, FrameMode, FrameSpec};
use holistic_window::spec::{FuncKind, FunctionCall, WindowSpec};
use holistic_window::{SortKey, Value, WindowQuery};
use std::fmt::Write;

/// Renders a whole query as `SELECT <calls> FROM <table> WINDOW w AS (...)`,
/// with every call attached to the shared named window `w`.
pub fn to_sql(query: &WindowQuery, table: &str) -> String {
    let mut s = String::from("SELECT ");
    for (i, call) in query.calls.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{} OVER w AS {}", call_to_sql(call), ident(&call.output_name));
    }
    let _ = write!(s, " FROM {} WINDOW w AS ({})", ident(table), spec_to_sql(&query.spec));
    s
}

/// Renders the body of an OVER clause / WINDOW definition (without parens).
/// The frame is always printed explicitly, so the rendered spec is
/// independent of the parser's default-frame rules.
pub fn spec_to_sql(spec: &WindowSpec) -> String {
    let mut parts: Vec<String> = Vec::new();
    if !spec.partition_by.is_empty() {
        let keys: Vec<String> = spec.partition_by.iter().map(expr_to_sql).collect();
        parts.push(format!("PARTITION BY {}", keys.join(", ")));
    }
    if !spec.order_by.is_empty() {
        parts.push(format!("ORDER BY {}", sort_keys_to_sql(&spec.order_by)));
    }
    parts.push(frame_to_sql(&spec.frame));
    parts.join(" ")
}

/// Renders one function call (everything before `OVER`).
pub fn call_to_sql(call: &FunctionCall) -> String {
    let mut s = String::new();
    match call.kind {
        FuncKind::CountStar => s.push_str("count(*)"),
        FuncKind::Median
            if call.args.is_empty()
                && call.inner_order.len() == 1
                && !call.inner_order[0].desc
                && !call.inner_order[0].nulls_first =>
        {
            // The builder's `median(expr)` shorthand: one implicit ASC key.
            let _ = write!(s, "median({})", expr_to_sql(&call.inner_order[0].expr));
        }
        kind => {
            s.push_str(kind.name());
            s.push('(');
            if call.distinct {
                s.push_str("DISTINCT ");
            }
            let args: Vec<String> = call.args.iter().map(expr_to_sql).collect();
            s.push_str(&args.join(", "));
            if !call.inner_order.is_empty() {
                if !call.args.is_empty() {
                    s.push(' ');
                }
                let _ = write!(s, "ORDER BY {}", sort_keys_to_sql(&call.inner_order));
            }
            s.push(')');
        }
    }
    if call.ignore_nulls {
        s.push_str(" IGNORE NULLS");
    }
    if let Some(pred) = &call.filter {
        let _ = write!(s, " FILTER (WHERE {})", expr_to_sql(pred));
    }
    s
}

/// Renders an ORDER BY criteria list.
pub fn sort_keys_to_sql(keys: &[SortKey]) -> String {
    let rendered: Vec<String> = keys
        .iter()
        .map(|k| {
            let mut s = expr_to_sql(&k.expr);
            if k.desc {
                s.push_str(" DESC");
            }
            // Direction defaults: NULLS LAST for ASC, NULLS FIRST for DESC.
            if k.nulls_first != k.desc {
                s.push_str(if k.nulls_first { " NULLS FIRST" } else { " NULLS LAST" });
            }
            s
        })
        .collect();
    rendered.join(", ")
}

/// Renders a frame clause (always in the explicit BETWEEN form).
pub fn frame_to_sql(frame: &FrameSpec) -> String {
    let mode = match frame.mode {
        FrameMode::Rows => "ROWS",
        FrameMode::Range => "RANGE",
        FrameMode::Groups => "GROUPS",
    };
    let mut s =
        format!("{mode} BETWEEN {} AND {}", bound_to_sql(&frame.start), bound_to_sql(&frame.end));
    match frame.exclusion {
        FrameExclusion::NoOthers => {}
        FrameExclusion::CurrentRow => s.push_str(" EXCLUDE CURRENT ROW"),
        FrameExclusion::Group => s.push_str(" EXCLUDE GROUP"),
        FrameExclusion::Ties => s.push_str(" EXCLUDE TIES"),
    }
    s
}

fn bound_to_sql(bound: &FrameBound) -> String {
    match bound {
        FrameBound::UnboundedPreceding => "UNBOUNDED PRECEDING".to_string(),
        FrameBound::CurrentRow => "CURRENT ROW".to_string(),
        FrameBound::UnboundedFollowing => "UNBOUNDED FOLLOWING".to_string(),
        FrameBound::Preceding(e) => format!("{} PRECEDING", offset_to_sql(e)),
        FrameBound::Following(e) => format!("{} FOLLOWING", offset_to_sql(e)),
    }
}

/// Offset expressions parse below AND/OR/NOT (so `BETWEEN ... AND ...` stays
/// unambiguous); parenthesize anything weaker-binding.
fn offset_to_sql(e: &Expr) -> String {
    if prec(e) < PREC_CMP {
        format!("({})", expr_to_sql(e))
    } else {
        expr_to_sql(e)
    }
}

const PREC_OR: u8 = 1;
const PREC_AND: u8 = 2;
const PREC_NOT: u8 = 3;
const PREC_CMP: u8 = 4;
const PREC_ADD: u8 = 5;
const PREC_MUL: u8 = 6;
const PREC_UNARY: u8 = 8;
const PREC_ATOM: u8 = 10;

fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Col(_) | Expr::Lit(_) => PREC_ATOM,
        Expr::Neg(_) => PREC_UNARY,
        Expr::Not(_) => PREC_NOT,
        Expr::Bin(op, _, _) => match op {
            BinOp::Or => PREC_OR,
            BinOp::And => PREC_AND,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => PREC_CMP,
            BinOp::Add | BinOp::Sub => PREC_ADD,
            BinOp::Mul | BinOp::Div | BinOp::Mod => PREC_MUL,
        },
    }
}

fn op_text(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "=",
        BinOp::Ne => "<>",
        BinOp::And => "AND",
        BinOp::Or => "OR",
    }
}

/// Renders a scalar expression with minimal parentheses.
pub fn expr_to_sql(e: &Expr) -> String {
    match e {
        Expr::Col(name) => ident(name),
        Expr::Lit(v) => value_to_sql(v),
        Expr::Neg(inner) => format!("-({})", expr_to_sql(inner)),
        Expr::Not(inner) => {
            // NOT binds above AND/OR and below comparisons.
            if prec(inner) >= PREC_NOT {
                format!("NOT {}", expr_to_sql(inner))
            } else {
                format!("NOT ({})", expr_to_sql(inner))
            }
        }
        Expr::Bin(op, l, r) => {
            let p = prec(e);
            // Comparisons are non-associative: a comparison operand of a
            // comparison always needs parentheses. Everything else is
            // left-associative.
            let lp = prec(l) < p || (p == PREC_CMP && prec(l) == PREC_CMP);
            let rp = prec(r) <= p;
            let ls = if lp { format!("({})", expr_to_sql(l)) } else { expr_to_sql(l) };
            let rs = if rp { format!("({})", expr_to_sql(r)) } else { expr_to_sql(r) };
            format!("{ls} {} {rs}", op_text(*op))
        }
    }
}

/// Renders a literal.
///
/// Non-finite floats have no SQL literal: infinities print as the
/// overflowing literal `1e999`, NaN as `(1e999 - 1e999)` — these evaluate
/// back to the same value but do not round-trip *structurally* (see SQL.md).
pub fn value_to_sql(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Bool(true) => "TRUE".to_string(),
        Value::Bool(false) => "FALSE".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(x) => {
            if x.is_nan() {
                "(1e999 - 1e999)".to_string()
            } else if x.is_infinite() {
                if *x > 0.0 {
                    "1e999".to_string()
                } else {
                    "-1e999".to_string()
                }
            } else {
                // `{:?}` is Rust's shortest round-trip rendering; it always
                // contains `.` or `e`, so it re-parses as a float.
                let s = format!("{x:?}");
                debug_assert!(
                    s.contains(['.', 'e', 'E']),
                    "float literal {s} must re-parse as float"
                );
                s
            }
        }
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Date(d) => format!("DATE '{}'", crate::date::format_date(*d)),
    }
}

/// Keywords that would be mis-parsed as clause starters or literals if they
/// appeared as bare identifiers; the printer double-quotes them.
const KEYWORDS: &[&str] = &[
    "select",
    "from",
    "where",
    "window",
    "as",
    "over",
    "partition",
    "by",
    "order",
    "asc",
    "desc",
    "nulls",
    "first",
    "last",
    "rows",
    "range",
    "groups",
    "between",
    "and",
    "or",
    "not",
    "unbounded",
    "preceding",
    "following",
    "current",
    "row",
    "exclude",
    "no",
    "others",
    "group",
    "ties",
    "filter",
    "distinct",
    "ignore",
    "respect",
    "within",
    "date",
    "null",
    "true",
    "false",
];

/// Renders an identifier, double-quoting when it would not lex as a bare
/// identifier or would collide with a keyword.
pub fn ident(name: &str) -> String {
    let bare = !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !KEYWORDS.contains(&name.to_ascii_lowercase().as_str());
    if bare {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\"\""))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_window::{col, lit};

    #[test]
    fn literals() {
        assert_eq!(value_to_sql(&Value::Int(-5)), "-5");
        assert_eq!(value_to_sql(&Value::Float(0.5)), "0.5");
        assert_eq!(value_to_sql(&Value::Float(1e300)), "1e300");
        assert_eq!(value_to_sql(&Value::str("it's")), "'it''s'");
        assert_eq!(value_to_sql(&Value::Date(0)), "DATE '1970-01-01'");
        assert_eq!(value_to_sql(&Value::Null), "NULL");
    }

    #[test]
    fn precedence_parens() {
        // (a + b) * c needs parens; a + b * c does not.
        let e = col("a").add(col("b")).mul(col("c"));
        assert_eq!(expr_to_sql(&e), "(a + b) * c");
        let e = col("a").add(col("b").mul(col("c")));
        assert_eq!(expr_to_sql(&e), "a + b * c");
        // Right-nested same-precedence keeps parens to preserve shape.
        let e = col("a").sub(col("b").sub(col("c")));
        assert_eq!(expr_to_sql(&e), "a - (b - c)");
        let e = col("a").lt(lit(1i64)).and(col("b").gt(lit(2i64)));
        assert_eq!(expr_to_sql(&e), "a < 1 AND b > 2");
    }

    #[test]
    fn keyword_idents_are_quoted() {
        assert_eq!(ident("group"), "\"group\"");
        assert_eq!(ident("c0_count"), "c0_count");
        assert_eq!(ident("count(*)"), "\"count(*)\"");
    }

    #[test]
    fn call_median_shorthand() {
        let c = FunctionCall::median(col("price"));
        assert_eq!(call_to_sql(&c), "median(price)");
    }
}
