//! [`SqlSession`]: registered tables + execution options + `query()`.
//!
//! The session is the top of the stack: it parses SQL text, plans it against
//! a registered table, runs the `WHERE` pre-filter, hands each distinct
//! resolved window to the engine as one [`WindowQuery`](crate::WindowQuery)
//! (so same-window
//! calls share sorts, merge sort trees, and every other cached artifact),
//! assembles the `SELECT` list in source order, and applies the final
//! `ORDER BY` with the engine's own sort semantics.

use crate::error::{PlanError, SqlError};
use crate::planner::{self, PlannedItem, SqlPlan};
use holistic_window::executor::{ExecOptions, ExecProfile};
use holistic_window::order::{sort_permutation, KeyColumns};
use holistic_window::{Column, Expr, SortKey, Table};
use std::collections::{HashMap, HashSet};

/// An embedded SQL session over in-memory tables.
///
/// ```
/// use holistic_sql::SqlSession;
/// use holistic_window::{Column, Table, Value};
///
/// let mut session = SqlSession::new();
/// session.register(
///     "t",
///     Table::new(vec![
///         ("g", Column::strs(vec!["a", "a", "b"])),
///         ("v", Column::ints(vec![10, 20, 30])),
///     ])
///     .unwrap(),
/// );
/// let out = session
///     .query("SELECT g, sum(v) OVER (PARTITION BY g) AS s FROM t")
///     .unwrap();
/// assert_eq!(out.column("s").unwrap().to_values(),
///            vec![Value::Int(30), Value::Int(30), Value::Int(30)]);
/// ```
#[derive(Debug, Default)]
pub struct SqlSession {
    tables: HashMap<String, Table>,
    opts: ExecOptions,
}

impl SqlSession {
    /// A session with default (fully adaptive) execution options.
    pub fn new() -> Self {
        SqlSession::default()
    }

    /// A session with explicit execution options.
    pub fn with_options(opts: ExecOptions) -> Self {
        SqlSession { tables: HashMap::new(), opts }
    }

    /// The session's execution options.
    pub fn options(&self) -> ExecOptions {
        self.opts
    }

    /// Registers (or replaces) a table under `name` for `FROM` resolution.
    pub fn register(&mut self, name: impl Into<String>, table: Table) -> &mut Self {
        self.tables.insert(name.into(), table);
        self
    }

    /// Parses, plans, and executes `sql`, returning the result table.
    pub fn query(&self, sql: &str) -> Result<Table, SqlError> {
        self.query_profiled(sql).map(|(out, _)| out)
    }

    /// Like [`SqlSession::query`] with a one-off options override.
    pub fn query_with(&self, sql: &str, opts: ExecOptions) -> Result<Table, SqlError> {
        let (out, _) = self.run(sql, opts)?;
        Ok(out)
    }

    /// Executes `sql` and also returns one engine [`ExecProfile`] per
    /// distinct window in the query (artifact-cache hit counters, phase
    /// timings, strategy decisions).
    pub fn query_profiled(&self, sql: &str) -> Result<(Table, Vec<ExecProfile>), SqlError> {
        self.run(sql, self.opts)
    }

    fn run(&self, sql: &str, opts: ExecOptions) -> Result<(Table, Vec<ExecProfile>), SqlError> {
        let query = crate::parser::parse_query(sql)?;
        // Resolve FROM first so column checks in `plan` see the right table.
        let from_name = &query.from.0;
        let Some(table) = self.tables.get(from_name) else {
            return Err(SqlError::Plan(PlanError::new(
                sql,
                query.from.1,
                format!("unknown table `{from_name}`"),
            )));
        };
        let plan = planner::plan(sql, &query, Some(table))?;
        execute_plan(sql, &plan, table, opts)
    }
}

/// Executes a plan against `table` directly (no session registry); `src` is
/// the original SQL text, used to render positional diagnostics.
pub fn execute_plan(
    src: &str,
    plan: &SqlPlan,
    table: &Table,
    opts: ExecOptions,
) -> Result<(Table, Vec<ExecProfile>), SqlError> {
    // 1. WHERE pre-filter (SQL evaluates WHERE before window functions).
    let filtered: Table = match &plan.filter {
        Some(pred) => filter_table(table, pred)?,
        None => table.clone(),
    };

    // 2. One engine execution per distinct resolved window.
    let mut window_outputs: Vec<Table> = Vec::with_capacity(plan.windows.len());
    let mut profiles: Vec<ExecProfile> = Vec::with_capacity(plan.windows.len());
    for query in &plan.windows {
        let (out, profile) = query.execute_profiled(&filtered, opts)?;
        window_outputs.push(out);
        profiles.push(profile);
    }

    // 3. Assemble the SELECT list in source order, enforcing unique output
    //    names (the engine's `Table` does not).
    let mut out = Table::empty();
    let mut seen: HashSet<String> = HashSet::new();
    let mut claim = |name: &str, span| {
        if seen.insert(name.to_string()) {
            Ok(())
        } else {
            Err(SqlError::Plan(PlanError::new(
                src,
                span,
                format!("duplicate output column `{name}` (use AS to rename)"),
            )))
        }
    };
    for item in &plan.items {
        match item {
            PlannedItem::AllColumns { span } => {
                for (name, col) in filtered.iter() {
                    claim(name, *span)?;
                    out.add_column(name, col.clone())?;
                }
            }
            PlannedItem::Scalar { expr, name, span } => {
                claim(name, *span)?;
                out.add_column(name.clone(), expr.bind(&filtered)?.eval_column(&filtered)?)?;
            }
            PlannedItem::Window { group, call, name, span } => {
                claim(name, *span)?;
                out.add_column(name.clone(), window_outputs[*group].column_at(*call).clone())?;
            }
        }
    }

    // 4. Final ORDER BY: keys naming an output column (by bare identifier)
    //    sort by that column; everything else evaluates against the filtered
    //    input. Sorting reuses the engine's comparator, so NULL placement and
    //    direction semantics match window-internal ordering exactly.
    if !plan.order_by.is_empty() {
        let mut key_table = Table::empty();
        let mut keys: Vec<SortKey> = Vec::with_capacity(plan.order_by.len());
        for (i, key) in plan.order_by.iter().enumerate() {
            let col = match &key.expr {
                Expr::Col(name) if out.column_index(name).is_ok() => out.column(name)?.clone(),
                other => other.bind(&filtered)?.eval_column(&filtered)?,
            };
            let kname = format!("__sort_key_{i}");
            key_table.add_column(kname.clone(), col)?;
            keys.push(SortKey {
                expr: Expr::Col(kname),
                desc: key.desc,
                nulls_first: key.nulls_first,
            });
        }
        let key_cols = KeyColumns::evaluate(&key_table, &keys)?;
        let mut perm: Vec<usize> = (0..out.num_rows()).collect();
        sort_permutation(&key_cols, &mut perm, opts.parallel);
        out = permute_table(&out, &perm)?;
    }

    Ok((out, profiles))
}

/// Keeps the rows where `pred` evaluates to TRUE (NULL is falsy, matching
/// the engine's `FILTER` semantics).
fn filter_table(table: &Table, pred: &Expr) -> Result<Table, SqlError> {
    let mask = pred.bind(table)?.eval_column(table)?;
    let mut out = Table::empty();
    for (name, col) in table.iter() {
        let mut kept = Column::new_empty(col.data_type());
        for i in 0..table.num_rows() {
            if mask.get(i).is_truthy() {
                kept.push(col.get(i))?;
            }
        }
        out.add_column(name, kept)?;
    }
    Ok(out)
}

fn permute_table(table: &Table, perm: &[usize]) -> Result<Table, SqlError> {
    let mut out = Table::empty();
    for (name, col) in table.iter() {
        let mut sorted = Column::new_empty(col.data_type());
        for &i in perm {
            sorted.push(col.get(i))?;
        }
        out.add_column(name, sorted)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_window::Value;

    fn session() -> SqlSession {
        let mut s = SqlSession::new();
        s.register(
            "t",
            Table::new(vec![
                ("g", Column::strs(vec!["a", "b", "a", "b"])),
                ("v", Column::ints(vec![4, 3, 2, 1])),
            ])
            .unwrap(),
        );
        s
    }

    #[test]
    fn where_runs_before_windows() {
        let out = session().query("SELECT v, count(*) OVER () AS n FROM t WHERE v > 2").unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.column("n").unwrap().get(0), Value::Int(2));
    }

    #[test]
    fn final_order_by_alias_and_expression() {
        let out = session()
            .query("SELECT v, row_number() OVER (ORDER BY v) AS r FROM t ORDER BY r DESC")
            .unwrap();
        assert_eq!(
            out.column("v").unwrap().to_values(),
            vec![Value::Int(4), Value::Int(3), Value::Int(2), Value::Int(1)]
        );
        let out = session().query("SELECT g, v FROM t ORDER BY v * -1").unwrap();
        assert_eq!(out.column("v").unwrap().get(0), Value::Int(4));
    }

    #[test]
    fn star_expands_and_duplicates_are_rejected() {
        let out = session().query("SELECT *, count(*) OVER () AS n FROM t").unwrap();
        assert_eq!(out.num_columns(), 3);
        let err = session().query("SELECT v, sum(v) OVER () AS v FROM t").unwrap_err();
        assert!(err.to_string().contains("duplicate output column"), "{err}");
    }

    #[test]
    fn unknown_table_is_positional() {
        let err = session().query("SELECT count(*) OVER () FROM nope").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("unknown table `nope`"), "{text}");
        assert!(text.contains("^^^^"), "{text}");
    }
}
