//! # holistic-sql — a SQL window-query frontend for `holistic-window`
//!
//! A hand-rolled lexer, recursive-descent parser, and planner that lower a
//! documented SQL dialect onto the engine's spec types ([`WindowQuery`],
//! [`WindowSpec`], [`FunctionCall`]). The dialect covers the engine's whole
//! surface: all 21 function kinds, `ROWS`/`RANGE`/`GROUPS` frames with
//! constant *and per-row expression* bounds, the four `EXCLUDE` modes,
//! `FILTER (WHERE ...)`, `IGNORE NULLS`, `DISTINCT`, function-level `ORDER
//! BY` (in-paren or `WITHIN GROUP`), and named windows with the SQL
//! standard's inheritance rules.
//!
//! The normative language reference lives in `SQL.md` at the repository
//! root, rendered here as the [`mod@reference`] module.
//!
//! ```
//! use holistic_sql::SqlSession;
//! use holistic_window::{Column, Table, Value};
//!
//! let mut session = SqlSession::new();
//! session.register(
//!     "trades",
//!     Table::new(vec![
//!         ("sym", Column::strs(vec!["a", "b", "a", "b", "a"])),
//!         ("px", Column::ints(vec![10, 50, 20, 40, 30])),
//!     ])
//!     .unwrap(),
//! );
//!
//! let out = session
//!     .query(
//!         "SELECT sym, px, \
//!                 median(px) OVER (PARTITION BY sym \
//!                                  ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) AS med \
//!          FROM trades ORDER BY sym, px",
//!     )
//!     .unwrap();
//! // Row (a, 30): frame {20, 30}, discrete median = first at cume_dist >= 0.5.
//! assert_eq!(out.column("med").unwrap().get(2), Value::Int(20));
//! ```
//!
//! Errors are typed and positional — [`ParseError`] / [`PlanError`] carry a
//! byte [`Span`] plus a rendered caret excerpt, and parsing never panics on
//! any input:
//!
//! ```
//! use holistic_sql::parse_query;
//!
//! let err = parse_query("SELECT sum(v) OVER (ROWS 2 PRECEDING BETWEEN) FROM t").unwrap_err();
//! assert!(err.to_string().contains("expected"));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod date;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod planner;
pub mod print;
pub mod session;

pub use error::{Excerpt, ParseError, PlanError, Span, SqlError};
pub use parser::parse_query;
pub use planner::{compile, parse_window_query, plan, PlannedItem, SqlPlan};
pub use print::to_sql;
pub use session::{execute_plan, SqlSession};

// Re-exported engine types that appear in this crate's public API.
pub use holistic_window::{FunctionCall, WindowQuery, WindowSpec};

/// The SQL language reference (`SQL.md`), rendered into rustdoc.
///
/// This is the normative description of the dialect: grammar, per-function
/// semantics, frame and exclusion semantics, named-window inheritance, and
/// the table of deviations from PostgreSQL.
#[doc = include_str!("../../../SQL.md")]
pub mod reference {}
