//! Typed, positional errors for the SQL frontend.
//!
//! Every syntax error is a [`ParseError`] carrying a byte [`Span`] into the
//! source plus `expected`/`found` strings; every name-resolution or lowering
//! error is a [`PlanError`] carrying a span plus a message. Both render with
//! a caret excerpt of the offending line — the rendered wording is a stable,
//! documented API pinned by `crates/sql/tests/errors.rs`. The frontend never
//! panics on malformed input.

use std::fmt;

/// A half-open byte range `[start, end)` into the SQL source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// First byte of the spanned region.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// Builds a span.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }
}

/// The line excerpt behind a positional error: 1-based line/column plus the
/// text of the offending source line, captured at construction so the error
/// stays self-contained (no borrow of the source).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Excerpt {
    /// 1-based line number of the span start.
    pub line: usize,
    /// 1-based column (in bytes) of the span start within that line.
    pub column: usize,
    /// The full text of that source line (without its newline).
    pub line_text: String,
    /// Caret count: the spanned bytes on that line (at least 1).
    pub width: usize,
}

impl Excerpt {
    /// Locates `span` inside `src` and captures the offending line.
    pub fn capture(src: &str, span: Span) -> Excerpt {
        let start = span.start.min(src.len());
        let line_start = src[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
        let line_end = src[line_start..].find('\n').map(|i| line_start + i).unwrap_or(src.len());
        let line = src[..start].matches('\n').count() + 1;
        let column = start - line_start + 1;
        let width = span.end.saturating_sub(start).clamp(1, line_end.saturating_sub(start).max(1));
        Excerpt { line, column, line_text: src[line_start..line_end].to_string(), width }
    }

    fn render(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let gutter = self.line.to_string();
        writeln!(f, " --> line {}, column {}", self.line, self.column)?;
        writeln!(f, " {} |", " ".repeat(gutter.len()))?;
        writeln!(f, " {} | {}", gutter, self.line_text)?;
        write!(
            f,
            " {} | {}{}",
            " ".repeat(gutter.len()),
            " ".repeat(self.column - 1),
            "^".repeat(self.width)
        )
    }
}

/// A syntax error: what the parser expected and what it found, with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where in the source the error occurred.
    pub span: Span,
    /// What the parser expected at that point (e.g. `` `FROM` ``).
    pub expected: String,
    /// What it found instead (the offending token, or `end of input`).
    pub found: String,
    /// The captured line excerpt used for rendering.
    pub excerpt: Excerpt,
}

impl ParseError {
    /// Builds a parse error, capturing the offending line from `src`.
    pub fn new(
        src: &str,
        span: Span,
        expected: impl Into<String>,
        found: impl Into<String>,
    ) -> Self {
        ParseError {
            span,
            expected: expected.into(),
            found: found.into(),
            excerpt: Excerpt::capture(src, span),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "parse error: expected {}, found {}", self.expected, self.found)?;
        self.excerpt.render(f)
    }
}

impl std::error::Error for ParseError {}

/// A planning error (name resolution, window inheritance, call shape), with
/// the span of the offending construct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// Where in the source the offending construct sits.
    pub span: Span,
    /// What is wrong.
    pub message: String,
    /// The captured line excerpt used for rendering.
    pub excerpt: Excerpt,
}

impl PlanError {
    /// Builds a plan error, capturing the offending line from `src`.
    pub fn new(src: &str, span: Span, message: impl Into<String>) -> Self {
        PlanError { span, message: message.into(), excerpt: Excerpt::capture(src, span) }
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan error: {}", self.message)?;
        self.excerpt.render(f)
    }
}

impl std::error::Error for PlanError {}

/// Any error the SQL frontend can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Syntax error (lexing or parsing).
    Parse(ParseError),
    /// Name resolution / lowering error.
    Plan(PlanError),
    /// An error raised by the window engine during execution.
    Engine(holistic_window::Error),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(e) => e.fmt(f),
            SqlError::Plan(e) => e.fmt(f),
            SqlError::Engine(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<ParseError> for SqlError {
    fn from(e: ParseError) -> Self {
        SqlError::Parse(e)
    }
}

impl From<PlanError> for SqlError {
    fn from(e: PlanError) -> Self {
        SqlError::Plan(e)
    }
}

impl From<holistic_window::Error> for SqlError {
    fn from(e: holistic_window::Error) -> Self {
        SqlError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caret_points_at_span() {
        let src = "SELECT x\nFROM t WHERE";
        let e = ParseError::new(src, Span::new(14, 15), "`FROM`", "`t`");
        let s = e.to_string();
        assert!(s.contains("line 2, column 6"), "{s}");
        assert!(s.contains("FROM t WHERE"), "{s}");
        assert!(s.lines().last().unwrap().trim_end().ends_with('^'), "{s}");
    }

    #[test]
    fn span_at_end_of_input_renders() {
        let src = "SELECT";
        let e = ParseError::new(src, Span::new(6, 6), "an expression", "end of input");
        let s = e.to_string();
        assert!(s.contains("column 7"), "{s}");
    }
}
