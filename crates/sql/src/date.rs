//! Civil-date ↔ epoch-day conversion for `DATE '...'` literals.
//!
//! The engine stores dates as `i32` days since 1970-01-01
//! ([`holistic_window::Value::Date`]); SQL text writes them as
//! `DATE 'YYYY-MM-DD'`. The conversion uses the classic era-based civil
//! calendar algorithm (proleptic Gregorian), exact over the whole `i32` day
//! range.

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64;
    let mp = if m > 2 { m - 3 } else { m + 9 } as u64;
    let doy = (153 * mp + 2) / 5 + d as u64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146097 + doe as i64 - 719468
}

/// Civil date `(year, month, day)` for a day count since 1970-01-01.
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Parses `[-]YYYY-MM-DD` into epoch days; `None` when malformed, the civil
/// date is invalid (e.g. month 13, Feb 30), or it falls outside the `i32`
/// day range.
pub fn parse_date(text: &str) -> Option<i32> {
    let (neg_year, rest) = match text.strip_prefix('-') {
        Some(r) => (true, r),
        None => (false, text),
    };
    let mut parts = rest.splitn(3, '-');
    let y: i64 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    let y = if neg_year { -y } else { y };
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    // The i32 day range spans roughly ±5.9M years; anything beyond this bound
    // can't fit and would overflow `era * 146097` inside `days_from_civil`.
    if y.abs() > 6_000_000 {
        return None;
    }
    let days = days_from_civil(y, m, d);
    // Round-trip check rejects non-existent dates like Feb 30.
    if civil_from_days(days) != (y, m, d) {
        return None;
    }
    i32::try_from(days).ok()
}

/// Renders epoch days as `[-]YYYY-MM-DD` (always 2-digit month/day, year
/// zero-padded to 4 digits).
pub fn format_date(days: i32) -> String {
    let (y, m, d) = civil_from_days(days as i64);
    if y < 0 {
        format!("-{:04}-{m:02}-{d:02}", -y)
    } else {
        format!("{y:04}-{m:02}-{d:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_and_neighbors() {
        assert_eq!(parse_date("1970-01-01"), Some(0));
        assert_eq!(parse_date("1969-12-31"), Some(-1));
        assert_eq!(parse_date("1970-01-02"), Some(1));
        assert_eq!(format_date(0), "1970-01-01");
        assert_eq!(format_date(-1), "1969-12-31");
    }

    #[test]
    fn round_trips_across_the_i32_range() {
        for &d in &[i32::MIN, -719468, -1, 0, 1, 365, 59, 60, 730_000, i32::MAX] {
            assert_eq!(parse_date(&format_date(d)), Some(d), "day {d}");
        }
    }

    #[test]
    fn rejects_invalid_dates() {
        assert_eq!(parse_date("1970-02-30"), None);
        assert_eq!(parse_date("1970-13-01"), None);
        assert_eq!(parse_date("not-a-date"), None);
        assert_eq!(parse_date("1970-01"), None);
    }

    #[test]
    fn rejects_extreme_years_without_overflow() {
        // Would overflow `era * 146097` if not rejected up front.
        assert_eq!(parse_date("9223372036854775807-01-01"), None);
        assert_eq!(parse_date("-9223372036854775808-01-01"), None);
        assert_eq!(parse_date("6000001-01-01"), None);
        assert_eq!(parse_date("-6000001-01-01"), None);
    }

    #[test]
    fn leap_years() {
        assert!(parse_date("2000-02-29").is_some());
        assert_eq!(parse_date("1900-02-29"), None);
        assert!(parse_date("2024-02-29").is_some());
    }
}
