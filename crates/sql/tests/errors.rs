//! Snapshot battery for the frontend's rendered error messages.
//!
//! The full rendered text — wording, line/column, gutter and caret excerpt —
//! is a documented, stable API (see `SQL.md` §7). Every case here pins one
//! malformed query to its exact rendering; a diff in this file is a breaking
//! change to the error surface and must be called out in SQL.md.

use holistic_sql::SqlSession;
use holistic_window::{Column, Table};

/// Renders the error a query produces against a session holding table `t`
/// with columns `a` (int), `b` (float), `s` (string).
fn render(sql: &str) -> String {
    let table = Table::new(vec![
        ("a", Column::ints(vec![1, 2, 3])),
        ("b", Column::floats(vec![1.0, 2.0, 3.0])),
        ("s", Column::strs(vec!["x", "y", "z"])),
    ])
    .unwrap();
    let mut session = SqlSession::new();
    session.register("t", table);
    match session.query(sql) {
        Ok(_) => panic!("query unexpectedly succeeded: {sql}"),
        Err(e) => e.to_string(),
    }
}

macro_rules! case {
    ($name:ident, $sql:expr, $expected:expr) => {
        #[test]
        fn $name() {
            let got = render($sql);
            assert_eq!(got, $expected, "\n--- got ---\n{got}\n--- want ---\n{}", $expected);
        }
    };
}

// ---- lexer ----

case!(
    illegal_character,
    "SELECT # FROM t",
    "parse error: expected a token, found `#`\n \
     --> line 1, column 8\n   \
     |\n \
     1 | SELECT # FROM t\n   \
     |        ^"
);

case!(
    unterminated_string,
    "SELECT 'abc FROM t",
    "parse error: expected a closing `'`, found end of input\n \
     --> line 1, column 8\n   \
     |\n \
     1 | SELECT 'abc FROM t\n   \
     |        ^^^^^^^^^^^"
);

// ---- parser: statement shape ----

case!(
    missing_select_item,
    "SELECT FROM t",
    "parse error: expected `FROM`, found `t`\n \
     --> line 1, column 13\n   \
     |\n \
     1 | SELECT FROM t\n   \
     |             ^"
);

case!(
    missing_from,
    "SELECT a",
    "parse error: expected `FROM`, found end of input\n \
     --> line 1, column 9\n   \
     |\n \
     1 | SELECT a\n   \
     |         ^"
);

case!(
    alias_requires_as,
    "SELECT a b FROM t",
    "parse error: expected `FROM`, found `b`\n \
     --> line 1, column 10\n   \
     |\n \
     1 | SELECT a b FROM t\n   \
     |          ^"
);

case!(
    trailing_garbage,
    "SELECT a FROM t garbage",
    "parse error: expected end of input, found `garbage`\n \
     --> line 1, column 17\n   \
     |\n \
     1 | SELECT a FROM t garbage\n   \
     |                 ^^^^^^^"
);

// ---- parser: frames ----

case!(
    frame_missing_second_bound,
    "SELECT median(a) OVER (ROWS BETWEEN 2 PRECEDING AND) FROM t",
    "parse error: expected an expression, found `)`\n \
     --> line 1, column 52\n   \
     |\n \
     1 | SELECT median(a) OVER (ROWS BETWEEN 2 PRECEDING AND) FROM t\n   \
     |                                                    ^"
);

case!(
    frame_between_missing_and,
    "SELECT sum(a) OVER (ROWS BETWEEN 1 PRECEDING 2 FOLLOWING) FROM t",
    "parse error: expected `AND`, found `2`\n \
     --> line 1, column 46\n   \
     |\n \
     1 | SELECT sum(a) OVER (ROWS BETWEEN 1 PRECEDING 2 FOLLOWING) FROM t\n   \
     |                                              ^"
);

case!(
    bad_exclude_mode,
    "SELECT sum(a) OVER (ROWS CURRENT ROW EXCLUDE FOO) FROM t",
    "parse error: expected `CURRENT ROW`, `GROUP`, `TIES` or `NO OTHERS`, found `FOO`\n \
     --> line 1, column 46\n   \
     |\n \
     1 | SELECT sum(a) OVER (ROWS CURRENT ROW EXCLUDE FOO) FROM t\n   \
     |                                              ^^^"
);

// ---- parser: functions ----

case!(
    unknown_function,
    "SELECT foo(a) OVER () FROM t",
    "parse error: expected a scalar expression (function calls are not supported here), found `foo`\n \
     --> line 1, column 8\n   \
     |\n \
     1 | SELECT foo(a) OVER () FROM t\n   \
     |        ^^^"
);

case!(
    distinct_star,
    "SELECT count(DISTINCT *) OVER () FROM t",
    "parse error: expected an expression, found `*`\n \
     --> line 1, column 23\n   \
     |\n \
     1 | SELECT count(DISTINCT *) OVER () FROM t\n   \
     |                       ^"
);

// ---- planner: name resolution ----

case!(
    unknown_column_in_call,
    "SELECT sum(nosuch) OVER () FROM t",
    "plan error: unknown column `nosuch`\n \
     --> line 1, column 12\n   \
     |\n \
     1 | SELECT sum(nosuch) OVER () FROM t\n   \
     |            ^^^^^^"
);

case!(
    unknown_column_in_where,
    "SELECT a FROM t WHERE nosuch > 1",
    "plan error: unknown column `nosuch`\n \
     --> line 1, column 23\n   \
     |\n \
     1 | SELECT a FROM t WHERE nosuch > 1\n   \
     |                       ^^^^^^"
);

case!(
    unknown_table,
    "SELECT 1 AS x FROM nosuch",
    "plan error: unknown table `nosuch`\n \
     --> line 1, column 20\n   \
     |\n \
     1 | SELECT 1 AS x FROM nosuch\n   \
     |                    ^^^^^^"
);

// ---- planner: named windows & inheritance (SQL.md §5) ----

case!(
    unknown_window,
    "SELECT sum(a) OVER w FROM t",
    "plan error: unknown window `w`\n \
     --> line 1, column 20\n   \
     |\n \
     1 | SELECT sum(a) OVER w FROM t\n   \
     |                    ^"
);

case!(
    window_forward_reference,
    "SELECT sum(a) OVER w2 FROM t WINDOW w2 AS (w), w AS (ORDER BY a)",
    "plan error: unknown window `w` (windows may only reference earlier names)\n \
     --> line 1, column 44\n   \
     |\n \
     1 | SELECT sum(a) OVER w2 FROM t WINDOW w2 AS (w), w AS (ORDER BY a)\n   \
     |                                            ^"
);

case!(
    inherit_partition_override,
    "SELECT sum(a) OVER w2 FROM t WINDOW w AS (PARTITION BY a), w2 AS (w PARTITION BY b)",
    "plan error: cannot override PARTITION BY of window `w`\n \
     --> line 1, column 67\n   \
     |\n \
     1 | SELECT sum(a) OVER w2 FROM t WINDOW w AS (PARTITION BY a), w2 AS (w PARTITION BY b)\n   \
     |                                                                   ^"
);

case!(
    inherit_order_by_conflict,
    "SELECT sum(a) OVER w2 FROM t WINDOW w AS (ORDER BY a), w2 AS (w ORDER BY b)",
    "plan error: cannot add ORDER BY: window `w` already has one\n \
     --> line 1, column 63\n   \
     |\n \
     1 | SELECT sum(a) OVER w2 FROM t WINDOW w AS (ORDER BY a), w2 AS (w ORDER BY b)\n   \
     |                                                               ^"
);

case!(
    inherit_framed_base,
    "SELECT sum(a) OVER (w) FROM t WINDOW w AS (ORDER BY a ROWS CURRENT ROW)",
    "plan error: cannot inherit from window `w`: it has a frame clause\n \
     --> line 1, column 21\n   \
     |\n \
     1 | SELECT sum(a) OVER (w) FROM t WINDOW w AS (ORDER BY a ROWS CURRENT ROW)\n   \
     |                     ^"
);

// ---- planner: call shapes (engine `validate`, re-spanned) ----

case!(
    sum_wrong_arity,
    "SELECT sum() OVER () FROM t",
    "plan error: invalid argument: sum: takes one argument\n \
     --> line 1, column 8\n   \
     |\n \
     1 | SELECT sum() OVER () FROM t\n   \
     |        ^^^^^"
);

case!(
    ntile_missing_bucket_count,
    "SELECT ntile() OVER (ORDER BY a) FROM t",
    "plan error: invalid argument: ntile: takes the bucket count\n \
     --> line 1, column 8\n   \
     |\n \
     1 | SELECT ntile() OVER (ORDER BY a) FROM t\n   \
     |        ^^^^^^^"
);

case!(
    distinct_on_value_function,
    "SELECT first_value(DISTINCT a) OVER (ORDER BY a) FROM t",
    "plan error: invalid argument: first_value: DISTINCT only applies to aggregates\n \
     --> line 1, column 8\n   \
     |\n \
     1 | SELECT first_value(DISTINCT a) OVER (ORDER BY a) FROM t\n   \
     |        ^^^^^^^^^^^^^^^^^^^^^^^"
);

case!(
    ignore_nulls_on_aggregate,
    "SELECT sum(a) IGNORE NULLS OVER () FROM t",
    "plan error: invalid argument: sum: IGNORE NULLS only applies to value functions\n \
     --> line 1, column 8\n   \
     |\n \
     1 | SELECT sum(a) IGNORE NULLS OVER () FROM t\n   \
     |        ^^^^^^"
);

case!(
    percentile_without_order_by,
    "SELECT percentile_disc(0.5) OVER () FROM t",
    "plan error: invalid argument: percentile_disc: needs exactly one ORDER BY key\n \
     --> line 1, column 8\n   \
     |\n \
     1 | SELECT percentile_disc(0.5) OVER () FROM t\n   \
     |        ^^^^^^^^^^^^^^^^^^^^"
);

// ---- session ----

case!(
    duplicate_output_column,
    "SELECT a, a FROM t",
    "plan error: duplicate output column `a` (use AS to rename)\n \
     --> line 1, column 11\n   \
     |\n \
     1 | SELECT a, a FROM t\n   \
     |           ^"
);

// The final ORDER BY resolves against output aliases first, then the input
// table, at execution time — so a bad key surfaces as an engine error, not
// a positional one. Pinned here so a future positional upgrade shows up as
// a deliberate diff.
case!(
    unknown_final_order_by_key,
    "SELECT a FROM t ORDER BY nosuch",
    "execution error: unknown column: nosuch"
);

/// Multi-line sources render the excerpt of the offending line only, with
/// the right line number and gutter width.
#[test]
fn multiline_source_excerpt() {
    let got = render("SELECT a,\n       sum(nosuch) OVER ()\nFROM t");
    assert_eq!(
        got,
        "plan error: unknown column `nosuch`\n \
         --> line 2, column 12\n   \
         |\n \
         2 |        sum(nosuch) OVER ()\n   \
         |            ^^^^^^"
    );
}

/// The frontend never panics: every line of garbage yields a typed error.
#[test]
fn no_panics_on_garbage() {
    let garbage = [
        "",
        ";;;",
        "SELECT",
        "((((((((",
        "SELECT ( FROM t",
        "SELECT a FROM",
        "WINDOW w AS ()",
        "SELECT 0x FROM t",
        "SELECT 1e FROM t",
        "SELECT sum(a) OVER (ROWS BETWEEN AND AND) FROM t",
        "SELECT \u{0} FROM t",
        "SELECT 'a''b FROM t",
        "SELECT a FROM t ORDER BY",
        "SELECT a FROM t WHERE",
        "SELECT count(*) OVER (GROUPS 999999999999999999999999 PRECEDING) FROM t",
    ];
    for sql in garbage {
        let _ = render(sql);
    }
}
