//! The segment tree of Leis et al. for framed distributive aggregates.
//!
//! Stored as the classic iterative flat layout: `tree[n..2n)` holds the lifted
//! leaves, `tree[i] = combine(tree[2i], tree[2i+1])`. Build is O(n) and
//! parallelizes level by level; a range query combines O(log n) nodes, keeping
//! left and right accumulators separate so non-commutative monoids would also
//! be handled correctly.

use crate::monoid::Monoid;
use rayon::prelude::*;

/// A static segment tree over a sequence of rows.
pub struct SegmentTree<M: Monoid> {
    tree: Vec<M::State>,
    n: usize,
}

impl<M: Monoid> SegmentTree<M> {
    /// Builds from per-row inputs. O(n); parallel when `parallel`.
    pub fn build(inputs: &[M::Input], parallel: bool) -> Self {
        let n = inputs.len();
        if n == 0 {
            return SegmentTree { tree: Vec::new(), n };
        }
        let mut tree = vec![M::identity(); 2 * n];
        if parallel && n >= 4096 {
            tree[n..].par_iter_mut().zip(inputs.par_iter()).for_each(|(t, &v)| *t = M::lift(v));
        } else {
            for (t, &v) in tree[n..].iter_mut().zip(inputs) {
                *t = M::lift(v);
            }
        }
        // Internal nodes bottom-up: the parent of i is i/2, so a decreasing
        // sweep sees children before parents. The sweep is O(n) and memory
        // bound; the parallel leaf lift above dominates build time, so the
        // sweep itself stays serial (parallelizing it strictly by levels
        // would require power-of-two padding for no measurable gain).
        for i in (1..n).rev() {
            tree[i] = M::combine(tree[2 * i], tree[2 * i + 1]);
        }
        SegmentTree { tree, n }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Size in bytes of the backing allocation (for artifact accounting).
    pub fn bytes(&self) -> usize {
        self.tree.len() * std::mem::size_of::<M::State>()
    }

    /// Combines rows `[a, b)`. O(log n); returns the identity for empty
    /// ranges. Bounds are clamped to the input length.
    pub fn query(&self, a: usize, b: usize) -> M::State {
        let b = b.min(self.n);
        if a >= b {
            return M::identity();
        }
        let (mut l, mut r) = (a + self.n, b + self.n);
        let mut left = M::identity();
        let mut right = M::identity();
        while l < r {
            if l & 1 == 1 {
                left = M::combine(left, self.tree[l]);
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                right = M::combine(self.tree[r], right);
            }
            l /= 2;
            r /= 2;
        }
        M::combine(left, right)
    }

    /// Combines several disjoint ranges (frames with exclusion holes).
    pub fn query_multi(&self, ranges: impl IntoIterator<Item = (usize, usize)>) -> M::State {
        let mut acc = M::identity();
        for (a, b) in ranges {
            acc = M::combine(acc, self.query(a, b));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::{MaxMonoid, MinMonoid, SumMonoid};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn sum_queries_match_scan() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [0usize, 1, 2, 3, 17, 100, 255, 256] {
            let vals: Vec<i64> = (0..n).map(|_| rng.gen_range(-100..100)).collect();
            let st = SegmentTree::<SumMonoid>::build(&vals, false);
            for _ in 0..50 {
                let a = rng.gen_range(0..=n);
                let b = rng.gen_range(0..=n + 3);
                let expect: i128 =
                    vals[a.min(n)..b.min(n).max(a.min(n))].iter().map(|&v| v as i128).sum();
                assert_eq!(st.query(a, b), expect, "n={n} a={a} b={b}");
            }
        }
    }

    #[test]
    fn min_max_match_scan() {
        let vals: Vec<i64> = vec![5, -3, 9, 0, 7, -8, 2];
        let mn = SegmentTree::<MinMonoid>::build(&vals, false);
        let mx = SegmentTree::<MaxMonoid>::build(&vals, false);
        for a in 0..vals.len() {
            for b in a + 1..=vals.len() {
                assert_eq!(mn.query(a, b), *vals[a..b].iter().min().unwrap());
                assert_eq!(mx.query(a, b), *vals[a..b].iter().max().unwrap());
            }
        }
    }

    #[test]
    fn empty_range_is_identity() {
        let vals: Vec<i64> = vec![1, 2, 3];
        let st = SegmentTree::<SumMonoid>::build(&vals, false);
        assert_eq!(st.query(2, 2), 0);
        assert_eq!(st.query(3, 1), 0);
    }

    #[test]
    fn multi_range_query_sums_pieces() {
        let vals: Vec<i64> = (1..=10).collect();
        let st = SegmentTree::<SumMonoid>::build(&vals, false);
        // [0,3) ∪ [5,7): 1+2+3 + 6+7 = 19.
        assert_eq!(st.query_multi([(0, 3), (5, 7)]), 19);
    }

    #[test]
    fn parallel_build_matches_serial() {
        let mut rng = StdRng::seed_from_u64(2);
        let vals: Vec<i64> = (0..20_000).map(|_| rng.gen_range(-5..5)).collect();
        let sp = SegmentTree::<SumMonoid>::build(&vals, true);
        let ss = SegmentTree::<SumMonoid>::build(&vals, false);
        for a in (0..vals.len()).step_by(997) {
            for b in (a..vals.len()).step_by(1733) {
                assert_eq!(sp.query(a, b), ss.query(a, b));
            }
        }
    }
}
