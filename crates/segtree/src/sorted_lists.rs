//! Sorted-list segment tree — the "base intervals" percentile baseline.
//!
//! Arasu & Widom's base intervals (the only previously parallelizable
//! structure for framed percentiles, §3.1) annotate each segment tree node
//! with the sorted list of its values. A range `[a, b)` decomposes into
//! O(log n) nodes; selecting the j-th smallest element across their sorted
//! lists costs another O(log n) binary searches per step of a value-domain
//! search, for O((log n)²) per query overall — an extra log factor compared
//! to merge sort trees (Table 1), which this crate exists to demonstrate.
//!
//! Structurally this is a merge sort tree *without* cascading pointers and
//! with the canonical (non-overlapping) segment decomposition.

use rayon::prelude::*;

/// Segment tree whose nodes carry sorted value lists.
///
/// Storage follows the arena discipline of `holistic-core`: every level holds
/// exactly `n` values, so all levels live back-to-back in one allocation and
/// a node's list is `(level, offset, len)` arithmetic — no per-level or
/// per-node vectors.
pub struct SortedListSegTree {
    /// Level-major: level ℓ (sorted runs of length 2^ℓ) occupies
    /// `[ℓ·n, (ℓ+1)·n)`; level 0 is the input.
    arena: Vec<i64>,
    /// Number of levels, including the base.
    height: usize,
    n: usize,
}

impl SortedListSegTree {
    /// Builds by pairwise merging, O(n log n) total, parallel across runs.
    pub fn build(values: &[i64], parallel: bool) -> Self {
        let n = values.len();
        let mut height = 1usize;
        let mut top_run = 1usize;
        while top_run < n {
            top_run *= 2;
            height += 1;
        }
        let mut arena = vec![0i64; height * n];
        arena[..n].copy_from_slice(values);
        let mut run = 1usize;
        for lvl in 1..height {
            let next_run = run * 2;
            let (lower, upper) = arena.split_at_mut(lvl * n);
            let child = &lower[(lvl - 1) * n..];
            let next = &mut upper[..n];
            let merge_one = |(start, out): (usize, &mut [i64])| {
                let mid = (start + run).min(n);
                let end = (start + next_run).min(n);
                let (a, b) = (&child[start..mid], &child[mid..end]);
                let (mut i, mut j) = (0, 0);
                for slot in out.iter_mut() {
                    if j >= b.len() || (i < a.len() && a[i] <= b[j]) {
                        *slot = a[i];
                        i += 1;
                    } else {
                        *slot = b[j];
                        j += 1;
                    }
                }
            };
            if parallel && n >= 16384 {
                next.par_chunks_mut(next_run)
                    .enumerate()
                    .for_each(|(r, out)| merge_one((r * next_run, out)));
            } else {
                for (r, out) in next.chunks_mut(next_run).enumerate() {
                    merge_one((r * next_run, out));
                }
            }
            run = next_run;
        }
        SortedListSegTree { arena, height, n }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Size in bytes of the backing allocation (for artifact accounting).
    pub fn bytes(&self) -> usize {
        self.arena.len() * std::mem::size_of::<i64>()
    }

    /// The values of `level`, all runs concatenated.
    #[inline]
    fn level(&self, lvl: usize) -> &[i64] {
        &self.arena[lvl * self.n..(lvl + 1) * self.n]
    }

    /// The canonical decomposition of `[a, b)` into sorted node lists.
    fn covering_runs(&self, a: usize, b: usize) -> Vec<&[i64]> {
        let b = b.min(self.n);
        let mut runs = Vec::new();
        if a >= b {
            return runs;
        }
        // Greedy: repeatedly take the largest aligned run fitting in [a, b).
        let mut pos = a;
        while pos < b {
            let mut lvl = 0usize;
            // Largest 2^lvl such that pos is aligned and pos + 2^lvl <= b.
            while lvl + 1 < self.height
                && pos.is_multiple_of(1 << (lvl + 1))
                && pos + (1 << (lvl + 1)) <= b
            {
                lvl += 1;
            }
            let len = 1 << lvl;
            runs.push(&self.level(lvl)[pos..pos + len]);
            pos += len;
        }
        runs
    }

    /// Counts values `< t` within `[a, b)` — O((log n)²).
    pub fn count_below(&self, a: usize, b: usize, t: i64) -> usize {
        self.covering_runs(a, b).iter().map(|run| run.partition_point(|&v| v < t)).sum()
    }

    /// The `j`-th smallest value (0-based) within `[a, b)` — O((log n)²) via a
    /// value-domain binary search over the covering runs.
    pub fn select(&self, a: usize, b: usize, j: usize) -> Option<i64> {
        let runs = self.covering_runs(a, b);
        let total: usize = runs.iter().map(|r| r.len()).sum();
        if j >= total {
            return None;
        }
        // Smallest v with |{x <= v}| >= j + 1.
        let (mut lo, mut hi) = (i64::MIN, i64::MAX);
        while lo < hi {
            let mid = lo + ((hi as i128 - lo as i128) / 2) as i64;
            let cnt: usize = runs.iter().map(|r| r.partition_point(|&v| v <= mid)).sum();
            if cnt > j {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn select_matches_sorting() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [0usize, 1, 2, 7, 64, 100, 333] {
            let vals: Vec<i64> = (0..n).map(|_| rng.gen_range(-50..50)).collect();
            let st = SortedListSegTree::build(&vals, false);
            for _ in 0..40 {
                let a = rng.gen_range(0..=n);
                let b = rng.gen_range(a..=n);
                let mut window: Vec<i64> = vals[a..b].to_vec();
                window.sort_unstable();
                for j in [0usize, window.len() / 2, window.len().saturating_sub(1), window.len()] {
                    assert_eq!(
                        st.select(a, b, j),
                        window.get(j).copied(),
                        "n={n} a={a} b={b} j={j}"
                    );
                }
            }
        }
    }

    #[test]
    fn count_below_matches_scan() {
        let mut rng = StdRng::seed_from_u64(4);
        let vals: Vec<i64> = (0..200).map(|_| rng.gen_range(0..40)).collect();
        let st = SortedListSegTree::build(&vals, false);
        for _ in 0..100 {
            let a = rng.gen_range(0..=vals.len());
            let b = rng.gen_range(a..=vals.len());
            let t = rng.gen_range(-1..45);
            assert_eq!(st.count_below(a, b, t), vals[a..b].iter().filter(|&&v| v < t).count());
        }
    }

    #[test]
    fn extreme_values_survive_domain_search() {
        let vals = vec![i64::MIN, 0, i64::MAX, i64::MIN + 1];
        let st = SortedListSegTree::build(&vals, false);
        assert_eq!(st.select(0, 4, 0), Some(i64::MIN));
        assert_eq!(st.select(0, 4, 1), Some(i64::MIN + 1));
        assert_eq!(st.select(0, 4, 3), Some(i64::MAX));
    }

    #[test]
    fn parallel_build_matches_serial() {
        let mut rng = StdRng::seed_from_u64(5);
        let vals: Vec<i64> = (0..40_000).map(|_| rng.gen_range(-1000..1000)).collect();
        let sp = SortedListSegTree::build(&vals, true);
        let ss = SortedListSegTree::build(&vals, false);
        assert_eq!(sp.arena, ss.arena);
    }

    #[test]
    fn arena_is_level_major() {
        let vals: Vec<i64> = (0..100).rev().collect();
        let st = SortedListSegTree::build(&vals, false);
        assert_eq!(st.level(0), &vals[..]);
        assert_eq!(st.bytes(), st.height * 100 * 8);
        // Top level fully sorted.
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        assert_eq!(st.level(st.height - 1), &sorted[..]);
    }

    #[test]
    fn covering_runs_tile_exactly() {
        let vals: Vec<i64> = (0..100).collect();
        let st = SortedListSegTree::build(&vals, false);
        for a in 0..=100usize {
            for b in a..=100usize {
                let total: usize = st.covering_runs(a, b).iter().map(|r| r.len()).sum();
                assert_eq!(total, b - a);
            }
        }
    }
}
