//! Aggregation monoids for segment trees.
//!
//! Segment trees require only an associative `combine` with an identity — in
//! particular *no inverse*, which is why they handle non-monotonic frames
//! where sliding-window algorithms degrade (§3.2 of the paper).

/// An associative aggregate with identity.
pub trait Monoid: Send + Sync + 'static {
    /// Per-row input.
    type Input: Copy + Send + Sync + 'static;
    /// Aggregation state.
    type State: Copy + Send + Sync + 'static;
    /// The neutral element.
    fn identity() -> Self::State;
    /// Lifts an input row into a state.
    fn lift(input: Self::Input) -> Self::State;
    /// Associative combination.
    fn combine(a: Self::State, b: Self::State) -> Self::State;
}

/// `SUM` over 64-bit integers (128-bit accumulator).
pub struct SumMonoid;
impl Monoid for SumMonoid {
    type Input = i64;
    type State = i128;
    fn identity() -> i128 {
        0
    }
    fn lift(v: i64) -> i128 {
        v as i128
    }
    fn combine(a: i128, b: i128) -> i128 {
        a + b
    }
}

/// `SUM` over floats.
pub struct SumF64Monoid;
impl Monoid for SumF64Monoid {
    type Input = f64;
    type State = f64;
    fn identity() -> f64 {
        0.0
    }
    fn lift(v: f64) -> f64 {
        v
    }
    fn combine(a: f64, b: f64) -> f64 {
        a + b
    }
}

/// `COUNT` of non-null rows (the caller lifts null rows to 0).
pub struct CountMonoid;
impl Monoid for CountMonoid {
    type Input = u64;
    type State = u64;
    fn identity() -> u64 {
        0
    }
    fn lift(v: u64) -> u64 {
        v
    }
    fn combine(a: u64, b: u64) -> u64 {
        a + b
    }
}

/// `MIN` over 64-bit integers.
pub struct MinMonoid;
impl Monoid for MinMonoid {
    type Input = i64;
    type State = i64;
    fn identity() -> i64 {
        i64::MAX
    }
    fn lift(v: i64) -> i64 {
        v
    }
    fn combine(a: i64, b: i64) -> i64 {
        a.min(b)
    }
}

/// `MAX` over 64-bit integers.
pub struct MaxMonoid;
impl Monoid for MaxMonoid {
    type Input = i64;
    type State = i64;
    fn identity() -> i64 {
        i64::MIN
    }
    fn lift(v: i64) -> i64 {
        v
    }
    fn combine(a: i64, b: i64) -> i64 {
        a.max(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities_are_neutral() {
        assert_eq!(SumMonoid::combine(SumMonoid::identity(), 5), 5);
        assert_eq!(MinMonoid::combine(MinMonoid::identity(), 5), 5);
        assert_eq!(MaxMonoid::combine(MaxMonoid::identity(), -5), -5);
        assert_eq!(CountMonoid::combine(CountMonoid::identity(), 3), 3);
    }

    #[test]
    fn combine_is_associative_spot_check() {
        for (a, b, c) in [(1i128, 2i128, 3i128), (-7, 0, 9)] {
            assert_eq!(
                SumMonoid::combine(SumMonoid::combine(a, b), c),
                SumMonoid::combine(a, SumMonoid::combine(b, c))
            );
        }
    }
}
