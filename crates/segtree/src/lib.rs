//! # holistic-segtree — segment trees for framed aggregates
//!
//! Two structures from prior work, both needed by the paper:
//!
//! * [`SegmentTree`] — the segment tree of Leis et al. (PVLDB 2015) for
//!   framed *distributive and algebraic* aggregates: O(n) parallel build, O(log n)
//!   range queries, robust against non-monotonic frames. This is the engine's
//!   evaluation path for framed `SUM`/`COUNT`/`MIN`/`MAX`/`AVG`.
//! * [`SortedListSegTree`] — the "base intervals" extension (Arasu & Widom)
//!   that annotates every node with a sorted list, the only previously known
//!   *parallelizable* structure for framed percentiles. Queries cost
//!   O((log n)²), which is exactly the gap merge sort trees close (Table 1).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod monoid;
pub mod segment_tree;
pub mod sorted_lists;

pub use monoid::{CountMonoid, MaxMonoid, MinMonoid, Monoid, SumF64Monoid, SumMonoid};
pub use segment_tree::SegmentTree;
pub use sorted_lists::SortedListSegTree;
