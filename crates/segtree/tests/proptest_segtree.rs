//! Property-based tests for segment trees.

use holistic_segtree::{
    CountMonoid, MaxMonoid, MinMonoid, SegmentTree, SortedListSegTree, SumMonoid,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sum_matches_scan(
        vals in prop::collection::vec(-1000i64..1000, 0..300),
        queries in prop::collection::vec((0usize..320, 0usize..320), 1..25),
    ) {
        let st = SegmentTree::<SumMonoid>::build(&vals, false);
        for (a, b) in queries {
            let expect: i128 = vals
                .get(a.min(vals.len())..b.min(vals.len()).max(a.min(vals.len())))
                .unwrap_or(&[])
                .iter()
                .map(|&v| v as i128)
                .sum();
            prop_assert_eq!(st.query(a, b), expect);
        }
    }

    #[test]
    fn min_max_count_match_scan(
        vals in prop::collection::vec(-50i64..50, 1..200),
        queries in prop::collection::vec((0usize..200, 0usize..200), 1..20),
    ) {
        let n = vals.len();
        let mn = SegmentTree::<MinMonoid>::build(&vals, false);
        let mx = SegmentTree::<MaxMonoid>::build(&vals, false);
        let ones: Vec<u64> = vec![1; n];
        let ct = SegmentTree::<CountMonoid>::build(&ones, false);
        for (a, b) in queries {
            let (a, b) = (a.min(n), b.min(n).max(a.min(n)));
            if a < b {
                prop_assert_eq!(mn.query(a, b), *vals[a..b].iter().min().unwrap());
                prop_assert_eq!(mx.query(a, b), *vals[a..b].iter().max().unwrap());
            } else {
                prop_assert_eq!(mn.query(a, b), i64::MAX);
            }
            prop_assert_eq!(ct.query(a, b), (b - a) as u64);
        }
    }

    #[test]
    fn sorted_list_select_matches_sorted_window(
        vals in prop::collection::vec(-100i64..100, 0..250),
        queries in prop::collection::vec((0usize..260, 0usize..260, 0usize..260), 1..15),
    ) {
        let st = SortedListSegTree::build(&vals, false);
        for (a, b, j) in queries {
            let (a, b) = (a.min(vals.len()), b.min(vals.len()).max(a.min(vals.len())));
            let mut w: Vec<i64> = vals[a..b].to_vec();
            w.sort_unstable();
            prop_assert_eq!(st.select(a, b, j), w.get(j).copied());
            // count_below is consistent with select.
            if let Some(v) = w.get(j) {
                prop_assert!(st.count_below(a, b, *v) <= j);
            }
        }
    }

    #[test]
    fn multi_range_sum_is_additive(
        vals in prop::collection::vec(-20i64..20, 1..150),
        cuts in prop::collection::vec(0usize..150, 2..6),
    ) {
        let n = vals.len();
        let st = SegmentTree::<SumMonoid>::build(&vals, false);
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c.min(n)).collect();
        cuts.sort_unstable();
        let ranges: Vec<(usize, usize)> =
            cuts.windows(2).map(|w| (w[0], w[1])).collect();
        let total: i128 = ranges.iter().map(|&(a, b)| st.query(a, b)).sum();
        prop_assert_eq!(st.query_multi(ranges.iter().copied()), total);
    }
}
