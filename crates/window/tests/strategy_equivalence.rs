//! Property test for the strategy layer: per-partition algorithm choice is
//! an invisible optimization. Over random specs and skewed partition-size
//! mixes, adaptive execution must be bit-identical to forced-MST execution,
//! serial or parallel — the cost model may only change *how* a result is
//! computed, never the result. The `ExecProfile` assertions pin down that
//! the adaptive path really is adaptive: tiny partitions take the cacheless
//! direct path, forced MST never does.

use holistic_window::frame::{FrameBound, FrameExclusion, FrameSpec};
use holistic_window::{
    col, lit, Column, ExecOptions, FunctionCall, SortKey, Strategy, Table, WindowQuery, WindowSpec,
};
use proptest::prelude::*;

/// Candidate calls spanning every evaluator family the strategy layer
/// dispatches: distributive, distinct, rank, percentile, value, lead/lag and
/// mode. No `SUM(DISTINCT)` — that family is MST-only and would keep tiny
/// partitions off the cacheless path this test asserts on.
fn battery(mask: u16) -> Vec<FunctionCall> {
    let all = vec![
        FunctionCall::count_star().named("c0"),
        FunctionCall::sum(col("x")).named("c1"),
        FunctionCall::count_distinct(col("x")).named("c2"),
        FunctionCall::rank(vec![SortKey::asc(col("y"))]).named("c3"),
        FunctionCall::dense_rank(vec![SortKey::desc(col("y"))]).named("c4"),
        FunctionCall::median(col("y")).named("c5"),
        FunctionCall::percentile_cont(0.25, SortKey::asc(col("y"))).named("c6"),
        FunctionCall::first_value(col("x")).ignore_nulls().named("c7"),
        FunctionCall::lag(col("x"), 2, lit(-1i64)).named("c8"),
        FunctionCall::mode(col("y")).named("c9"),
    ];
    let picked: Vec<FunctionCall> =
        all.into_iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, c)| c).collect();
    if picked.is_empty() {
        vec![FunctionCall::median(col("y")).named("c5")]
    } else {
        picked
    }
}

fn exclusion_of(idx: usize) -> FrameExclusion {
    match idx {
        0 => FrameExclusion::NoOthers,
        1 => FrameExclusion::CurrentRow,
        2 => FrameExclusion::Group,
        _ => FrameExclusion::Ties,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Adaptive ≡ forced-MST ≡ serial ≡ parallel, bit for bit, over skewed
    /// partition mixes (several tiny partitions, optionally one large one).
    #[test]
    fn adaptive_matches_forced_mst(
        tiny_sizes in prop::collection::vec(1usize..13, 1..6),
        big in prop::option::of(70usize..140),
        xs_seed in prop::collection::vec(prop::option::of(-9i64..9), 210),
        ys_seed in prop::collection::vec(-5i64..6, 210),
        lo in 0i64..5,
        hi in 0i64..5,
        excl in 0usize..4,
        groups_mode in any::<bool>(),
        mask in 1u16..1024,
    ) {
        // Skewed layout: partition p holds sizes[p] consecutive rows.
        let mut sizes = tiny_sizes.clone();
        if let Some(b) = big {
            sizes.push(b);
        }
        let n: usize = sizes.iter().sum();
        let mut g = Vec::with_capacity(n);
        for (p, &s) in sizes.iter().enumerate() {
            g.extend(std::iter::repeat_n(p as i64, s));
        }
        let table = Table::new(vec![
            ("x", Column::ints_opt((0..n).map(|i| xs_seed[i % xs_seed.len()]).collect())),
            ("y", Column::ints((0..n).map(|i| ys_seed[i % ys_seed.len()]).collect())),
            ("g", Column::ints(g)),
            ("pos", Column::ints((0..n as i64).collect())),
        ])
        .unwrap();

        let frame = if groups_mode {
            FrameSpec::groups(FrameBound::Preceding(lit(lo)), FrameBound::Following(lit(hi)))
        } else {
            FrameSpec::rows(FrameBound::Preceding(lit(lo)), FrameBound::Following(lit(hi)))
        };
        let spec = WindowSpec::new()
            .partition_by(vec![col("g")])
            .order_by(vec![SortKey::asc(col("pos"))])
            .frame(frame.exclude(exclusion_of(excl)));
        let calls = battery(mask);
        let q = WindowQuery { spec, calls: calls.clone() };

        let (base, base_profile) =
            q.execute_profiled(&table, ExecOptions::serial()).unwrap();

        // The chooser decides once per (partition × call), nothing dropped.
        let partitions = sizes.len() as u64;
        let total: u64 = base_profile.strategy.decisions.iter().sum();
        prop_assert_eq!(total, partitions * calls.len() as u64);
        let per_call_total: u64 =
            base_profile.strategy.per_call.iter().flatten().sum();
        prop_assert_eq!(per_call_total, total);

        // Tiny partitions (≤ 64 rows, every battery call naive-capable) must
        // skip the artifact machinery entirely.
        prop_assert!(
            base_profile.strategy.cacheless_partitions >= tiny_sizes.len() as u64,
            "tiny partitions stayed on the artifact path: {:?}",
            base_profile.strategy
        );
        if big.is_none() {
            prop_assert_eq!(base_profile.strategy.cacheless_partitions, partitions);
            prop_assert_eq!(
                base_profile.cache.misses, 0,
                "all-tiny query built artifacts: {:?}", base_profile.cache
            );
        }

        for (label, opts) in [
            ("adaptive/parallel", ExecOptions::default()),
            ("mst/serial", ExecOptions::serial().force_strategy(Strategy::Mst)),
            ("mst/parallel", ExecOptions::default().force_strategy(Strategy::Mst)),
        ] {
            let (out, profile) = q.execute_profiled(&table, opts).unwrap();
            if label.starts_with("mst") {
                prop_assert_eq!(
                    profile.strategy.decisions[Strategy::Mst.index()],
                    partitions * calls.len() as u64,
                    "forced MST did not stick ({})", label
                );
                prop_assert_eq!(profile.strategy.cacheless_partitions, 0);
            }
            for call in &calls {
                let name = call.output_name.as_str();
                let (b, o) =
                    (base.column(name).unwrap().to_values(), out.column(name).unwrap().to_values());
                for (row, (bv, ov)) in b.iter().zip(o.iter()).enumerate() {
                    let same = match (bv, ov) {
                        (
                            holistic_window::Value::Float(x),
                            holistic_window::Value::Float(y),
                        ) => x.to_bits() == y.to_bits(),
                        _ => bv == ov,
                    };
                    prop_assert!(
                        same,
                        "column {} row {} differs under {}: {} vs {}",
                        name, row, label, bv, ov
                    );
                }
            }
        }
    }
}

/// Forcing each alternate strategy end-to-end on a mixed query must agree
/// with the default path: inapplicable calls fall back to the MST, the rest
/// take the forced engine. Integer-only inputs make exact comparison sound.
#[test]
fn forced_alternates_agree_on_integer_data() {
    let n = 300i64;
    let table = Table::new(vec![
        ("pos", Column::ints((0..n).collect())),
        ("v", Column::ints((0..n).map(|i| (i * 37) % 23).collect())),
    ])
    .unwrap();
    let q = WindowQuery::over(
        WindowSpec::new()
            .order_by(vec![SortKey::asc(col("pos"))])
            .frame(FrameSpec::rows(FrameBound::Preceding(lit(17i64)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::median(col("v")).named("med"))
    .call(FunctionCall::count_distinct(col("v")).named("cd"))
    .call(FunctionCall::sum(col("v")).named("s"));

    let base = q.execute_with(&table, ExecOptions::serial()).unwrap();
    for s in Strategy::ALL {
        let out = q.execute_with(&table, ExecOptions::serial().force_strategy(s)).unwrap();
        for name in ["med", "cd", "s"] {
            assert_eq!(
                base.column(name).unwrap().to_values(),
                out.column(name).unwrap().to_values(),
                "column {name} differs under forced {}",
                s.name()
            );
        }
    }
}
