//! Property-based tests of the window substrate: frame resolution
//! invariants, remapping, ordering and partitioning.

use holistic_window::frame::{resolve_frames, FrameBound, FrameExclusion, FrameSpec};
use holistic_window::order::{sort_permutation, KeyColumns, SortKey};
use holistic_window::partition::partition_rows;
use holistic_window::remap::Remap;
use holistic_window::{col, lit, Column, Table};
use proptest::prelude::*;

fn table_from(keys: Vec<Option<i64>>) -> Table {
    Table::new(vec![("k", Column::ints_opt(keys))]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// ROWS frames with constant offsets: bounds are clamped, ordered, and
    /// monotone in the row position.
    #[test]
    fn rows_frames_are_sane(
        keys in prop::collection::vec(prop::option::of(-20i64..20), 0..80),
        pre in 0i64..40,
        fol in 0i64..40,
    ) {
        let n = keys.len();
        let t = table_from(keys);
        let kc = KeyColumns::evaluate(&t, &[SortKey::asc(col("k"))]).unwrap();
        let mut rows: Vec<usize> = (0..n).collect();
        sort_permutation(&kc, &mut rows, false);
        let spec = FrameSpec::rows(FrameBound::Preceding(lit(pre)), FrameBound::Following(lit(fol)));
        let rf = resolve_frames(&t, &rows, &kc, &spec).unwrap();
        for i in 0..n {
            let (a, b) = rf.bounds[i];
            prop_assert!(a <= b && b <= n);
            prop_assert_eq!(a, i.saturating_sub(pre as usize));
            prop_assert_eq!(b, (i + fol as usize + 1).min(n));
            if i > 0 {
                prop_assert!(rf.bounds[i - 1].0 <= a && rf.bounds[i - 1].1 <= b);
            }
        }
    }

    /// RANGE frames: every key inside the frame lies within [k_i - pre,
    /// k_i + fol]; every non-null key outside does not.
    #[test]
    fn range_frames_cover_exactly_the_value_window(
        keys in prop::collection::vec(prop::option::of(-30i64..30), 1..80),
        pre in 0i64..20,
        fol in 0i64..20,
    ) {
        let n = keys.len();
        let t = table_from(keys.clone());
        let kc = KeyColumns::evaluate(&t, &[SortKey::asc(col("k"))]).unwrap();
        let mut rows: Vec<usize> = (0..n).collect();
        sort_permutation(&kc, &mut rows, false);
        let spec = FrameSpec::range(FrameBound::Preceding(lit(pre)), FrameBound::Following(lit(fol)));
        let rf = resolve_frames(&t, &rows, &kc, &spec).unwrap();
        for i in 0..n {
            let ki = keys[rows[i]];
            let (a, b) = rf.bounds[i];
            prop_assert!(a <= b && b <= n);
            if let Some(ki) = ki {
                for (j, &row) in rows.iter().enumerate() {
                    if let Some(kj) = keys[row] {
                        let inside = kj >= ki - pre && kj <= ki + fol;
                        prop_assert_eq!(
                            a <= j && j < b,
                            inside,
                            "i={} j={} ki={} kj={} frame=({},{})", i, j, ki, kj, a, b
                        );
                    } else {
                        prop_assert!(!(a <= j && j < b), "null keys outside numeric frames");
                    }
                }
            } else {
                // NULL rows: frame = their peer group of NULLs.
                prop_assert_eq!((a, b), (rf.peer_start[i], rf.peer_end[i]));
            }
        }
    }

    /// Exclusion: the produced range set equals the frame minus the holes,
    /// never contains excluded positions, and splits into at most 3 pieces.
    #[test]
    fn exclusion_pieces_are_exact(
        keys in prop::collection::vec(0i64..6, 1..60),
        which in 0usize..4,
    ) {
        let n = keys.len();
        let t = table_from(keys.into_iter().map(Some).collect());
        let kc = KeyColumns::evaluate(&t, &[SortKey::asc(col("k"))]).unwrap();
        let mut rows: Vec<usize> = (0..n).collect();
        sort_permutation(&kc, &mut rows, false);
        let excl = [
            FrameExclusion::NoOthers,
            FrameExclusion::CurrentRow,
            FrameExclusion::Group,
            FrameExclusion::Ties,
        ][which];
        let spec = FrameSpec::whole_partition().exclude(excl);
        let rf = resolve_frames(&t, &rows, &kc, &spec).unwrap();
        for i in 0..n {
            let rs = rf.range_set(i);
            prop_assert!(rs.len() <= 3);
            // Expected membership per position.
            for p in 0..n {
                let peers = rf.peer_start[i] <= p && p < rf.peer_end[i];
                let expected = match excl {
                    FrameExclusion::NoOthers => true,
                    FrameExclusion::CurrentRow => p != i,
                    FrameExclusion::Group => !peers,
                    FrameExclusion::Ties => p == i || !peers,
                };
                prop_assert_eq!(rs.contains(p), expected, "i={} p={} excl={:?}", i, p, excl);
            }
        }
    }

    /// Remap: ranges translate consistently with membership.
    #[test]
    fn remap_is_consistent(
        keep in prop::collection::vec(any::<bool>(), 0..100),
        spans in prop::collection::vec((0usize..110, 0usize..110), 1..20),
    ) {
        let r = Remap::new(&keep);
        prop_assert_eq!(r.kept_len(), keep.iter().filter(|&&k| k).count());
        for (a, b) in spans {
            let (ka, kb) = r.range(a, b.max(a));
            prop_assert!(ka <= kb);
            let expected = keep[a.min(keep.len())..b.max(a).min(keep.len())]
                .iter()
                .filter(|&&k| k)
                .count();
            prop_assert_eq!(kb - ka, expected);
        }
        // Kept index roundtrips.
        for k in 0..r.kept_len() {
            let pos = r.to_position(k);
            prop_assert!(r.is_kept(pos));
            prop_assert_eq!(r.kept_index(pos), k);
        }
    }

    /// Partitioning: every row lands in exactly one partition; partition
    /// members share sql-equal keys.
    #[test]
    fn partitions_are_exact(keys in prop::collection::vec(prop::option::of(0i64..5), 0..80)) {
        let n = keys.len();
        let t = table_from(keys.clone());
        let parts = partition_rows(&t, &[col("k")]).unwrap();
        let mut seen = vec![false; n];
        for part in &parts {
            prop_assert!(!part.is_empty());
            for &row in part {
                prop_assert!(!seen[row]);
                seen[row] = true;
                prop_assert_eq!(keys[row], keys[part[0]]);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Sorting is a permutation, ordered, and deterministic wrt. ties.
    #[test]
    fn sort_permutation_invariants(
        keys in prop::collection::vec(prop::option::of(0i64..8), 0..120),
        desc in any::<bool>(),
    ) {
        let n = keys.len();
        let t = table_from(keys.clone());
        let sk = if desc { SortKey::desc(col("k")) } else { SortKey::asc(col("k")) };
        let kc = KeyColumns::evaluate(&t, &[sk]).unwrap();
        let mut rows: Vec<usize> = (0..n).collect();
        sort_permutation(&kc, &mut rows, false);
        let mut sorted_rows = rows.clone();
        sorted_rows.sort_unstable();
        prop_assert_eq!(sorted_rows, (0..n).collect::<Vec<_>>());
        for w in rows.windows(2) {
            let ord = kc.cmp_rows(w[0], w[1]);
            prop_assert!(ord != std::cmp::Ordering::Greater);
            if ord == std::cmp::Ordering::Equal {
                prop_assert!(w[0] < w[1], "ties break by row index");
            }
        }
    }
}
