//! Regression tests for bugs found by the differential fuzzer
//! (`crates/fuzz`), beyond the overflow family covered in
//! `overflow_regressions.rs`. Each test names the fuzzer seed that first
//! exposed the bug.

use holistic_window::prelude::*;

/// Found by seed 0x87ff248bd515301d: PERCENTILE_CONT over an *integer* key
/// returned the key value itself (an Int) whenever the rank landed exactly
/// on one element, but an interpolated Float otherwise — mixing both types
/// in one output column, which fails to build. CONT must always yield a
/// float (SQL: double precision), as the naive baseline always did.
#[test]
fn percentile_cont_over_int_keys_is_float_on_exact_hits() {
    let t = Table::new(vec![("v", Column::ints(vec![1, 2, 3]))]).unwrap();
    // Running frame: row 0 selects exactly one element (the exact-hit
    // branch), rows 1 and 2 interpolate.
    let q = WindowQuery::over(
        WindowSpec::new()
            .order_by(vec![SortKey::asc(col("v"))])
            .frame(FrameSpec::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow)),
    )
    .call(FunctionCall::percentile_cont(0.5, SortKey::asc(col("v"))).named("p"));
    for opts in ExecOptions::all_configs() {
        let out = q.execute_with(&t, opts).unwrap();
        assert_eq!(
            out.column("p").unwrap().to_values(),
            vec![Value::Float(1.0), Value::Float(1.5), Value::Float(2.0)],
            "config {}",
            opts.label(),
        );
    }
}
