//! The memory-budget contract: budgeted execution is bit-identical to
//! unbudgeted execution whenever it completes, stays within its budget
//! (peak resident governed bytes ≤ budget), and fails with the typed
//! [`Error::BudgetExceeded`] — never a panic — when even spilling cannot
//! satisfy a build.

use holistic_window::frame::{FrameBound, FrameSpec};
use holistic_window::{
    col, lit, Column, Error, ExecOptions, FunctionCall, SortKey, Strategy, Table, Value,
    WindowQuery, WindowSpec,
};
use proptest::prelude::*;

/// Bit-faithful value equality (floats by bits, like the fuzzer's oracle).
fn bits_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

fn tables_bit_identical(a: &Table, b: &Table, label: &str) {
    assert_eq!(a.num_columns(), b.num_columns(), "{label}");
    assert_eq!(a.num_rows(), b.num_rows(), "{label}");
    for ((na, ca), (nb, cb)) in a.iter().zip(b.iter()) {
        assert_eq!(na, nb, "{label}");
        let (va, vb) = (ca.to_values(), cb.to_values());
        for (i, (x, y)) in va.iter().zip(&vb).enumerate() {
            assert!(bits_eq(x, y), "{label}: column {na} row {i}: {x:?} != {y:?}");
        }
    }
}

/// A deterministic partitioned table exercising the holistic family.
fn test_table(n: usize, parts: u64) -> Table {
    let g: Vec<i64> = (0..n).map(|i| (i as u64 % parts) as i64).collect();
    let t: Vec<i64> = (0..n as i64).collect();
    let v: Vec<i64> = (0..n).map(|i| ((i as u64).wrapping_mul(2654435761) % 1000) as i64).collect();
    Table::new(vec![("g", Column::ints(g)), ("t", Column::ints(t)), ("v", Column::ints(v))])
        .unwrap()
}

fn holistic_query() -> WindowQuery {
    WindowQuery::over(
        WindowSpec::new()
            .partition_by(vec![col("g")])
            .order_by(vec![SortKey::asc(col("t"))])
            .frame(FrameSpec::rows(FrameBound::Preceding(lit(64i64)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::median(col("v")).named("med"))
    .call(FunctionCall::count_distinct(col("v")).named("cd"))
    .call(FunctionCall::rank(vec![SortKey::desc(col("v"))]).named("r"))
}

#[test]
fn budgeted_execution_is_bit_identical_and_within_budget() {
    let t = test_table(4000, 8);
    let q = holistic_query();
    let base_opts = ExecOptions::serial().force_strategy(Strategy::Mst);
    let (reference, profile) = q.execute_profiled(&t, base_opts).unwrap();
    let total = profile.cache.bytes_built;
    assert!(total > 0);

    // ~85% of one partition's share: small enough that a partition's two
    // trees cannot both stay resident (forcing parking + re-faults), large
    // enough that the non-spillable artifacts still fit.
    let tight = total / 8 * 85 / 100;
    let (out, p) = q.execute_profiled(&t, base_opts.memory_budget(tight)).unwrap();
    tables_bit_identical(&out, &reference, "tight budget");
    assert_eq!(p.spill.budget, Some(tight));
    assert!(
        p.spill.peak_resident <= tight,
        "peak resident {} exceeds budget {tight}",
        p.spill.peak_resident
    );
    assert!(p.spill.bytes_spilled > 0, "a tight budget must actually spill");

    // A roomy budget must also be identical (and needs no spilling).
    let (out, p) = q.execute_profiled(&t, base_opts.memory_budget(total * 2)).unwrap();
    tables_bit_identical(&out, &reference, "roomy budget");
    assert!(p.spill.peak_resident <= total * 2);
}

#[test]
fn parallel_budgeted_execution_is_identical_or_typed_error() {
    let t = test_table(4000, 8);
    let q = holistic_query();
    let reference =
        q.execute_with(&t, ExecOptions::serial().force_strategy(Strategy::Mst)).unwrap();
    let (_, profile) =
        q.execute_profiled(&t, ExecOptions::serial().force_strategy(Strategy::Mst)).unwrap();
    // Parallel partitions charge the shared budget concurrently, so a tight
    // budget may legitimately fail — but only with the typed error, and any
    // success must be bit-identical.
    for budget in [profile.cache.bytes_built / 4, profile.cache.bytes_built] {
        let opts = ExecOptions::default().force_strategy(Strategy::Mst).memory_budget(budget);
        match q.execute_with(&t, opts) {
            Ok(out) => tables_bit_identical(&out, &reference, "parallel budgeted"),
            Err(Error::BudgetExceeded { requested, budget: b }) => {
                assert_eq!(b, budget);
                assert!(requested > 0);
            }
            Err(other) => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }
}

#[test]
fn impossible_budget_is_a_typed_error_never_a_panic() {
    let t = test_table(500, 2);
    let q = holistic_query();
    let opts = ExecOptions::serial().force_strategy(Strategy::Mst).memory_budget(64);
    match q.execute_with(&t, opts) {
        Err(Error::BudgetExceeded { requested, budget }) => {
            assert_eq!(budget, 64);
            assert!(requested > 64, "a failing charge must actually exceed the budget");
        }
        other => panic!("expected Err(BudgetExceeded), got {other:?}"),
    }
}

#[test]
fn append_profile_reports_artifact_bytes() {
    // Regression: the incremental engine used to discard footprint
    // telemetry (`let _ = cache.take_footprints()`), so AppendProfile could
    // never report artifact bytes after the first append.
    let base = test_table(256, 2);
    let q = holistic_query();
    let opts = ExecOptions::serial().force_strategy(Strategy::Mst);
    let mut engine = q.begin_incremental(&base, opts).unwrap();
    // Batch sorting *before* existing rows forces the recompute path.
    let batch = Table::new(vec![
        ("g", Column::ints(vec![0, 1])),
        ("t", Column::ints(vec![-2, -1])),
        ("v", Column::ints(vec![17, 23])),
    ])
    .unwrap();
    let res = engine.append(&batch).unwrap();
    assert!(res.profile.recomputed_partitions > 0);
    assert!(
        res.profile.artifact_bytes_built > 0,
        "recompute built artifacts but reported no footprint bytes"
    );
    assert!(res.profile.peak_resident_artifact_bytes > 0);
    let spill = engine.spill_stats();
    assert_eq!(spill.peak_resident, res.profile.peak_resident_artifact_bytes);
}

#[test]
fn budgeted_append_engine_matches_batch_execution() {
    let base = test_table(1500, 4);
    let q = holistic_query();
    let unbudgeted = ExecOptions::serial().force_strategy(Strategy::Mst);
    let (_, profile) = q.execute_profiled(&base, unbudgeted).unwrap();
    let budget = profile.cache.bytes_built / 2;
    let opts = unbudgeted.memory_budget(budget);
    let mut engine = match q.begin_incremental(&base, opts) {
        Ok(e) => e,
        Err(Error::BudgetExceeded { .. }) => return, // legitimately too tight
        Err(other) => panic!("expected BudgetExceeded, got {other:?}"),
    };
    let batch = Table::new(vec![
        ("g", Column::ints(vec![0, 1, 2, 3])),
        ("t", Column::ints(vec![2000, 2001, 2002, 2003])),
        ("v", Column::ints(vec![5, 6, 7, 8])),
    ])
    .unwrap();
    match engine.append(&batch) {
        Ok(_) => {
            let expected = q.execute_with(engine.table(), unbudgeted).unwrap();
            tables_bit_identical(&engine.output_table().unwrap(), &expected, "budgeted engine");
        }
        Err(Error::BudgetExceeded { .. }) => (),
        Err(other) => panic!("expected BudgetExceeded, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For random inputs and every budget tier {∞, 50%, 10%, tiny}:
    /// budgeted runs either match the unbudgeted output bit-for-bit or fail
    /// with `BudgetExceeded` — and never panic.
    #[test]
    fn budget_tiers_are_identical_or_typed_error(
        vals in prop::collection::vec(-50i64..50, 1..300),
        parts in 1u64..4,
        width in 1i64..40,
    ) {
        let n = vals.len();
        let g: Vec<i64> = (0..n).map(|i| (i as u64 % parts) as i64).collect();
        let t: Vec<i64> = (0..n as i64).collect();
        let table = Table::new(vec![
            ("g", Column::ints(g)),
            ("t", Column::ints(t)),
            ("v", Column::ints(vals)),
        ]).unwrap();
        let q = WindowQuery::over(
            WindowSpec::new()
                .partition_by(vec![col("g")])
                .order_by(vec![SortKey::asc(col("t"))])
                .frame(FrameSpec::rows(FrameBound::Preceding(lit(width)), FrameBound::CurrentRow)),
        )
        .call(FunctionCall::median(col("v")).named("med"))
        .call(FunctionCall::count_distinct(col("v")).named("cd"))
        .call(FunctionCall::rank(vec![SortKey::desc(col("v"))]).named("r"));

        let base = ExecOptions::serial().force_strategy(Strategy::Mst);
        let (reference, profile) = q.execute_profiled(&table, base).unwrap();
        let total = profile.cache.bytes_built.max(1);
        for budget in [None, Some(total / 2), Some(total / 10), Some(512)] {
            let opts = match budget {
                None => base,
                Some(b) => base.memory_budget(b),
            };
            match q.execute_with(&table, opts) {
                Ok(out) => tables_bit_identical(&out, &reference, "proptest budget tier"),
                Err(Error::BudgetExceeded { .. }) => {
                    prop_assert!(budget.is_some(), "unbudgeted runs cannot exceed a budget");
                }
                Err(other) => prop_assert!(false, "expected BudgetExceeded, got {other:?}"),
            }
        }
    }
}
