//! Regression tests for overflow/underflow/precision bugs in frame and
//! offset arithmetic, found by the differential fuzzer (ISSUE 4).
//!
//! Each test documents the pre-fix failure mode: debug-build panics on
//! integer overflow in ROWS/GROUPS frame resolution and LEAD/LAG offset
//! adjustment, and silent f64 precision loss for RANGE keys beyond 2^53.

use holistic_window::frame::{resolve_frames, FrameBound, FrameSpec};
use holistic_window::order::{sort_permutation, KeyColumns, SortKey};
use holistic_window::prelude::*;

fn sorted_setup(vals: Vec<i64>) -> (Table, Vec<usize>, KeyColumns) {
    let n = vals.len();
    let t = Table::new(vec![("k", Column::ints(vals))]).unwrap();
    let keys = KeyColumns::evaluate(&t, &[SortKey::asc(col("k"))]).unwrap();
    let mut rows: Vec<usize> = (0..n).collect();
    sort_permutation(&keys, &mut rows, false);
    (t, rows, keys)
}

/// Bug 1: `eval_offset(...) as usize` saturates huge offsets to
/// `usize::MAX`, then `i + off` / `i + off + 1` / `gi + off` overflow
/// (panic in debug builds, wrap in release). Huge offsets must clamp to the
/// partition instead.
#[test]
fn rows_frame_huge_offsets_clamp() {
    let (t, rows, keys) = sorted_setup(vec![1, 2, 3, 4]);
    for big in [lit(1e300), lit(i64::MAX), lit(f64::MAX)] {
        // FOLLOWING .. FOLLOWING: both `(i + off)` sites are exercised.
        let spec =
            FrameSpec::rows(FrameBound::Following(big.clone()), FrameBound::Following(big.clone()));
        let rf = resolve_frames(&t, &rows, &keys, &spec).unwrap();
        for &(a, b) in &rf.bounds {
            assert!(a <= b && b <= 4, "bounds out of partition: ({a}, {b})");
        }
        // Huge offset past the partition end → empty frame everywhere.
        assert!(rf.bounds.iter().all(|&(a, b)| a == b));

        // UNBOUNDED PRECEDING .. big FOLLOWING → whole partition.
        let spec =
            FrameSpec::rows(FrameBound::UnboundedPreceding, FrameBound::Following(big.clone()));
        let rf = resolve_frames(&t, &rows, &keys, &spec).unwrap();
        assert!(rf.bounds.iter().all(|&(a, b)| a == 0 && b == 4));

        // big PRECEDING .. UNBOUNDED FOLLOWING → whole partition.
        let spec =
            FrameSpec::rows(FrameBound::Preceding(big.clone()), FrameBound::UnboundedFollowing);
        let rf = resolve_frames(&t, &rows, &keys, &spec).unwrap();
        assert!(rf.bounds.iter().all(|&(a, b)| a == 0 && b == 4));
    }
}

/// Bug 1 (GROUPS variant): `gi + off` with a saturated offset overflowed
/// before the comparison against `num_groups` could reject it.
#[test]
fn groups_frame_huge_offsets_clamp() {
    let (t, rows, keys) = sorted_setup(vec![5, 5, 7, 9, 9]);
    for big in [lit(1e300), lit(i64::MAX)] {
        let spec = FrameSpec::groups(
            FrameBound::Following(big.clone()),
            FrameBound::Following(big.clone()),
        );
        let rf = resolve_frames(&t, &rows, &keys, &spec).unwrap();
        assert!(rf.bounds.iter().all(|&(a, b)| a == b), "huge GROUPS frame must be empty");

        let spec =
            FrameSpec::groups(FrameBound::Preceding(big.clone()), FrameBound::Following(big));
        let rf = resolve_frames(&t, &rows, &keys, &spec).unwrap();
        assert!(rf.bounds.iter().all(|&(a, b)| a == 0 && b == 5));
    }
}

/// Bug 1 (end-to-end): a huge per-call offset must flow through the whole
/// engine without panicking, under every engine configuration.
#[test]
fn huge_offsets_execute_end_to_end() {
    let t = Table::new(vec![("x", Column::ints(vec![3, 1, 2]))]).unwrap();
    for frame in [
        FrameSpec::rows(FrameBound::Following(lit(1e300)), FrameBound::Following(lit(1e300))),
        FrameSpec::groups(
            FrameBound::Preceding(lit(i64::MAX)),
            FrameBound::Following(lit(i64::MAX)),
        ),
    ] {
        let q = WindowQuery::over(
            WindowSpec::new().order_by(vec![SortKey::asc(col("x"))]).frame(frame),
        )
        .call(FunctionCall::count_star().named("c"))
        .call(FunctionCall::median(col("x")).named("m"));
        for opts in ExecOptions::all_configs() {
            q.execute_with(&t, opts).unwrap();
        }
    }
}

/// Bug 2: LEAD/LAG offset arithmetic. `i as i64 + off` overflowed for
/// offsets near `i64::MAX` (debug panic), `-raw` overflowed for
/// `i64::MIN`, and offset 0 must be well-defined (the current row, per
/// SQL) on every path, including IGNORE NULLS and the framed variant.
#[test]
fn lead_lag_extreme_and_zero_offsets() {
    let t = Table::new(vec![
        ("x", Column::ints_opt(vec![Some(10), None, Some(30), Some(40)])),
        ("pos", Column::ints(vec![0, 1, 2, 3])),
    ])
    .unwrap();
    let spec = || WindowSpec::new().order_by(vec![SortKey::asc(col("pos"))]);

    // Extreme offsets: out of range on every row → the default.
    for off in [i64::MAX, i64::MIN, i64::MAX - 1] {
        for call in [
            FunctionCall::lead(col("x"), off, lit(-1i64)).named("o"),
            FunctionCall::lag(col("x"), off, lit(-1i64)).named("o"),
            FunctionCall::lead(col("x"), off, lit(-1i64)).ignore_nulls().named("o"),
            FunctionCall::lag(col("x"), off, lit(-1i64)).ignore_nulls().named("o"),
            FunctionCall::lead(col("x"), off, lit(-1i64))
                .order_by(vec![SortKey::asc(col("x"))])
                .named("o"),
        ] {
            let out = WindowQuery::over(spec()).call(call).execute(&t).unwrap();
            assert_eq!(out.column("o").unwrap().to_values(), vec![Value::Int(-1); 4]);
        }
    }

    // Offset 0 → the current row's value, on the plain and IGNORE NULLS paths.
    for call in [
        FunctionCall::lead(col("x"), 0, lit(-1i64)).named("o"),
        FunctionCall::lag(col("x"), 0, lit(-1i64)).named("o"),
        FunctionCall::lead(col("x"), 0, lit(-1i64))
            .order_by(vec![SortKey::asc(col("pos"))])
            .named("o"),
    ] {
        let out = WindowQuery::over(spec()).call(call).execute(&t).unwrap();
        assert_eq!(
            out.column("o").unwrap().to_values(),
            vec![Value::Int(10), Value::Null, Value::Int(30), Value::Int(40)]
        );
    }
    // IGNORE NULLS + offset 0: the current row, even when it is NULL (an
    // offset of zero refers to the row itself, not the nearest non-null).
    for call in [
        FunctionCall::lead(col("x"), 0, lit(-1i64)).ignore_nulls().named("o"),
        FunctionCall::lag(col("x"), 0, lit(-1i64)).ignore_nulls().named("o"),
    ] {
        let out = WindowQuery::over(spec()).call(call).execute(&t).unwrap();
        assert_eq!(
            out.column("o").unwrap().to_values(),
            vec![Value::Int(10), Value::Null, Value::Int(30), Value::Int(40)]
        );
    }
}

/// Bug 3: RANGE offset arithmetic went through f64, silently collapsing
/// distinct i64 keys beyond 2^53. Integer keys must use exact integer
/// arithmetic.
#[test]
fn range_frames_exact_for_large_i64_keys() {
    let k0 = i64::MAX - 3;
    let (t, rows, keys) = sorted_setup(vec![k0, k0 + 1, k0 + 2]);
    // In f64, all three keys round to 2^63: every frame would cover all rows.
    let spec = FrameSpec::range(FrameBound::Preceding(lit(1i64)), FrameBound::Following(lit(1i64)));
    let rf = resolve_frames(&t, &rows, &keys, &spec).unwrap();
    assert_eq!(rf.bounds, vec![(0, 2), (0, 3), (1, 3)]);

    // Offsets that push past i64::MAX must clamp, not wrap.
    let spec = FrameSpec::range(
        FrameBound::Preceding(lit(i64::MAX)),
        FrameBound::Following(lit(i64::MAX)),
    );
    let rf = resolve_frames(&t, &rows, &keys, &spec).unwrap();
    assert_eq!(rf.bounds, vec![(0, 3), (0, 3), (0, 3)]);

    // DESC order: same exactness through the mirrored arithmetic.
    let t2 = Table::new(vec![("k", Column::ints(vec![k0, k0 + 1, k0 + 2]))]).unwrap();
    let keys2 = KeyColumns::evaluate(&t2, &[SortKey::desc(col("k"))]).unwrap();
    let mut rows2: Vec<usize> = (0..3).collect();
    sort_permutation(&keys2, &mut rows2, false);
    let spec = FrameSpec::range(FrameBound::Preceding(lit(1i64)), FrameBound::Following(lit(1i64)));
    let rf = resolve_frames(&t2, &rows2, &keys2, &spec).unwrap();
    assert_eq!(rf.bounds, vec![(0, 2), (0, 3), (1, 3)]);
}

/// Bug 3 (negative end): exactness near i64::MIN as well.
#[test]
fn range_frames_exact_for_large_negative_keys() {
    let k0 = i64::MIN + 1;
    let (t, rows, keys) = sorted_setup(vec![k0, k0 + 1, k0 + 2]);
    let spec = FrameSpec::range(FrameBound::Preceding(lit(1i64)), FrameBound::CurrentRow);
    let rf = resolve_frames(&t, &rows, &keys, &spec).unwrap();
    assert_eq!(rf.bounds, vec![(0, 1), (0, 2), (1, 3)]);

    // PRECEDING far past i64::MIN clamps to the partition start.
    let spec = FrameSpec::range(FrameBound::Preceding(lit(i64::MAX)), FrameBound::CurrentRow);
    let rf = resolve_frames(&t, &rows, &keys, &spec).unwrap();
    assert_eq!(rf.bounds, vec![(0, 1), (0, 2), (0, 3)]);
}

/// Float keys keep the f64 path; mixed int-key/float-offset falls back to
/// f64 arithmetic (documented behavior), and neither panics.
#[test]
fn range_frames_float_paths_still_work() {
    let t = Table::new(vec![("k", Column::floats(vec![1.0, 1.5, 3.0]))]).unwrap();
    let keys = KeyColumns::evaluate(&t, &[SortKey::asc(col("k"))]).unwrap();
    let rows: Vec<usize> = (0..3).collect();
    let spec = FrameSpec::range(FrameBound::Preceding(lit(0.5)), FrameBound::Following(lit(0.5)));
    let rf = resolve_frames(&t, &rows, &keys, &spec).unwrap();
    assert_eq!(rf.bounds, vec![(0, 2), (0, 2), (2, 3)]);

    // Int keys with a float offset.
    let (t2, rows2, keys2) = sorted_setup(vec![10, 11, 15]);
    let spec = FrameSpec::range(FrameBound::Preceding(lit(1.5)), FrameBound::Following(lit(1.5)));
    let rf = resolve_frames(&t2, &rows2, &keys2, &spec).unwrap();
    assert_eq!(rf.bounds, vec![(0, 2), (0, 2), (2, 3)]);
}
