//! Property tests for the compiled expression VM: over random expression
//! trees and random data — including NULLs, mixed Int/Float arithmetic,
//! three-valued logic, dates, strings (type errors) and division by zero —
//! the stack VM must be bit-identical to the recursive interpreter, both on
//! values and on the error contract (a VM error falls back to the
//! interpreter, whose first-row error is canonical).

use holistic_window::expr::{BoundExpr, Expr};
use holistic_window::{col, lit, Column, ExprVm, Program, Table, Value};
use proptest::prelude::*;

/// Builds a deterministic expression tree from a byte genome: each byte
/// picks a node kind; the genome running dry (or `depth` hitting zero)
/// forces a leaf. Covers every `BinOp`, `Not`, `Neg`, all leaf kinds.
fn build_expr(genome: &mut &[u8], depth: u32) -> Expr {
    let Some((&t, rest)) = genome.split_first() else {
        return lit(1i64);
    };
    *genome = rest;
    let leaf = |t: u8| -> Expr {
        match t % 10 {
            0 => col("a"),
            1 => col("b"),
            2 => col("f"),
            3 => col("g"),
            4 => col("d"),
            5 => col("s"),
            6 => lit(i64::from(t) - 128),
            7 => lit(f64::from(t) / 8.0 - 8.0),
            8 => Expr::Lit(Value::Null),
            _ => lit(0i64),
        }
    };
    if depth == 0 {
        return leaf(t);
    }
    match t % 18 {
        0 => build_expr(genome, depth - 1).add(build_expr(genome, depth - 1)),
        1 => build_expr(genome, depth - 1).sub(build_expr(genome, depth - 1)),
        2 => build_expr(genome, depth - 1).mul(build_expr(genome, depth - 1)),
        3 => build_expr(genome, depth - 1).div(build_expr(genome, depth - 1)),
        4 => build_expr(genome, depth - 1).rem(build_expr(genome, depth - 1)),
        5 => build_expr(genome, depth - 1).lt(build_expr(genome, depth - 1)),
        6 => build_expr(genome, depth - 1).le(build_expr(genome, depth - 1)),
        7 => build_expr(genome, depth - 1).gt(build_expr(genome, depth - 1)),
        8 => build_expr(genome, depth - 1).ge(build_expr(genome, depth - 1)),
        9 => build_expr(genome, depth - 1).eq_(build_expr(genome, depth - 1)),
        10 => build_expr(genome, depth - 1).ne(build_expr(genome, depth - 1)),
        11 => build_expr(genome, depth - 1).and(build_expr(genome, depth - 1)),
        12 => build_expr(genome, depth - 1).or(build_expr(genome, depth - 1)),
        13 => build_expr(genome, depth - 1).not(),
        14 => build_expr(genome, depth - 1).neg(),
        _ => leaf(t),
    }
}

/// A table exercising every column type the VM gathers: plain ints, ints
/// with NULLs, floats, floats with NULLs, dates, strings (arithmetic type
/// errors), with values spanning zero (division), negatives and duplicates.
fn table(xs: &[i64]) -> Table {
    let n = xs.len();
    Table::new(vec![
        ("a", Column::ints(xs.to_vec())),
        (
            "b",
            Column::ints_opt(
                xs.iter().map(|&x| if x % 3 == 0 { None } else { Some(x * 7) }).collect(),
            ),
        ),
        ("f", Column::floats(xs.iter().map(|&x| x as f64 / 4.0).collect())),
        (
            "g",
            Column::floats_opt(
                xs.iter().map(|&x| if x % 5 == 0 { None } else { Some(x as f64 * 1.5) }).collect(),
            ),
        ),
        ("d", Column::dates(xs.iter().map(|&x| (x % 1000) as i32).collect())),
        ("s", Column::strs((0..n).map(|i| format!("s{}", i % 4)).collect::<Vec<_>>())),
    ])
    .unwrap()
}

/// The executor's evaluation contract, expressed through the public API: a
/// compiled run that errors defers to the interpreter for the canonical
/// first-row error.
fn vm_with_fallback(
    bound: &BoundExpr,
    t: &Table,
    rows: &[usize],
) -> Result<Vec<Value>, holistic_window::Error> {
    let prog = Program::compile(bound);
    match ExprVm::new().run_values(&prog, t, rows) {
        Ok(vals) => Ok(vals),
        Err(_) => rows.iter().map(|&r| bound.eval(t, r)).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn vm_matches_interpreter_on_random_trees(
        genome in prop::collection::vec(any::<u8>(), 1..40),
        xs in prop::collection::vec(-60i64..60, 1..80),
    ) {
        let t = table(&xs);
        let mut g = genome.as_slice();
        let expr = build_expr(&mut g, 4);
        let bound = expr.bind(&t).unwrap();
        let all: Vec<usize> = (0..xs.len()).collect();
        let interp: Result<Vec<Value>, _> = all.iter().map(|&r| bound.eval(&t, r)).collect();
        let vm = vm_with_fallback(&bound, &t, &all);
        prop_assert_eq!(&vm, &interp, "expr: {:?}", expr);

        // A strided row selection (the shape partitions present).
        let odd: Vec<usize> = (0..xs.len()).filter(|i| i % 2 == 1).collect();
        let interp_odd: Result<Vec<Value>, _> = odd.iter().map(|&r| bound.eval(&t, r)).collect();
        let vm_odd = vm_with_fallback(&bound, &t, &odd);
        prop_assert_eq!(&vm_odd, &interp_odd, "expr: {:?}", expr);
    }

    #[test]
    fn vm_filter_masks_match_interpreter(
        genome in prop::collection::vec(any::<u8>(), 1..24),
        xs in prop::collection::vec(-20i64..20, 1..48),
    ) {
        let t = table(&xs);
        let mut g = genome.as_slice();
        // Root the tree at a comparison so it is predicate-shaped.
        let expr = build_expr(&mut g, 3).gt(build_expr(&mut g, 2));
        let bound = expr.bind(&t).unwrap();
        let prog = Program::compile(&bound);
        if let Ok(mask) = ExprVm::new().run_filter_mask(&prog, &t) {
            let interp: Vec<bool> =
                (0..xs.len()).map(|r| bound.eval(&t, r).unwrap().is_truthy()).collect();
            prop_assert_eq!(mask, interp, "expr: {:?}", expr);
        }
    }
}

/// Known-edge battery: the cases the generators only hit by luck.
#[test]
fn vm_edge_cases_match_interpreter() {
    let t = table(&[-6, -1, 0, 1, 2, 3, 60]);
    let n = t.num_rows();
    let all: Vec<usize> = (0..n).collect();
    let cases: Vec<Expr> = vec![
        // Division/modulo by zero → NULL, both Int and Float.
        col("a").div(lit(0i64)),
        col("a").rem(lit(0i64)),
        col("f").div(lit(0.0f64)),
        col("f").rem(lit(0.0f64)),
        col("a").div(col("a")),
        // NULL propagation through every operator.
        col("b").add(Expr::Lit(Value::Null)),
        Expr::Lit(Value::Null).mul(col("g")),
        Expr::Lit(Value::Null).not(),
        Expr::Lit(Value::Null).neg(),
        // Three-valued logic short-circuits.
        col("b").gt(lit(0i64)).and(lit(false)),
        col("b").gt(lit(0i64)).or(lit(true)),
        // Mixed Int/Float widening and comparisons.
        col("a").add(col("f")),
        col("a").lt(col("f")),
        col("f").eq_(col("a")),
        // Date arithmetic.
        col("d").add(lit(7i64)),
        col("d").sub(col("d")),
        // Type errors (string arithmetic, NOT over ints).
        col("s").add(lit(1i64)),
        col("a").not(),
        col("s").neg(),
        // Wrapping integer arithmetic.
        lit(i64::MAX).add(lit(1i64)),
        lit(i64::MAX).mul(col("a")),
    ];
    for expr in cases {
        let bound = expr.bind(&t).unwrap();
        let interp: Result<Vec<Value>, _> = all.iter().map(|&r| bound.eval(&t, r)).collect();
        let vm = vm_with_fallback(&bound, &t, &all);
        assert_eq!(vm, interp, "expr: {expr:?}");
    }
}
