//! The delta API's contract: after any sequence of appends, an
//! [`IncrementalEngine`]'s outputs are bit-identical to re-running the query
//! from scratch on the grown table — under every engine configuration, on
//! both the splice fast path and the recompute path — and `changed_outputs`
//! reports exactly the rows whose outputs changed.

use holistic_window::frame::{FrameBound, FrameExclusion, FrameSpec};
use holistic_window::strategy::StatsAcc;
use holistic_window::{
    col, lit, Column, ExecOptions, FunctionCall, IncrementalEngine, SortKey, Table, Value,
    WindowQuery, WindowSpec,
};
use proptest::prelude::*;

/// Bit-faithful value equality (floats by bits, like the fuzzer's oracle).
fn bits_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

fn tables_bit_identical(a: &Table, b: &Table) {
    assert_eq!(a.num_columns(), b.num_columns());
    assert_eq!(a.num_rows(), b.num_rows());
    for ((na, ca), (nb, cb)) in a.iter().zip(b.iter()) {
        assert_eq!(na, nb);
        let (va, vb) = (ca.to_values(), cb.to_values());
        for (i, (x, y)) in va.iter().zip(&vb).enumerate() {
            assert!(bits_eq(x, y), "column {na} row {i}: {x:?} != {y:?}");
        }
    }
}

/// Appends every batch, then checks the refreshed output against a
/// from-scratch execution of the same options on the grown table.
fn check_equivalence(query: &WindowQuery, base: &Table, batches: &[Table]) {
    for opts in ExecOptions::all_configs() {
        let mut engine = query.begin_incremental(base, opts).unwrap();
        for batch in batches {
            engine.append(batch).unwrap();
        }
        let expected = query.execute_with(engine.table(), opts).unwrap();
        tables_bit_identical(&engine.output_table().unwrap(), &expected);
    }
}

/// A query where every call is forest-eligible and the frame splices.
fn all_fast_query() -> WindowQuery {
    let order = || vec![SortKey::asc(col("v"))];
    WindowQuery::over(
        WindowSpec::new()
            .partition_by(vec![col("g")])
            .order_by(vec![SortKey::asc(col("t"))])
            .frame(FrameSpec::rows(FrameBound::Preceding(lit(5i64)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::count_star().named("c"))
    .call(FunctionCall::row_number(order()).named("rn"))
    .call(FunctionCall::rank(order()).named("r"))
    .call(FunctionCall::percent_rank(order()).named("pr"))
    .call(FunctionCall::cume_dist(order()).named("cd"))
    .call(FunctionCall::percentile_disc(0.25, SortKey::asc(col("v"))).named("pd"))
    .call(FunctionCall::percentile_cont(0.75, SortKey::asc(col("v"))).named("pc"))
    .call(FunctionCall::median(col("v")).named("med"))
}

/// `n` rows of (g, t, v) with `t` globally increasing — appending suffix
/// slices is an end-append in every partition.
fn timeseries(n: usize) -> Table {
    let g: Vec<i64> = (0..n as i64).map(|i| i % 3).collect();
    let t: Vec<i64> = (0..n as i64).collect();
    let v: Vec<i64> = (0..n as i64).map(|i| (i * 37 + 11) % 23).collect();
    Table::new(vec![("g", Column::ints(g)), ("t", Column::ints(t)), ("v", Column::ints(v))])
        .unwrap()
}

fn suffix_batches(full: &Table, base_n: usize, k: usize) -> (Table, Vec<Table>) {
    let n = full.num_rows();
    let base = full.slice_rows(0, base_n);
    let step = (n - base_n).div_ceil(k).max(1);
    let mut batches = Vec::new();
    let mut at = base_n;
    while at < n {
        let hi = (at + step).min(n);
        batches.push(full.slice_rows(at, hi));
        at = hi;
    }
    (base, batches)
}

#[test]
fn fast_path_matches_batch_execution_under_all_configs() {
    let full = timeseries(300);
    let (base, batches) = suffix_batches(&full, 120, 6);
    let q = all_fast_query();
    check_equivalence(&q, &base, &batches);

    // And the refreshes really took the fast path: every touched partition
    // spliced, outputs for exactly the new rows were reported changed.
    let mut engine = q.begin_incremental(&base, ExecOptions::default()).unwrap();
    let mut at = 120;
    for batch in &batches {
        let res = engine.append(batch).unwrap();
        assert_eq!(res.profile.recomputed_partitions, 0, "end-appends must splice");
        assert_eq!(res.profile.spliced_partitions, res.profile.touched_partitions);
        assert_eq!(res.profile.fast_path_rows, batch.num_rows());
        let expect: Vec<usize> = (at..at + batch.num_rows()).collect();
        assert_eq!(res.changed_outputs, expect);
        at += batch.num_rows();
    }
}

#[test]
fn frame_exclusion_is_safe_on_the_splice_path() {
    let full = timeseries(240);
    for excl in [FrameExclusion::CurrentRow, FrameExclusion::Group, FrameExclusion::Ties] {
        let order = || vec![SortKey::asc(col("v"))];
        let q = WindowQuery::over(
            WindowSpec::new()
                .partition_by(vec![col("g")])
                .order_by(vec![SortKey::asc(col("t"))])
                .frame(
                    FrameSpec::rows(FrameBound::Preceding(lit(7i64)), FrameBound::CurrentRow)
                        .exclude(excl),
                ),
        )
        .call(FunctionCall::rank(order()).named("r"))
        .call(FunctionCall::cume_dist(order()).named("cd"))
        .call(FunctionCall::median(col("v")).named("med"));
        let (base, batches) = suffix_batches(&full, 100, 5);
        check_equivalence(&q, &base, &batches);
        let mut engine = q.begin_incremental(&base, ExecOptions::default()).unwrap();
        for batch in &batches {
            let res = engine.append(batch).unwrap();
            assert_eq!(res.profile.recomputed_partitions, 0, "exclusion must not block splicing");
        }
    }
}

#[test]
fn desc_and_float_keys_splice_bit_identically() {
    let n = 200usize;
    let t: Vec<i64> = (0..n as i64).collect();
    // Ties, negative zero and negative values exercise the total-order
    // encoding and the bit-faithful decode.
    let v: Vec<f64> = (0..n)
        .map(|i| match i % 7 {
            0 => -0.0,
            1 => 0.0,
            k => ((i as f64) - 100.0) * 0.5 * if k % 2 == 0 { -1.0 } else { 1.0 },
        })
        .collect();
    let full = Table::new(vec![("t", Column::ints(t)), ("v", Column::floats(v))]).unwrap();
    let order = || vec![SortKey::desc(col("v"))];
    let q = WindowQuery::over(
        WindowSpec::new()
            .order_by(vec![SortKey::asc(col("t"))])
            .frame(FrameSpec::rows(FrameBound::Preceding(lit(9i64)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::rank(order()).named("r"))
    .call(FunctionCall::percent_rank(order()).named("pr"))
    .call(FunctionCall::percentile_disc(0.5, SortKey::desc(col("v"))).named("pd"))
    .call(FunctionCall::percentile_cont(0.25, SortKey::desc(col("v"))).named("pc"));
    let (base, batches) = suffix_batches(&full, 80, 4);
    check_equivalence(&q, &base, &batches);
}

#[test]
fn out_of_order_appends_recompute_and_still_match() {
    // `t` decreasing: every batch sorts *before* the existing rows, so the
    // engine must detect the non-end-append and recompute.
    let n = 150usize;
    let g: Vec<i64> = (0..n as i64).map(|i| i % 2).collect();
    let t: Vec<i64> = (0..n as i64).map(|i| n as i64 - i).collect();
    let v: Vec<i64> = (0..n as i64).map(|i| (i * 13 + 5) % 17).collect();
    let full =
        Table::new(vec![("g", Column::ints(g)), ("t", Column::ints(t)), ("v", Column::ints(v))])
            .unwrap();
    let q = all_fast_query();
    let (base, batches) = suffix_batches(&full, 60, 3);
    check_equivalence(&q, &base, &batches);
    let mut engine = q.begin_incremental(&base, ExecOptions::default()).unwrap();
    for batch in &batches {
        let res = engine.append(batch).unwrap();
        assert_eq!(res.profile.spliced_partitions, 0, "prepends must not splice");
    }
}

#[test]
fn ineligible_queries_recompute_and_match() {
    // SUM and MIN aren't forest-eligible; RANGE frames aren't spliceable;
    // per-row bounds aren't spliceable. All must still refresh correctly.
    let full = timeseries(160);
    let (base, batches) = suffix_batches(&full, 70, 3);

    let sum_q = WindowQuery::over(
        WindowSpec::new()
            .partition_by(vec![col("g")])
            .order_by(vec![SortKey::asc(col("t"))])
            .frame(FrameSpec::rows(FrameBound::Preceding(lit(4i64)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::sum(col("v")).named("s"))
    .call(FunctionCall::min(col("v")).named("mn"));
    check_equivalence(&sum_q, &base, &batches);

    let range_q = WindowQuery::over(
        WindowSpec::new()
            .partition_by(vec![col("g")])
            .order_by(vec![SortKey::asc(col("t"))])
            .frame(FrameSpec::range(FrameBound::Preceding(lit(6i64)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::median(col("v")).named("med"));
    check_equivalence(&range_q, &base, &batches);

    let perrow_q = WindowQuery::over(
        WindowSpec::new()
            .partition_by(vec![col("g")])
            .order_by(vec![SortKey::asc(col("t"))])
            .frame(FrameSpec::rows(FrameBound::Preceding(col("v")), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::rank(vec![SortKey::asc(col("v"))]).named("r"));
    check_equivalence(&perrow_q, &base, &batches);
}

#[test]
fn null_keys_demote_the_partition_but_stay_correct() {
    let g: Vec<i64> = vec![0; 60];
    let t: Vec<i64> = (0..60).collect();
    let v: Vec<Option<i64>> = (0..60).map(|i| if i == 47 { None } else { Some(i % 9) }).collect();
    let full = Table::new(vec![
        ("g", Column::ints(g)),
        ("t", Column::ints(t)),
        ("v", Column::ints_opt(v)),
    ])
    .unwrap();
    // Median screens its NULL key rows (fallback semantics the forest can't
    // express), so meeting the NULL must demote the partition.
    let q = WindowQuery::over(
        WindowSpec::new()
            .partition_by(vec![col("g")])
            .order_by(vec![SortKey::asc(col("t"))])
            .frame(FrameSpec::rows(FrameBound::Preceding(lit(5i64)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::median(col("v")).named("med"))
    .call(FunctionCall::rank(vec![SortKey::asc(col("v"))]).named("r"));
    let (base, batches) = suffix_batches(&full, 40, 4);
    check_equivalence(&q, &base, &batches);

    let mut engine = q.begin_incremental(&base, ExecOptions::default()).unwrap();
    let mut saw_recompute = false;
    for batch in &batches {
        let res = engine.append(batch).unwrap();
        saw_recompute |= res.profile.recomputed_partitions > 0;
    }
    assert!(saw_recompute, "the NULL key at row 47 must force a recompute");
}

#[test]
fn new_partitions_appear_mid_stream() {
    // Partition key 2 only shows up in later batches.
    let n = 120usize;
    let g: Vec<i64> = (0..n as i64).map(|i| if i < 60 { i % 2 } else { i % 3 }).collect();
    let t: Vec<i64> = (0..n as i64).collect();
    let v: Vec<i64> = (0..n as i64).map(|i| (i * 7 + 3) % 11).collect();
    let full =
        Table::new(vec![("g", Column::ints(g)), ("t", Column::ints(t)), ("v", Column::ints(v))])
            .unwrap();
    let q = all_fast_query();
    let (base, batches) = suffix_batches(&full, 60, 3);
    check_equivalence(&q, &base, &batches);

    let mut engine = q.begin_incremental(&base, ExecOptions::default()).unwrap();
    let mut new_parts = 0;
    for batch in &batches {
        new_parts += engine.append(batch).unwrap().profile.new_partitions;
    }
    assert_eq!(new_parts, 1, "partition g=2 appears exactly once");
}

#[test]
fn incremental_stats_and_strategy_match_from_scratch() {
    let full = timeseries(300);
    let (base, batches) = suffix_batches(&full, 120, 6);
    let q = all_fast_query();
    let opts = ExecOptions::default();

    let mut engine = q.begin_incremental(&base, opts).unwrap();
    for batch in &batches {
        engine.append(batch).unwrap();
    }
    // A second engine built directly on the grown table computes its stats
    // and strategy choices from scratch; the incrementally-maintained ones
    // must agree exactly.
    let fresh = q.begin_incremental(engine.table(), opts).unwrap();
    assert_eq!(engine.partition_stats(), fresh.partition_stats());
    assert_eq!(engine.strategy_decisions(), fresh.strategy_decisions());

    // And the engine's decision histogram matches the batch executor's.
    let (_, profile) = q.execute_profiled(engine.table(), opts).unwrap();
    assert_eq!(engine.strategy_decisions(), profile.strategy.decisions);
}

#[test]
fn rejected_batches_leave_the_engine_usable() {
    let full = timeseries(100);
    let (base, batches) = suffix_batches(&full, 80, 1);
    let q = all_fast_query();
    let mut engine = q.begin_incremental(&base, ExecOptions::default()).unwrap();

    // Wrong column set: rejected up front, engine untouched.
    let bad = Table::new(vec![("x", Column::ints(vec![1]))]).unwrap();
    assert!(engine.append(&bad).is_err());
    assert!(!engine.is_poisoned(), "a rejected batch must not poison the engine");

    engine.append(&batches[0]).unwrap();
    let expected = q.execute(engine.table()).unwrap();
    tables_bit_identical(&engine.output_table().unwrap(), &expected);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `changed_outputs` is exact: it contains every new row, every old row
    /// whose output changed, and *nothing else* — validated against a
    /// before/after diff of full output tables under bit equality.
    #[test]
    fn changed_outputs_are_exactly_the_diff(
        gs in prop::collection::vec(0i64..3, 8..60),
        ts in prop::collection::vec(-20i64..20, 8..60),
        vs in prop::collection::vec(prop::option::of(-8i64..8), 8..60),
        split_num in 1usize..4,
        pre in 0i64..6,
    ) {
        let n = gs.len().min(ts.len()).min(vs.len());
        let full = Table::new(vec![
            ("g", Column::ints(gs[..n].to_vec())),
            ("t", Column::ints(ts[..n].to_vec())),
            ("v", Column::ints_opt(vs[..n].to_vec())),
        ]).unwrap();
        let base_n = n * split_num / 4;
        let q = WindowQuery::over(
            WindowSpec::new()
                .partition_by(vec![col("g")])
                .order_by(vec![SortKey::asc(col("t"))])
                .frame(FrameSpec::rows(FrameBound::Preceding(lit(pre)), FrameBound::CurrentRow)),
        )
        .call(FunctionCall::count_star().named("c"))
        .call(FunctionCall::rank(vec![SortKey::asc(col("v"))]).named("r"))
        .call(FunctionCall::median(col("v")).named("med"));

        let base = full.slice_rows(0, base_n);
        let batch = full.slice_rows(base_n, n);
        let mut engine: IncrementalEngine =
            q.begin_incremental(&base, ExecOptions::default()).unwrap();
        let before = engine.output_table().unwrap();
        let res = engine.append(&batch).unwrap();
        let after = engine.output_table().unwrap();

        // Oracle diff: new rows always count as changed; old rows compare
        // bit-for-bit across all output columns.
        let mut oracle: Vec<usize> = (base_n..n).collect();
        for row in 0..base_n {
            let changed = before.iter().zip(after.iter()).any(|((_, cb), (_, ca))| {
                !bits_eq(&cb.get(row), &ca.get(row))
            });
            if changed {
                oracle.push(row);
            }
        }
        oracle.sort_unstable();
        prop_assert_eq!(res.changed_outputs, oracle);

        // And the refreshed outputs equal a from-scratch execution.
        let expected = q.execute(engine.table()).unwrap();
        tables_bit_identical(&after, &expected);
    }

    /// [`StatsAcc`] extended batch-by-batch agrees with one whole-frames
    /// accumulation (the O(b)-update satellite's core claim).
    #[test]
    fn stats_acc_batch_extension_matches_whole(
        widths in prop::collection::vec((0usize..10, 0usize..10), 1..50),
        cut in 0usize..49,
    ) {
        use holistic_window::frame::ResolvedFrames;
        let m = widths.len();
        let cut = cut.min(m);
        let mut bounds = Vec::with_capacity(m);
        for (i, &(a_off, b_off)) in widths.iter().enumerate() {
            let a = i.saturating_sub(a_off);
            let b = (i + b_off).min(m).max(a);
            bounds.push((a, b));
        }
        // Synthetic peer groups: runs of 3.
        let peer_start: Vec<usize> = (0..m).map(|i| i - i % 3).collect();
        let peer_end: Vec<usize> = (0..m).map(|i| (i - i % 3 + 3).min(m)).collect();
        let prefix = ResolvedFrames {
            bounds: bounds[..cut].to_vec(),
            exclusion: FrameExclusion::NoOthers,
            peer_start: peer_start[..cut].to_vec(),
            peer_end: peer_end[..cut].to_vec(),
        };
        let frames = ResolvedFrames {
            bounds,
            exclusion: FrameExclusion::NoOthers,
            peer_start,
            peer_end,
        };
        let mut whole = StatsAcc::new();
        whole.extend(&frames, 0);
        // Accumulate the prefix first, then the tail of the full frames —
        // the engine's per-batch update pattern.
        let mut split = StatsAcc::new();
        split.extend(&prefix, 0);
        split.extend(&frames, cut);
        prop_assert_eq!(whole.stats(), split.stats());
    }
}
