//! Property test for the cursor-carrying probe layer: every holistic family,
//! with FILTER, IGNORE NULLS, and frame exclusions, must produce
//! bit-identical output with probe cursors enabled (the default), with
//! cursors disabled (`stateless_probes`), and under parallel execution —
//! the cursor is a pure probe-phase accelerator, never a semantic change.

use holistic_window::frame::{FrameBound, FrameExclusion, FrameSpec};
use holistic_window::{
    col, lit, Column, ExecOptions, Expr, FunctionCall, SortKey, Strategy, Table, WindowQuery,
    WindowSpec,
};

/// Every config here is pinned to the merge sort tree AND to scalar
/// (unbatched) probes: these tests assert cursor counters that only the
/// row-at-a-time MST path produces — block kernels bypass cursors entirely
/// (their equivalence is covered by the block-probe tests and the fuzzer).
fn mst(opts: ExecOptions) -> ExecOptions {
    opts.force_strategy(Strategy::Mst).unbatched_probes()
}
use proptest::prelude::*;

/// `y > 3` as a FILTER predicate.
fn y_above_three() -> Expr {
    col("y").gt(lit(3i64))
}

/// One call per family that reaches the merge-sort-tree probe kernel.
fn battery() -> Vec<FunctionCall> {
    vec![
        FunctionCall::count_distinct(col("x")).named("c0"),
        FunctionCall::sum(col("x")).filter(y_above_three()).named("c1"),
        FunctionCall::rank(vec![SortKey::asc(col("y"))]).named("c2"),
        FunctionCall::dense_rank(vec![SortKey::asc(col("y"))]).named("c3"),
        FunctionCall::median(col("y")).named("c4"),
        FunctionCall::first_value(col("x")).ignore_nulls().named("c5"),
        FunctionCall::lead(col("x"), 1, lit(0i64))
            .order_by(vec![SortKey::asc(col("y"))])
            .named("c6"),
        FunctionCall::lag(col("x"), 1, lit(-1i64)).named("c7"),
        FunctionCall::mode(col("y")).named("c8"),
    ]
}

fn exclusion_of(idx: usize) -> FrameExclusion {
    match idx {
        0 => FrameExclusion::NoOthers,
        1 => FrameExclusion::CurrentRow,
        2 => FrameExclusion::Group,
        _ => FrameExclusion::Ties,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cursor_probes_match_stateless_probes(
        xs in prop::collection::vec(prop::option::of(-8i64..8), 8..120),
        ys in prop::collection::vec(-6i64..7, 8..120),
        gs in prop::collection::vec(0i64..3, 8..120),
        lo in 0i64..4,
        hi in 0i64..4,
        excl in 0usize..4,
    ) {
        let n = xs.len().min(ys.len()).min(gs.len());
        let table = Table::new(vec![
            ("x", Column::ints_opt(xs[..n].to_vec())),
            ("y", Column::ints(ys[..n].to_vec())),
            ("g", Column::ints(gs[..n].to_vec())),
            ("pos", Column::ints((0..n as i64).collect())),
        ])
        .unwrap();
        let spec = WindowSpec::new()
            .partition_by(vec![col("g")])
            .order_by(vec![SortKey::asc(col("pos"))])
            .frame(
                FrameSpec::rows(
                    FrameBound::Preceding(lit(lo)),
                    FrameBound::Following(lit(hi)),
                )
                .exclude(exclusion_of(excl)),
            );
        let calls = battery();
        let q = WindowQuery { spec, calls: calls.clone() };

        // Reference: cursors enabled (the default), serial.
        let (base, base_profile) = q.execute_profiled(&table, mst(ExecOptions::serial())).unwrap();
        prop_assert!(
            base_profile.probe_kernel.cursor_probes > 0,
            "cursor path must be exercised when probe cursors are on"
        );
        prop_assert_eq!(base_profile.probe_kernel.stateless_probes, 0);

        for (label, opts) in [
            ("serial/stateless", mst(ExecOptions::serial().stateless_probes())),
            ("parallel/cursor", mst(ExecOptions::default())),
            ("parallel/stateless", mst(ExecOptions::default().stateless_probes())),
        ] {
            let (out, profile) = q.execute_profiled(&table, opts).unwrap();
            if label.ends_with("stateless") {
                prop_assert_eq!(
                    profile.probe_kernel.cursor_probes, 0,
                    "stateless_probes must bypass the cursor path ({})", label
                );
                prop_assert_eq!(profile.probe_kernel.gallop_seeded, 0);
            }
            for call in &calls {
                let name = call.output_name.as_str();
                prop_assert_eq!(
                    base.column(name).unwrap().to_values(),
                    out.column(name).unwrap().to_values(),
                    "column {} differs under {}", name, label
                );
            }
        }
    }
}

/// A deterministic monotonic-frame query must actually gallop: the counters
/// prove the amortized-O(1) path is live, not silently falling back.
#[test]
fn monotonic_frames_gallop() {
    let n = 4096i64;
    let table = Table::new(vec![
        ("pos", Column::ints((0..n).collect())),
        ("v", Column::ints((0..n).map(|i| (i * 7703) % 1009).collect())),
    ])
    .unwrap();
    let q = WindowQuery::over(
        WindowSpec::new()
            .order_by(vec![SortKey::asc(col("pos"))])
            .frame(FrameSpec::rows(FrameBound::Preceding(lit(63i64)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::median(col("v")).named("med"))
    .call(FunctionCall::count_distinct(col("v")).named("cd"));

    let (_, profile) = q.execute_profiled(&table, mst(ExecOptions::serial())).unwrap();
    let k = &profile.probe_kernel;
    assert!(k.cursor_probes > 0, "cursor probes: {k:?}");
    assert_eq!(k.stateless_probes, 0, "stateless probes: {k:?}");
    assert!(k.gallop_seeded > 0, "no galloped searches: {k:?}");
    // Amortized O(1): on a 1-step monotonic frame the average gallop is a
    // handful of steps, far below the log2(n) = 12 of a full search.
    let avg_steps = k.gallop_steps as f64 / k.gallop_seeded.max(1) as f64;
    assert!(avg_steps < 6.0, "galloping degenerated: avg {avg_steps:.2} steps/search ({k:?})");
}
