//! Property test for the shared-artifact executor: a multi-call
//! `WindowQuery` mixing every holistic family — shared and non-shared inner
//! ORDER BYs, FILTER, IGNORE NULLS, frame exclusions — must produce
//! bit-identical output to evaluating each call as its own single-call
//! query, under shared and private caches, serial and parallel.

use holistic_window::frame::{FrameBound, FrameExclusion, FrameSpec};
use holistic_window::{
    col, lit, Column, ExecOptions, Expr, FunctionCall, SortKey, Table, WindowQuery, WindowSpec,
};
use proptest::prelude::*;

/// `y > 3` as a FILTER predicate.
fn y_above_three() -> Expr {
    col("y").gt(lit(3i64))
}

/// One call per family, with deliberately overlapping inner ORDER BYs and
/// mask variations so some artifacts share and others must not.
fn battery() -> Vec<FunctionCall> {
    vec![
        FunctionCall::count_distinct(col("x")).named("c0"),
        FunctionCall::sum(col("x")).filter(y_above_three()).named("c1"),
        FunctionCall::rank(vec![SortKey::asc(col("y"))]).named("c2"),
        FunctionCall::dense_rank(vec![SortKey::asc(col("y"))]).named("c3"),
        FunctionCall::median(col("y")).named("c4"),
        FunctionCall::first_value(col("x")).ignore_nulls().named("c5"),
        FunctionCall::lead(col("x"), 1, lit(0i64))
            .order_by(vec![SortKey::asc(col("y"))])
            .named("c6"),
        FunctionCall::lag(col("x"), 1, lit(-1i64)).named("c7"),
        FunctionCall::mode(col("y")).named("c8"),
    ]
}

fn exclusion_of(idx: usize) -> FrameExclusion {
    match idx {
        0 => FrameExclusion::NoOthers,
        1 => FrameExclusion::CurrentRow,
        2 => FrameExclusion::Group,
        _ => FrameExclusion::Ties,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn combined_query_matches_per_call_queries(
        xs in prop::collection::vec(prop::option::of(-8i64..8), 8..120),
        ys in prop::collection::vec(-6i64..7, 8..120),
        gs in prop::collection::vec(0i64..3, 8..120),
        lo in 0i64..4,
        hi in 0i64..4,
        excl in 0usize..4,
    ) {
        let n = xs.len().min(ys.len()).min(gs.len());
        let table = Table::new(vec![
            ("x", Column::ints_opt(xs[..n].to_vec())),
            ("y", Column::ints(ys[..n].to_vec())),
            ("g", Column::ints(gs[..n].to_vec())),
            ("pos", Column::ints((0..n as i64).collect())),
        ])
        .unwrap();
        let spec = WindowSpec::new()
            .partition_by(vec![col("g")])
            .order_by(vec![SortKey::asc(col("pos"))])
            .frame(
                FrameSpec::rows(
                    FrameBound::Preceding(lit(lo)),
                    FrameBound::Following(lit(hi)),
                )
                .exclude(exclusion_of(excl)),
            );
        let calls = battery();
        let combined = WindowQuery { spec: spec.clone(), calls: calls.clone() };

        // Reference: shared cache, serial.
        let base = combined.execute_with(&table, ExecOptions::serial()).unwrap();

        // The same combined query under a parallel and under private-cache
        // executions must not change a single value.
        for (label, opts) in [
            ("parallel", ExecOptions::default()),
            ("serial/no-sharing", ExecOptions::serial().no_sharing()),
            ("parallel/no-sharing", ExecOptions::default().no_sharing()),
        ] {
            let out = combined.execute_with(&table, opts).unwrap();
            for call in &calls {
                let name = call.output_name.as_str();
                prop_assert_eq!(
                    base.column(name).unwrap().to_values(),
                    out.column(name).unwrap().to_values(),
                    "column {} differs under {}", name, label
                );
            }
        }

        // Each call evaluated alone — no sharing possible — must agree too.
        for call in &calls {
            let name = call.output_name.as_str();
            let single = WindowQuery::over(spec.clone()).call(call.clone());
            let out = single.execute_with(&table, ExecOptions::serial()).unwrap();
            prop_assert_eq!(
                base.column(name).unwrap().to_values(),
                out.column(name).unwrap().to_values(),
                "column {} differs between combined and single-call queries", name
            );
        }
    }
}
