//! Asserts the plan → build → probe pipeline's sharing guarantees through
//! the profile's cache counters: a query whose calls share one inner ORDER
//! BY performs exactly one inner sort and one merge-sort-tree build of each
//! needed kind per partition — and disabling sharing redoes the work per
//! call without changing any result.

use holistic_window::frame::{FrameBound, FrameSpec};
use holistic_window::{
    col, lit, Column, ExecOptions, FunctionCall, SortKey, Strategy, Table, WindowQuery, WindowSpec,
};

/// Serial execution pinned to the merge sort tree: these tests assert cache
/// counters, which the adaptive mode's cacheless direct path would zero out
/// on tables this small.
fn mst() -> ExecOptions {
    ExecOptions::serial().force_strategy(Strategy::Mst)
}

/// Three holistic calls from different families — rank, row_number and a
/// framed LEAD — all ordering by `v` under identical (empty) FILTER masks.
fn shared_order_query() -> WindowQuery {
    let inner = || vec![SortKey::asc(col("v"))];
    WindowQuery::over(
        WindowSpec::new()
            .order_by(vec![SortKey::asc(col("t"))])
            .frame(FrameSpec::rows(FrameBound::Preceding(lit(3i64)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::rank(inner()).named("r"))
    .call(FunctionCall::row_number(inner()).named("rn"))
    .call(FunctionCall::lead(col("v"), 1, lit(-1i64)).order_by(inner()).named("ld"))
}

fn demo_table(n: usize) -> Table {
    let t: Vec<i64> = (0..n as i64).collect();
    let v: Vec<i64> = (0..n as i64).map(|i| (i * 37 + 11) % 23).collect();
    Table::new(vec![("t", Column::ints(t)), ("v", Column::ints(v))]).unwrap()
}

#[test]
fn three_calls_one_criterion_sort_once() {
    let table = demo_table(64);
    let q = shared_order_query();
    let (_, profile) = q.execute_profiled(&table, mst()).unwrap();
    assert_eq!(profile.partitions, 1);
    // One partition: the single inner sort feeds all three calls.
    assert_eq!(profile.cache.inner_sorts, 1, "inner ORDER BY must be sorted exactly once");
    // One code tree (rank + row_number + LEAD's rank step) and one
    // permutation tree (LEAD's selection step) — nothing else.
    assert_eq!(profile.cache.mst_builds, 2, "one code MST and one permutation MST");
    assert!(profile.cache.hits > 0, "later calls must hit the shared artifacts");
}

#[test]
fn no_sharing_redoes_the_sort_per_call() {
    let table = demo_table(64);
    let q = shared_order_query();
    let shared = q.execute_with(&table, mst()).unwrap();
    let (private, profile) = q.execute_profiled(&table, mst().no_sharing()).unwrap();
    // Each of the three calls now sorts for itself...
    assert_eq!(profile.cache.inner_sorts, 3);
    // ...rank and row_number build one code tree each, LEAD builds a code
    // tree and a permutation tree (it still shares within itself).
    assert_eq!(profile.cache.mst_builds, 4);
    // ...but every output is identical.
    for name in ["r", "rn", "ld"] {
        assert_eq!(
            shared.column(name).unwrap().to_values(),
            private.column(name).unwrap().to_values(),
            "column {name} must not depend on artifact sharing"
        );
    }
}

#[test]
fn sharing_counters_scale_with_partitions() {
    let n = 96;
    let g: Vec<i64> = (0..n as i64).map(|i| i % 4).collect();
    let t: Vec<i64> = (0..n as i64).collect();
    let v: Vec<i64> = (0..n as i64).map(|i| (i * 29 + 7) % 17).collect();
    let table =
        Table::new(vec![("g", Column::ints(g)), ("t", Column::ints(t)), ("v", Column::ints(v))])
            .unwrap();
    let inner = || vec![SortKey::asc(col("v"))];
    let q = WindowQuery::over(
        WindowSpec::new()
            .partition_by(vec![col("g")])
            .order_by(vec![SortKey::asc(col("t"))])
            .frame(FrameSpec::rows(FrameBound::Preceding(lit(5i64)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::rank(inner()).named("r"))
    .call(FunctionCall::row_number(inner()).named("rn"))
    .call(FunctionCall::lead(col("v"), 1, lit(-1i64)).order_by(inner()).named("ld"));
    let (_, profile) = q.execute_profiled(&table, mst()).unwrap();
    assert_eq!(profile.partitions, 4);
    // Exactly one sort and one tree build of each kind per partition.
    assert_eq!(profile.cache.inner_sorts, 4);
    assert_eq!(profile.cache.mst_builds, 8);
}

#[test]
fn differing_masks_do_not_share_sorts() {
    // A percentile screens NULL keys out of its sort; a rank over the same
    // criterion keeps them. The planner must give them distinct mask keys —
    // sharing here would be a correctness bug, so the counter is 2.
    let table = Table::new(vec![
        ("t", Column::ints((0..32).collect())),
        (
            "v",
            Column::ints_opt(
                (0..32).map(|i| if i % 5 == 0 { None } else { Some(i % 7) }).collect(),
            ),
        ),
    ])
    .unwrap();
    let q = WindowQuery::over(
        WindowSpec::new()
            .order_by(vec![SortKey::asc(col("t"))])
            .frame(FrameSpec::rows(FrameBound::Preceding(lit(4i64)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::rank(vec![SortKey::asc(col("v"))]).named("r"))
    .call(FunctionCall::median(col("v")).named("med"));
    let (_, profile) = q.execute_profiled(&table, mst()).unwrap();
    assert_eq!(profile.cache.inner_sorts, 2, "NULL-screened and unscreened sorts must stay apart");
}

#[test]
fn window_order_fallback_shares_with_seeded_keys() {
    // Rank functions without an inner ORDER BY fall back to the window ORDER
    // BY; the executor seeds each partition cache with those key columns, so
    // requesting them is a hit, never a second evaluation.
    let table = demo_table(48);
    let q = WindowQuery::over(
        WindowSpec::new()
            .order_by(vec![SortKey::asc(col("v"))])
            .frame(FrameSpec::rows(FrameBound::Preceding(lit(3i64)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::rank(vec![]).named("r"))
    .call(FunctionCall::rank(vec![SortKey::asc(col("v"))]).named("r2"));
    let (out, profile) = q.execute_profiled(&table, mst()).unwrap();
    // The explicit ORDER BY v criterion is structurally equal to the window
    // order fallback: one sort serves both calls.
    assert_eq!(profile.cache.inner_sorts, 1);
    assert_eq!(
        out.column("r").unwrap().to_values(),
        out.column("r2").unwrap().to_values(),
        "explicit and fallback criteria must agree"
    );
}
