//! The strategy layer: per-partition, per-call algorithm choice.
//!
//! The paper evaluates the merge sort tree against four classic
//! per-partition algorithms (naive re-evaluation, Wesley & Xu incremental
//! sliding state, order-statistic trees, and segment-tree selection —
//! §5/§6, Table 1). Each wins somewhere: naive on tiny partitions where any
//! preprocessing is overhead, incremental on narrow monotonic frames,
//! trees on everything wide or adversarial. This module makes that choice
//! explicit: a [`CostModel`] with calibratable constants scores every
//! applicable [`Strategy`] against cheap [`PartitionStats`] and the executor
//! dispatches each (partition × call) to the winner.
//!
//! Invariants the executor relies on:
//!
//! * The choice is a pure function of `(mode, class, stats, model)` — all
//!   configuration-independent inputs — so every engine configuration
//!   (serial/parallel, cursors on/off, shared/private caches) picks the same
//!   strategy and stays bit-identical.
//! * Every strategy is bit-identical to the merge-sort-tree path by
//!   construction: alternates slide/select *dense codes* (exact integer
//!   ranks) and the direct path re-derives each family from the same
//!   formulas over exact counts.
//! * [`Strategy::Mst`] is applicable to everything; a forced strategy that
//!   does not apply to a call falls back to it.

use crate::frame::ResolvedFrames;
use crate::spec::{FuncKind, FunctionCall};

/// One per-partition evaluation algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Per-row re-evaluation with plain scans; no preprocessing artifacts at
    /// all. The winner on tiny partitions, where building *anything* costs
    /// more than scanning every frame.
    Naive,
    /// Wesley & Xu sliding state (PVLDB 2016): an ordered multiset of codes
    /// (percentiles) or a hash multiset (COUNT DISTINCT) slid along the
    /// frame sequence. Wins on narrow, mostly-monotonic frames.
    Incremental,
    /// A counted-B-tree order-statistic multiset slid along the frame
    /// sequence; `O(log f)` updates buy robustness to wide frames.
    OsTree,
    /// A sorted-list segment tree built once over the kept codes; each row
    /// selects in `O(log² n)` with no sliding state (Arasu-Widom style).
    SegTree,
    /// The paper's merge sort trees — the default, and the only strategy
    /// applicable to every call class.
    Mst,
}

impl Strategy {
    /// All strategies, in [`Strategy::index`] order.
    pub const ALL: [Strategy; 5] = [
        Strategy::Naive,
        Strategy::Incremental,
        Strategy::OsTree,
        Strategy::SegTree,
        Strategy::Mst,
    ];

    /// Stable display name (bench JSON, fuzz labels).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Naive => "naive",
            Strategy::Incremental => "incremental",
            Strategy::OsTree => "ostree",
            Strategy::SegTree => "segtree",
            Strategy::Mst => "mst",
        }
    }

    /// Dense index into per-strategy counter arrays
    /// ([`crate::executor::StrategyProfile::decisions`]).
    pub fn index(self) -> usize {
        match self {
            Strategy::Naive => 0,
            Strategy::Incremental => 1,
            Strategy::OsTree => 2,
            Strategy::SegTree => 3,
            Strategy::Mst => 4,
        }
    }
}

/// How the executor picks a strategy per (partition × call).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrategyMode {
    /// Cost-based choice via [`CostModel`] (the default).
    #[default]
    Adaptive,
    /// Force one strategy everywhere it applies; calls it cannot evaluate
    /// fall back to [`Strategy::Mst`] (which is always applicable).
    Force(Strategy),
}

/// Coarse call classification driving applicability and cost formulas.
///
/// Derived once per call at plan time ([`CallClass::of`]); the cost model
/// never needs the full call, only its class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallClass {
    /// `COUNT(*)` — frame-size arithmetic.
    CountStar,
    /// `COUNT(expr)` — kept-row counting.
    Count,
    /// `SUM`/`AVG` without DISTINCT.
    SumAvg,
    /// `MIN`/`MAX` (DISTINCT or not — identical semantics).
    MinMax,
    /// `COUNT(DISTINCT expr)`.
    CountDistinct,
    /// `SUM`/`AVG` DISTINCT — annotated-tree only (integer overflow degrades
    /// to float mid-probe, which no alternate reproduces bit-exactly).
    SumAvgDistinct,
    /// `COUNT(DISTINCT *)` — rejected at evaluation time.
    CountStarDistinct,
    /// `ROW_NUMBER`/`RANK`/`PERCENT_RANK`/`CUME_DIST`/`NTILE`.
    RankLike,
    /// `DENSE_RANK` (range-tree backed on the MST path).
    DenseRank,
    /// `PERCENTILE_DISC`/`PERCENTILE_CONT`/`MEDIAN` — the holistic selection
    /// family every alternate strategy targets.
    Percentile,
    /// `FIRST_VALUE`/`LAST_VALUE`/`NTH_VALUE`.
    ValueFn,
    /// `LEAD`/`LAG` without an inner ORDER BY (positional semantics).
    LeadLagClassic,
    /// `LEAD`/`LAG` with an inner ORDER BY (§4.6 framed semantics).
    LeadLagFramed,
    /// `MODE` (√-decomposition index on the MST path).
    Mode,
}

impl CallClass {
    /// Classifies a call (used by the planner; the class rides on
    /// `CallPlan`).
    pub fn of(call: &FunctionCall) -> CallClass {
        use FuncKind::*;
        match call.kind {
            CountStar => {
                if call.distinct {
                    CallClass::CountStarDistinct
                } else {
                    CallClass::CountStar
                }
            }
            Count => {
                if call.distinct {
                    CallClass::CountDistinct
                } else {
                    CallClass::Count
                }
            }
            Sum | Avg => {
                if call.distinct {
                    CallClass::SumAvgDistinct
                } else {
                    CallClass::SumAvg
                }
            }
            Min | Max => CallClass::MinMax,
            RowNumber | Rank | PercentRank | CumeDist | Ntile => CallClass::RankLike,
            DenseRank => CallClass::DenseRank,
            PercentileDisc | PercentileCont | Median => CallClass::Percentile,
            FirstValue | LastValue | NthValue => CallClass::ValueFn,
            Lead | Lag => {
                if call.inner_order.is_empty() {
                    CallClass::LeadLagClassic
                } else {
                    CallClass::LeadLagFramed
                }
            }
            Mode => CallClass::Mode,
        }
    }
}

/// Cheap per-partition statistics the cost model consumes. Computed in O(m)
/// from the resolved frame bounds — before any artifact is built — and
/// independent of every execution option, so all configurations agree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionStats {
    /// Partition size (rows).
    pub m: usize,
    /// Mean frame hull width `b - a`.
    pub avg_frame: f64,
    /// Total boundary movement `Σ |Δa| + |Δb|` across consecutive rows —
    /// what sliding-state strategies actually pay. Monotonic frames give
    /// `total_slide ≈ 2m·avg_growth`; adversarial frames blow it up.
    pub total_slide: u64,
    /// Both boundaries non-decreasing row over row.
    pub monotonic: bool,
    /// The frame has an exclusion clause (hull-based alternates don't
    /// apply).
    pub has_exclusion: bool,
    /// Distinct window ORDER BY keys: the number of peer groups
    /// (`peer_start[i] == i`). A free O(m) duplication estimate — heavy key
    /// duplication predicts cheap hash upkeep for COUNT DISTINCT / MODE
    /// scans, distinct-heavy data the opposite.
    pub distinct_keys: usize,
}

impl PartitionStats {
    /// Gathers stats from resolved frame bounds.
    pub fn from_frames(frames: &ResolvedFrames) -> PartitionStats {
        let mut acc = StatsAcc::new();
        acc.extend(frames, 0);
        acc.stats()
    }

    /// `distinct_keys / m` in `[0, 1]`; 1.0 on empty partitions (the
    /// conservative all-distinct assumption).
    pub fn distinct_ratio(&self) -> f64 {
        if self.m == 0 {
            1.0
        } else {
            self.distinct_keys as f64 / self.m as f64
        }
    }
}

/// Incremental accumulator behind [`PartitionStats`]: exact integer sums
/// over the resolved frames, extensible row by row. The append engine keeps
/// one per partition and calls [`StatsAcc::extend`] for just the appended
/// suffix — O(b) per batch instead of an O(m) rescan — with the invariant
/// (asserted in tests) that the result is identical to a from-scratch
/// [`PartitionStats::from_frames`] over the grown frames.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StatsAcc {
    /// Rows folded in so far.
    pub m: usize,
    /// Exact `Σ (b - a)` (u128: no float drift across appends).
    pub sum_width: u128,
    /// Exact `Σ |Δa| + |Δb|` including the junction between batches.
    pub total_slide: u64,
    /// Both boundaries non-decreasing so far (vacuously true when empty).
    pub monotonic: bool,
    /// The frame spec carries an exclusion clause.
    pub has_exclusion: bool,
    /// Peer groups seen so far (`peer_start[i] == i` rows).
    pub distinct_keys: usize,
    last: Option<(usize, usize)>,
}

impl StatsAcc {
    /// An empty accumulator.
    pub fn new() -> StatsAcc {
        StatsAcc { monotonic: true, ..StatsAcc::default() }
    }

    /// Folds in positions `from..` of `frames`. Appending a resolved suffix
    /// in batches produces the same accumulator as one pass over the whole
    /// partition — the junction slide between the last old row and the first
    /// new row is accounted for by `last`.
    pub fn extend(&mut self, frames: &ResolvedFrames, from: usize) {
        self.has_exclusion = frames.has_exclusion();
        for i in from..frames.bounds.len() {
            let (a, b) = frames.bounds[i];
            self.sum_width += (b - a) as u128;
            if let Some((pa, pb)) = self.last {
                self.total_slide += a.abs_diff(pa) as u64 + b.abs_diff(pb) as u64;
                self.monotonic &= a >= pa && b >= pb;
            }
            if frames.peer_start[i] == i {
                self.distinct_keys += 1;
            }
            self.last = Some((a, b));
            self.m += 1;
        }
    }

    /// The stats snapshot for the rows folded in so far.
    pub fn stats(&self) -> PartitionStats {
        PartitionStats {
            m: self.m,
            avg_frame: if self.m == 0 { 0.0 } else { self.sum_width as f64 / self.m as f64 },
            total_slide: self.total_slide,
            monotonic: self.monotonic,
            has_exclusion: self.has_exclusion,
            distinct_keys: self.distinct_keys,
        }
    }
}

/// Calibratable per-operation cost constants, in nanoseconds.
///
/// Defaults come from the `crossover_ext` calibration benchmark (see
/// `EXPERIMENTS.md`); they only need to rank strategies correctly near the
/// crossover points, not predict absolute runtimes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Partitions at or below this size short-circuit to [`Strategy::Naive`]
    /// whenever it applies — no artifact cache, no scoring.
    pub tiny_m: usize,
    /// Naive: fixed per-row overhead (frame decode, output).
    pub naive_row: f64,
    /// Naive: per frame cell scanned.
    pub naive_cell: f64,
    /// Incremental: fixed per-row overhead.
    pub incr_row: f64,
    /// Incremental: per boundary-slide element update (hash set ops for
    /// COUNT DISTINCT; binary search for the ordered vector).
    pub incr_update: f64,
    /// Incremental: per element *shifted* by an ordered-vector
    /// insert/remove, scaled by the frame width (memmove cost).
    pub incr_shift: f64,
    /// Order-statistic tree: fixed per-row overhead (selection probe).
    pub ostree_row: f64,
    /// Order-statistic tree: per slide update, scaled by `log2(frame)`.
    pub ostree_update: f64,
    /// Sorted-list segment tree: per element per level at build.
    pub segtree_build_cell: f64,
    /// Sorted-list segment tree: per probe, scaled by `log²(m)`.
    pub segtree_probe: f64,
    /// Merge sort tree: per element per level at build.
    pub mst_build_cell: f64,
    /// Merge sort tree: per probe, scaled by `log(m)` (cursor-amortized).
    pub mst_probe: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated from `cargo run --release --bin crossover_ext` medians;
        // see EXPERIMENTS.md for the measured crossover table these imply.
        CostModel {
            tiny_m: 64,
            naive_row: 20.0,
            naive_cell: 1.3,
            incr_row: 45.0,
            incr_update: 14.0,
            incr_shift: 0.09,
            ostree_row: 70.0,
            ostree_update: 19.0,
            segtree_build_cell: 14.0,
            segtree_probe: 14.0,
            mst_build_cell: 19.0,
            mst_probe: 24.0,
        }
    }
}

impl CostModel {
    /// A copy of this model with the MST terms surcharged for memory
    /// pressure: a partition whose estimated tree footprint crowds the
    /// budget pays spill writes at build and re-faults at probe, neither of
    /// which the base constants price. The multiplier comes from
    /// [`holistic_strategies::memory::mst_pressure_penalty`] (1.0 with no
    /// budget or a comfortably fitting tree, saturating at its
    /// `MAX_PRESSURE_PENALTY` for trees far beyond the budget), steering
    /// borderline partitions toward budget-friendly strategies while
    /// letting the MST keep wins that survive the surcharge.
    pub fn under_memory_pressure(self, est_tree_bytes: u64, budget: Option<u64>) -> CostModel {
        let penalty = holistic_strategies::memory::mst_pressure_penalty(est_tree_bytes, budget);
        CostModel {
            mst_build_cell: self.mst_build_cell * penalty,
            mst_probe: self.mst_probe * penalty,
            ..self
        }
    }

    /// Estimated cost (ns) of evaluating one call of `class` over a
    /// partition with `stats` using `s`. Only meaningful for applicable
    /// strategies; `+∞` otherwise.
    pub fn cost(&self, s: Strategy, class: CallClass, stats: &PartitionStats) -> f64 {
        if !applicable(s, class, stats) {
            return f64::INFINITY;
        }
        let m = stats.m as f64;
        let f = stats.avg_frame;
        let slide = stats.total_slide as f64;
        let lg_m = (m + 2.0).log2();
        let lg_f = (f + 2.0).log2();
        match s {
            Strategy::Naive => {
                let cell = match class {
                    // Per-row gather + sort of the frame's codes.
                    CallClass::Percentile => self.naive_cell * lg_f * 2.0,
                    // Per-cell hash-map upkeep: inserts of *new* keys (misses,
                    // rehashing, map growth) dominate hits on already-present
                    // ones, so the per-cell charge scales with the partition's
                    // distinct-key ratio. All-distinct data recovers the old
                    // flat 4× constant; heavy duplication keeps naive scans
                    // competitive far longer.
                    CallClass::CountDistinct | CallClass::Mode => {
                        self.naive_cell * (1.0 + 3.0 * stats.distinct_ratio())
                    }
                    _ => self.naive_cell,
                };
                m * self.naive_row + m * f * cell
            }
            Strategy::Incremental => {
                let per_update = if class == CallClass::CountDistinct {
                    // Hash-multiset slide: duplicated keys mostly bump counts
                    // (cheap); distinct-heavy data inserts/evicts entries.
                    self.incr_update * (0.25 + 0.75 * stats.distinct_ratio())
                } else {
                    // Ordered-vector insert/remove: search + memmove.
                    self.incr_update + self.incr_shift * f
                };
                m * self.incr_row + slide * per_update
            }
            Strategy::OsTree => m * self.ostree_row + slide * self.ostree_update * lg_f,
            Strategy::SegTree => {
                m * self.segtree_build_cell * lg_m + m * self.segtree_probe * lg_m * lg_m
            }
            Strategy::Mst => m * self.mst_build_cell * lg_m + m * self.mst_probe * lg_m,
        }
    }
}

/// Whether `s` can evaluate calls of `class` over a partition with `stats`.
///
/// * [`Strategy::Mst`] applies to everything.
/// * [`Strategy::Naive`] applies to everything except SUM/AVG DISTINCT,
///   whose integer-overflow-degrades-to-float probe behaviour only the
///   annotated tree reproduces bit-exactly.
/// * The sliding/selection alternates target the percentile family (plus
///   COUNT DISTINCT for [`Strategy::Incremental`]) over hull frames — frame
///   exclusion punches holes the hull-based adapters cannot see.
pub fn applicable(s: Strategy, class: CallClass, stats: &PartitionStats) -> bool {
    match s {
        Strategy::Mst => true,
        Strategy::Naive => class != CallClass::SumAvgDistinct,
        Strategy::Incremental => {
            matches!(class, CallClass::Percentile | CallClass::CountDistinct)
                && !stats.has_exclusion
        }
        Strategy::OsTree | Strategy::SegTree => {
            class == CallClass::Percentile && !stats.has_exclusion
        }
    }
}

/// Picks the strategy for one (partition × call). Deterministic and
/// configuration-independent: ties break toward the earlier entry of
/// [`Strategy::ALL`].
pub fn choose(
    mode: StrategyMode,
    class: CallClass,
    stats: &PartitionStats,
    model: &CostModel,
) -> Strategy {
    match mode {
        StrategyMode::Force(s) => {
            if applicable(s, class, stats) {
                s
            } else {
                Strategy::Mst
            }
        }
        StrategyMode::Adaptive => {
            // Tiny partitions skip scoring (and, in the executor, the whole
            // artifact cache): naive wins there by construction.
            if stats.m <= model.tiny_m && applicable(Strategy::Naive, class, stats) {
                return Strategy::Naive;
            }
            let mut best = Strategy::Mst;
            let mut best_cost = f64::INFINITY;
            for s in Strategy::ALL {
                let c = model.cost(s, class, stats);
                if c < best_cost {
                    best = s;
                    best_cost = c;
                }
            }
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(m: usize, avg_frame: f64, total_slide: u64) -> PartitionStats {
        PartitionStats {
            m,
            avg_frame,
            total_slide,
            monotonic: true,
            has_exclusion: false,
            distinct_keys: m,
        }
    }

    #[test]
    fn tiny_partitions_choose_naive() {
        let s = stats(8, 4.0, 16);
        for class in [CallClass::Percentile, CallClass::SumAvg, CallClass::RankLike] {
            assert_eq!(
                choose(StrategyMode::Adaptive, class, &s, &CostModel::default()),
                Strategy::Naive
            );
        }
        // ... except SUM/AVG DISTINCT, which only the MST evaluates.
        assert_eq!(
            choose(StrategyMode::Adaptive, CallClass::SumAvgDistinct, &s, &CostModel::default()),
            Strategy::Mst
        );
    }

    #[test]
    fn forced_inapplicable_falls_back_to_mst() {
        let s = stats(1000, 50.0, 2000);
        assert_eq!(
            choose(
                StrategyMode::Force(Strategy::Incremental),
                CallClass::RankLike,
                &s,
                &CostModel::default()
            ),
            Strategy::Mst
        );
        assert_eq!(
            choose(
                StrategyMode::Force(Strategy::Incremental),
                CallClass::Percentile,
                &s,
                &CostModel::default()
            ),
            Strategy::Incremental
        );
    }

    #[test]
    fn exclusion_disables_hull_alternates() {
        let mut s = stats(100_000, 100.0, 200_000);
        s.has_exclusion = true;
        for alt in [Strategy::Incremental, Strategy::OsTree, Strategy::SegTree] {
            assert!(!applicable(alt, CallClass::Percentile, &s));
        }
        assert!(applicable(Strategy::Naive, CallClass::Percentile, &s));
        assert!(applicable(Strategy::Mst, CallClass::Percentile, &s));
    }

    #[test]
    fn narrow_monotonic_percentiles_prefer_sliding() {
        // 1M rows, 8-wide monotonic frame: slide ≈ 2 per row. Any sliding
        // strategy beats building a merge sort tree.
        let s = stats(1_000_000, 8.0, 2_000_000);
        let picked =
            choose(StrategyMode::Adaptive, CallClass::Percentile, &s, &CostModel::default());
        assert!(
            matches!(picked, Strategy::Incremental | Strategy::OsTree),
            "expected a sliding strategy for narrow monotonic frames, got {picked:?}"
        );
    }

    #[test]
    fn adversarial_slide_prefers_trees() {
        // Random frames: total slide ~ m * m/3 — sliding state thrashes.
        let m = 100_000u64;
        let s = stats(m as usize, 30_000.0, m * 30_000);
        let picked =
            choose(StrategyMode::Adaptive, CallClass::Percentile, &s, &CostModel::default());
        assert!(
            matches!(picked, Strategy::SegTree | Strategy::Mst),
            "expected a tree strategy for adversarial frames, got {picked:?}"
        );
    }

    #[test]
    fn stats_capture_slide_and_monotonicity() {
        use crate::frame::{FrameExclusion, ResolvedFrames};
        let frames = ResolvedFrames {
            bounds: vec![(0, 2), (1, 4), (0, 5)],
            exclusion: FrameExclusion::NoOthers,
            peer_start: vec![0, 1, 2],
            peer_end: vec![1, 2, 3],
        };
        let s = PartitionStats::from_frames(&frames);
        assert_eq!(s.m, 3);
        assert_eq!(s.total_slide, (1 + 2) + (1 + 1));
        assert!(!s.monotonic);
        assert!((s.avg_frame - 10.0 / 3.0).abs() < 1e-12);
        assert!(!s.has_exclusion);
        assert_eq!(s.distinct_keys, 3);
    }

    #[test]
    fn duplication_favors_naive_and_incremental_count_distinct() {
        // Same geometry, two duplication profiles: all-distinct vs. 1% keys.
        let model = CostModel::default();
        let all_distinct = stats(100_000, 200.0, 400_000);
        let mut duplicated = all_distinct;
        duplicated.distinct_keys = 1_000;
        for s in [Strategy::Naive, Strategy::Incremental] {
            let hi = model.cost(s, CallClass::CountDistinct, &all_distinct);
            let lo = model.cost(s, CallClass::CountDistinct, &duplicated);
            assert!(
                lo < hi,
                "{s:?}: duplication should lower the COUNT DISTINCT estimate ({lo} vs {hi})"
            );
        }
        // All-distinct data recovers the old flat constants exactly.
        let flat = model.naive_cell * 4.0;
        let m = all_distinct.m as f64;
        let expect = m * model.naive_row + m * all_distinct.avg_frame * flat;
        let got = model.cost(Strategy::Naive, CallClass::CountDistinct, &all_distinct);
        assert!((got - expect).abs() < 1e-6);
    }
}
