//! Window frame specification and resolution (§2.2, §4.7).
//!
//! Frames support all of SQL:2011 plus the paper's requirements:
//!
//! * ROWS / RANGE / GROUPS modes (GROUPS is a SQL:2011 feature the paper does
//!   not discuss; it falls out of the peer-group machinery for free),
//! * UNBOUNDED / offset / CURRENT ROW bounds where offsets are arbitrary
//!   per-row *expressions* — the stock-order example of §2.2 and the
//!   non-monotonic frames of §6.5 need this,
//! * frame exclusion (EXCLUDE NO OTHERS / CURRENT ROW / GROUP / TIES), which
//!   turns a frame into at most three contiguous pieces (§4.7).
//!
//! Resolution happens once per window, yielding per-row `[start, end)` bounds
//! in *partition position* space plus exclusion holes.

use crate::error::{Error, Result};
use crate::expr::Expr;
use crate::order::{peer_bounds, KeyColumns};
use crate::table::Table;
use crate::value::Value;
use crate::vm::{self, ExprVmStats};
use holistic_core::RangeSet;
use std::cmp::Ordering;

/// How frame offsets are interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameMode {
    /// Physical row offsets.
    Rows,
    /// Logical value offsets over a single numeric ORDER BY key.
    Range,
    /// Peer-group offsets.
    Groups,
}

/// One frame boundary.
#[derive(Debug, Clone)]
pub enum FrameBound {
    /// From the partition start.
    UnboundedPreceding,
    /// `expr PRECEDING` (per-row evaluated, must be non-negative).
    Preceding(Expr),
    /// The current row (peer group in RANGE/GROUPS modes).
    CurrentRow,
    /// `expr FOLLOWING`.
    Following(Expr),
    /// To the partition end.
    UnboundedFollowing,
}

/// Frame exclusion clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrameExclusion {
    /// Keep everything (default).
    #[default]
    NoOthers,
    /// Drop the current row.
    CurrentRow,
    /// Drop the current row and its peers.
    Group,
    /// Drop the peers but keep the current row.
    Ties,
}

/// A complete frame clause.
#[derive(Debug, Clone)]
pub struct FrameSpec {
    /// Offset interpretation.
    pub mode: FrameMode,
    /// Lower bound.
    pub start: FrameBound,
    /// Upper bound.
    pub end: FrameBound,
    /// Exclusion clause.
    pub exclusion: FrameExclusion,
}

impl FrameSpec {
    /// `ROWS BETWEEN start AND end`.
    pub fn rows(start: FrameBound, end: FrameBound) -> Self {
        FrameSpec { mode: FrameMode::Rows, start, end, exclusion: FrameExclusion::NoOthers }
    }

    /// `RANGE BETWEEN start AND end`.
    pub fn range(start: FrameBound, end: FrameBound) -> Self {
        FrameSpec { mode: FrameMode::Range, start, end, exclusion: FrameExclusion::NoOthers }
    }

    /// `GROUPS BETWEEN start AND end`.
    pub fn groups(start: FrameBound, end: FrameBound) -> Self {
        FrameSpec { mode: FrameMode::Groups, start, end, exclusion: FrameExclusion::NoOthers }
    }

    /// SQL's default frame: `RANGE BETWEEN UNBOUNDED PRECEDING AND CURRENT
    /// ROW` (the running frame of §6.4's closing discussion).
    pub fn default_frame() -> Self {
        FrameSpec::range(FrameBound::UnboundedPreceding, FrameBound::CurrentRow)
    }

    /// The whole partition.
    pub fn whole_partition() -> Self {
        FrameSpec::rows(FrameBound::UnboundedPreceding, FrameBound::UnboundedFollowing)
    }

    /// Attaches an exclusion clause.
    pub fn exclude(mut self, e: FrameExclusion) -> Self {
        self.exclusion = e;
        self
    }
}

/// Per-row resolved frames of one sorted partition.
pub struct ResolvedFrames {
    /// `[start, end)` in partition positions, `start <= end`.
    pub bounds: Vec<(usize, usize)>,
    /// Exclusion clause in force.
    pub exclusion: FrameExclusion,
    /// Peer group start per position (under the window ORDER BY).
    pub peer_start: Vec<usize>,
    /// Peer group end (exclusive) per position.
    pub peer_end: Vec<usize>,
}

/// Up to two exclusion holes, stack-allocated: `holes()` runs per output row
/// inside the probe loops, so it must not heap-allocate.
#[derive(Debug, Clone, Copy, Default)]
pub struct Holes {
    arr: [(usize, usize); 2],
    len: u8,
}

impl Holes {
    /// Appends a hole; empty holes are dropped.
    fn push(&mut self, a: usize, b: usize) {
        if a < b {
            self.arr[self.len as usize] = (a, b);
            self.len += 1;
        }
    }

    /// The holes as a slice.
    pub fn as_slice(&self) -> &[(usize, usize)] {
        &self.arr[..self.len as usize]
    }

    /// Iterates over the holes.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.as_slice().iter().copied()
    }
}

impl ResolvedFrames {
    /// The exclusion holes of row `i` (positions to drop from its frame).
    pub fn holes(&self, i: usize) -> Holes {
        let mut h = Holes::default();
        match self.exclusion {
            FrameExclusion::NoOthers => {}
            FrameExclusion::CurrentRow => h.push(i, i + 1),
            FrameExclusion::Group => h.push(self.peer_start[i], self.peer_end[i]),
            FrameExclusion::Ties => {
                h.push(self.peer_start[i], i);
                h.push(i + 1, self.peer_end[i]);
            }
        }
        h
    }

    /// The frame of row `i` as up to three disjoint ranges.
    pub fn range_set(&self, i: usize) -> RangeSet {
        let (a, b) = self.bounds[i];
        RangeSet::frame_minus_holes(a, b, self.holes(i).as_slice())
    }

    /// True when no row's frame has exclusion holes.
    pub fn has_exclusion(&self) -> bool {
        self.exclusion != FrameExclusion::NoOthers
    }
}

/// A frame bound with its offset expression pre-bound to the table.
enum PreBound {
    UnboundedPreceding,
    Preceding(crate::expr::BoundExpr),
    CurrentRow,
    Following(crate::expr::BoundExpr),
    UnboundedFollowing,
}

fn pre_bind(b: &FrameBound, table: &Table) -> Result<PreBound> {
    Ok(match b {
        FrameBound::UnboundedPreceding => PreBound::UnboundedPreceding,
        FrameBound::Preceding(e) => PreBound::Preceding(e.bind(table)?),
        FrameBound::CurrentRow => PreBound::CurrentRow,
        FrameBound::Following(e) => PreBound::Following(e.bind(table)?),
        FrameBound::UnboundedFollowing => PreBound::UnboundedFollowing,
    })
}

/// A validated, non-negative frame offset. The integer representation is
/// kept exact: converting to f64 would silently collapse offsets beyond
/// 2^53, and casting to usize would saturate huge values into overflow
/// territory for the `i + off` frame arithmetic.
#[derive(Debug, Clone, Copy)]
enum Offset {
    /// Exact integer offset (>= 0).
    Int(i64),
    /// Finite float offset (>= 0.0).
    Float(f64),
}

impl Offset {
    /// The offset as a row/group count, clamped to `m`. Anything past the
    /// partition (or group table) behaves like UNBOUNDED, so clamping is
    /// semantically exact and keeps all downstream index arithmetic in
    /// `[0, 2m]`.
    fn count(self, m: usize) -> usize {
        match self {
            Offset::Int(x) => usize::try_from(x).map_or(m, |c| c.min(m)),
            Offset::Float(x) => {
                if x >= m as f64 {
                    m
                } else {
                    x as usize
                }
            }
        }
    }

    /// Lossy float view (the RANGE fallback for float keys).
    fn as_f64(self) -> f64 {
        match self {
            Offset::Int(x) => x as f64,
            Offset::Float(x) => x,
        }
    }
}

/// Evaluates a pre-bound offset expression for a table row.
fn eval_offset(expr: &crate::expr::BoundExpr, table: &Table, row: usize) -> Result<Offset> {
    let v = expr.eval(table, row)?;
    match v {
        Value::Int(x) if x >= 0 => Ok(Offset::Int(x)),
        Value::Float(x) if x >= 0.0 && x.is_finite() => Ok(Offset::Float(x)),
        Value::Int(_) | Value::Float(_) => {
            Err(Error::InvalidFrameBound("offset must be non-negative".into()))
        }
        Value::Null => Err(Error::InvalidFrameBound("offset must not be NULL".into())),
        other => Err(Error::InvalidFrameBound(format!(
            "offset must be numeric, got {}",
            other.type_name()
        ))),
    }
}

/// Converts a VM result block into validated offsets — the columnar twin of
/// [`eval_offset`]: every row must be a non-negative Int or a non-negative
/// finite Float. `None` on any violation (the per-row path then reports the
/// canonical error for the canonical row).
fn offsets_from_block(block: &vm::Block, n: usize) -> Option<Vec<Offset>> {
    fn one(v: &Value) -> Option<Offset> {
        match v {
            Value::Int(x) if *x >= 0 => Some(Offset::Int(*x)),
            Value::Float(x) if *x >= 0.0 && x.is_finite() => Some(Offset::Float(*x)),
            _ => None,
        }
    }
    match block {
        vm::Block::Const(v) => one(v).map(|o| vec![o; n]),
        vm::Block::Int(d, valid) => {
            let mut out = Vec::with_capacity(n);
            for (i, &x) in d.iter().enumerate() {
                if !vm::vld(valid, i) || x < 0 {
                    return None;
                }
                out.push(Offset::Int(x));
            }
            Some(out)
        }
        vm::Block::Float(d, valid) => {
            let mut out = Vec::with_capacity(n);
            for (i, &x) in d.iter().enumerate() {
                if !(vm::vld(valid, i) && x >= 0.0 && x.is_finite()) {
                    return None;
                }
                out.push(Offset::Float(x));
            }
            Some(out)
        }
        vm::Block::Bool(..) => None,
        vm::Block::Vals(vs) => {
            let mut out = Vec::with_capacity(n);
            for v in vs {
                out.push(one(v)?);
            }
            Some(out)
        }
    }
}

/// Batch-evaluates one bound's offset expression over the whole partition
/// through the compiled VM. Returns `None` when the bound carries no offset
/// expression, compilation is disabled, or any row fails evaluation or
/// validation — callers then evaluate that bound per row, which reproduces
/// the interpreter's canonical first error.
fn precompute_offsets(
    b: &PreBound,
    table: &Table,
    rows: &[usize],
    compiled: bool,
    stats: &mut ExprVmStats,
) -> Option<Vec<Offset>> {
    let e = match b {
        PreBound::Preceding(e) | PreBound::Following(e) => e,
        _ => return None,
    };
    let n = rows.len();
    if n == 0 {
        return None;
    }
    if !compiled {
        stats.interpreted_rows += n as u64;
        return None;
    }
    let prog = vm::Program::compile(e);
    stats.programs_compiled += 1;
    let mut machine = vm::ExprVm::new();
    let offs = machine
        .run_block(&prog, table, vm::RowSel::Rows(rows))
        .ok()
        .and_then(|block| offsets_from_block(&block, n));
    match offs {
        Some(offs) => {
            stats.vm_rows += n as u64;
            Some(offs)
        }
        None => {
            stats.vm_fallbacks += 1;
            stats.interpreted_rows += n as u64;
            None
        }
    }
}

/// Resolves all frames of a sorted partition.
///
/// `rows` maps partition positions to table rows *in window order*; `keys`
/// are the window ORDER BY keys (used for peers and RANGE arithmetic).
pub fn resolve_frames(
    table: &Table,
    rows: &[usize],
    keys: &KeyColumns,
    spec: &FrameSpec,
) -> Result<ResolvedFrames> {
    resolve_frames_opts(table, rows, keys, spec, true, &mut ExprVmStats::default())
}

/// [`resolve_frames`] with engine options: when `compiled`, per-row offset
/// expressions run through the compiled VM in whole-partition batches
/// (interpreter-identical results; counters land in `stats`), falling back
/// to the per-row interpreter when a bound's batch fails so errors keep the
/// canonical row order.
pub fn resolve_frames_opts(
    table: &Table,
    rows: &[usize],
    keys: &KeyColumns,
    spec: &FrameSpec,
    compiled: bool,
    stats: &mut ExprVmStats,
) -> Result<ResolvedFrames> {
    let m = rows.len();
    let (peer_start, peer_end) = peer_bounds(keys, rows);
    let mut bounds = Vec::with_capacity(m);

    let pstart = pre_bind(&spec.start, table)?;
    let pend = pre_bind(&spec.end, table)?;
    // When a statically invalid bound is present, the per-row loop errors at
    // its first row *before* touching the other bound's expression; skip
    // batching entirely so no expression is evaluated on rows the canonical
    // path never reaches.
    let static_invalid = matches!(pstart, PreBound::UnboundedFollowing)
        || matches!(pend, PreBound::UnboundedPreceding);
    let batch = compiled && !static_invalid;

    match spec.mode {
        FrameMode::Rows => {
            let pre_s = precompute_offsets(&pstart, table, rows, batch, stats);
            let pre_e = precompute_offsets(&pend, table, rows, batch, stats);
            let offset_at =
                |pre: &Option<Vec<Offset>>, e: &crate::expr::BoundExpr, i: usize| match pre {
                    Some(v) => Ok(v[i]),
                    None => eval_offset(e, table, rows[i]),
                };
            #[allow(clippy::needless_range_loop)] // i is simultaneously position and index
            for i in 0..m {
                let start = match &pstart {
                    PreBound::UnboundedPreceding => 0,
                    PreBound::Preceding(e) => {
                        let off = offset_at(&pre_s, e, i)?.count(m);
                        i.saturating_sub(off)
                    }
                    PreBound::CurrentRow => i,
                    PreBound::Following(e) => {
                        let off = offset_at(&pre_s, e, i)?.count(m);
                        i.saturating_add(off).min(m)
                    }
                    PreBound::UnboundedFollowing => {
                        return Err(Error::InvalidFrameBound(
                            "UNBOUNDED FOLLOWING cannot start a frame".into(),
                        ))
                    }
                };
                let end = match &pend {
                    PreBound::UnboundedFollowing => m,
                    PreBound::Following(e) => {
                        let off = offset_at(&pre_e, e, i)?.count(m);
                        i.saturating_add(off).saturating_add(1).min(m)
                    }
                    PreBound::CurrentRow => i + 1,
                    PreBound::Preceding(e) => {
                        let off = offset_at(&pre_e, e, i)?.count(m);
                        (i + 1).saturating_sub(off)
                    }
                    PreBound::UnboundedPreceding => {
                        return Err(Error::InvalidFrameBound(
                            "UNBOUNDED PRECEDING cannot end a frame".into(),
                        ))
                    }
                };
                bounds.push((start, end.max(start).min(m)));
            }
        }
        FrameMode::Range => {
            resolve_range_frames(
                table,
                rows,
                keys,
                &pstart,
                &pend,
                &peer_start,
                &peer_end,
                &mut bounds,
                batch,
                stats,
            )?;
        }
        FrameMode::Groups => {
            // Group index per position + group start/end tables.
            let mut group_of = vec![0usize; m];
            let mut starts = Vec::new();
            let mut ends = Vec::new();
            let mut g = 0usize;
            let mut p = 0usize;
            while p < m {
                let e = peer_end[p];
                starts.push(p);
                ends.push(e);
                group_of[p..e].fill(g);
                g += 1;
                p = e;
            }
            let num_groups = starts.len();
            let pre_s = precompute_offsets(&pstart, table, rows, batch, stats);
            let pre_e = precompute_offsets(&pend, table, rows, batch, stats);
            let offset_at =
                |pre: &Option<Vec<Offset>>, e: &crate::expr::BoundExpr, i: usize| match pre {
                    Some(v) => Ok(v[i]),
                    None => eval_offset(e, table, rows[i]),
                };
            for i in 0..m {
                let gi = group_of[i];
                let start = match &pstart {
                    PreBound::UnboundedPreceding => 0,
                    PreBound::Preceding(e) => {
                        let off = offset_at(&pre_s, e, i)?.count(num_groups);
                        starts[gi.saturating_sub(off)]
                    }
                    PreBound::CurrentRow => peer_start[i],
                    PreBound::Following(e) => {
                        let off = offset_at(&pre_s, e, i)?.count(num_groups);
                        match gi.checked_add(off) {
                            Some(g) if g < num_groups => starts[g],
                            _ => m,
                        }
                    }
                    PreBound::UnboundedFollowing => {
                        return Err(Error::InvalidFrameBound(
                            "UNBOUNDED FOLLOWING cannot start a frame".into(),
                        ))
                    }
                };
                let end = match &pend {
                    PreBound::UnboundedFollowing => m,
                    PreBound::Following(e) => {
                        let off = offset_at(&pre_e, e, i)?.count(num_groups);
                        match gi.checked_add(off) {
                            Some(g) if g < num_groups => ends[g],
                            _ => m,
                        }
                    }
                    PreBound::CurrentRow => peer_end[i],
                    PreBound::Preceding(e) => {
                        let off = offset_at(&pre_e, e, i)?.count(num_groups);
                        if off > gi {
                            0
                        } else {
                            ends[gi - off]
                        }
                    }
                    PreBound::UnboundedPreceding => {
                        return Err(Error::InvalidFrameBound(
                            "UNBOUNDED PRECEDING cannot end a frame".into(),
                        ))
                    }
                };
                bounds.push((start, end.max(start)));
            }
        }
    }

    Ok(ResolvedFrames { bounds, exclusion: spec.exclusion, peer_start, peer_end })
}

/// RANGE mode: logical offsets over the single numeric ORDER BY key.
#[allow(clippy::too_many_arguments)]
fn resolve_range_frames(
    table: &Table,
    rows: &[usize],
    keys: &KeyColumns,
    pstart: &PreBound,
    pend: &PreBound,
    peer_start: &[usize],
    peer_end: &[usize],
    bounds: &mut Vec<(usize, usize)>,
    batch: bool,
    stats: &mut ExprVmStats,
) -> Result<()> {
    let m = rows.len();
    let needs_key = |b: &PreBound| matches!(b, PreBound::Preceding(_) | PreBound::Following(_));
    let offsets_used = needs_key(pstart) || needs_key(pend);

    // Without offset bounds, RANGE only needs peers — any ORDER BY is fine.
    if !offsets_used {
        for i in 0..m {
            let start = match pstart {
                PreBound::UnboundedPreceding => 0,
                PreBound::CurrentRow => peer_start[i],
                _ => unreachable!(),
            };
            let end = match pend {
                PreBound::UnboundedFollowing => m,
                PreBound::CurrentRow => peer_end[i],
                PreBound::UnboundedPreceding => {
                    return Err(Error::InvalidFrameBound(
                        "UNBOUNDED PRECEDING cannot end a frame".into(),
                    ))
                }
                _ => unreachable!(),
            };
            bounds.push((start, end.max(start)));
        }
        return Ok(());
    }

    // Offset bounds: single numeric key required (the SQL restriction).
    // Integral keys (Int / Date) stay in exact i64 arithmetic — converting
    // them to f64 silently merges distinct keys beyond 2^53. Float keys, or
    // integral keys combined with a float offset, use f64.
    let mut raw: Vec<Option<&Value>> = Vec::with_capacity(m);
    let mut desc = false;
    let mut all_int = true;
    for &row in rows.iter() {
        let Some((v, d)) = keys.single_key(row) else {
            return Err(Error::Unsupported(
                "RANGE frames with offsets require exactly one ORDER BY key".into(),
            ));
        };
        desc = d;
        match v {
            Value::Null => raw.push(None),
            other => {
                if other.as_f64().is_none() {
                    return Err(Error::Unsupported(
                        "RANGE frames with offsets require a numeric ORDER BY key".into(),
                    ));
                }
                all_int &= other.as_i64().is_some();
                raw.push(Some(other));
            }
        }
    }
    let key_vals: KeyRep = if all_int {
        KeyRep::Int(raw.iter().map(|o| o.and_then(|v| v.as_i64())).collect())
    } else {
        KeyRep::Float(raw.iter().map(|o| o.and_then(|v| v.as_f64())).collect())
    };
    // NULL rows are contiguous at one end; compute the non-null span.
    let nn_lo = (0..m).take_while(|&p| key_vals.is_null(p)).count();
    let nn_hi = m - (0..m).rev().take_while(|&p| key_vals.is_null(p)).count();

    // The threshold `key(i) ± off` for the current row. `add` is in key
    // space: the caller has already folded the PRECEDING/FOLLOWING direction
    // and ASC/DESC together.
    let thresh = |p: usize, off: Offset, add: bool| -> Thresh {
        match (&key_vals, off) {
            // i64 ± i64 always fits in i128: the exact path.
            (KeyRep::Int(ks), Offset::Int(o)) => {
                let k = ks[p].expect("non-null span") as i128;
                Thresh::Int(if add { k + o as i128 } else { k - o as i128 })
            }
            _ => {
                let k = key_vals.as_f64(p);
                let o = off.as_f64();
                Thresh::Float(if add { k + o } else { k - o })
            }
        }
    };
    // First position in [nn_lo, nn_hi) whose key is "at or past" v coming
    // from the frame start direction (ASC: key >= v; DESC: key <= v).
    let search_start = |v: &Thresh| -> usize {
        let mut lo = nn_lo;
        let mut hi = nn_hi;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let ord = key_vals.cmp_thresh(mid, v);
            let past = if desc { ord != Ordering::Greater } else { ord != Ordering::Less };
            if past {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    };
    // One past the last position whose key is "at or before" v
    // (ASC: key <= v; DESC: key >= v).
    let search_end = |v: &Thresh| -> usize {
        let mut lo = nn_lo;
        let mut hi = nn_hi;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let ord = key_vals.cmp_thresh(mid, v);
            let within = if desc { ord != Ordering::Less } else { ord != Ordering::Greater };
            if within {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    };

    // Offsets batch only after the key checks above: the canonical error
    // order reports an unsupported ORDER BY before any offset evaluation.
    let pre_s = precompute_offsets(pstart, table, rows, batch, stats);
    let pre_e = precompute_offsets(pend, table, rows, batch, stats);
    let offset_at = |pre: &Option<Vec<Offset>>, e: &crate::expr::BoundExpr, i: usize| match pre {
        Some(v) => Ok(v[i]),
        None => eval_offset(e, table, rows[i]),
    };

    for i in 0..m {
        // SQL: a NULL key row's offset frame is its peer group of NULLs.
        let is_null = key_vals.is_null(i);
        let start = match pstart {
            PreBound::UnboundedPreceding => 0,
            PreBound::CurrentRow => peer_start[i],
            PreBound::Preceding(e) => {
                let off = offset_at(&pre_s, e, i)?;
                if is_null {
                    peer_start[i]
                } else {
                    search_start(&thresh(i, off, desc))
                }
            }
            PreBound::Following(e) => {
                let off = offset_at(&pre_s, e, i)?;
                if is_null {
                    peer_start[i]
                } else {
                    search_start(&thresh(i, off, !desc))
                }
            }
            PreBound::UnboundedFollowing => {
                return Err(Error::InvalidFrameBound(
                    "UNBOUNDED FOLLOWING cannot start a frame".into(),
                ))
            }
        };
        let end = match pend {
            PreBound::UnboundedFollowing => m,
            PreBound::CurrentRow => peer_end[i],
            PreBound::Following(e) => {
                let off = offset_at(&pre_e, e, i)?;
                if is_null {
                    peer_end[i]
                } else {
                    search_end(&thresh(i, off, !desc))
                }
            }
            PreBound::Preceding(e) => {
                let off = offset_at(&pre_e, e, i)?;
                if is_null {
                    peer_end[i]
                } else {
                    search_end(&thresh(i, off, desc))
                }
            }
            PreBound::UnboundedPreceding => {
                return Err(Error::InvalidFrameBound(
                    "UNBOUNDED PRECEDING cannot end a frame".into(),
                ))
            }
        };
        bounds.push((start, end.max(start)));
    }
    Ok(())
}

/// RANGE key columns: exact integers or floats.
enum KeyRep {
    /// All non-null keys are integral (Int / Date columns).
    Int(Vec<Option<i64>>),
    /// At least one float key: everything compares through f64.
    Float(Vec<Option<f64>>),
}

/// A `key ± offset` bound value: i128 holds any i64 ± i64 exactly.
enum Thresh {
    /// Exact integer threshold.
    Int(i128),
    /// Float threshold (total order via `total_cmp`).
    Float(f64),
}

impl KeyRep {
    fn is_null(&self, p: usize) -> bool {
        match self {
            KeyRep::Int(ks) => ks[p].is_none(),
            KeyRep::Float(ks) => ks[p].is_none(),
        }
    }

    fn as_f64(&self, p: usize) -> f64 {
        match self {
            KeyRep::Int(ks) => ks[p].expect("non-null span") as f64,
            KeyRep::Float(ks) => ks[p].expect("non-null span"),
        }
    }

    /// Compares the key at `p` with a threshold. Exact when both sides are
    /// integers; otherwise falls back to f64 (matching the threshold's own
    /// precision).
    fn cmp_thresh(&self, p: usize, t: &Thresh) -> Ordering {
        match (self, t) {
            (KeyRep::Int(ks), Thresh::Int(v)) => (ks[p].expect("non-null span") as i128).cmp(v),
            (_, Thresh::Float(v)) => self.as_f64(p).total_cmp(v),
            (KeyRep::Float(_), Thresh::Int(v)) => {
                // Unreachable through `thresh` (float keys always produce
                // float thresholds), but kept total for safety.
                self.as_f64(p).total_cmp(&(*v as f64))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::expr::{col, lit};
    use crate::order::SortKey;

    fn setup(keys_vals: Vec<i64>) -> (Table, Vec<usize>, KeyColumns) {
        let n = keys_vals.len();
        let t = Table::new(vec![("k", Column::ints(keys_vals))]).unwrap();
        let keys = KeyColumns::evaluate(&t, &[SortKey::asc(col("k"))]).unwrap();
        let mut rows: Vec<usize> = (0..n).collect();
        crate::order::sort_permutation(&keys, &mut rows, false);
        (t, rows, keys)
    }

    #[test]
    fn rows_frame_basic() {
        let (t, rows, keys) = setup(vec![1, 2, 3, 4, 5]);
        let spec =
            FrameSpec::rows(FrameBound::Preceding(lit(1i64)), FrameBound::Following(lit(1i64)));
        let rf = resolve_frames(&t, &rows, &keys, &spec).unwrap();
        assert_eq!(rf.bounds, vec![(0, 2), (0, 3), (1, 4), (2, 5), (3, 5)]);
    }

    #[test]
    fn rows_unbounded_running() {
        let (t, rows, keys) = setup(vec![3, 1, 2]);
        let spec = FrameSpec::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow);
        let rf = resolve_frames(&t, &rows, &keys, &spec).unwrap();
        assert_eq!(rf.bounds, vec![(0, 1), (0, 2), (0, 3)]);
    }

    #[test]
    fn rows_degenerate_empty_frame() {
        let (t, rows, keys) = setup(vec![1, 2, 3]);
        // BETWEEN 2 FOLLOWING AND 1 FOLLOWING → always empty.
        let spec =
            FrameSpec::rows(FrameBound::Following(lit(2i64)), FrameBound::Following(lit(1i64)));
        let rf = resolve_frames(&t, &rows, &keys, &spec).unwrap();
        for (a, b) in rf.bounds {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rows_preceding_end_bound() {
        let (t, rows, keys) = setup(vec![1, 2, 3, 4]);
        // BETWEEN UNBOUNDED PRECEDING AND 1 PRECEDING.
        let spec =
            FrameSpec::rows(FrameBound::UnboundedPreceding, FrameBound::Preceding(lit(1i64)));
        let rf = resolve_frames(&t, &rows, &keys, &spec).unwrap();
        assert_eq!(rf.bounds, vec![(0, 0), (0, 1), (0, 2), (0, 3)]);
    }

    #[test]
    fn range_frame_value_offsets() {
        let (t, rows, keys) = setup(vec![10, 11, 15, 20, 21]);
        // RANGE BETWEEN 1 PRECEDING AND 1 FOLLOWING.
        let spec =
            FrameSpec::range(FrameBound::Preceding(lit(1i64)), FrameBound::Following(lit(1i64)));
        let rf = resolve_frames(&t, &rows, &keys, &spec).unwrap();
        assert_eq!(rf.bounds, vec![(0, 2), (0, 2), (2, 3), (3, 5), (3, 5)]);
    }

    #[test]
    fn range_current_row_is_peer_group() {
        let (t, rows, keys) = setup(vec![5, 5, 7, 7, 9]);
        let spec = FrameSpec::default_frame(); // unbounded preceding .. current row
        let rf = resolve_frames(&t, &rows, &keys, &spec).unwrap();
        // Peers extend the frame end to the whole tie group.
        assert_eq!(rf.bounds, vec![(0, 2), (0, 2), (0, 4), (0, 4), (0, 5)]);
    }

    #[test]
    fn range_desc_order() {
        let t = Table::new(vec![("k", Column::ints(vec![10, 11, 15, 20, 21]))]).unwrap();
        let keys = KeyColumns::evaluate(&t, &[SortKey::desc(col("k"))]).unwrap();
        let mut rows: Vec<usize> = (0..5).collect();
        crate::order::sort_permutation(&keys, &mut rows, false);
        // Sorted: 21, 20, 15, 11, 10.
        let spec =
            FrameSpec::range(FrameBound::Preceding(lit(1i64)), FrameBound::Following(lit(1i64)));
        let rf = resolve_frames(&t, &rows, &keys, &spec).unwrap();
        assert_eq!(rf.bounds, vec![(0, 2), (0, 2), (2, 3), (3, 5), (3, 5)]);
    }

    #[test]
    fn range_null_rows_frame_is_their_peer_group() {
        let t =
            Table::new(vec![("k", Column::ints_opt(vec![Some(1), None, Some(2), None]))]).unwrap();
        let keys = KeyColumns::evaluate(&t, &[SortKey::asc(col("k"))]).unwrap();
        let mut rows: Vec<usize> = (0..4).collect();
        crate::order::sort_permutation(&keys, &mut rows, false);
        // Sorted: 1, 2, NULL, NULL.
        let spec =
            FrameSpec::range(FrameBound::Preceding(lit(10i64)), FrameBound::Following(lit(0i64)));
        let rf = resolve_frames(&t, &rows, &keys, &spec).unwrap();
        assert_eq!(rf.bounds[2], (2, 4));
        assert_eq!(rf.bounds[3], (2, 4));
        assert_eq!(rf.bounds[0], (0, 1));
    }

    #[test]
    fn groups_frame() {
        let (t, rows, keys) = setup(vec![5, 5, 7, 7, 7, 9]);
        let spec = FrameSpec::groups(FrameBound::Preceding(lit(1i64)), FrameBound::CurrentRow);
        let rf = resolve_frames(&t, &rows, &keys, &spec).unwrap();
        assert_eq!(rf.bounds, vec![(0, 2), (0, 2), (0, 5), (0, 5), (0, 5), (2, 6)]);
    }

    #[test]
    fn exclusion_range_sets() {
        let (t, rows, keys) = setup(vec![5, 5, 5, 7]);
        let spec = FrameSpec::whole_partition().exclude(FrameExclusion::Ties);
        let rf = resolve_frames(&t, &rows, &keys, &spec).unwrap();
        // Row 1 (a 5): frame [0,4) minus peers {0,2} keeping itself.
        let rs = rf.range_set(1);
        assert_eq!(rs.iter().collect::<Vec<_>>(), vec![(1, 2), (3, 4)]);
        let spec = FrameSpec::whole_partition().exclude(FrameExclusion::Group);
        let rf = resolve_frames(&t, &rows, &keys, &spec).unwrap();
        assert_eq!(rf.range_set(1).iter().collect::<Vec<_>>(), vec![(3, 4)]);
        let spec = FrameSpec::whole_partition().exclude(FrameExclusion::CurrentRow);
        let rf = resolve_frames(&t, &rows, &keys, &spec).unwrap();
        assert_eq!(rf.range_set(0).iter().collect::<Vec<_>>(), vec![(1, 4)]);
    }

    #[test]
    fn per_row_expression_bounds() {
        // Frame size depends on the row's own value: k PRECEDING.
        let (t, rows, keys) = setup(vec![0, 1, 2, 3]);
        let spec = FrameSpec::rows(FrameBound::Preceding(col("k")), FrameBound::CurrentRow);
        let rf = resolve_frames(&t, &rows, &keys, &spec).unwrap();
        assert_eq!(rf.bounds, vec![(0, 1), (0, 2), (0, 3), (0, 4)]);
    }

    #[test]
    fn negative_offset_is_rejected() {
        let (t, rows, keys) = setup(vec![1, 2]);
        let spec = FrameSpec::rows(FrameBound::Preceding(lit(-1i64)), FrameBound::CurrentRow);
        assert!(resolve_frames(&t, &rows, &keys, &spec).is_err());
    }

    #[test]
    fn range_offsets_need_single_numeric_key() {
        let t =
            Table::new(vec![("a", Column::ints(vec![1, 2])), ("s", Column::strs(vec!["x", "y"]))])
                .unwrap();
        let keys = KeyColumns::evaluate(&t, &[SortKey::asc(col("s"))]).unwrap();
        let rows = vec![0usize, 1];
        let spec = FrameSpec::range(FrameBound::Preceding(lit(1i64)), FrameBound::CurrentRow);
        assert!(resolve_frames(&t, &rows, &keys, &spec).is_err());
        let keys2 =
            KeyColumns::evaluate(&t, &[SortKey::asc(col("a")), SortKey::asc(col("s"))]).unwrap();
        assert!(resolve_frames(&t, &rows, &keys2, &spec).is_err());
    }
}
