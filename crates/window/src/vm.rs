//! Compiled expression programs: a compile-once stack VM replacing the
//! recursive interpreter on the hot path.
//!
//! Frame-bound and FILTER expressions used to be evaluated by walking the
//! [`BoundExpr`] tree once per row — a pointer chase plus a `Value` enum
//! round-trip per node per row. `ExprCompiler` lowers a bound tree once
//! into a flat [`Program`] (a post-order op vector plus a constant pool,
//! both `Arc`-shared so plans can hand programs to worker threads for free),
//! and a reusable [`ExprVm`] executes the program over a whole partition at
//! a time: each op consumes and produces *column blocks* (typed vectors with
//! validity masks), so the op dispatch cost is paid once per block instead
//! of once per row and the inner loops are tight monomorphic kernels over
//! `i64`/`f64`/`bool` slices.
//!
//! Semantics are bit-identical to the interpreter by construction: every
//! kernel arm mirrors the corresponding `eval_binop` arm (same wrapping
//! arithmetic, same `total_cmp` float ordering, same three-valued logic,
//! same division-by-zero → NULL rule), and anything the kernels do not cover
//! (dates, strings, type errors) falls through to a per-element path that
//! calls the *interpreter's own* scalar functions. Because the interpreter
//! is strict — both operands of every node are evaluated for every row — an
//! expression errors under the VM if and only if it errors under the
//! interpreter, so callers that need the interpreter's canonical first-error
//! simply re-run the per-row path when the VM returns an error.

use crate::column::{Column, Validity};
use crate::error::{Error, Result};
use crate::expr::{eval_binop, neg_value, not_value, BinOp, BoundExpr};
use crate::table::Table;
use crate::value::Value;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// One instruction of a compiled expression program.
///
/// Programs are post-order serializations of the bound tree: operands are
/// pushed before their operator, so execution is a single forward pass over
/// the op vector with an explicit block stack — no recursion, no tree
/// pointers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Push the values of column `.0` for the selected rows.
    Col(u32),
    /// Push constant-pool entry `.0`, broadcast over the block.
    Const(u32),
    /// Pop two blocks, apply the binary operator element-wise, push.
    Bin(BinOp),
    /// Pop one block, three-valued logical NOT, push.
    Not,
    /// Pop one block, arithmetic negation, push.
    Neg,
}

/// A compiled expression: flat op vector + constant pool, cheap to clone and
/// share across threads.
#[derive(Debug, Clone)]
pub struct Program {
    ops: Arc<[Op]>,
    consts: Arc<[Value]>,
    max_stack: usize,
}

impl Program {
    /// Lowers a bound expression tree into a program.
    pub fn compile(expr: &BoundExpr) -> Program {
        let mut c = ExprCompiler { ops: Vec::new(), consts: Vec::new(), depth: 0, max_depth: 0 };
        c.lower(expr);
        debug_assert_eq!(c.depth, 1);
        Program { ops: c.ops.into(), consts: c.consts.into(), max_stack: c.max_depth }
    }

    /// Number of ops in the program.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True for the empty program (never produced by [`Program::compile`]).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Peak operand-stack depth during execution.
    pub fn max_stack(&self) -> usize {
        self.max_stack
    }
}

/// Post-order lowering of a [`BoundExpr`] into ops + constants, tracking the
/// operand-stack high-water mark.
struct ExprCompiler {
    ops: Vec<Op>,
    consts: Vec<Value>,
    depth: usize,
    max_depth: usize,
}

impl ExprCompiler {
    fn produced(&mut self) {
        self.depth += 1;
        self.max_depth = self.max_depth.max(self.depth);
    }

    fn lower(&mut self, e: &BoundExpr) {
        match e {
            BoundExpr::Col(idx) => {
                self.ops.push(Op::Col(*idx as u32));
                self.produced();
            }
            BoundExpr::Lit(v) => {
                let idx = self.consts.len() as u32;
                self.consts.push(v.clone());
                self.ops.push(Op::Const(idx));
                self.produced();
            }
            BoundExpr::Bin(op, a, b) => {
                self.lower(a);
                self.lower(b);
                self.ops.push(Op::Bin(*op));
                self.depth -= 1; // two consumed, one produced
            }
            BoundExpr::Not(a) => {
                self.lower(a);
                self.ops.push(Op::Not);
            }
            BoundExpr::Neg(a) => {
                self.lower(a);
                self.ops.push(Op::Neg);
            }
        }
    }
}

/// Which rows of the table a program run covers.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RowSel<'a> {
    /// All rows `0..n` in order.
    All(usize),
    /// An explicit row selection (a partition in window order).
    Rows(&'a [usize]),
}

impl RowSel<'_> {
    fn len(&self) -> usize {
        match self {
            RowSel::All(n) => *n,
            RowSel::Rows(r) => r.len(),
        }
    }
}

/// `valid[i]` with the "empty means all-valid" convention.
#[inline]
pub(crate) fn vld(valid: &[bool], i: usize) -> bool {
    valid.is_empty() || valid[i]
}

/// Drops a validity vector that marks nothing invalid (the canonical
/// all-valid representation is the empty vector).
fn normalize(valid: Validity) -> Validity {
    if valid.iter().all(|&b| b) {
        Vec::new()
    } else {
        valid
    }
}

/// One operand on the VM stack: a typed column block, a broadcast constant,
/// or (for types without a fast kernel) a dynamic value vector. Blocks
/// always cover the full row selection of the run.
#[derive(Debug, Clone)]
pub(crate) enum Block {
    /// The same value at every row.
    Const(Value),
    /// Typed integers with a validity mask (empty = all valid).
    Int(Vec<i64>, Validity),
    /// Typed floats with a validity mask.
    Float(Vec<f64>, Validity),
    /// Typed booleans with a validity mask.
    Bool(Vec<bool>, Validity),
    /// Per-row dynamic values (dates, strings, mixed fallback results).
    Vals(Vec<Value>),
}

impl Block {
    /// The value at block position `i` (not a table row index).
    pub(crate) fn value_at(&self, i: usize) -> Value {
        match self {
            Block::Const(v) => v.clone(),
            Block::Int(d, v) => {
                if vld(v, i) {
                    Value::Int(d[i])
                } else {
                    Value::Null
                }
            }
            Block::Float(d, v) => {
                if vld(v, i) {
                    Value::Float(d[i])
                } else {
                    Value::Null
                }
            }
            Block::Bool(d, v) => {
                if vld(v, i) {
                    Value::Bool(d[i])
                } else {
                    Value::Null
                }
            }
            Block::Vals(vs) => vs[i].clone(),
        }
    }
}

/// Integer operand view for the i64 kernels.
enum IntSrc<'a> {
    S(&'a [i64], &'a [bool]),
    C(Option<i64>),
}

impl IntSrc<'_> {
    #[inline]
    fn get(&self, i: usize) -> Option<i64> {
        match self {
            IntSrc::S(d, v) => vld(v, i).then(|| d[i]),
            IntSrc::C(c) => *c,
        }
    }
}

/// Views a block as an integer operand; `None` when the block is not
/// integer-typed (the caller then tries the f64 or fallback path).
fn int_src(b: &Block) -> Option<IntSrc<'_>> {
    match b {
        Block::Int(d, v) => Some(IntSrc::S(d, v)),
        Block::Const(Value::Int(x)) => Some(IntSrc::C(Some(*x))),
        Block::Const(Value::Null) => Some(IntSrc::C(None)),
        _ => None,
    }
}

/// Float operand view for the f64 kernels; integer sources widen exactly as
/// `Value::as_f64` does. Dates are deliberately excluded (date arithmetic
/// has its own `eval_binop` arms and stays on the per-element path).
enum F64Src<'a> {
    F(&'a [f64], &'a [bool]),
    I(&'a [i64], &'a [bool]),
    C(Option<f64>),
}

impl F64Src<'_> {
    #[inline]
    fn get(&self, i: usize) -> Option<f64> {
        match self {
            F64Src::F(d, v) => vld(v, i).then(|| d[i]),
            F64Src::I(d, v) => vld(v, i).then(|| d[i] as f64),
            F64Src::C(c) => *c,
        }
    }
}

fn f64_src(b: &Block) -> Option<F64Src<'_>> {
    match b {
        Block::Float(d, v) => Some(F64Src::F(d, v)),
        Block::Int(d, v) => Some(F64Src::I(d, v)),
        Block::Const(Value::Float(x)) => Some(F64Src::C(Some(*x))),
        Block::Const(Value::Int(x)) => Some(F64Src::C(Some(*x as f64))),
        Block::Const(Value::Null) => Some(F64Src::C(None)),
        _ => None,
    }
}

/// Three-valued-logic operand view: `None` = NULL, `Some(b)` = truthiness,
/// mirroring the `ab` closure of the interpreter's AND/OR arm (non-bool
/// non-null values are falsy).
enum TriSrc<'a> {
    B(&'a [bool], &'a [bool]),
    /// A non-bool typed block: valid → `Some(false)`, NULL → `None`.
    NonBool(&'a [bool]),
    V(&'a [Value]),
    C(Option<bool>),
}

impl TriSrc<'_> {
    #[inline]
    fn get(&self, i: usize) -> Option<bool> {
        match self {
            TriSrc::B(d, v) => vld(v, i).then(|| d[i]),
            TriSrc::NonBool(v) => vld(v, i).then_some(false),
            TriSrc::V(vs) => match &vs[i] {
                Value::Null => None,
                Value::Bool(x) => Some(*x),
                v => Some(v.is_truthy()),
            },
            TriSrc::C(c) => *c,
        }
    }
}

fn tri_src(b: &Block) -> TriSrc<'_> {
    match b {
        Block::Bool(d, v) => TriSrc::B(d, v),
        Block::Int(_, v) | Block::Float(_, v) => TriSrc::NonBool(v),
        Block::Vals(vs) => TriSrc::V(vs),
        Block::Const(Value::Null) => TriSrc::C(None),
        Block::Const(Value::Bool(x)) => TriSrc::C(Some(*x)),
        Block::Const(v) => TriSrc::C(Some(v.is_truthy())),
    }
}

/// Gathers a table column into a block for the selected rows. Int/Float/Bool
/// columns become typed blocks (one memcpy-like pass); Str/Date columns go
/// through `Vals` so their arithmetic stays on the interpreter-exact path.
fn gather(col: &Column, sel: RowSel<'_>) -> Block {
    fn pick<T: Copy>(d: &[T], v: &[bool], sel: RowSel<'_>) -> (Vec<T>, Validity) {
        match sel {
            RowSel::All(n) => (d[..n].to_vec(), if v.is_empty() { Vec::new() } else { v.to_vec() }),
            RowSel::Rows(rows) => {
                let data = rows.iter().map(|&r| d[r]).collect();
                let valid = if v.is_empty() {
                    Vec::new()
                } else {
                    normalize(rows.iter().map(|&r| v[r]).collect())
                };
                (data, valid)
            }
        }
    }
    match (col, sel) {
        (Column::Int(d, v), sel) => {
            let (d, v) = pick(d, v, sel);
            Block::Int(d, v)
        }
        (Column::Float(d, v), sel) => {
            let (d, v) = pick(d, v, sel);
            Block::Float(d, v)
        }
        (Column::Bool(d, v), sel) => {
            let (d, v) = pick(d, v, sel);
            Block::Bool(d, v)
        }
        (col, RowSel::All(n)) => Block::Vals((0..n).map(|r| col.get(r)).collect()),
        (col, RowSel::Rows(rows)) => Block::Vals(rows.iter().map(|&r| col.get(r)).collect()),
    }
}

/// Builds a nullable typed result in one pass: `f(i)` yields `Some(x)` for a
/// value and `None` for NULL.
fn build<T: Default>(n: usize, mut f: impl FnMut(usize) -> Option<T>) -> (Vec<T>, Validity) {
    let mut data = Vec::with_capacity(n);
    let mut valid = Vec::with_capacity(n);
    let mut any_null = false;
    for i in 0..n {
        match f(i) {
            Some(x) => {
                data.push(x);
                valid.push(true);
            }
            None => {
                data.push(T::default());
                valid.push(false);
                any_null = true;
            }
        }
    }
    (data, if any_null { valid } else { Vec::new() })
}

/// Fallible variant of [`build`], for kernels that must bail out to the
/// interpreter mid-block (integer overflow poisons).
fn try_build<T: Default>(
    n: usize,
    mut f: impl FnMut(usize) -> Result<Option<T>>,
) -> Result<(Vec<T>, Validity)> {
    let mut data = Vec::with_capacity(n);
    let mut valid = Vec::with_capacity(n);
    let mut any_null = false;
    for i in 0..n {
        match f(i)? {
            Some(x) => {
                data.push(x);
                valid.push(true);
            }
            None => {
                data.push(T::default());
                valid.push(false);
                any_null = true;
            }
        }
    }
    Ok((data, if any_null { valid } else { Vec::new() }))
}

/// The interpreter *panics* on `i64::MIN / -1` (always-checked division
/// overflow) and on `-i64::MIN` (debug builds) — but only when it actually
/// reaches that row. The VM evaluates rows the canonical per-row walk might
/// never reach (an earlier row of another operand can error first), so the
/// kernels must not trip those panics eagerly: they surface this error
/// instead, and the caller re-runs the per-row interpreter, which panics or
/// errors in exactly the canonical order.
const POISON: Error = Error::Overflow("i64 overflow deferred to the per-row interpreter");

/// Element-wise fallback: route every row through the interpreter's scalar
/// `eval_binop`. Covers dates, strings and type errors bit-exactly.
fn bin_fallback(op: BinOp, a: &Block, b: &Block, n: usize) -> Result<Block> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(eval_binop(op, a.value_at(i), b.value_at(i))?);
    }
    Ok(Block::Vals(out))
}

/// One binary operator over two blocks.
fn exec_bin(op: BinOp, a: Block, b: Block, n: usize) -> Result<Block> {
    use BinOp::*;
    // Constant folding: both operands row-independent → evaluate once.
    if let (Block::Const(x), Block::Const(y)) = (&a, &b) {
        return Ok(Block::Const(eval_binop(op, x.clone(), y.clone())?));
    }
    // Three-valued logic accepts every operand shape.
    if matches!(op, And | Or) {
        let (sa, sb) = (tri_src(&a), tri_src(&b));
        let (d, v) = build(n, |i| match (op, sa.get(i), sb.get(i)) {
            (And, Some(false), _) | (And, _, Some(false)) => Some(false),
            (And, Some(true), Some(true)) => Some(true),
            (Or, Some(true), _) | (Or, _, Some(true)) => Some(true),
            (Or, Some(false), Some(false)) => Some(false),
            _ => None,
        });
        return Ok(Block::Bool(d, v));
    }
    if matches!(op, Lt | Le | Gt | Ge | Eq | Ne) {
        // Int × Int must compare as i64 (a cast to f64 would lose precision
        // past 2^53), exactly like `sql_cmp`.
        if let (Some(sa), Some(sb)) = (int_src(&a), int_src(&b)) {
            let (d, v) = build(n, |i| match (sa.get(i), sb.get(i)) {
                (Some(x), Some(y)) => {
                    let ord = x.cmp(&y);
                    Some(match op {
                        Lt => ord.is_lt(),
                        Le => ord.is_le(),
                        Gt => ord.is_gt(),
                        Ge => ord.is_ge(),
                        Eq => ord.is_eq(),
                        Ne => ord.is_ne(),
                        _ => unreachable!(),
                    })
                }
                _ => None,
            });
            return Ok(Block::Bool(d, v));
        }
        if let (Some(sa), Some(sb)) = (f64_src(&a), f64_src(&b)) {
            let (d, v) = build(n, |i| match (sa.get(i), sb.get(i)) {
                (Some(x), Some(y)) => {
                    let ord = x.total_cmp(&y);
                    Some(match op {
                        Lt => ord.is_lt(),
                        Le => ord.is_le(),
                        Gt => ord.is_gt(),
                        Ge => ord.is_ge(),
                        Eq => ord.is_eq(),
                        Ne => ord.is_ne(),
                        _ => unreachable!(),
                    })
                }
                _ => None,
            });
            return Ok(Block::Bool(d, v));
        }
        return bin_fallback(op, &a, &b, n);
    }
    // Arithmetic. Int × Int stays integer (wrapping, like the interpreter);
    // Int/Float mixes widen to f64; dates and errors take the fallback.
    if let (Some(sa), Some(sb)) = (int_src(&a), int_src(&b)) {
        let (d, v) = try_build(n, |i| {
            Ok(match (sa.get(i), sb.get(i)) {
                (Some(x), Some(y)) => match op {
                    Add => Some(x.wrapping_add(y)),
                    Sub => Some(x.wrapping_sub(y)),
                    Mul => Some(x.wrapping_mul(y)),
                    Div | Mod => {
                        if y == 0 {
                            None
                        } else if x == i64::MIN && y == -1 {
                            return Err(POISON);
                        } else if op == Div {
                            Some(x / y)
                        } else {
                            Some(x.rem_euclid(y))
                        }
                    }
                    _ => unreachable!(),
                },
                _ => None,
            })
        })?;
        return Ok(Block::Int(d, v));
    }
    if let (Some(sa), Some(sb)) = (f64_src(&a), f64_src(&b)) {
        let (d, v) = build(n, |i| match (sa.get(i), sb.get(i)) {
            (Some(x), Some(y)) => match op {
                Add => Some(x + y),
                Sub => Some(x - y),
                Mul => Some(x * y),
                Div => {
                    if y == 0.0 {
                        None
                    } else {
                        Some(x / y)
                    }
                }
                Mod => {
                    if y == 0.0 {
                        None
                    } else {
                        Some(x.rem_euclid(y))
                    }
                }
                _ => unreachable!(),
            },
            _ => None,
        });
        return Ok(Block::Float(d, v));
    }
    bin_fallback(op, &a, &b, n)
}

/// Logical NOT over a block.
fn exec_not(a: Block, n: usize) -> Result<Block> {
    match a {
        Block::Const(v) => Ok(Block::Const(not_value(v)?)),
        Block::Bool(d, v) => Ok(Block::Bool(d.iter().map(|&x| !x).collect(), v)),
        a => {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(not_value(a.value_at(i))?);
            }
            Ok(Block::Vals(out))
        }
    }
}

/// Arithmetic negation over a block.
fn exec_neg(a: Block, n: usize) -> Result<Block> {
    match a {
        Block::Const(v) => Ok(Block::Const(neg_value(v)?)),
        Block::Int(d, v) => {
            // Only negate valid slots: NULL slots hold unspecified padding.
            let mut out = Vec::with_capacity(d.len());
            for (i, &x) in d.iter().enumerate() {
                if vld(&v, i) {
                    if x == i64::MIN {
                        return Err(POISON);
                    }
                    out.push(-x);
                } else {
                    out.push(0);
                }
            }
            Ok(Block::Int(out, v))
        }
        Block::Float(d, v) => Ok(Block::Float(d.iter().map(|&x| -x).collect(), v)),
        a => {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(neg_value(a.value_at(i))?);
            }
            Ok(Block::Vals(out))
        }
    }
}

/// A reusable expression VM: one per thread (or probe chunk), executing any
/// number of programs without allocation of the operand stack itself.
#[derive(Debug, Default)]
pub struct ExprVm {
    stack: Vec<Block>,
}

impl ExprVm {
    /// A fresh VM with an empty operand stack.
    pub fn new() -> ExprVm {
        ExprVm { stack: Vec::new() }
    }

    /// Executes `prog` over the selected rows and returns the result block.
    pub(crate) fn run_block(
        &mut self,
        prog: &Program,
        table: &Table,
        sel: RowSel<'_>,
    ) -> Result<Block> {
        let n = sel.len();
        if n == 0 {
            // The interpreter evaluates nothing over zero rows (so it cannot
            // error or panic); neither may the VM — skip even constant
            // folding.
            return Ok(Block::Vals(Vec::new()));
        }
        self.stack.clear();
        self.stack.reserve(prog.max_stack);
        for op in prog.ops.iter() {
            match *op {
                Op::Col(idx) => self.stack.push(gather(table.column_at(idx as usize), sel)),
                Op::Const(idx) => self.stack.push(Block::Const(prog.consts[idx as usize].clone())),
                Op::Bin(bin) => {
                    let b = self.stack.pop().expect("vm stack underflow");
                    let a = self.stack.pop().expect("vm stack underflow");
                    let r = exec_bin(bin, a, b, n);
                    self.stack.push(r?);
                }
                Op::Not => {
                    let a = self.stack.pop().expect("vm stack underflow");
                    let r = exec_not(a, n);
                    self.stack.push(r?);
                }
                Op::Neg => {
                    let a = self.stack.pop().expect("vm stack underflow");
                    let r = exec_neg(a, n);
                    self.stack.push(r?);
                }
            }
        }
        debug_assert_eq!(self.stack.len(), 1);
        Ok(self.stack.pop().expect("vm produced no result"))
    }

    /// Evaluates `prog` for every table row into a typed [`Column`], with the
    /// same type-inference rules as [`Column::from_values`] (all-NULL → Int;
    /// per-row Ints under a Float result widen).
    pub fn run_column(&mut self, prog: &Program, table: &Table) -> Result<Column> {
        let n = table.num_rows();
        let block = self.run_block(prog, table, RowSel::All(n))?;
        Ok(match block {
            Block::Const(Value::Null) => Column::Int(vec![0; n], vec![false; n]),
            Block::Const(Value::Int(x)) => Column::Int(vec![x; n], Vec::new()),
            Block::Const(Value::Float(x)) => Column::Float(vec![x; n], Vec::new()),
            Block::Const(Value::Bool(x)) => Column::Bool(vec![x; n], Vec::new()),
            Block::Const(Value::Date(x)) => Column::Date(vec![x; n], Vec::new()),
            Block::Const(Value::Str(s)) => Column::Str(vec![s; n], Vec::new()),
            Block::Int(d, v) => Column::Int(d, v),
            Block::Float(d, v) => Column::Float(d, v),
            Block::Bool(d, v) => Column::Bool(d, v),
            Block::Vals(vs) => Column::from_values(&vs)?,
        })
    }

    /// Evaluates `prog` for an explicit row selection (a partition in window
    /// order), returning per-position values.
    pub fn run_values(
        &mut self,
        prog: &Program,
        table: &Table,
        rows: &[usize],
    ) -> Result<Vec<Value>> {
        let block = self.run_block(prog, table, RowSel::Rows(rows))?;
        Ok(match block {
            Block::Vals(vs) => vs,
            b => (0..rows.len()).map(|i| b.value_at(i)).collect(),
        })
    }

    /// Evaluates `prog` as a predicate for every table row: `true` exactly
    /// when the row's value is truthy (`Value::is_truthy` — NULL and
    /// non-bool values are falsy), matching the interpreter's mask rule.
    pub fn run_filter_mask(&mut self, prog: &Program, table: &Table) -> Result<Vec<bool>> {
        let n = table.num_rows();
        let block = self.run_block(prog, table, RowSel::All(n))?;
        Ok(match block {
            Block::Bool(d, v) => (0..n).map(|i| vld(&v, i) && d[i]).collect(),
            Block::Const(c) => vec![c.is_truthy(); n],
            Block::Int(..) | Block::Float(..) => vec![false; n],
            Block::Vals(vs) => vs.iter().map(|v| v.is_truthy()).collect(),
        })
    }
}

/// Expression-VM counters surfaced in `ExecProfile`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExprVmStats {
    /// Expressions lowered to programs this query.
    pub programs_compiled: u64,
    /// Rows evaluated through compiled programs.
    pub vm_rows: u64,
    /// Rows evaluated through the per-row interpreter (compilation disabled,
    /// or a fallback after a VM error).
    pub interpreted_rows: u64,
    /// VM runs that errored and fell back to the interpreter for the
    /// canonical per-row error.
    pub vm_fallbacks: u64,
}

impl ExprVmStats {
    /// Accumulates another counter set into `self`.
    pub fn merge_from(&mut self, o: &ExprVmStats) {
        self.programs_compiled += o.programs_compiled;
        self.vm_rows += o.vm_rows;
        self.interpreted_rows += o.interpreted_rows;
        self.vm_fallbacks += o.vm_fallbacks;
    }
}

/// Lock-free accumulator for [`ExprVmStats`] across parallel partitions.
#[derive(Debug, Default)]
pub struct AtomicExprVm {
    programs_compiled: AtomicU64,
    vm_rows: AtomicU64,
    interpreted_rows: AtomicU64,
    vm_fallbacks: AtomicU64,
}

impl AtomicExprVm {
    /// A zeroed accumulator.
    pub fn new() -> AtomicExprVm {
        AtomicExprVm::default()
    }

    /// Adds one local counter set.
    pub fn absorb(&self, s: &ExprVmStats) {
        self.programs_compiled.fetch_add(s.programs_compiled, Relaxed);
        self.vm_rows.fetch_add(s.vm_rows, Relaxed);
        self.interpreted_rows.fetch_add(s.interpreted_rows, Relaxed);
        self.vm_fallbacks.fetch_add(s.vm_fallbacks, Relaxed);
    }

    /// Reads the accumulated totals.
    pub fn snapshot(&self) -> ExprVmStats {
        ExprVmStats {
            programs_compiled: self.programs_compiled.load(Relaxed),
            vm_rows: self.vm_rows.load(Relaxed),
            interpreted_rows: self.interpreted_rows.load(Relaxed),
            vm_fallbacks: self.vm_fallbacks.load(Relaxed),
        }
    }
}

/// Evaluates a bound expression for an explicit row selection, through the
/// VM when `compiled` (falling back to the interpreter on VM errors for the
/// canonical first error) or directly through the interpreter otherwise.
/// Central helper for `Ctx::eval_positions` and the frame resolver.
pub(crate) fn eval_rows(
    bound: &BoundExpr,
    table: &Table,
    rows: &[usize],
    compiled: bool,
    stats: &mut ExprVmStats,
) -> Result<Vec<Value>> {
    if compiled {
        let prog = Program::compile(bound);
        stats.programs_compiled += 1;
        let mut vm = ExprVm::new();
        match vm.run_values(&prog, table, rows) {
            Ok(vals) => {
                stats.vm_rows += rows.len() as u64;
                return Ok(vals);
            }
            Err(_) => stats.vm_fallbacks += 1,
        }
    }
    stats.interpreted_rows += rows.len() as u64;
    rows.iter().map(|&r| bound.eval(table, r)).collect()
}

/// Evaluates a bound predicate for an explicit row selection into a kept-row
/// mask (`is_truthy` per row — NULL and non-bool are falsy), through the VM
/// when `compiled`. The FILTER half of the mask artifact builds through this.
pub(crate) fn eval_filter_rows(
    bound: &BoundExpr,
    table: &Table,
    rows: &[usize],
    compiled: bool,
    stats: &mut ExprVmStats,
) -> Result<Vec<bool>> {
    if compiled {
        let prog = Program::compile(bound);
        stats.programs_compiled += 1;
        let mut vm = ExprVm::new();
        match vm.run_block(&prog, table, RowSel::Rows(rows)) {
            Ok(block) => {
                stats.vm_rows += rows.len() as u64;
                let n = rows.len();
                return Ok(match block {
                    Block::Bool(d, v) => (0..n).map(|i| vld(&v, i) && d[i]).collect(),
                    Block::Const(c) => vec![c.is_truthy(); n],
                    Block::Int(..) | Block::Float(..) => vec![false; n],
                    Block::Vals(vs) => vs.iter().map(|v| v.is_truthy()).collect(),
                });
            }
            Err(_) => stats.vm_fallbacks += 1,
        }
    }
    stats.interpreted_rows += rows.len() as u64;
    rows.iter().map(|&r| Ok(bound.eval(table, r)?.is_truthy())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit, Expr};
    use crate::value::Value;

    fn table() -> Table {
        Table::new(vec![
            ("a", Column::ints(vec![10, 20, 30, -5])),
            ("b", Column::ints_opt(vec![Some(3), None, Some(7), Some(0)])),
            ("d", Column::dates(vec![100, 200, 300, 400])),
            ("f", Column::floats(vec![1.5, 2.5, 3.5, -0.0])),
            ("s", Column::strs(vec!["x", "y", "z", "w"])),
            ("t", Column::bools(vec![true, false, true, false])),
        ])
        .unwrap()
    }

    fn check(e: Expr) {
        let t = table();
        let bound = e.bind(&t).unwrap();
        let prog = Program::compile(&bound);
        let mut vm = ExprVm::new();
        let interp: Result<Vec<Value>> = (0..t.num_rows()).map(|i| bound.eval(&t, i)).collect();
        let rows: Vec<usize> = (0..t.num_rows()).collect();
        match (interp, vm.run_values(&prog, &t, &rows)) {
            (Ok(want), Ok(got)) => {
                for (i, (w, g)) in want.iter().zip(&got).enumerate() {
                    assert!(bitwise_eq(w, g), "row {i}: interpreter {w:?} != vm {g:?} for {e:?}");
                }
            }
            (Err(_), Err(_)) => {}
            (i, v) => panic!("err-ness mismatch for {e:?}: interp {i:?} vm {v:?}"),
        }
    }

    fn bitwise_eq(a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
            _ => a == b,
        }
    }

    #[test]
    fn kernels_match_interpreter() {
        check(col("a").add(lit(5)));
        check(col("a").mul(lit(7703)).rem(lit(499)));
        check(col("a").div(col("b")));
        check(col("a").rem(col("b")));
        check(col("f").add(col("a")));
        check(col("f").div(lit(0.0)));
        check(col("a").lt(col("b")));
        check(col("f").ge(col("a")));
        check(col("a").eq_(lit(20)));
        check(col("t").and(col("b").gt(lit(1))));
        check(col("t").or(col("b").gt(lit(1))));
        check(col("t").not());
        check(col("a").neg());
        check(col("f").neg());
        check(col("b").neg());
    }

    #[test]
    fn date_and_string_fallbacks_match() {
        check(col("d").add(lit(7)));
        check(col("d").sub(col("d")));
        check(lit(3).add(col("d")));
        check(col("s").eq_(lit(Value::str("y"))));
        check(col("s").lt(col("s")));
        // Type errors: both sides must error.
        check(col("s").add(lit(1)));
        check(col("d").mul(lit(2)));
        check(col("s").not());
        check(col("s").neg());
        check(col("d").neg());
    }

    #[test]
    fn constant_folding_broadcasts() {
        let t = table();
        let bound = lit(2).add(lit(3)).bind(&t).unwrap();
        let prog = Program::compile(&bound);
        let mut vm = ExprVm::new();
        let c = vm.run_column(&prog, &t).unwrap();
        assert_eq!(c.to_values(), vec![Value::Int(5); 4]);
        // NULL constant → all-null Int column, like Column::from_values.
        let bound = lit(Value::Null).add(lit(3)).bind(&t).unwrap();
        let c = vm.run_column(&Program::compile(&bound), &t).unwrap();
        assert_eq!(c.to_values(), vec![Value::Null; 4]);
        assert!(matches!(c, Column::Int(..)));
    }

    #[test]
    fn filter_mask_matches_is_truthy() {
        let t = table();
        let e = col("t").or(col("b").gt(lit(5)));
        let bound = e.bind(&t).unwrap();
        let mut vm = ExprVm::new();
        let mask = vm.run_filter_mask(&Program::compile(&bound), &t).unwrap();
        let want: Vec<bool> =
            (0..t.num_rows()).map(|i| bound.eval(&t, i).unwrap().is_truthy()).collect();
        assert_eq!(mask, want);
        // Non-bool predicate: everything falsy.
        let bound = col("a").bind(&t).unwrap();
        let mask = vm.run_filter_mask(&Program::compile(&bound), &t).unwrap();
        assert_eq!(mask, vec![false; 4]);
    }

    #[test]
    fn row_selection_gathers_in_window_order() {
        let t = table();
        let bound = col("a").add(col("b")).bind(&t).unwrap();
        let prog = Program::compile(&bound);
        let mut vm = ExprVm::new();
        let got = vm.run_values(&prog, &t, &[2, 0, 1]).unwrap();
        assert_eq!(got, vec![Value::Int(37), Value::Int(13), Value::Null]);
    }

    #[test]
    fn program_shape() {
        let t = table();
        let bound = col("a").add(lit(1)).mul(col("b")).bind(&t).unwrap();
        let prog = Program::compile(&bound);
        assert_eq!(prog.len(), 5);
        assert_eq!(prog.max_stack(), 2);
        assert!(!prog.is_empty());
    }

    #[test]
    fn wrapping_arithmetic_matches() {
        let t = Table::new(vec![("x", Column::ints(vec![i64::MAX, i64::MIN, 1]))]).unwrap();
        let bound = col("x").add(lit(1)).bind(&t).unwrap();
        let mut vm = ExprVm::new();
        let got = vm.run_values(&Program::compile(&bound), &t, &[0, 1, 2]).unwrap();
        let want: Vec<Value> = (0..3).map(|i| bound.eval(&t, i).unwrap()).collect();
        assert_eq!(got, want);
    }
}
