//! Framed percentiles and value functions via permutation-array selection
//! (§4.5).
//!
//! One sort by the function-level ORDER BY produces the permutation array;
//! the merge sort tree built over it finds "the j-th index pointing into the
//! frame" in O(log n). Value functions without an inner ORDER BY select by
//! frame position (classic SQL semantics) — the identity permutation.
//!
//! NULL handling follows the paper: percentiles always skip NULL keys; value
//! functions skip NULL arguments only under IGNORE NULLS. Skipped rows are
//! never inserted into the tree; frame bounds are remapped (§4.5's index
//! remapping). The planner encodes exactly this rule in the call's mask key,
//! so the sort and both trees come from the shared artifact cache.

use super::{fraction_arg, Ctx};
use crate::error::{Error, Result};
use crate::plan::{CallPlan, OrderKey};
use crate::spec::{FuncKind, FunctionCall};
use crate::value::Value;
use holistic_core::index::fits_u32;
use holistic_core::{RangeSet, SelectCursor, TreeIndex};

pub(crate) fn evaluate(ctx: &Ctx<'_>, call: &FunctionCall, cp: &CallPlan) -> Result<Vec<Value>> {
    if fits_u32(ctx.m() + 1) {
        evaluate_impl::<u32>(ctx, call, cp)
    } else {
        evaluate_impl::<u64>(ctx, call, cp)
    }
}

fn evaluate_impl<I: TreeIndex>(
    ctx: &Ctx<'_>,
    call: &FunctionCall,
    cp: &CallPlan,
) -> Result<Vec<Value>> {
    let order = cp.order.as_ref().expect("selection plans always carry an order");

    let mask = ctx.mask_art(cp.keys.mask())?;
    // Output value per kept position: the ORDER BY key for percentiles, the
    // first argument for value functions — the plan already derived the key.
    let kept_out = ctx.kept_values_art(cp.keys.kept_values())?;

    // Permutation by the inner order (identity = frame position order).
    let dc = match order {
        OrderKey::Identity => None,
        OrderKey::Keys(_) => Some(ctx.dense_codes_art(cp.keys.dense_codes())?),
    };
    let tree = ctx.perm_mst::<I>(cp.keys.perm_mst())?;

    // Selects the j-th (0-based) frame row by inner order; returns its kept
    // position. The cursor seeds the per-piece value-bound searches from the
    // previous row's positions.
    let select = |pieces: &RangeSet, j: usize, cur: &mut SelectCursor| -> Option<usize> {
        tree.select_with_cursor(pieces, j, cur).map(|rank| match &dc {
            Some(dc) => dc.perm[rank],
            None => rank,
        })
    };

    match call.kind {
        FuncKind::PercentileDisc | FuncKind::Median => {
            let p = if call.kind == FuncKind::Median { 0.5 } else { fraction_arg(ctx, call)? };
            ctx.probe_with(
                || ctx.new_select_cursor(),
                |cur, i| {
                    let pieces = mask.remap.range_set(&ctx.frames.range_set(i));
                    let s = pieces.count();
                    if s == 0 {
                        return Ok(Value::Null);
                    }
                    // PERCENTILE_DISC: first value with cume_dist >= p.
                    let j = ((p * s as f64).ceil() as usize).clamp(1, s);
                    let kp = select(&pieces, j - 1, cur).expect("j <= s");
                    Ok(kept_out[kp].clone())
                },
            )
        }
        FuncKind::PercentileCont => {
            let p = fraction_arg(ctx, call)?;
            // CONT interpolates: the key must be numeric throughout, even
            // when a particular rank lands exactly on one element.
            if let Some(v) = kept_out.iter().find(|v| v.as_f64().is_none()) {
                return Err(Error::TypeMismatch {
                    expected: "numeric",
                    got: v.type_name(),
                    context: "percentile_cont",
                });
            }
            ctx.probe_with(
                || ctx.new_select_cursor(),
                |cur, i| {
                    let pieces = mask.remap.range_set(&ctx.frames.range_set(i));
                    let s = pieces.count();
                    if s == 0 {
                        return Ok(Value::Null);
                    }
                    let rn = p * (s - 1) as f64;
                    let lo = rn.floor() as usize;
                    let hi = rn.ceil() as usize;
                    let vlo = &kept_out[select(&pieces, lo, cur).expect("lo < s")];
                    if lo == hi {
                        // CONT yields a float even on an exact rank hit (SQL:
                        // double precision) — over an integer key, returning
                        // the key itself would mix Int and Float rows in one
                        // output column.
                        let x = vlo.as_f64().expect("checked numeric above");
                        return Ok(Value::Float(x));
                    }
                    let vhi = &kept_out[select(&pieces, hi, cur).expect("hi < s")];
                    let (Some(x), Some(y)) = (vlo.as_f64(), vhi.as_f64()) else {
                        return Err(Error::TypeMismatch {
                            expected: "numeric",
                            got: vlo.type_name(),
                            context: "percentile_cont",
                        });
                    };
                    Ok(Value::Float(x + (y - x) * (rn - lo as f64)))
                },
            )
        }
        FuncKind::FirstValue => ctx.probe_with(
            || ctx.new_select_cursor(),
            |cur, i| {
                let pieces = mask.remap.range_set(&ctx.frames.range_set(i));
                Ok(match select(&pieces, 0, cur) {
                    Some(kp) => kept_out[kp].clone(),
                    None => Value::Null,
                })
            },
        ),
        FuncKind::LastValue => ctx.probe_with(
            || ctx.new_select_cursor(),
            |cur, i| {
                let pieces = mask.remap.range_set(&ctx.frames.range_set(i));
                let s = pieces.count();
                Ok(if s == 0 {
                    Value::Null
                } else {
                    kept_out[select(&pieces, s - 1, cur).expect("s-1 < s")].clone()
                })
            },
        ),
        FuncKind::NthValue => {
            let n_expr = call.args[1].bind(ctx.table)?;
            ctx.probe_with(
                || ctx.new_select_cursor(),
                |cur, i| {
                    let n = match n_expr.eval(ctx.table, ctx.rows[i])? {
                        Value::Int(x) if x >= 1 => x as usize,
                        Value::Null => return Ok(Value::Null),
                        v => {
                            return Err(Error::InvalidArgument(format!(
                                "nth_value: n must be a positive integer, got {v}"
                            )))
                        }
                    };
                    let pieces = mask.remap.range_set(&ctx.frames.range_set(i));
                    Ok(match select(&pieces, n - 1, cur) {
                        Some(kp) => kept_out[kp].clone(),
                        None => Value::Null,
                    })
                },
            )
        }
        _ => unreachable!("selection dispatch"),
    }
}
