//! Framed percentiles and value functions via permutation-array selection
//! (§4.5).
//!
//! One sort by the function-level ORDER BY produces the permutation array;
//! the merge sort tree built over it finds "the j-th index pointing into the
//! frame" in O(log n). Value functions without an inner ORDER BY select by
//! frame position (classic SQL semantics) — the identity permutation.
//!
//! NULL handling follows the paper: percentiles always skip NULL keys; value
//! functions skip NULL arguments only under IGNORE NULLS. Skipped rows are
//! never inserted into the tree; frame bounds are remapped (§4.5's index
//! remapping). The planner encodes exactly this rule in the call's mask key,
//! so the sort and both trees come from the shared artifact cache.

use super::{fraction_arg, Ctx, Planned};
use crate::error::{Error, Result};
use crate::plan::{CallPlan, OrderKey};
use crate::spec::{FuncKind, FunctionCall};
use crate::value::Value;
use holistic_core::index::fits_u32;
use holistic_core::TreeIndex;

pub(crate) fn evaluate(ctx: &Ctx<'_>, call: &FunctionCall, cp: &CallPlan) -> Result<Vec<Value>> {
    if fits_u32(ctx.m() + 1) {
        evaluate_impl::<u32>(ctx, call, cp)
    } else {
        evaluate_impl::<u64>(ctx, call, cp)
    }
}

fn evaluate_impl<I: TreeIndex>(
    ctx: &Ctx<'_>,
    call: &FunctionCall,
    cp: &CallPlan,
) -> Result<Vec<Value>> {
    let order = cp.order.as_ref().expect("selection plans always carry an order");

    let mask = ctx.mask_art(cp.keys.mask())?;
    // Output value per kept position: the ORDER BY key for percentiles, the
    // first argument for value functions — the plan already derived the key.
    let kept_out = ctx.kept_values_art(cp.keys.kept_values())?;

    // Permutation by the inner order (identity = frame position order).
    let dc = match order {
        OrderKey::Identity => None,
        OrderKey::Keys(_) => Some(ctx.dense_codes_art(cp.keys.dense_codes())?),
    };
    let tree = ctx.perm_mst::<I>(cp.keys.perm_mst())?;

    // A selected tree rank → the kept position it points at.
    let map_rank = |rank: usize| -> usize {
        match &dc {
            Some(dc) => dc.perm[rank],
            None => rank,
        }
    };

    match call.kind {
        FuncKind::PercentileDisc | FuncKind::Median => {
            let p = if call.kind == FuncKind::Median { 0.5 } else { fraction_arg(ctx, call)? };
            ctx.probe_selects(
                &tree,
                |i, push| {
                    let pieces = mask.remap.range_set(&ctx.frames.range_set(i));
                    let s = pieces.count();
                    if s == 0 {
                        return Ok(Planned::Done(Value::Null));
                    }
                    // PERCENTILE_DISC: first value with cume_dist >= p.
                    let j = ((p * s as f64).ceil() as usize).clamp(1, s);
                    push(pieces, j - 1);
                    Ok(Planned::Counted(()))
                },
                |_, (), res| {
                    let kp = map_rank(res[0].expect("j <= s"));
                    Ok(kept_out[kp].clone())
                },
            )
        }
        FuncKind::PercentileCont => {
            let p = fraction_arg(ctx, call)?;
            // CONT interpolates: the key must be numeric throughout, even
            // when a particular rank lands exactly on one element.
            if let Some(v) = kept_out.iter().find(|v| v.as_f64().is_none()) {
                return Err(Error::TypeMismatch {
                    expected: "numeric",
                    got: v.type_name(),
                    context: "percentile_cont",
                });
            }
            ctx.probe_selects(
                &tree,
                |i, push| {
                    let pieces = mask.remap.range_set(&ctx.frames.range_set(i));
                    let s = pieces.count();
                    if s == 0 {
                        return Ok(Planned::Done(Value::Null));
                    }
                    let rn = p * (s - 1) as f64;
                    let lo = rn.floor() as usize;
                    let hi = rn.ceil() as usize;
                    push(pieces, lo);
                    if hi != lo {
                        push(pieces, hi);
                    }
                    Ok(Planned::Counted((rn, lo)))
                },
                |_, (rn, lo), res| {
                    let vlo = &kept_out[map_rank(res[0].expect("lo < s"))];
                    if res.len() == 1 {
                        // CONT yields a float even on an exact rank hit (SQL:
                        // double precision) — over an integer key, returning
                        // the key itself would mix Int and Float rows in one
                        // output column.
                        let x = vlo.as_f64().expect("checked numeric above");
                        return Ok(Value::Float(x));
                    }
                    let vhi = &kept_out[map_rank(res[1].expect("hi < s"))];
                    let (Some(x), Some(y)) = (vlo.as_f64(), vhi.as_f64()) else {
                        return Err(Error::TypeMismatch {
                            expected: "numeric",
                            got: vlo.type_name(),
                            context: "percentile_cont",
                        });
                    };
                    Ok(Value::Float(x + (y - x) * (rn - lo as f64)))
                },
            )
        }
        FuncKind::FirstValue => ctx.probe_selects(
            &tree,
            |i, push| {
                let pieces = mask.remap.range_set(&ctx.frames.range_set(i));
                push(pieces, 0);
                Ok(Planned::Counted(()))
            },
            |_, (), res| {
                Ok(match res[0] {
                    Some(r) => kept_out[map_rank(r)].clone(),
                    None => Value::Null,
                })
            },
        ),
        FuncKind::LastValue => ctx.probe_selects(
            &tree,
            |i, push| {
                let pieces = mask.remap.range_set(&ctx.frames.range_set(i));
                let s = pieces.count();
                if s == 0 {
                    return Ok(Planned::Done(Value::Null));
                }
                push(pieces, s - 1);
                Ok(Planned::Counted(()))
            },
            |_, (), res| Ok(kept_out[map_rank(res[0].expect("s-1 < s"))].clone()),
        ),
        FuncKind::NthValue => {
            let n_expr = call.args[1].bind(ctx.table)?;
            ctx.probe_selects(
                &tree,
                |i, push| {
                    let n = match n_expr.eval(ctx.table, ctx.rows[i])? {
                        Value::Int(x) if x >= 1 => x as usize,
                        Value::Null => return Ok(Planned::Done(Value::Null)),
                        v => {
                            return Err(Error::InvalidArgument(format!(
                                "nth_value: n must be a positive integer, got {v}"
                            )))
                        }
                    };
                    let pieces = mask.remap.range_set(&ctx.frames.range_set(i));
                    push(pieces, n - 1);
                    Ok(Planned::Counted(()))
                },
                |_, (), res| {
                    Ok(match res[0] {
                        Some(r) => kept_out[map_rank(r)].clone(),
                        None => Value::Null,
                    })
                },
            )
        }
        _ => unreachable!("selection dispatch"),
    }
}
