//! Direct (cacheless) per-partition evaluation — the strategy layer's
//! "naive" path for partitions too small to amortize preprocessing.
//!
//! Every function here recomputes exactly what the cached evaluators derive
//! from artifacts, but locally, serially, and without an [`crate::artifacts::ArtifactCache`]:
//! no `Arc` slots, no key clones, no footprint accounting. The cost model
//! routes partitions below the crossover here (`Strategy::Naive`), so on
//! many-small-partitions workloads the per-partition constant drops from
//! "cache + tree build" to "a handful of `Vec`s".
//!
//! **Bit-identity contract**: outputs must equal the merge-sort-tree path
//! bit for bit, including float results and error cases, because the
//! differential fuzzer pins adaptive ≡ forced-MST. Integer counting and
//! selection are exact by construction; the single hazard is float SUM/AVG,
//! whose result depends on combine order — so that one case builds the same
//! `SegmentTree<SumF64Monoid>` the cached path builds (serial build; the
//! node values are combine-order-identical either way) instead of a running
//! sum.

use crate::artifacts::MaskArtifact;
use crate::error::{Error, Result};
use crate::eval::distributive::{decode_ordinal, encode_ordinals};
use crate::eval::leadlag::target_position;
use crate::eval::rank::ntile_of;
use crate::frame::ResolvedFrames;
use crate::hash::hash_value;
use crate::order::{dense_codes_for, KeyColumns};
use crate::plan::{sort_keys_of, ArtifactKey, CallPlan, CanonicalSortKey, OrderKey};
use crate::remap::Remap;
use crate::spec::{FuncKind, FunctionCall};
use crate::table::Table;
use crate::value::Value;
use holistic_core::codes::DenseCodes;
use holistic_core::index::fits_u32;
use holistic_core::RangeSet;
use holistic_segtree::{SegmentTree, SumF64Monoid};
use rustc_hash::{FxHashMap, FxHashSet};
use std::cmp::Ordering;
use std::sync::Arc;

/// Evaluation context of one partition on the direct path. Deliberately has
/// no cache and no parallelism: the strategy layer only routes partitions
/// here when the whole evaluation is cheaper than building anything.
pub(crate) struct DirectCtx<'a> {
    /// The full table.
    pub table: &'a Table,
    /// Partition positions → table rows, in window order.
    pub rows: &'a [usize],
    /// Resolved frames (per position).
    pub frames: &'a ResolvedFrames,
    /// Query-level inner ORDER BY key columns (hoisted by the executor so
    /// rank/selection calls over many small partitions still evaluate their
    /// criterion expressions once, not once per partition).
    pub inner_keys: &'a FxHashMap<Vec<CanonicalSortKey>, Arc<KeyColumns>>,
}

impl<'a> DirectCtx<'a> {
    fn m(&self) -> usize {
        self.rows.len()
    }

    /// Evaluates an expression for every position (in window order).
    fn eval_positions(&self, expr: &crate::expr::Expr) -> Result<Vec<Value>> {
        let bound = expr.bind(self.table)?;
        self.rows.iter().map(|&r| bound.eval(self.table, r)).collect()
    }

    /// Extracts a fraction in [0, 1] for percentile calls (same message as
    /// the cached path's `fraction_arg`).
    fn fraction_arg(&self, call: &FunctionCall) -> Result<f64> {
        let bound = call.args[0].bind(self.table)?;
        let v = bound.eval(self.table, self.rows.first().copied().unwrap_or(0))?;
        match v.as_f64() {
            Some(f) if (0.0..=1.0).contains(&f) => Ok(f),
            _ => Err(Error::InvalidArgument(format!(
                "{}: fraction must be in [0, 1], got {v}",
                call.kind.name()
            ))),
        }
    }

    /// The call's kept-row mask, built locally (same recipe as `mask_art`).
    fn mask_of(&self, cp: &CallPlan) -> Result<MaskArtifact> {
        let ArtifactKey::Mask(mk) = cp.keys.mask() else { unreachable!("mask key") };
        let m = self.m();
        let mut keep = match &mk.filter {
            None => vec![true; m],
            Some(f) => {
                let bound = f.to_expr().bind(self.table)?;
                self.rows
                    .iter()
                    .map(|&r| Ok(bound.eval(self.table, r)?.is_truthy()))
                    .collect::<Result<Vec<bool>>>()?
            }
        };
        if let Some(screen) = &mk.screen {
            let vals = self.eval_positions(&screen.to_expr())?;
            for (i, k) in keep.iter_mut().enumerate() {
                *k = *k && !vals[i].is_null();
            }
        }
        let remap = Remap::new(&keep);
        let kept_rows: Vec<usize> =
            (0..remap.kept_len()).map(|k| self.rows[remap.to_position(k)]).collect();
        Ok(MaskArtifact { keep, remap, kept_rows })
    }

    /// The call's argument values, one per position.
    fn values_of(&self, cp: &CallPlan) -> Result<Vec<Value>> {
        let ArtifactKey::Values(e) = cp.keys.values() else { unreachable!("values key") };
        self.eval_positions(&e.to_expr())
    }

    /// Inner ORDER BY key columns: hoisted from the query-level map when
    /// present, evaluated locally otherwise.
    fn keys_for(&self, ks: &[CanonicalSortKey]) -> Result<Arc<KeyColumns>> {
        if let Some(kc) = self.inner_keys.get(ks) {
            return Ok(Arc::clone(kc));
        }
        Ok(Arc::new(KeyColumns::evaluate(self.table, &sort_keys_of(ks))?))
    }

    /// Frame pieces of row `i` remapped to kept space.
    fn kept_pieces(&self, mask: &MaskArtifact, i: usize) -> RangeSet {
        mask.remap.range_set(&self.frames.range_set(i))
    }
}

/// Values per kept position, cloned out of the per-position vector.
fn kept_values(values: &[Value], mask: &MaskArtifact) -> Vec<Value> {
    (0..mask.kept_len()).map(|k| values[mask.remap.to_position(k)].clone()).collect()
}

/// Kept rows of `pieces` whose unique code is `< c` — the direct equivalent
/// of the code tree's `count_below_multi`.
fn count_below(dc: &DenseCodes, pieces: &RangeSet, c: usize) -> usize {
    let mut n = 0;
    for (a, b) in pieces.iter() {
        for k in a..b {
            if dc.code[k] < c {
                n += 1;
            }
        }
    }
    n
}

/// `(group_min, group_end, unique_code_or_none)` of row `i` in kept
/// sorted-code space — dropped rows rank virtually via binary search, same
/// as the rank family's `code_bounds`.
fn code_bounds(
    dctx: &DirectCtx<'_>,
    keys: &KeyColumns,
    mask: &MaskArtifact,
    dc: &DenseCodes,
    i: usize,
) -> (usize, usize, Option<usize>) {
    if mask.remap.is_kept(i) {
        let k = mask.remap.kept_index(i);
        (dc.group_min[k], dc.group_end[k], Some(dc.code[k]))
    } else {
        let row = dctx.rows[i];
        let perm = &dc.perm;
        let below = |x: usize| keys.cmp_rows(mask.kept_rows[perm[x]], row) == Ordering::Less;
        let mut lo = 0;
        let mut hi = perm.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if below(mid) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let gmin = lo;
        let mut hi2 = perm.len();
        let mut lo2 = gmin;
        while lo2 < hi2 {
            let mid = lo2 + (hi2 - lo2) / 2;
            if keys.rows_equal(mask.kept_rows[perm[mid]], row) {
                lo2 = mid + 1;
            } else {
                hi2 = mid;
            }
        }
        (gmin, lo2, None)
    }
}

/// Pieces clipped to kept positions strictly before partition position `i`
/// (the positional tie-break of dropped-row ranking).
fn earlier_pieces(mask: &MaskArtifact, pieces: &RangeSet, i: usize) -> RangeSet {
    let ki = mask.remap.range(0, i).1;
    let mut earlier = RangeSet::empty();
    for (a, b) in pieces.iter() {
        let b2 = b.min(ki);
        if a < b2 {
            earlier.push(a, b2);
        }
    }
    earlier
}

/// Evaluates one call directly. The output (values and errors) is
/// bit-identical to [`super::evaluate_call`] over the same partition.
pub(crate) fn evaluate(
    dctx: &DirectCtx<'_>,
    call: &FunctionCall,
    cp: &CallPlan,
) -> Result<Vec<Value>> {
    use FuncKind::*;
    match call.kind {
        CountStar | Count | Sum | Avg | Min | Max => {
            if call.distinct {
                match call.kind {
                    Min | Max => distributive(dctx, call, cp),
                    CountStar => {
                        Err(Error::InvalidArgument("COUNT(DISTINCT *) is not valid SQL".into()))
                    }
                    Count => count_distinct(dctx, cp),
                    _ => unreachable!("strategy layer never routes SUM/AVG DISTINCT directly"),
                }
            } else {
                distributive(dctx, call, cp)
            }
        }
        RowNumber | Rank | PercentRank | CumeDist | Ntile => rank_family(dctx, call, cp),
        DenseRank => dense_rank(dctx, cp),
        PercentileDisc | PercentileCont | Median | FirstValue | LastValue | NthValue => {
            select_based(dctx, call, cp)
        }
        Lead | Lag => leadlag(dctx, call, cp),
        Mode => mode(dctx, cp),
    }
}

/// SUM / COUNT / AVG / MIN / MAX without DISTINCT (plus MIN/MAX DISTINCT,
/// which are semantically identical to their plain forms).
fn distributive(dctx: &DirectCtx<'_>, call: &FunctionCall, cp: &CallPlan) -> Result<Vec<Value>> {
    let m = dctx.m();

    if call.kind == FuncKind::CountStar {
        // COUNT(*) has no argument: only the FILTER mask participates.
        let mask = dctx.mask_of(cp)?;
        return (0..m)
            .map(|i| {
                let mut n = 0usize;
                for (a, b) in dctx.frames.range_set(i).iter() {
                    let (ka, kb) = mask.remap.range(a, b);
                    n += kb - ka;
                }
                Ok(Value::Int(n as i64))
            })
            .collect();
    }

    let values = dctx.values_of(cp)?;
    let mask = dctx.mask_of(cp)?;
    let frame_count = |i: usize| {
        let mut n = 0usize;
        for (a, b) in dctx.frames.range_set(i).iter() {
            let (ka, kb) = mask.remap.range(a, b);
            n += kb - ka;
        }
        n
    };

    match call.kind {
        FuncKind::Count => (0..m).map(|i| Ok(Value::Int(frame_count(i) as i64))).collect(),
        FuncKind::Sum | FuncKind::Avg => {
            let avg = call.kind == FuncKind::Avg;
            let is_float = values.iter().any(|v| matches!(v, Value::Float(_)));
            let bad =
                values.iter().find(|v| !matches!(v, Value::Null | Value::Int(_) | Value::Float(_)));
            if let Some(v) = bad {
                return Err(Error::TypeMismatch {
                    expected: "numeric",
                    got: v.type_name(),
                    context: "SUM/AVG",
                });
            }
            if is_float || avg {
                // Float addition is order-sensitive; build the exact tree the
                // cached path builds so combine order (hence bits) match.
                let inputs: Vec<f64> = (0..m)
                    .map(|i| if mask.keep[i] { values[i].as_f64().unwrap_or(0.0) } else { 0.0 })
                    .collect();
                let tree = SegmentTree::<SumF64Monoid>::build(&inputs, false);
                (0..m)
                    .map(|i| {
                        let cnt = frame_count(i);
                        if cnt == 0 {
                            return Ok(Value::Null);
                        }
                        let s = tree.query_multi(dctx.frames.range_set(i).iter());
                        Ok(Value::Float(if avg { s / cnt as f64 } else { s }))
                    })
                    .collect()
            } else {
                // Integer sums are exact in i128 regardless of order: a
                // prefix array replaces the tree.
                let mut pre = Vec::with_capacity(m + 1);
                pre.push(0i128);
                for i in 0..m {
                    let x = if mask.keep[i] { values[i].as_i64().unwrap_or(0) } else { 0 };
                    pre.push(pre[i] + x as i128);
                }
                (0..m)
                    .map(|i| {
                        if frame_count(i) == 0 {
                            return Ok(Value::Null);
                        }
                        let mut s = 0i128;
                        for (a, b) in dctx.frames.range_set(i).iter() {
                            s += pre[b] - pre[a];
                        }
                        i64::try_from(s).map(Value::Int).map_err(|_| Error::Overflow("SUM"))
                    })
                    .collect()
            }
        }
        FuncKind::Min | FuncKind::Max => {
            let is_min = call.kind == FuncKind::Min;
            let (ords, decode) = encode_ordinals(&values)?;
            let sentinel = if is_min { i64::MAX } else { i64::MIN };
            (0..m)
                .map(|i| {
                    if frame_count(i) == 0 {
                        return Ok(Value::Null);
                    }
                    let mut best = sentinel;
                    for (a, b) in dctx.frames.range_set(i).iter() {
                        for (keep, ord) in mask.keep[a..b].iter().zip(&ords[a..b]) {
                            let cand = if *keep { ord.unwrap_or(sentinel) } else { sentinel };
                            best = if is_min { best.min(cand) } else { best.max(cand) };
                        }
                    }
                    Ok(decode_ordinal(best, &decode))
                })
                .collect()
        }
        _ => unreachable!("distributive dispatch"),
    }
}

/// COUNT(DISTINCT x): distinct kept-value hashes per (remapped) frame. This
/// matches the MST hull-minus-hole-correction result exactly — both count
/// the distinct values present anywhere in the frame pieces.
fn count_distinct(dctx: &DirectCtx<'_>, cp: &CallPlan) -> Result<Vec<Value>> {
    let mask = dctx.mask_of(cp)?;
    let values = dctx.values_of(cp)?;
    let kept = kept_values(&values, &mask);
    let hashes: Vec<u64> = kept.iter().map(hash_value).collect();
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    (0..dctx.m())
        .map(|i| {
            seen.clear();
            for (a, b) in dctx.kept_pieces(&mask, i).iter() {
                seen.extend(&hashes[a..b]);
            }
            Ok(Value::Int(seen.len() as i64))
        })
        .collect()
}

/// RANK / ROW_NUMBER / PERCENT_RANK / CUME_DIST / NTILE by code scanning.
fn rank_family(dctx: &DirectCtx<'_>, call: &FunctionCall, cp: &CallPlan) -> Result<Vec<Value>> {
    let Some(OrderKey::Keys(ks)) = &cp.order else { unreachable!("rank plans carry keys") };
    let keys = dctx.keys_for(ks)?;
    let mask = dctx.mask_of(cp)?;
    let dc = dense_codes_for(&keys, &mask.kept_rows, false);
    let m = dctx.m();

    let row_number = |i: usize, pieces: &RangeSet| -> usize {
        let (gmin, gend, ucode) = code_bounds(dctx, &keys, &mask, &dc, i);
        match ucode {
            Some(c) => count_below(&dc, pieces, c) + 1,
            None => {
                let smaller = count_below(&dc, pieces, gmin);
                let earlier = earlier_pieces(&mask, pieces, i);
                let eq_before = count_below(&dc, &earlier, gend) - count_below(&dc, &earlier, gmin);
                smaller + eq_before + 1
            }
        }
    };

    match call.kind {
        FuncKind::RowNumber => (0..m)
            .map(|i| {
                let pieces = dctx.kept_pieces(&mask, i);
                Ok(Value::Int(row_number(i, &pieces) as i64))
            })
            .collect(),
        FuncKind::Rank => (0..m)
            .map(|i| {
                let pieces = dctx.kept_pieces(&mask, i);
                let (gmin, _, _) = code_bounds(dctx, &keys, &mask, &dc, i);
                Ok(Value::Int((count_below(&dc, &pieces, gmin) + 1) as i64))
            })
            .collect(),
        FuncKind::PercentRank => (0..m)
            .map(|i| {
                let pieces = dctx.kept_pieces(&mask, i);
                let size = pieces.count();
                if size == 0 {
                    return Ok(Value::Null);
                }
                let (gmin, _, _) = code_bounds(dctx, &keys, &mask, &dc, i);
                let rank = count_below(&dc, &pieces, gmin) + 1;
                Ok(Value::Float(if size <= 1 {
                    0.0
                } else {
                    (rank - 1) as f64 / (size - 1) as f64
                }))
            })
            .collect(),
        FuncKind::CumeDist => (0..m)
            .map(|i| {
                let pieces = dctx.kept_pieces(&mask, i);
                let size = pieces.count();
                if size == 0 {
                    return Ok(Value::Null);
                }
                let (_, gend, _) = code_bounds(dctx, &keys, &mask, &dc, i);
                let le = count_below(&dc, &pieces, gend);
                Ok(Value::Float(le as f64 / size as f64))
            })
            .collect(),
        FuncKind::Ntile => {
            let buckets_expr = call.args[0].bind(dctx.table)?;
            (0..m)
                .map(|i| {
                    let b = match buckets_expr.eval(dctx.table, dctx.rows[i])? {
                        Value::Int(x) if x >= 1 => x as usize,
                        Value::Null => return Ok(Value::Null),
                        v => {
                            return Err(Error::InvalidArgument(format!(
                                "ntile: bucket count must be a positive integer, got {v}"
                            )))
                        }
                    };
                    let pieces = dctx.kept_pieces(&mask, i);
                    let size = pieces.count();
                    if size == 0 {
                        return Ok(Value::Null);
                    }
                    let rn = row_number(i, &pieces);
                    Ok(Value::Int(ntile_of(rn, size, b) as i64))
                })
                .collect()
        }
        _ => unreachable!("rank dispatch"),
    }
}

/// DENSE_RANK: distinct smaller-key tie groups present in the frame pieces
/// (the range tree's hull count minus its hole-only correction equals
/// exactly this).
fn dense_rank(dctx: &DirectCtx<'_>, cp: &CallPlan) -> Result<Vec<Value>> {
    if !fits_u32(dctx.m() + 1) {
        return Err(Error::Unsupported("DENSE_RANK partitions beyond u32 positions".into()));
    }
    let Some(OrderKey::Keys(ks)) = &cp.order else { unreachable!("rank plans carry keys") };
    let keys = dctx.keys_for(ks)?;
    let mask = dctx.mask_of(cp)?;
    let dc = dense_codes_for(&keys, &mask.kept_rows, false);
    let mut groups: FxHashSet<usize> = FxHashSet::default();
    (0..dctx.m())
        .map(|i| {
            let (gmin, _, _) = code_bounds(dctx, &keys, &mask, &dc, i);
            let gcount = if gmin == 0 { 0 } else { dc.group_id[dc.perm[gmin - 1]] + 1 };
            groups.clear();
            for (a, b) in dctx.kept_pieces(&mask, i).iter() {
                for k in a..b {
                    let g = dc.group_id[k];
                    if g < gcount {
                        groups.insert(g);
                    }
                }
            }
            Ok(Value::Int((groups.len() + 1) as i64))
        })
        .collect()
}

/// Percentiles and value functions by per-row gather-and-sort selection.
fn select_based(dctx: &DirectCtx<'_>, call: &FunctionCall, cp: &CallPlan) -> Result<Vec<Value>> {
    let order = cp.order.as_ref().expect("selection plans always carry an order");
    let mask = dctx.mask_of(cp)?;
    let values = dctx.values_of(cp)?;
    let kept_out = kept_values(&values, &mask);
    let dc = match order {
        OrderKey::Identity => None,
        OrderKey::Keys(ks) => {
            let keys = dctx.keys_for(ks)?;
            Some(dense_codes_for(&keys, &mask.kept_rows, false))
        }
    };
    let m = dctx.m();

    // Per-row selection keys, ascending: unique codes under an explicit
    // order, kept positions themselves under the identity order (a RangeSet
    // iterates ascending, so no sort is needed there).
    let mut buf: Vec<usize> = Vec::new();
    let gather = |pieces: &RangeSet, buf: &mut Vec<usize>| {
        buf.clear();
        for (a, b) in pieces.iter() {
            match &dc {
                None => buf.extend(a..b),
                Some(dc) => buf.extend((a..b).map(|k| dc.code[k])),
            }
        }
        if dc.is_some() {
            buf.sort_unstable();
        }
    };
    let kp_of = |x: usize| match &dc {
        Some(dc) => dc.perm[x],
        None => x,
    };

    match call.kind {
        FuncKind::PercentileDisc | FuncKind::Median => {
            let p = if call.kind == FuncKind::Median { 0.5 } else { dctx.fraction_arg(call)? };
            (0..m)
                .map(|i| {
                    let pieces = dctx.kept_pieces(&mask, i);
                    let s = pieces.count();
                    if s == 0 {
                        return Ok(Value::Null);
                    }
                    let j = ((p * s as f64).ceil() as usize).clamp(1, s);
                    gather(&pieces, &mut buf);
                    Ok(kept_out[kp_of(buf[j - 1])].clone())
                })
                .collect()
        }
        FuncKind::PercentileCont => {
            let p = dctx.fraction_arg(call)?;
            if let Some(v) = kept_out.iter().find(|v| v.as_f64().is_none()) {
                return Err(Error::TypeMismatch {
                    expected: "numeric",
                    got: v.type_name(),
                    context: "percentile_cont",
                });
            }
            (0..m)
                .map(|i| {
                    let pieces = dctx.kept_pieces(&mask, i);
                    let s = pieces.count();
                    if s == 0 {
                        return Ok(Value::Null);
                    }
                    let rn = p * (s - 1) as f64;
                    let lo = rn.floor() as usize;
                    let hi = rn.ceil() as usize;
                    gather(&pieces, &mut buf);
                    let x = kept_out[kp_of(buf[lo])].as_f64().expect("checked numeric above");
                    if lo == hi {
                        return Ok(Value::Float(x));
                    }
                    let y = kept_out[kp_of(buf[hi])].as_f64().expect("checked numeric above");
                    Ok(Value::Float(x + (y - x) * (rn - lo as f64)))
                })
                .collect()
        }
        FuncKind::FirstValue => (0..m)
            .map(|i| {
                let pieces = dctx.kept_pieces(&mask, i);
                gather(&pieces, &mut buf);
                Ok(match buf.first() {
                    Some(&x) => kept_out[kp_of(x)].clone(),
                    None => Value::Null,
                })
            })
            .collect(),
        FuncKind::LastValue => (0..m)
            .map(|i| {
                let pieces = dctx.kept_pieces(&mask, i);
                gather(&pieces, &mut buf);
                Ok(match buf.last() {
                    Some(&x) => kept_out[kp_of(x)].clone(),
                    None => Value::Null,
                })
            })
            .collect(),
        FuncKind::NthValue => {
            let n_expr = call.args[1].bind(dctx.table)?;
            (0..m)
                .map(|i| {
                    let n = match n_expr.eval(dctx.table, dctx.rows[i])? {
                        Value::Int(x) if x >= 1 => x as usize,
                        Value::Null => return Ok(Value::Null),
                        v => {
                            return Err(Error::InvalidArgument(format!(
                                "nth_value: n must be a positive integer, got {v}"
                            )))
                        }
                    };
                    let pieces = dctx.kept_pieces(&mask, i);
                    gather(&pieces, &mut buf);
                    Ok(match buf.get(n - 1) {
                        Some(&x) => kept_out[kp_of(x)].clone(),
                        None => Value::Null,
                    })
                })
                .collect()
        }
        _ => unreachable!("selection dispatch"),
    }
}

/// LEAD / LAG — classic positional semantics, or the framed extension when
/// the call carries an inner ORDER BY.
fn leadlag(dctx: &DirectCtx<'_>, call: &FunctionCall, cp: &CallPlan) -> Result<Vec<Value>> {
    let m = dctx.m();

    // The per-row signed offset (LEAD positive, LAG negative); `None` output
    // means "emit NULL for this row".
    let offset_of =
        |offset_expr: &Option<crate::expr::BoundExpr>, i: usize| -> Result<Option<i64>> {
            let raw = match offset_expr {
                None => 1,
                Some(e) => match e.eval(dctx.table, dctx.rows[i])? {
                    Value::Int(x) => x,
                    Value::Null => return Ok(None),
                    v => {
                        return Err(Error::InvalidArgument(format!(
                            "{}: offset must be an integer, got {v}",
                            call.kind.name()
                        )))
                    }
                },
            };
            Ok(Some(if call.kind == FuncKind::Lag {
                raw.checked_neg().unwrap_or(i64::MAX)
            } else {
                raw
            }))
        };

    if call.inner_order.is_empty() {
        // Classic LEAD/LAG: positional within the partition, frame ignored.
        let values = dctx.values_of(cp)?;
        let offset_expr = call.args.get(1).map(|e| e.bind(dctx.table)).transpose()?;
        let default_expr = call.args.get(2).map(|e| e.bind(dctx.table)).transpose()?;
        let non_null: Vec<usize> = if call.ignore_nulls {
            (0..m).filter(|&i| !values[i].is_null()).collect()
        } else {
            Vec::new()
        };
        return (0..m)
            .map(|i| {
                let default = || -> Result<Value> {
                    Ok(match &default_expr {
                        Some(d) => d.eval(dctx.table, dctx.rows[i])?,
                        None => Value::Null,
                    })
                };
                let Some(off) = offset_of(&offset_expr, i)? else {
                    return Ok(Value::Null);
                };
                if off == 0 {
                    return Ok(values[i].clone());
                }
                if call.ignore_nulls {
                    let idx = non_null.partition_point(|&p| p <= i);
                    let target = if off > 0 {
                        idx.checked_add(off as usize).and_then(|t| t.checked_sub(1))
                    } else {
                        let before = non_null.partition_point(|&p| p < i);
                        usize::try_from(off.unsigned_abs()).ok().and_then(|o| before.checked_sub(o))
                    };
                    return Ok(match target.and_then(|t| non_null.get(t)) {
                        Some(&p) => values[p].clone(),
                        None => default()?,
                    });
                }
                match target_position(i, off, m) {
                    Some(t) => Ok(values[t].clone()),
                    None => default(),
                }
            })
            .collect();
    }

    // Framed LEAD/LAG (§4.6): row number by inner order, offset, select.
    let mask = dctx.mask_of(cp)?;
    let values = dctx.values_of(cp)?;
    let kept_out = kept_values(&values, &mask);
    let OrderKey::Keys(ks) = cp.order.as_ref().expect("framed lead/lag carries keys") else {
        unreachable!("framed lead/lag order is explicit")
    };
    let keys = dctx.keys_for(ks)?;
    let dc = dense_codes_for(&keys, &mask.kept_rows, false);

    let offset_expr = call.args.get(1).map(|e| e.bind(dctx.table)).transpose()?;
    let default_expr = call.args.get(2).map(|e| e.bind(dctx.table)).transpose()?;

    let mut buf: Vec<usize> = Vec::new();
    (0..m)
        .map(|i| {
            let default = || -> Result<Value> {
                Ok(match &default_expr {
                    Some(d) => d.eval(dctx.table, dctx.rows[i])?,
                    None => Value::Null,
                })
            };
            let Some(off) = offset_of(&offset_expr, i)? else {
                return Ok(Value::Null);
            };
            let pieces = dctx.kept_pieces(&mask, i);
            let s = pieces.count();
            let (gmin, gend, ucode) = code_bounds(dctx, &keys, &mask, &dc, i);
            let rn0 = match ucode {
                Some(c) => count_below(&dc, &pieces, c),
                None => {
                    let smaller = count_below(&dc, &pieces, gmin);
                    let earlier = earlier_pieces(&mask, &pieces, i);
                    let eq_before =
                        count_below(&dc, &earlier, gend) - count_below(&dc, &earlier, gmin);
                    smaller + eq_before
                }
            };
            let Some(target) = target_position(rn0, off, s) else {
                return default();
            };
            buf.clear();
            for (a, b) in pieces.iter() {
                buf.extend((a..b).map(|k| dc.code[k]));
            }
            buf.sort_unstable();
            Ok(kept_out[dc.perm[buf[target]]].clone())
        })
        .collect()
}

/// MODE: count dense value ids per frame; most frequent, smallest id (=
/// smallest value) on ties — the range mode index's exact tie-break.
fn mode(dctx: &DirectCtx<'_>, cp: &CallPlan) -> Result<Vec<Value>> {
    let mask = dctx.mask_of(cp)?;
    let values = dctx.values_of(cp)?;
    let kept = kept_values(&values, &mask);
    // Dense ids in value order, same interning as the mode artifact.
    let mut sorted: Vec<&Value> = kept.iter().collect();
    sorted.sort_by(|a, b| a.sql_cmp(b));
    sorted.dedup_by(|a, b| a.sql_eq(b));
    let decode: Vec<Value> = sorted.iter().map(|v| (*v).clone()).collect();
    let ids: Vec<u32> = kept
        .iter()
        .map(|v| decode.binary_search_by(|probe| probe.sql_cmp(v)).expect("value interned") as u32)
        .collect();

    let mut counts: FxHashMap<u32, usize> = FxHashMap::default();
    (0..dctx.m())
        .map(|i| {
            counts.clear();
            for (a, b) in dctx.kept_pieces(&mask, i).iter() {
                for &id in &ids[a..b] {
                    *counts.entry(id).or_insert(0) += 1;
                }
            }
            let mut best: Option<(u32, usize)> = None;
            for (&id, &cnt) in counts.iter() {
                best = match best {
                    Some((bid, bcnt)) if cnt < bcnt || (cnt == bcnt && id >= bid) => {
                        Some((bid, bcnt))
                    }
                    _ => Some((id, cnt)),
                };
            }
            Ok(match best {
                Some((id, _)) => decode[id as usize].clone(),
                None => Value::Null,
            })
        })
        .collect()
}
