//! Framed DISTINCT aggregates via merge sort trees (§4.2, §4.3).
//!
//! Pipeline per partition:
//!
//! 1. evaluate the argument and FILTER; drop NULLs and filtered rows from the
//!    tree entirely, remapping frame bounds (§4.7);
//! 2. hash the kept values (§6.7 — type-independent preprocessing) and
//!    compute shifted previous-occurrence indices (Algorithm 1);
//! 3. build the (annotated) merge sort tree;
//! 4. per row: `count_below(frame, frame_start + 1)` — or the annotated
//!    prefix-aggregate query for SUM/AVG DISTINCT.
//!
//! `MIN(DISTINCT)`/`MAX(DISTINCT)` are semantically identical to their plain
//! forms and route to the segment tree evaluator.
//!
//! **Frame exclusion** (§4.7) makes frames non-contiguous, which interacts
//! with distinctness: a value whose only frame occurrences sit inside the
//! excluded hole must not be counted, while a value occurring both inside and
//! outside the hole still counts once. The paper does not spell this case
//! out; we evaluate the contiguous hull `[a, b)` with the tree and then
//! *correct* for hole-only values by probing per-value occurrence lists —
//! exact, and O(hole · log n) per row (the hole is the current row's peer
//! group, so this is the peer-group-size-bounded part of the query).

use super::{distributive, Ctx};
use crate::error::{Error, Result};
use crate::hash::hash_value;
use crate::remap::Remap;
use crate::spec::{FuncKind, FunctionCall};
use crate::value::Value;
use holistic_core::aggregate::{AvgF64, SumF64, SumI64};
use holistic_core::index::fits_u32;
use holistic_core::{AnnotatedMst, DistinctAggregate, MergeSortTree, TreeIndex};
use rustc_hash::FxHashMap;
use rustc_hash::FxHashSet;

/// Entry point for DISTINCT aggregates.
pub(crate) fn evaluate(ctx: &Ctx<'_>, call: &FunctionCall) -> Result<Vec<Value>> {
    match call.kind {
        FuncKind::Min | FuncKind::Max => distributive::evaluate(ctx, call),
        FuncKind::CountStar => Err(Error::InvalidArgument(
            "COUNT(DISTINCT *) is not valid SQL".into(),
        )),
        _ => {
            if fits_u32(ctx.m() + 1) {
                evaluate_impl::<u32>(ctx, call)
            } else {
                evaluate_impl::<u64>(ctx, call)
            }
        }
    }
}

/// Kept-row preprocessing shared by all distinct aggregates.
struct Prep<I> {
    remap: Remap,
    /// Value hash per kept position.
    hashes: Vec<u64>,
    /// Shifted previous-occurrence indices per kept position.
    prev: Vec<I>,
    /// Kept value (for payloads / corrections) per kept position.
    values: Vec<Value>,
    /// hash → ascending kept positions (for exclusion corrections).
    occurrences: FxHashMap<u64, Vec<usize>>,
}

fn prepare<I: TreeIndex>(ctx: &Ctx<'_>, call: &FunctionCall) -> Result<Prep<I>> {
    let m = ctx.m();
    let all_values = ctx.eval_positions(&call.args[0])?;
    let filter = ctx.filter_mask(call)?;
    let keep: Vec<bool> =
        (0..m).map(|i| filter[i] && !all_values[i].is_null()).collect();
    let remap = Remap::new(&keep);
    let mut hashes = Vec::with_capacity(remap.kept_len());
    let mut values = Vec::with_capacity(remap.kept_len());
    for k in 0..remap.kept_len() {
        let pos = remap.to_position(k);
        hashes.push(hash_value(&all_values[pos]));
        values.push(all_values[pos].clone());
    }
    let prev_usize = holistic_core::prev_idcs_u64(&hashes, ctx.parallel);
    let prev: Vec<I> = prev_usize.iter().map(|&p| I::from_usize(p)).collect();
    let mut occurrences: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
    if ctx.frames.has_exclusion() {
        for (k, &h) in hashes.iter().enumerate() {
            occurrences.entry(h).or_default().push(k);
        }
    }
    Ok(Prep { remap, hashes, prev, values, occurrences })
}

/// The exclusion hole(s) of row `i`, remapped to kept space and clipped to
/// the frame hull.
fn kept_holes(ctx: &Ctx<'_>, prep: &Prep<impl TreeIndex>, i: usize) -> Vec<(usize, usize)> {
    let (a, b) = ctx.frames.bounds[i];
    ctx.frames
        .holes(i)
        .into_iter()
        .map(|(h1, h2)| (h1.max(a).min(b), h2.max(a).min(b)))
        .map(|(h1, h2)| prep.remap.range(h1, h2.max(h1)))
        .filter(|&(h1, h2)| h1 < h2)
        .collect()
}

/// Values that occur inside the row's holes but nowhere else in its frame.
/// `visit` receives one kept position per such value.
fn hole_only_values(
    prep: &Prep<impl TreeIndex>,
    pieces: &holistic_core::RangeSet,
    holes: &[(usize, usize)],
    mut visit: impl FnMut(usize),
) {
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    for &(h1, h2) in holes {
        for p in h1..h2 {
            let h = prep.hashes[p];
            if !seen.insert(h) {
                continue;
            }
            let occ = &prep.occurrences[&h];
            let in_pieces = pieces.iter().any(|(lo, hi)| {
                let idx = occ.partition_point(|&q| q < lo);
                idx < occ.len() && occ[idx] < hi
            });
            if !in_pieces {
                visit(p);
            }
        }
    }
}

fn evaluate_impl<I: TreeIndex>(ctx: &Ctx<'_>, call: &FunctionCall) -> Result<Vec<Value>> {
    let prep = prepare::<I>(ctx, call)?;
    match call.kind {
        FuncKind::Count => {
            let tree = MergeSortTree::<I>::build(&prep.prev, ctx.params);
            ctx.probe(|i| {
                let (a, b) = ctx.frames.bounds[i];
                let (ka, kb) = prep.remap.range(a, b);
                let base = tree.count_below(ka, kb, I::from_usize(ka + 1));
                if !ctx.frames.has_exclusion() {
                    return Ok(Value::Int(base as i64));
                }
                let pieces = prep.remap.range_set(&ctx.frames.range_set(i));
                let holes = kept_holes(ctx, &prep, i);
                let mut correction = 0usize;
                hole_only_values(&prep, &pieces, &holes, |_| correction += 1);
                Ok(Value::Int((base - correction) as i64))
            })
        }
        FuncKind::Sum | FuncKind::Avg => {
            let avg = call.kind == FuncKind::Avg;
            let is_float = prep.values.iter().any(|v| matches!(v, Value::Float(_)));
            if let Some(v) = prep
                .values
                .iter()
                .find(|v| !matches!(v, Value::Int(_) | Value::Float(_)))
            {
                return Err(Error::TypeMismatch {
                    expected: "numeric",
                    got: v.type_name(),
                    context: "SUM/AVG DISTINCT",
                });
            }
            if avg {
                distinct_aggregate::<I, AvgF64>(
                    ctx,
                    &prep,
                    |v| v.as_f64().unwrap_or(0.0),
                    |state, (corr, _)| {
                        let (s, c) = (state.0 - corr.0, state.1 - corr.1);
                        if c == 0 {
                            Value::Null
                        } else {
                            Value::Float(s / c as f64)
                        }
                    },
                )
            } else if is_float {
                distinct_aggregate::<I, SumF64>(
                    ctx,
                    &prep,
                    |v| v.as_f64().unwrap_or(0.0),
                    |s, c| {
                        // `c` carries (correction, counted) packed below.
                        let (corr, cnt) = c;
                        if cnt == 0 {
                            Value::Null
                        } else {
                            Value::Float(s - corr)
                        }
                    },
                )
            } else {
                distinct_aggregate::<I, SumI64>(
                    ctx,
                    &prep,
                    |v| v.as_i64().unwrap_or(0),
                    |s, c| {
                        let (corr, cnt) = c;
                        if cnt == 0 {
                            Value::Null
                        } else {
                            match i64::try_from(s - corr) {
                                Ok(x) => Value::Int(x),
                                // Sums exceeding i64 degrade to float rather
                                // than erroring mid-probe.
                                Err(_) => Value::Float((s - corr) as f64),
                            }
                        }
                    },
                )
            }
        }
        _ => unreachable!("distinct dispatch"),
    }
}

/// Generic distinct-aggregate evaluation: build the annotated tree, probe the
/// hull, correct for hole-only values.
///
/// `finish` receives the hull state and `(correction_state, corrected_count)`
/// and produces the output value — the correction state has the same type as
/// the aggregation state for SUM-like monoids and is a parallel (sum, count)
/// pair for AVG.
fn distinct_aggregate<I, A>(
    ctx: &Ctx<'_>,
    prep: &Prep<I>,
    payload_of: impl Fn(&Value) -> A::Payload + Sync,
    finish: impl Fn(A::State, (A::State, usize)) -> Value + Sync,
) -> Result<Vec<Value>>
where
    I: TreeIndex,
    A: DistinctAggregate,
{
    let payloads: Vec<A::Payload> = prep.values.iter().map(&payload_of).collect();
    let tree = AnnotatedMst::<I, A>::build(&prep.prev, &payloads, ctx.params);
    ctx.probe(|i| {
        let (a, b) = ctx.frames.bounds[i];
        let (ka, kb) = prep.remap.range(a, b);
        let (state, counted) = tree.aggregate_below(ka, kb, I::from_usize(ka + 1));
        if !ctx.frames.has_exclusion() {
            return Ok(finish(state, (A::identity(), counted)));
        }
        let pieces = prep.remap.range_set(&ctx.frames.range_set(i));
        let holes = kept_holes(ctx, prep, i);
        let mut corr = A::identity();
        let mut removed = 0usize;
        hole_only_values(prep, &pieces, &holes, |p| {
            corr = A::combine(corr, A::lift(payload_of(&prep.values[p])));
            removed += 1;
        });
        Ok(finish(state, (corr, counted - removed)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinal_helpers_are_reexported_elsewhere() {
        // The distinct module itself is exercised end-to-end via the executor
        // tests; here we only pin the hull/hole geometry helper.
        let remap = Remap::new(&[true, true, false, true, true]);
        assert_eq!(remap.range(0, 5), (0, 4));
    }
}
