//! Framed DISTINCT aggregates via merge sort trees (§4.2, §4.3).
//!
//! Pipeline per partition:
//!
//! 1. the kept-row mask (FILTER ∧ non-NULL argument) and kept values come
//!    from the artifact cache, remapping frame bounds (§4.7);
//! 2. hash the kept values (§6.7 — type-independent preprocessing) and
//!    compute shifted previous-occurrence indices (Algorithm 1) — the cached
//!    `DistinctPrep` artifact;
//! 3. build the (annotated) merge sort tree — cached per (argument, mask)
//!    and, for SUM/AVG, per aggregate flavor;
//! 4. per row: `count_below(frame, frame_start + 1)` — or the annotated
//!    prefix-aggregate query for SUM/AVG DISTINCT.
//!
//! `MIN(DISTINCT)`/`MAX(DISTINCT)` are semantically identical to their plain
//! forms and route to the segment tree evaluator.
//!
//! **Frame exclusion** (§4.7) makes frames non-contiguous, which interacts
//! with distinctness: a value whose only frame occurrences sit inside the
//! excluded hole must not be counted, while a value occurring both inside and
//! outside the hole still counts once. The paper does not spell this case
//! out; we evaluate the contiguous hull `[a, b)` with the tree and then
//! *correct* for hole-only values by probing per-value occurrence lists —
//! exact, and O(hole · log n) per row (the hole is the current row's peer
//! group, so this is the peer-group-size-bounded part of the query).

use super::{distributive, Ctx, Planned};
use crate::artifacts::{DistinctPrepArt, MaskArtifact};
use crate::error::{Error, Result};
use crate::plan::{AggFlavor, CallPlan};
use crate::spec::{FuncKind, FunctionCall};
use crate::value::Value;
use holistic_core::aggregate::{AvgF64, SumF64, SumI64};
use holistic_core::index::fits_u32;
use holistic_core::{AnnotatedMst, DistinctAggregate, TreeIndex};
use rustc_hash::FxHashSet;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

/// Entry point for DISTINCT aggregates.
pub(crate) fn evaluate(ctx: &Ctx<'_>, call: &FunctionCall, cp: &CallPlan) -> Result<Vec<Value>> {
    match call.kind {
        FuncKind::Min | FuncKind::Max => distributive::evaluate(ctx, call, cp),
        FuncKind::CountStar => {
            Err(Error::InvalidArgument("COUNT(DISTINCT *) is not valid SQL".into()))
        }
        _ => {
            if fits_u32(ctx.m() + 1) {
                evaluate_impl::<u32>(ctx, call, cp)
            } else {
                evaluate_impl::<u64>(ctx, call, cp)
            }
        }
    }
}

/// The exclusion hole(s) of row `i`, remapped to kept space and clipped to
/// the frame hull. Fixed-size return: this runs per output row.
fn kept_holes(ctx: &Ctx<'_>, mask: &MaskArtifact, i: usize) -> ([(usize, usize); 2], usize) {
    let (a, b) = ctx.frames.bounds[i];
    let mut out = [(0usize, 0usize); 2];
    let mut nh = 0usize;
    for (h1, h2) in ctx.frames.holes(i).iter() {
        let (h1, h2) = (h1.max(a).min(b), h2.max(a).min(b));
        let (h1, h2) = mask.remap.range(h1, h2.max(h1));
        if h1 < h2 {
            out[nh] = (h1, h2);
            nh += 1;
        }
    }
    (out, nh)
}

/// Values that occur inside the row's holes but nowhere else in its frame.
/// `visit` receives one kept position per such value.
fn hole_only_values(
    prep: &DistinctPrepArt,
    pieces: &holistic_core::RangeSet,
    holes: &[(usize, usize)],
    mut visit: impl FnMut(usize),
) {
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    for &(h1, h2) in holes {
        for p in h1..h2 {
            let h = prep.hashes[p];
            if !seen.insert(h) {
                continue;
            }
            let occ = &prep.occurrences[&h];
            let in_pieces = pieces.iter().any(|(lo, hi)| {
                let idx = occ.partition_point(|&q| q < lo);
                idx < occ.len() && occ[idx] < hi
            });
            if !in_pieces {
                visit(p);
            }
        }
    }
}

fn evaluate_impl<I: TreeIndex>(
    ctx: &Ctx<'_>,
    call: &FunctionCall,
    cp: &CallPlan,
) -> Result<Vec<Value>> {
    let mask = ctx.mask_art(cp.keys.mask())?;
    let prep = ctx.distinct_prep_art(cp.keys.distinct_prep())?;
    match call.kind {
        FuncKind::Count => {
            let tree = ctx.distinct_count_mst::<I>(cp.keys.distinct_count_mst())?;
            ctx.probe_counts(
                &tree,
                |i, push| {
                    let (a, b) = ctx.frames.bounds[i];
                    let (ka, kb) = mask.remap.range(a, b);
                    if ka < kb {
                        push(&holistic_core::RangeSet::single(ka, kb), I::from_usize(ka + 1));
                    }
                    Ok(Planned::Counted(()))
                },
                |i, (), base| {
                    if !ctx.frames.has_exclusion() {
                        return Ok(Value::Int(base as i64));
                    }
                    // Hole-only corrections never touch the tree; they stay
                    // scalar in both probe modes.
                    let pieces = mask.remap.range_set(&ctx.frames.range_set(i));
                    let (holes, nh) = kept_holes(ctx, &mask, i);
                    let mut correction = 0usize;
                    hole_only_values(&prep, &pieces, &holes[..nh], |_| correction += 1);
                    Ok(Value::Int((base - correction) as i64))
                },
            )
        }
        FuncKind::Sum | FuncKind::Avg => {
            let avg = call.kind == FuncKind::Avg;
            let is_float = prep.values.iter().any(|v| matches!(v, Value::Float(_)));
            if let Some(v) =
                prep.values.iter().find(|v| !matches!(v, Value::Int(_) | Value::Float(_)))
            {
                return Err(Error::TypeMismatch {
                    expected: "numeric",
                    got: v.type_name(),
                    context: "SUM/AVG DISTINCT",
                });
            }
            if avg {
                distinct_aggregate::<I, AvgF64>(
                    ctx,
                    cp,
                    &mask,
                    &prep,
                    AggFlavor::Avg,
                    |v| v.as_f64().unwrap_or(0.0),
                    |state, (corr, _)| {
                        let (s, c) = (state.0 - corr.0, state.1 - corr.1);
                        if c == 0 {
                            Value::Null
                        } else {
                            Value::Float(s / c as f64)
                        }
                    },
                )
            } else if is_float {
                distinct_aggregate::<I, SumF64>(
                    ctx,
                    cp,
                    &mask,
                    &prep,
                    AggFlavor::SumF64,
                    |v| v.as_f64().unwrap_or(0.0),
                    |s, c| {
                        // `c` carries (correction, counted) packed below.
                        let (corr, cnt) = c;
                        if cnt == 0 {
                            Value::Null
                        } else {
                            Value::Float(s - corr)
                        }
                    },
                )
            } else {
                distinct_aggregate::<I, SumI64>(
                    ctx,
                    cp,
                    &mask,
                    &prep,
                    AggFlavor::SumI64,
                    |v| v.as_i64().unwrap_or(0),
                    |s, c| {
                        let (corr, cnt) = c;
                        if cnt == 0 {
                            Value::Null
                        } else {
                            match i64::try_from(s - corr) {
                                Ok(x) => Value::Int(x),
                                // Sums exceeding i64 degrade to float rather
                                // than erroring mid-probe.
                                Err(_) => Value::Float((s - corr) as f64),
                            }
                        }
                    },
                )
            }
        }
        _ => unreachable!("distinct dispatch"),
    }
}

/// Generic distinct-aggregate evaluation: fetch (or build) the annotated
/// tree, probe the hull, correct for hole-only values.
///
/// `finish` receives the hull state and `(correction_state, corrected_count)`
/// and produces the output value — the correction state has the same type as
/// the aggregation state for SUM-like monoids and is a parallel (sum, count)
/// pair for AVG.
#[allow(clippy::too_many_arguments)]
fn distinct_aggregate<I, A>(
    ctx: &Ctx<'_>,
    cp: &CallPlan,
    mask: &Arc<MaskArtifact>,
    prep: &Arc<DistinctPrepArt>,
    flavor: AggFlavor,
    payload_of: impl Fn(&Value) -> A::Payload + Sync,
    finish: impl Fn(A::State, (A::State, usize)) -> Value + Sync,
) -> Result<Vec<Value>>
where
    I: TreeIndex,
    A: DistinctAggregate + 'static,
{
    let stats = ctx.cache.stats();
    let tree: Arc<AnnotatedMst<I, A>> =
        ctx.cache.get_or_build(cp.keys.distinct_agg(flavor), || {
            stats.mst_builds.fetch_add(1, Relaxed);
            let prev: Vec<I> = prep.prev.iter().map(|&p| I::from_usize(p)).collect();
            let payloads: Vec<A::Payload> = prep.values.iter().map(&payload_of).collect();
            Ok(AnnotatedMst::<I, A>::build(&prev, &payloads, ctx.params))
        })?;
    ctx.probe_with(
        || ctx.new_probe_cursor(),
        |cur, i| {
            let (a, b) = ctx.frames.bounds[i];
            let (ka, kb) = mask.remap.range(a, b);
            let (state, counted) =
                tree.aggregate_below_with_cursor(ka, kb, I::from_usize(ka + 1), cur);
            if !ctx.frames.has_exclusion() {
                return Ok(finish(state, (A::identity(), counted)));
            }
            let pieces = mask.remap.range_set(&ctx.frames.range_set(i));
            let (holes, nh) = kept_holes(ctx, mask, i);
            let mut corr = A::identity();
            let mut removed = 0usize;
            hole_only_values(prep, &pieces, &holes[..nh], |p| {
                corr = A::combine(corr, A::lift(payload_of(&prep.values[p])));
                removed += 1;
            });
            Ok(finish(state, (corr, counted - removed)))
        },
    )
}

#[cfg(test)]
mod tests {
    use crate::remap::Remap;

    #[test]
    fn ordinal_helpers_are_reexported_elsewhere() {
        // The distinct module itself is exercised end-to-end via the executor
        // tests; here we only pin the hull/hole geometry helper.
        let remap = Remap::new(&[true, true, false, true, true]);
        assert_eq!(remap.range(0, 5), (0, 4));
    }
}
