//! Framed distributive/algebraic aggregates (SUM, COUNT, AVG, MIN, MAX)
//! without DISTINCT — the classic segment tree path of Leis et al. (§3.2).
//!
//! These are not this paper's contribution, but the engine needs them (a) for
//! completeness, (b) because the paper's algorithms explicitly slot in next
//! to them, and (c) as the distributive backbone the evaluation compares
//! against. Non-monotonic frames are free: segment trees never rely on frame
//! overlap.
//!
//! All trees come from the artifact cache: the kept-row count tree is shared
//! by every aggregate over the same mask, and the data trees (whose monoid
//! depends on the observed value types) build lazily under data-dependent
//! keys during the probe phase.

use super::Ctx;
use crate::artifacts::ArtifactBytes;
use crate::error::{Error, Result};
use crate::plan::{CallPlan, SegFlavor};
use crate::spec::{FuncKind, FunctionCall};
use crate::value::{DataType, Value};
use holistic_segtree::{MaxMonoid, MinMonoid, SegmentTree, SumF64Monoid, SumMonoid};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

/// Order-preserving i64 encoding of an f64 (total order, NaN greatest).
pub(crate) fn f64_to_ordinal(x: f64) -> i64 {
    let b = x.to_bits();
    let u = if b & (1 << 63) != 0 { !b } else { b | (1 << 63) };
    (u ^ (1 << 63)) as i64
}

/// Inverse of [`f64_to_ordinal`].
pub(crate) fn ordinal_to_f64(i: i64) -> f64 {
    let u = (i as u64) ^ (1 << 63);
    let b = if u & (1 << 63) != 0 { u ^ (1 << 63) } else { !u };
    f64::from_bits(b)
}

/// How MIN/MAX ordinals decode back into values.
pub(crate) enum OrdinalDecode {
    Int,
    Date,
    Float,
    Bool,
    Str(Vec<Arc<str>>),
}

/// The cached MIN/MAX ordinal encoding (keyed by expression only — the
/// encoding covers all positions, mask-independent).
struct OrdEnc {
    ords: Vec<Option<i64>>,
    decode: OrdinalDecode,
}

impl ArtifactBytes for OrdEnc {
    fn bytes_built(&self) -> usize {
        let table = match &self.decode {
            OrdinalDecode::Str(uniq) => uniq.len() * std::mem::size_of::<Arc<str>>(),
            _ => 0,
        };
        self.ords.len() * std::mem::size_of::<Option<i64>>() + table
    }
}

/// Encodes comparable values as i64 ordinals for MIN/MAX segment trees.
pub(crate) fn encode_ordinals(values: &[Value]) -> Result<(Vec<Option<i64>>, OrdinalDecode)> {
    // Establish the column type from the first non-null value.
    let first = values.iter().find(|v| !v.is_null());
    let decode = match first {
        None | Some(Value::Int(_)) => OrdinalDecode::Int,
        Some(Value::Date(_)) => OrdinalDecode::Date,
        Some(Value::Float(_)) => OrdinalDecode::Float,
        Some(Value::Bool(_)) => OrdinalDecode::Bool,
        Some(Value::Str(_)) => {
            let mut uniq: Vec<Arc<str>> = values
                .iter()
                .filter_map(|v| match v {
                    Value::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .collect();
            uniq.sort_unstable();
            uniq.dedup();
            OrdinalDecode::Str(uniq)
        }
        Some(Value::Null) => unreachable!(),
    };
    let mut ords = Vec::with_capacity(values.len());
    for v in values {
        let o = match (v, &decode) {
            (Value::Null, _) => None,
            (Value::Int(x), OrdinalDecode::Int) => Some(*x),
            (Value::Int(x), OrdinalDecode::Float) => Some(f64_to_ordinal(*x as f64)),
            (Value::Float(x), OrdinalDecode::Float) => Some(f64_to_ordinal(*x)),
            (Value::Float(x), OrdinalDecode::Int) => Some(f64_to_ordinal(*x)), // promoted below
            (Value::Date(x), OrdinalDecode::Date) => Some(*x as i64),
            (Value::Bool(x), OrdinalDecode::Bool) => Some(*x as i64),
            (Value::Str(s), OrdinalDecode::Str(uniq)) => {
                Some(uniq.binary_search(s).expect("string interned") as i64)
            }
            (v, _) => {
                return Err(Error::TypeMismatch {
                    expected: "homogeneous comparable column",
                    got: v.type_name(),
                    context: "MIN/MAX",
                })
            }
        };
        ords.push(o);
    }
    // Mixed int/float columns: re-encode everything through the float path.
    if matches!(decode, OrdinalDecode::Int) && values.iter().any(|v| matches!(v, Value::Float(_))) {
        let ords = values.iter().map(|v| v.as_f64().map(f64_to_ordinal)).collect();
        return Ok((ords, OrdinalDecode::Float));
    }
    Ok((ords, decode))
}

pub(crate) fn decode_ordinal(o: i64, d: &OrdinalDecode) -> Value {
    match d {
        OrdinalDecode::Int => Value::Int(o),
        OrdinalDecode::Date => Value::Date(o as i32),
        OrdinalDecode::Float => Value::Float(ordinal_to_f64(o)),
        OrdinalDecode::Bool => Value::Bool(o != 0),
        OrdinalDecode::Str(uniq) => Value::Str(uniq[o as usize].clone()),
    }
}

/// Evaluates a non-DISTINCT framed aggregate.
pub(crate) fn evaluate(ctx: &Ctx<'_>, call: &FunctionCall, cp: &CallPlan) -> Result<Vec<Value>> {
    let m = ctx.m();

    if call.kind == FuncKind::CountStar {
        let tree = ctx.count_segtree(cp.keys.count_segtree())?;
        return ctx.probe(move |i| {
            Ok(Value::Int(tree.query_multi(ctx.frames.range_set(i).iter()) as i64))
        });
    }

    let values = ctx.values_art(cp.keys.values())?;
    // "Participating" = passes FILTER and is non-NULL — exactly the mask the
    // plan derived (screen = the argument).
    let mask = ctx.mask_art(cp.keys.mask())?;
    let count_tree = ctx.count_segtree(cp.keys.count_segtree())?;
    let stats = ctx.cache.stats();

    match call.kind {
        FuncKind::Count => ctx.probe(move |i| {
            Ok(Value::Int(count_tree.query_multi(ctx.frames.range_set(i).iter()) as i64))
        }),
        FuncKind::Sum | FuncKind::Avg => {
            let avg = call.kind == FuncKind::Avg;
            let is_float = values.iter().any(|v| matches!(v, Value::Float(_)));
            let bad =
                values.iter().find(|v| !matches!(v, Value::Null | Value::Int(_) | Value::Float(_)));
            if let Some(v) = bad {
                return Err(Error::TypeMismatch {
                    expected: "numeric",
                    got: v.type_name(),
                    context: "SUM/AVG",
                });
            }
            if is_float || avg {
                let key = cp.keys.seg(SegFlavor::SumF64);
                let tree: Arc<SegmentTree<SumF64Monoid>> = ctx.cache.get_or_build(key, || {
                    stats.segtree_builds.fetch_add(1, Relaxed);
                    let inputs: Vec<f64> = (0..m)
                        .map(|i| if mask.keep[i] { values[i].as_f64().unwrap_or(0.0) } else { 0.0 })
                        .collect();
                    Ok(SegmentTree::<SumF64Monoid>::build(&inputs, ctx.parallel))
                })?;
                ctx.probe(move |i| {
                    let rs = ctx.frames.range_set(i);
                    let cnt = count_tree.query_multi(rs.iter());
                    if cnt == 0 {
                        return Ok(Value::Null);
                    }
                    let s = tree.query_multi(rs.iter());
                    Ok(Value::Float(if avg { s / cnt as f64 } else { s }))
                })
            } else {
                let key = cp.keys.seg(SegFlavor::SumI64);
                let tree: Arc<SegmentTree<SumMonoid>> = ctx.cache.get_or_build(key, || {
                    stats.segtree_builds.fetch_add(1, Relaxed);
                    let inputs: Vec<i64> = (0..m)
                        .map(|i| if mask.keep[i] { values[i].as_i64().unwrap_or(0) } else { 0 })
                        .collect();
                    Ok(SegmentTree::<SumMonoid>::build(&inputs, ctx.parallel))
                })?;
                ctx.probe(move |i| {
                    let rs = ctx.frames.range_set(i);
                    if count_tree.query_multi(rs.iter()) == 0 {
                        return Ok(Value::Null);
                    }
                    let s = tree.query_multi(rs.iter());
                    i64::try_from(s).map(Value::Int).map_err(|_| Error::Overflow("SUM"))
                })
            }
        }
        FuncKind::Min | FuncKind::Max => {
            let is_min = call.kind == FuncKind::Min;
            let enc: Arc<OrdEnc> = ctx.cache.get_or_build(cp.keys.ordinal_enc(), || {
                encode_ordinals(&values).map(|(ords, decode)| OrdEnc { ords, decode })
            })?;
            if is_min {
                let key = cp.keys.seg(SegFlavor::Min);
                let enc2 = Arc::clone(&enc);
                let tree: Arc<SegmentTree<MinMonoid>> = ctx.cache.get_or_build(key, || {
                    stats.segtree_builds.fetch_add(1, Relaxed);
                    let inputs: Vec<i64> =
                        (0..m)
                            .map(|i| {
                                if mask.keep[i] {
                                    enc2.ords[i].unwrap_or(i64::MAX)
                                } else {
                                    i64::MAX
                                }
                            })
                            .collect();
                    Ok(SegmentTree::<MinMonoid>::build(&inputs, ctx.parallel))
                })?;
                ctx.probe(move |i| {
                    let rs = ctx.frames.range_set(i);
                    if count_tree.query_multi(rs.iter()) == 0 {
                        return Ok(Value::Null);
                    }
                    Ok(decode_ordinal(tree.query_multi(rs.iter()), &enc.decode))
                })
            } else {
                let key = cp.keys.seg(SegFlavor::Max);
                let enc2 = Arc::clone(&enc);
                let tree: Arc<SegmentTree<MaxMonoid>> = ctx.cache.get_or_build(key, || {
                    stats.segtree_builds.fetch_add(1, Relaxed);
                    let inputs: Vec<i64> =
                        (0..m)
                            .map(|i| {
                                if mask.keep[i] {
                                    enc2.ords[i].unwrap_or(i64::MIN)
                                } else {
                                    i64::MIN
                                }
                            })
                            .collect();
                    Ok(SegmentTree::<MaxMonoid>::build(&inputs, ctx.parallel))
                })?;
                ctx.probe(move |i| {
                    let rs = ctx.frames.range_set(i);
                    if count_tree.query_multi(rs.iter()) == 0 {
                        return Ok(Value::Null);
                    }
                    Ok(decode_ordinal(tree.query_multi(rs.iter()), &enc.decode))
                })
            }
        }
        _ => unreachable!("dispatch guarantees aggregate kind"),
    }
}

/// Exposed for tests: the expected output type of MIN/MAX given inputs.
#[allow(dead_code)]
pub(crate) fn minmax_probe_type(values: &[Value]) -> Result<DataType> {
    let (_, d) = encode_ordinals(values)?;
    Ok(match d {
        OrdinalDecode::Int => DataType::Int,
        OrdinalDecode::Date => DataType::Date,
        OrdinalDecode::Float => DataType::Float,
        OrdinalDecode::Bool => DataType::Bool,
        OrdinalDecode::Str(_) => DataType::Str,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_ordinal_roundtrip_and_order() {
        let xs = [f64::NEG_INFINITY, -1.5e300, -1.0, -0.0, 0.0, 1e-300, 1.0, 2.5, f64::INFINITY];
        let ords: Vec<i64> = xs.iter().map(|&x| f64_to_ordinal(x)).collect();
        for w in ords.windows(2) {
            assert!(w[0] <= w[1], "ordinals must be monotone: {w:?}");
        }
        for &x in &xs {
            let back = ordinal_to_f64(f64_to_ordinal(x));
            assert!(back == x || (back == 0.0 && x == 0.0), "{x} -> {back}");
        }
        assert!(f64_to_ordinal(f64::NAN) > f64_to_ordinal(f64::INFINITY));
    }

    #[test]
    fn encode_strings_densely() {
        let vals = vec![Value::str("b"), Value::Null, Value::str("a"), Value::str("b")];
        let (ords, d) = encode_ordinals(&vals).unwrap();
        assert_eq!(ords, vec![Some(1), None, Some(0), Some(1)]);
        assert_eq!(decode_ordinal(0, &d), Value::str("a"));
        assert_eq!(decode_ordinal(1, &d), Value::str("b"));
    }

    #[test]
    fn mixed_int_float_promotes() {
        let vals = vec![Value::Int(2), Value::Float(1.5)];
        let (ords, _) = encode_ordinals(&vals).unwrap();
        assert!(ords[0] > ords[1]);
        assert_eq!(minmax_probe_type(&vals).unwrap(), DataType::Float);
    }

    #[test]
    fn incomparable_mix_errors() {
        let vals = vec![Value::Int(2), Value::str("x")];
        assert!(encode_ordinals(&vals).is_err());
    }
}
