//! Alternate hull-frame evaluators behind the strategy layer — the
//! baselines of Table 1 promoted to production paths.
//!
//! The cost model routes a (partition × call) here when sliding or
//! tree-free selection beats the merge sort tree: narrow monotonic frames
//! favor the incremental sorted array or the order-statistic tree, static
//! mid-size partitions the sorted-list segment tree. All three consume the
//! *same cached artifacts* (mask, kept values, dense codes) as the MST
//! evaluators, so a mixed partition — one call on the MST, another on an
//! alternate — still shares its preprocessing sort.
//!
//! Applicability is the strategy layer's contract: percentiles (DISC /
//! CONT / MEDIAN) on all three engines, COUNT(DISTINCT) on the incremental
//! multiset — and only for frames without exclusion, so every frame is a
//! contiguous hull in kept space. Selection operates on unique dense codes
//! (exact integers); outputs are clones of the same kept values the MST
//! path returns, so results are bit-identical by construction.

use super::{fraction_arg, Ctx};
use crate::error::{Error, Result};
use crate::plan::CallPlan;
use crate::spec::{FuncKind, FunctionCall};
use crate::strategy::Strategy;
use crate::value::Value;
use holistic_segtree::SortedListSegTree;
use holistic_strategies::incremental;
use holistic_strategies::ostree::OrderStatisticTree;

/// Evaluates one call on an alternate strategy. Callers guarantee
/// `applicable(strategy, class, stats)` held for this call.
pub(crate) fn evaluate(
    ctx: &Ctx<'_>,
    call: &FunctionCall,
    cp: &CallPlan,
    strategy: Strategy,
) -> Result<Vec<Value>> {
    match call.kind {
        FuncKind::Count if call.distinct => count_distinct_incremental(ctx, cp),
        FuncKind::PercentileDisc | FuncKind::PercentileCont | FuncKind::Median => {
            percentile(ctx, call, cp, strategy)
        }
        _ => unreachable!("strategy layer routes only percentiles/COUNT DISTINCT to alternates"),
    }
}

/// Kept-space hull frames, one per row (no exclusion ⇒ one piece per frame).
fn kept_frames(ctx: &Ctx<'_>, mask: &crate::artifacts::MaskArtifact) -> Vec<(usize, usize)> {
    (0..ctx.m())
        .map(|i| {
            let (a, b) = ctx.frames.bounds[i];
            mask.remap.range(a, b)
        })
        .collect()
}

/// COUNT(DISTINCT x) on the incremental hash multiset (Table 1 row 1):
/// O(1) amortized per slide step on monotonic frames.
fn count_distinct_incremental(ctx: &Ctx<'_>, cp: &CallPlan) -> Result<Vec<Value>> {
    let mask = ctx.mask_art(cp.keys.mask())?;
    let prep = ctx.distinct_prep_art(cp.keys.distinct_prep())?;
    let frames = kept_frames(ctx, &mask);
    let counts = incremental::distinct_count(&prep.hashes, &frames);
    Ok(counts.into_iter().map(|c| Value::Int(c as i64)).collect())
}

/// Percentiles by sliding / selecting over unique dense codes.
fn percentile(
    ctx: &Ctx<'_>,
    call: &FunctionCall,
    cp: &CallPlan,
    strategy: Strategy,
) -> Result<Vec<Value>> {
    // Same artifact acquisition order as the MST selection path, so error
    // precedence (mask/values/keys before the fraction argument) matches.
    let mask = ctx.mask_art(cp.keys.mask())?;
    let kept_out = ctx.kept_values_art(cp.keys.kept_values())?;
    let dc = ctx.dense_codes_art(cp.keys.dense_codes())?;
    let m = ctx.m();
    let frames = kept_frames(ctx, &mask);

    let cont = call.kind == FuncKind::PercentileCont;
    let p = if call.kind == FuncKind::Median { 0.5 } else { fraction_arg(ctx, call)? };
    if cont {
        if let Some(v) = kept_out.iter().find(|v| v.as_f64().is_none()) {
            return Err(Error::TypeMismatch {
                expected: "numeric",
                got: v.type_name(),
                context: "percentile_cont",
            });
        }
    }

    let mut out = vec![Value::Null; m];
    {
        // Fills row `i` given the frame size and a 0-based rank → code
        // accessor. DISC picks one code; CONT interpolates between two.
        let mut emit = |i: usize, s: usize, select: &mut dyn FnMut(usize) -> usize| {
            if s == 0 {
                return;
            }
            if cont {
                let rn = p * (s - 1) as f64;
                let lo = rn.floor() as usize;
                let hi = rn.ceil() as usize;
                let x = kept_out[dc.perm[select(lo)]].as_f64().expect("checked numeric above");
                out[i] = if lo == hi {
                    Value::Float(x)
                } else {
                    let y = kept_out[dc.perm[select(hi)]].as_f64().expect("checked numeric above");
                    Value::Float(x + (y - x) * (rn - lo as f64))
                };
            } else {
                let j = ((p * s as f64).ceil() as usize).clamp(1, s);
                out[i] = kept_out[dc.perm[select(j - 1)]].clone();
            }
        };

        match strategy {
            Strategy::Incremental => {
                // Sorted array of codes under add/remove (the O(n²) row of
                // Table 1 — chosen only when frames are narrow).
                let mut sorted: Vec<usize> = Vec::new();
                incremental::slide(
                    &frames,
                    &mut sorted,
                    |s, k| {
                        let c = dc.code[k];
                        let idx = s.partition_point(|&v| v < c);
                        s.insert(idx, c);
                    },
                    |s, k| {
                        let c = dc.code[k];
                        let idx = s.partition_point(|&v| v < c);
                        s.remove(idx);
                    },
                    |s, i| emit(i, s.len(), &mut |j| s[j]),
                );
            }
            Strategy::OsTree => {
                let mut tree = OrderStatisticTree::new();
                incremental::slide(
                    &frames,
                    &mut tree,
                    |t, k| t.insert(dc.code[k] as i64),
                    |t, k| t.remove(dc.code[k] as i64),
                    |t, i| emit(i, t.len(), &mut |j| t.select(j).expect("j < len") as usize),
                );
            }
            Strategy::SegTree => {
                let codes: Vec<i64> = dc.code.iter().map(|&c| c as i64).collect();
                let tree = SortedListSegTree::build(&codes, ctx.parallel);
                for (i, &(ka, kb)) in frames.iter().enumerate() {
                    emit(i, kb - ka, &mut |j| {
                        tree.select(ka, kb, j).expect("j < frame size") as usize
                    });
                }
            }
            Strategy::Naive | Strategy::Mst => {
                unreachable!("naive/MST percentiles have dedicated evaluators")
            }
        }
    }
    Ok(out)
}
