//! Window function evaluation over one sorted partition.
//!
//! Every family follows the paper's two-phase pattern: build a read-only
//! index (merge sort tree / segment tree / range tree) once per partition,
//! then probe it once per row — embarrassingly parallel (§4.1).

pub(crate) mod distinct;
pub(crate) mod distributive;
pub(crate) mod leadlag;
pub(crate) mod mode;
pub(crate) mod rank;
pub(crate) mod select_based;

use crate::error::{Error, Result};
use crate::frame::ResolvedFrames;
use crate::order::KeyColumns;
use crate::spec::{FuncKind, FunctionCall};
use crate::table::Table;
use crate::value::Value;
use holistic_core::MstParams;

/// Evaluation context of one sorted partition.
pub(crate) struct Ctx<'a> {
    /// The full table.
    pub table: &'a Table,
    /// Partition positions → table rows, in window order.
    pub rows: &'a [usize],
    /// Resolved frames (per position).
    pub frames: &'a ResolvedFrames,
    /// The window ORDER BY keys (rank fallback criterion).
    pub window_keys: &'a KeyColumns,
    /// Parallel probing allowed.
    pub parallel: bool,
    /// Merge sort tree parameters.
    pub params: MstParams,
}

impl<'a> Ctx<'a> {
    /// Partition size.
    pub fn m(&self) -> usize {
        self.rows.len()
    }

    /// Evaluates an expression for every position (in window order).
    pub fn eval_positions(&self, expr: &crate::expr::Expr) -> Result<Vec<Value>> {
        let bound = expr.bind(self.table)?;
        self.rows.iter().map(|&r| bound.eval(self.table, r)).collect()
    }

    /// The FILTER mask per position (`true` = row participates).
    pub fn filter_mask(&self, call: &FunctionCall) -> Result<Vec<bool>> {
        match &call.filter {
            None => Ok(vec![true; self.m()]),
            Some(pred) => {
                let bound = pred.bind(self.table)?;
                self.rows
                    .iter()
                    .map(|&r| Ok(bound.eval(self.table, r)?.is_truthy()))
                    .collect()
            }
        }
    }

    /// Runs `f` for every position, in parallel when allowed.
    pub fn probe<F>(&self, f: F) -> Result<Vec<Value>>
    where
        F: Fn(usize) -> Result<Value> + Send + Sync,
    {
        use rayon::prelude::*;
        if self.parallel && self.m() >= 2048 {
            (0..self.m()).into_par_iter().map(f).collect()
        } else {
            (0..self.m()).map(f).collect()
        }
    }
}

/// Dispatches a call to its family evaluator. Returns per-position values.
pub(crate) fn evaluate_call(ctx: &Ctx<'_>, call: &FunctionCall) -> Result<Vec<Value>> {
    call.validate()?;
    use FuncKind::*;
    match call.kind {
        CountStar | Count | Sum | Avg | Min | Max => {
            if call.distinct {
                distinct::evaluate(ctx, call)
            } else {
                distributive::evaluate(ctx, call)
            }
        }
        RowNumber | Rank | PercentRank | CumeDist | Ntile => rank::evaluate(ctx, call),
        DenseRank => rank::evaluate_dense_rank(ctx, call),
        PercentileDisc | PercentileCont | Median | FirstValue | LastValue | NthValue => {
            select_based::evaluate(ctx, call)
        }
        Lead | Lag => leadlag::evaluate(ctx, call),
        Mode => mode::evaluate(ctx, call),
    }
}

/// Evaluates a constant expression (row-independent arguments like the
/// percentile fraction).
pub(crate) fn eval_const(ctx: &Ctx<'_>, expr: &crate::expr::Expr) -> Result<Value> {
    let bound = expr.bind(ctx.table)?;
    // Use row 0 if any; constant expressions don't read columns.
    bound.eval(ctx.table, ctx.rows.first().copied().unwrap_or(0))
}

/// Extracts a fraction in [0, 1] for percentile calls.
pub(crate) fn fraction_arg(ctx: &Ctx<'_>, call: &FunctionCall) -> Result<f64> {
    let v = eval_const(ctx, &call.args[0])?;
    match v.as_f64() {
        Some(f) if (0.0..=1.0).contains(&f) => Ok(f),
        _ => Err(Error::InvalidArgument(format!(
            "{}: fraction must be in [0, 1], got {v}",
            call.kind.name()
        ))),
    }
}
