//! Window function evaluation over one sorted partition — the *probe* phase
//! of the plan → build → probe pipeline.
//!
//! Every family follows the paper's two-phase pattern: preprocessing
//! products (merge sort trees / segment trees / range trees) are built once
//! per partition — requested through the shared
//! [`crate::artifacts::ArtifactCache`] so structurally equal requests from
//! different calls coincide — then probed once per row, embarrassingly
//! parallel (§4.1). Evaluators receive their call's [`CallPlan`] carrying
//! the canonical artifact keys the plan phase derived.

pub(crate) mod distinct;
pub(crate) mod distributive;
pub(crate) mod leadlag;
pub(crate) mod mode;
pub(crate) mod rank;
pub(crate) mod select_based;

use crate::artifacts::ArtifactCache;
use crate::error::{Error, Result};
use crate::frame::ResolvedFrames;
use crate::plan::CallPlan;
use crate::spec::{FuncKind, FunctionCall};
use crate::table::Table;
use crate::value::Value;
use holistic_core::MstParams;

/// Evaluation context of one sorted partition.
pub(crate) struct Ctx<'a> {
    /// The full table.
    pub table: &'a Table,
    /// Partition positions → table rows, in window order.
    pub rows: &'a [usize],
    /// Resolved frames (per position).
    pub frames: &'a ResolvedFrames,
    /// Parallel probing allowed.
    pub parallel: bool,
    /// Merge sort tree parameters.
    pub params: MstParams,
    /// The partition's preprocessing-artifact cache.
    pub cache: &'a ArtifactCache,
}

impl<'a> Ctx<'a> {
    /// Partition size.
    pub fn m(&self) -> usize {
        self.rows.len()
    }

    /// Evaluates an expression for every position (in window order).
    pub fn eval_positions(&self, expr: &crate::expr::Expr) -> Result<Vec<Value>> {
        let bound = expr.bind(self.table)?;
        self.rows.iter().map(|&r| bound.eval(self.table, r)).collect()
    }

    /// Runs `f` for every position, in parallel when allowed.
    pub fn probe<F>(&self, f: F) -> Result<Vec<Value>>
    where
        F: Fn(usize) -> Result<Value> + Send + Sync,
    {
        use rayon::prelude::*;
        if self.parallel && self.m() >= 2048 {
            (0..self.m()).into_par_iter().map(f).collect()
        } else {
            (0..self.m()).map(f).collect()
        }
    }
}

/// Dispatches a call to its family evaluator. Returns per-position values.
pub(crate) fn evaluate_call(
    ctx: &Ctx<'_>,
    call: &FunctionCall,
    cp: &CallPlan,
) -> Result<Vec<Value>> {
    use FuncKind::*;
    match call.kind {
        CountStar | Count | Sum | Avg | Min | Max => {
            if call.distinct {
                distinct::evaluate(ctx, call, cp)
            } else {
                distributive::evaluate(ctx, call, cp)
            }
        }
        RowNumber | Rank | PercentRank | CumeDist | Ntile => rank::evaluate(ctx, call, cp),
        DenseRank => rank::evaluate_dense_rank(ctx, call, cp),
        PercentileDisc | PercentileCont | Median | FirstValue | LastValue | NthValue => {
            select_based::evaluate(ctx, call, cp)
        }
        Lead | Lag => leadlag::evaluate(ctx, call, cp),
        Mode => mode::evaluate(ctx, call, cp),
    }
}

/// Evaluates a constant expression (row-independent arguments like the
/// percentile fraction).
pub(crate) fn eval_const(ctx: &Ctx<'_>, expr: &crate::expr::Expr) -> Result<Value> {
    let bound = expr.bind(ctx.table)?;
    // Use row 0 if any; constant expressions don't read columns.
    bound.eval(ctx.table, ctx.rows.first().copied().unwrap_or(0))
}

/// Extracts a fraction in [0, 1] for percentile calls.
pub(crate) fn fraction_arg(ctx: &Ctx<'_>, call: &FunctionCall) -> Result<f64> {
    let v = eval_const(ctx, &call.args[0])?;
    match v.as_f64() {
        Some(f) if (0.0..=1.0).contains(&f) => Ok(f),
        _ => Err(Error::InvalidArgument(format!(
            "{}: fraction must be in [0, 1], got {v}",
            call.kind.name()
        ))),
    }
}
