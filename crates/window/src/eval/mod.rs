//! Window function evaluation over one sorted partition — the *probe* phase
//! of the plan → build → probe pipeline.
//!
//! Every family follows the paper's two-phase pattern: preprocessing
//! products (merge sort trees / segment trees / range trees) are built once
//! per partition — requested through the shared
//! [`crate::artifacts::ArtifactCache`] so structurally equal requests from
//! different calls coincide — then probed once per row, embarrassingly
//! parallel (§4.1). Evaluators receive their call's [`CallPlan`] carrying
//! the canonical artifact keys the plan phase derived.

pub(crate) mod alt;
pub(crate) mod direct;
pub(crate) mod distinct;
pub(crate) mod distributive;
pub(crate) mod leadlag;
pub(crate) mod mode;
pub(crate) mod rank;
pub(crate) mod select_based;

use crate::artifacts::ArtifactCache;
use crate::error::{Error, Result};
use crate::executor::AtomicProbeKernel;
use crate::frame::ResolvedFrames;
use crate::plan::CallPlan;
use crate::spec::{FuncKind, FunctionCall};
use crate::table::Table;
use crate::value::Value;
use crate::vm::{self, AtomicExprVm, ExprVmStats};
use holistic_core::{
    BlockScratch, CursorStats, MergeSortTree, MstParams, ProbeCursor, RangeSet, SelectCursor,
    TreeIndex,
};

/// Rows per block handed to the MST block kernels. Large enough to keep
/// dozens of independent cascade searches in flight per level, small enough
/// that the per-block query/count buffers stay cache-resident.
const PROBE_BLOCK: usize = 256;

/// Evaluation context of one sorted partition.
pub(crate) struct Ctx<'a> {
    /// The full table.
    pub table: &'a Table,
    /// Partition positions → table rows, in window order.
    pub rows: &'a [usize],
    /// Resolved frames (per position).
    pub frames: &'a ResolvedFrames,
    /// Parallel probing allowed.
    pub parallel: bool,
    /// Merge sort tree parameters.
    pub params: MstParams,
    /// The partition's preprocessing-artifact cache.
    pub cache: &'a ArtifactCache,
    /// Seed tree probes with cursors (see `ProbeOptions`).
    pub cursors: bool,
    /// Route MST probes through the block kernels (see `ProbeOptions`).
    pub block_probes: bool,
    /// Evaluate row expressions through compiled VM programs.
    pub compiled_exprs: bool,
    /// Query-level probe-kernel counters; cursors flush into it when their
    /// probe loop (or chunk) finishes.
    pub kernel: &'a AtomicProbeKernel,
    /// Query-level expression-VM counters.
    pub vm: &'a AtomicExprVm,
}

/// Outcome of planning one row's block queries: either the row pushed
/// queries and `finish` computes its value from their results, or the row
/// resolved immediately (empty frame, dropped row, NULL argument).
pub(crate) enum Planned<S> {
    /// Queries pushed; carry per-row state to `finish`.
    Counted(S),
    /// Row resolved without consuming block-kernel results.
    Done(Value),
}

/// Per-probe-loop cursor state: owns the loop's cursors and exposes their
/// counters so [`Ctx::probe_with`] can flush them into the query-level
/// kernel. Implemented for the cursor types, tuples of them, and `()` for
/// loops without tree probes.
pub(crate) trait CursorState: Send {
    /// Accumulated counters of every cursor in this state.
    fn stats(&self) -> CursorStats;
}

impl CursorState for () {
    fn stats(&self) -> CursorStats {
        CursorStats::default()
    }
}

impl CursorState for ProbeCursor {
    fn stats(&self) -> CursorStats {
        self.stats
    }
}

impl CursorState for SelectCursor {
    fn stats(&self) -> CursorStats {
        self.stats
    }
}

impl CursorState for (ProbeCursor, SelectCursor) {
    fn stats(&self) -> CursorStats {
        let mut s = self.0.stats;
        s.merge_from(&self.1.stats);
        s
    }
}

impl<'a> Ctx<'a> {
    /// Partition size.
    pub fn m(&self) -> usize {
        self.rows.len()
    }

    /// Evaluates an expression for every position (in window order): one
    /// compiled-program run over the whole partition, falling back to the
    /// per-row interpreter for the canonical first error (or when compiled
    /// evaluation is disabled).
    pub fn eval_positions(&self, expr: &crate::expr::Expr) -> Result<Vec<Value>> {
        let bound = expr.bind(self.table)?;
        let mut stats = ExprVmStats::default();
        let out = vm::eval_rows(&bound, self.table, self.rows, self.compiled_exprs, &mut stats);
        self.vm.absorb(&stats);
        out
    }

    /// A probe cursor honoring the query's `ProbeOptions`.
    pub fn new_probe_cursor(&self) -> ProbeCursor {
        if self.cursors {
            ProbeCursor::new()
        } else {
            ProbeCursor::disabled()
        }
    }

    /// A select cursor honoring the query's `ProbeOptions`.
    pub fn new_select_cursor(&self) -> SelectCursor {
        if self.cursors {
            SelectCursor::new()
        } else {
            SelectCursor::disabled()
        }
    }

    /// Runs `f(state, i)` for every position `i` with cursor state from
    /// `make`. Serially, one state walks the whole partition (maximal probe
    /// locality); in parallel, positions are split into contiguous chunks
    /// with a fresh state per chunk, so every probe still sees monotonically
    /// advancing bounds within its chunk. Cursor probes are bit-identical to
    /// stateless probes, hence serial ≡ parallel output is untouched.
    pub fn probe_with<S, M, F>(&self, make: M, f: F) -> Result<Vec<Value>>
    where
        S: CursorState,
        M: Fn() -> S + Send + Sync,
        F: Fn(&mut S, usize) -> Result<Value> + Send + Sync,
    {
        use rayon::prelude::*;
        let m = self.m();
        if self.parallel && m >= 2048 {
            let chunk = m.div_ceil(rayon::current_num_threads()).max(2048);
            let mut out = vec![Value::Null; m];
            out.par_chunks_mut(chunk)
                .enumerate()
                .map(|(ci, slots)| {
                    let mut st = make();
                    for (off, slot) in slots.iter_mut().enumerate() {
                        *slot = f(&mut st, ci * chunk + off)?;
                    }
                    self.kernel.absorb(&st.stats());
                    Ok(())
                })
                .collect::<Result<()>>()?;
            Ok(out)
        } else {
            let mut st = make();
            let mut out = Vec::with_capacity(m);
            for i in 0..m {
                out.push(f(&mut st, i)?);
            }
            self.kernel.absorb(&st.stats());
            Ok(out)
        }
    }

    /// Runs `f` for every position, in parallel when allowed (probe loops
    /// without per-loop cursor state).
    pub fn probe<F>(&self, f: F) -> Result<Vec<Value>>
    where
        F: Fn(usize) -> Result<Value> + Send + Sync,
    {
        self.probe_with(|| (), |_, i| f(i))
    }

    /// Count-probe driver: per row, `plan(i, push)` pushes `(ranges,
    /// threshold)` count queries (or resolves the row directly) and `finish(i,
    /// state, sum)` turns the summed counts into the row's value.
    ///
    /// With block probes enabled, rows are planned [`PROBE_BLOCK`] at a time
    /// and their flattened per-piece queries answered by one
    /// [`MergeSortTree::count_below_block`] call; otherwise each query runs
    /// through `count_below_multi_with_cursor` in row order — the exact
    /// pre-existing cursor path. Both paths are bit-identical.
    pub fn probe_counts<I, S, P, F>(
        &self,
        tree: &MergeSortTree<I>,
        plan: P,
        finish: F,
    ) -> Result<Vec<Value>>
    where
        I: TreeIndex,
        S: Send,
        P: Fn(usize, &mut dyn FnMut(&RangeSet, I)) -> Result<Planned<S>> + Send + Sync,
        F: Fn(usize, S, usize) -> Result<Value> + Send + Sync,
    {
        if !self.block_probes {
            return self.probe_with(
                || self.new_probe_cursor(),
                |cur, i| {
                    let mut sum = 0usize;
                    let planned = plan(i, &mut |rs: &RangeSet, t: I| {
                        sum += tree.count_below_multi_with_cursor(rs, t, cur);
                    })?;
                    match planned {
                        Planned::Done(v) => Ok(v),
                        Planned::Counted(s) => finish(i, s, sum),
                    }
                },
            );
        }
        self.run_blocked(|base, slots| {
            let mut scratch = BlockScratch::new();
            let mut queries: Vec<(usize, usize, I)> = Vec::new();
            let mut counts: Vec<usize> = Vec::new();
            // (slot index, query span start/end, row state)
            let mut pending: Vec<(usize, usize, usize, S)> = Vec::new();
            for bs in (0..slots.len()).step_by(PROBE_BLOCK) {
                let be = (bs + PROBE_BLOCK).min(slots.len());
                queries.clear();
                pending.clear();
                for (off, slot) in slots[bs..be].iter_mut().enumerate() {
                    let li = bs + off;
                    let i = base + li;
                    let start = queries.len();
                    let planned = plan(i, &mut |rs: &RangeSet, t: I| {
                        for (a, b) in rs.iter() {
                            queries.push((a, b, t));
                        }
                    })?;
                    match planned {
                        Planned::Done(v) => *slot = v,
                        Planned::Counted(s) => pending.push((li, start, queries.len(), s)),
                    }
                }
                counts.resize(queries.len(), 0);
                tree.count_below_block(&queries, &mut counts[..queries.len()], &mut scratch);
                for (li, qs, qe, s) in pending.drain(..) {
                    let sum = counts[qs..qe].iter().sum();
                    slots[li] = finish(base + li, s, sum)?;
                }
            }
            self.kernel.absorb_block(&scratch.stats);
            Ok(())
        })
    }

    /// Select-probe driver: per row, `plan(i, push)` pushes `(ranges, j)`
    /// selection queries and `finish(i, state, results)` receives the row's
    /// selected positions in push order. Block and cursor paths mirror
    /// [`Self::probe_counts`].
    pub fn probe_selects<I, S, P, F>(
        &self,
        tree: &MergeSortTree<I>,
        plan: P,
        finish: F,
    ) -> Result<Vec<Value>>
    where
        I: TreeIndex,
        S: Send,
        P: Fn(usize, &mut dyn FnMut(RangeSet, usize)) -> Result<Planned<S>> + Send + Sync,
        F: Fn(usize, S, &[Option<usize>]) -> Result<Value> + Send + Sync,
    {
        if !self.block_probes {
            return self.probe_with(
                || self.new_select_cursor(),
                |cur, i| {
                    // Rows push at most two selections (PERCENTILE_CONT's
                    // interpolation endpoints).
                    let mut res = [None, None];
                    let mut nres = 0usize;
                    let planned = plan(i, &mut |rs: RangeSet, j: usize| {
                        res[nres] = tree.select_with_cursor(&rs, j, cur);
                        nres += 1;
                    })?;
                    match planned {
                        Planned::Done(v) => Ok(v),
                        Planned::Counted(s) => finish(i, s, &res[..nres]),
                    }
                },
            );
        }
        self.run_blocked(|base, slots| {
            let mut scratch = BlockScratch::new();
            let mut queries: Vec<(RangeSet, usize)> = Vec::new();
            let mut results: Vec<Option<usize>> = Vec::new();
            let mut pending: Vec<(usize, usize, usize, S)> = Vec::new();
            for bs in (0..slots.len()).step_by(PROBE_BLOCK) {
                let be = (bs + PROBE_BLOCK).min(slots.len());
                queries.clear();
                pending.clear();
                for (off, slot) in slots[bs..be].iter_mut().enumerate() {
                    let li = bs + off;
                    let i = base + li;
                    let start = queries.len();
                    let planned = plan(i, &mut |rs: RangeSet, j: usize| {
                        queries.push((rs, j));
                    })?;
                    match planned {
                        Planned::Done(v) => *slot = v,
                        Planned::Counted(s) => pending.push((li, start, queries.len(), s)),
                    }
                }
                results.resize(queries.len(), None);
                tree.select_block(&queries, &mut results[..queries.len()], &mut scratch);
                for (li, qs, qe, s) in pending.drain(..) {
                    slots[li] = finish(base + li, s, &results[qs..qe])?;
                }
            }
            self.kernel.absorb_block(&scratch.stats);
            Ok(())
        })
    }

    /// Shared chunking for the block drivers: the same parallel split as
    /// [`Self::probe_with`] (contiguous chunks, one task per chunk), with
    /// `body(chunk_base, chunk_slots)` filling each chunk.
    fn run_blocked<B>(&self, body: B) -> Result<Vec<Value>>
    where
        B: Fn(usize, &mut [Value]) -> Result<()> + Send + Sync,
    {
        use rayon::prelude::*;
        let m = self.m();
        let mut out = vec![Value::Null; m];
        if self.parallel && m >= 2048 {
            let chunk = m.div_ceil(rayon::current_num_threads()).max(2048);
            out.par_chunks_mut(chunk)
                .enumerate()
                .map(|(ci, slots)| body(ci * chunk, slots))
                .collect::<Result<()>>()?;
        } else {
            body(0, &mut out)?;
        }
        Ok(out)
    }
}

/// Dispatches a call to its family evaluator. Returns per-position values.
pub(crate) fn evaluate_call(
    ctx: &Ctx<'_>,
    call: &FunctionCall,
    cp: &CallPlan,
) -> Result<Vec<Value>> {
    use FuncKind::*;
    match call.kind {
        CountStar | Count | Sum | Avg | Min | Max => {
            if call.distinct {
                distinct::evaluate(ctx, call, cp)
            } else {
                distributive::evaluate(ctx, call, cp)
            }
        }
        RowNumber | Rank | PercentRank | CumeDist | Ntile => rank::evaluate(ctx, call, cp),
        DenseRank => rank::evaluate_dense_rank(ctx, call, cp),
        PercentileDisc | PercentileCont | Median | FirstValue | LastValue | NthValue => {
            select_based::evaluate(ctx, call, cp)
        }
        Lead | Lag => leadlag::evaluate(ctx, call, cp),
        Mode => mode::evaluate(ctx, call, cp),
    }
}

/// Evaluates a constant expression (row-independent arguments like the
/// percentile fraction).
pub(crate) fn eval_const(ctx: &Ctx<'_>, expr: &crate::expr::Expr) -> Result<Value> {
    let bound = expr.bind(ctx.table)?;
    // Use row 0 if any; constant expressions don't read columns.
    bound.eval(ctx.table, ctx.rows.first().copied().unwrap_or(0))
}

/// Extracts a fraction in [0, 1] for percentile calls.
pub(crate) fn fraction_arg(ctx: &Ctx<'_>, call: &FunctionCall) -> Result<f64> {
    let v = eval_const(ctx, &call.args[0])?;
    match v.as_f64() {
        Some(f) if (0.0..=1.0).contains(&f) => Ok(f),
        _ => Err(Error::InvalidArgument(format!(
            "{}: fraction must be in [0, 1], got {v}",
            call.kind.name()
        ))),
    }
}
