//! Framed MODE via the √-decomposition range mode index — an extension
//! beyond the paper (§3.1 notes mode needs dedicated structures [13, 25]).
//!
//! Pipeline mirrors the other holistic families: FILTER/NULL rows are never
//! inserted and frame bounds are remapped; values are compressed to dense
//! ids *in value order*, so the index's smallest-id tie-break implements
//! "smallest value among the most frequent" deterministically. Plain frames
//! probe in O(√n log n); frames with exclusion holes fall back to exact
//! union counting (mode does not decompose over unions). The decode table
//! and index come from the artifact cache, keyed on (argument, mask).

use super::Ctx;
use crate::error::Result;
use crate::plan::CallPlan;
use crate::spec::FunctionCall;
use crate::value::Value;

pub(crate) fn evaluate(ctx: &Ctx<'_>, _call: &FunctionCall, cp: &CallPlan) -> Result<Vec<Value>> {
    let mask = ctx.mask_art(cp.keys.mask())?;
    let art = ctx.mode_art(cp.keys.mode_index())?;

    ctx.probe(|i| {
        let answer = if ctx.frames.has_exclusion() {
            let pieces = mask.remap.range_set(&ctx.frames.range_set(i));
            // Fixed scratch: this runs per output row.
            let mut ranges = [(0usize, 0usize); holistic_core::range_set::MAX_RANGES];
            for (ri, r) in pieces.iter().enumerate() {
                ranges[ri] = r;
            }
            art.index.query_multi(&ranges[..pieces.len()])
        } else {
            let (a, b) = ctx.frames.bounds[i];
            let (ka, kb) = mask.remap.range(a, b);
            art.index.query(ka, kb)
        };
        Ok(match answer {
            Some((id, _count)) => art.decode[id as usize].clone(),
            None => Value::Null,
        })
    })
}
