//! Framed MODE via the √-decomposition range mode index — an extension
//! beyond the paper (§3.1 notes mode needs dedicated structures [13, 25]).
//!
//! Pipeline mirrors the other holistic families: FILTER/NULL rows are never
//! inserted and frame bounds are remapped; values are compressed to dense
//! ids *in value order*, so the index's smallest-id tie-break implements
//! "smallest value among the most frequent" deterministically. Plain frames
//! probe in O(√n log n); frames with exclusion holes fall back to exact
//! union counting (mode does not decompose over unions).

use super::Ctx;
use crate::remap::Remap;
use crate::spec::FunctionCall;
use crate::value::Value;
use crate::error::Result;
use holistic_rangemode::RangeModeIndex;

pub(crate) fn evaluate(ctx: &Ctx<'_>, call: &FunctionCall) -> Result<Vec<Value>> {
    let m = ctx.m();
    let values = ctx.eval_positions(&call.args[0])?;
    let filter = ctx.filter_mask(call)?;
    let keep: Vec<bool> = (0..m).map(|i| filter[i] && !values[i].is_null()).collect();
    let remap = Remap::new(&keep);

    // Dense ids in value order (ids ascend with sql_cmp).
    let kept_values: Vec<&Value> =
        (0..remap.kept_len()).map(|k| &values[remap.to_position(k)]).collect();
    let mut sorted: Vec<&Value> = kept_values.clone();
    sorted.sort_by(|a, b| a.sql_cmp(b));
    sorted.dedup_by(|a, b| a.sql_eq(b));
    let decode: Vec<Value> = sorted.iter().map(|v| (*v).clone()).collect();
    let ids: Vec<u32> = kept_values
        .iter()
        .map(|v| {
            decode
                .binary_search_by(|probe| probe.sql_cmp(v))
                .expect("value interned") as u32
        })
        .collect();
    let index = RangeModeIndex::build(&ids, decode.len());

    ctx.probe(|i| {
        let answer = if ctx.frames.has_exclusion() {
            let pieces = remap.range_set(&ctx.frames.range_set(i));
            let ranges: Vec<(usize, usize)> = pieces.iter().collect();
            index.query_multi(&ranges)
        } else {
            let (a, b) = ctx.frames.bounds[i];
            let (ka, kb) = remap.range(a, b);
            index.query(ka, kb)
        };
        Ok(match answer {
            Some((id, _count)) => decode[id as usize].clone(),
            None => Value::Null,
        })
    })
}
