//! LEAD and LAG — classic partition-positional semantics and the paper's
//! framed extension with an independent ORDER BY (§4.6).
//!
//! Framed evaluation composes the two tree queries of §4.4 and §4.5:
//! (1) the row's ROW_NUMBER within the frame by the inner order (merge sort
//! tree over unique codes), (2) offset adjustment, (3) selection of the row
//! at the adjusted position (merge sort tree over the permutation array).
//! Both trees come from the same preprocessing sort — and, through the
//! artifact cache, that sort and both trees are shared with any rank or
//! selection call over the same (criterion, mask) pair.

use super::Ctx;
use crate::error::{Error, Result};
use crate::plan::CallPlan;
use crate::spec::{FuncKind, FunctionCall};
use crate::value::Value;
use holistic_core::index::fits_u32;
use holistic_core::TreeIndex;

pub(crate) fn evaluate(ctx: &Ctx<'_>, call: &FunctionCall, cp: &CallPlan) -> Result<Vec<Value>> {
    if call.inner_order.is_empty() {
        evaluate_classic(ctx, call, cp)
    } else if fits_u32(ctx.m() + 1) {
        evaluate_framed::<u32>(ctx, call, cp)
    } else {
        evaluate_framed::<u64>(ctx, call, cp)
    }
}

/// The per-row signed offset (LEAD positive, LAG negative).
fn offset_for(
    ctx: &Ctx<'_>,
    call: &FunctionCall,
    offset_expr: &Option<crate::expr::BoundExpr>,
    i: usize,
) -> Result<Option<i64>> {
    let raw = match offset_expr {
        None => 1,
        Some(e) => match e.eval(ctx.table, ctx.rows[i])? {
            Value::Int(x) => x,
            Value::Null => return Ok(None),
            v => {
                return Err(Error::InvalidArgument(format!(
                    "{}: offset must be an integer, got {v}",
                    call.kind.name()
                )))
            }
        },
    };
    // LAG negates; `-i64::MIN` overflows, and an offset of magnitude 2^63
    // is out of range for every representable partition anyway, so
    // saturating to i64::MAX is exact (target arithmetic below is checked).
    Ok(Some(if call.kind == FuncKind::Lag { raw.checked_neg().unwrap_or(i64::MAX) } else { raw }))
}

/// `base + off` as a bounds-checked position: `None` when the target falls
/// outside `[0, len)` or the addition overflows (equivalent, since any
/// overflowing target is out of range for every representable `len`).
pub(crate) fn target_position(base: usize, off: i64, len: usize) -> Option<usize> {
    (base as i64).checked_add(off).and_then(|t| usize::try_from(t).ok()).filter(|&t| t < len)
}

/// Classic LEAD/LAG: positional within the partition, frame ignored — this is
/// the SQL:2011 behaviour when no function-level ORDER BY is given.
fn evaluate_classic(ctx: &Ctx<'_>, call: &FunctionCall, cp: &CallPlan) -> Result<Vec<Value>> {
    let m = ctx.m();
    let values = ctx.values_art(cp.keys.values())?;
    let offset_expr = call.args.get(1).map(|e| e.bind(ctx.table)).transpose()?;
    let default_expr = call.args.get(2).map(|e| e.bind(ctx.table)).transpose()?;
    // IGNORE NULLS: the n-th non-null value before/after the current row.
    let non_null: Vec<usize> = if call.ignore_nulls {
        (0..m).filter(|&i| !values[i].is_null()).collect()
    } else {
        Vec::new()
    };
    ctx.probe(|i| {
        let default = || -> Result<Value> {
            Ok(match &default_expr {
                Some(d) => d.eval(ctx.table, ctx.rows[i])?,
                None => Value::Null,
            })
        };
        let Some(off) = offset_for(ctx, call, &offset_expr, i)? else {
            return Ok(Value::Null);
        };
        // Offset 0 is the current row itself, per SQL — even under IGNORE
        // NULLS (an offset of zero never skips anywhere). Handling it up
        // front also keeps the `off - 1` below strictly positive.
        if off == 0 {
            return Ok(values[i].clone());
        }
        if call.ignore_nulls {
            // Position among non-null rows strictly after/before i. All
            // arithmetic is checked: `off` can be anything up to ±i64::MAX.
            let idx = non_null.partition_point(|&p| p <= i);
            let target = if off > 0 {
                idx.checked_add(off as usize).and_then(|t| t.checked_sub(1))
            } else {
                let before = non_null.partition_point(|&p| p < i);
                usize::try_from(off.unsigned_abs()).ok().and_then(|o| before.checked_sub(o))
            };
            return Ok(match target.and_then(|t| non_null.get(t)) {
                Some(&p) => values[p].clone(),
                None => default()?,
            });
        }
        match target_position(i, off, m) {
            Some(t) => Ok(values[t].clone()),
            None => default(),
        }
    })
}

/// Framed LEAD/LAG with an independent ORDER BY (§4.6).
fn evaluate_framed<I: TreeIndex>(
    ctx: &Ctx<'_>,
    call: &FunctionCall,
    cp: &CallPlan,
) -> Result<Vec<Value>> {
    let mask = ctx.mask_art(cp.keys.mask())?;
    let kept_out = ctx.kept_values_art(cp.keys.kept_values())?;
    let keys = ctx.inner_keys_art(cp.keys.inner_keys())?;
    let dc = ctx.dense_codes_art(cp.keys.dense_codes())?;
    let code_tree = ctx.code_mst::<I>(cp.keys.code_mst())?;
    let select_tree = ctx.perm_mst::<I>(cp.keys.perm_mst())?;

    let offset_expr = call.args.get(1).map(|e| e.bind(ctx.table)).transpose()?;
    let default_expr = call.args.get(2).map(|e| e.bind(ctx.table)).transpose()?;

    ctx.probe_with(
        || (ctx.new_probe_cursor(), ctx.new_select_cursor()),
        |(count_cur, select_cur), i| {
            let default = || -> Result<Value> {
                Ok(match &default_expr {
                    Some(d) => d.eval(ctx.table, ctx.rows[i])?,
                    None => Value::Null,
                })
            };
            let Some(off) = offset_for(ctx, call, &offset_expr, i)? else {
                return Ok(Value::Null);
            };
            let pieces = mask.remap.range_set(&ctx.frames.range_set(i));
            let s = pieces.count();
            // Step 1: own row number within the frame by the inner order. For
            // rows not in the tree (filtered/ignored) rank virtually against the
            // kept rows, matching the rank-family convention. Kept rows probe
            // through the count cursor; the cold dropped-row path, which
            // interleaves thresholds, stays stateless.
            let rn0 = if mask.remap.is_kept(i) {
                let k = mask.remap.kept_index(i);
                code_tree.count_below_multi_with_cursor(
                    &pieces,
                    I::from_usize(dc.code[k]),
                    count_cur,
                )
            } else {
                // Rows absent from the tree rank virtually: key-smaller kept rows
                // plus equal-key kept rows at earlier positions (the positional
                // tie-break of unique codes).
                let row = ctx.rows[i];
                let search = |upper: bool| {
                    let mut lo = 0;
                    let mut hi = dc.perm.len();
                    while lo < hi {
                        let mid = lo + (hi - lo) / 2;
                        let o = keys.cmp_rows(mask.kept_rows[dc.perm[mid]], row);
                        let go_right = o == std::cmp::Ordering::Less
                            || (upper && o == std::cmp::Ordering::Equal);
                        if go_right {
                            lo = mid + 1;
                        } else {
                            hi = mid;
                        }
                    }
                    lo
                };
                let (gmin, gend) = (search(false), search(true));
                let smaller = code_tree.count_below_multi(&pieces, I::from_usize(gmin));
                let ki = mask.remap.range(0, i).1;
                let mut earlier = holistic_core::RangeSet::empty();
                for (a, b) in pieces.iter() {
                    let b2 = b.min(ki);
                    if a < b2 {
                        earlier.push(a, b2);
                    }
                }
                let eq_before = code_tree.count_below_multi(&earlier, I::from_usize(gend))
                    - code_tree.count_below_multi(&earlier, I::from_usize(gmin));
                smaller + eq_before
            };
            // Steps 2+3: adjust and select (checked: `off` is unbounded).
            let Some(target) = target_position(rn0, off, s) else {
                return default();
            };
            let rank =
                select_tree.select_with_cursor(&pieces, target, select_cur).expect("target < s");
            Ok(kept_out[dc.perm[rank]].clone())
        },
    )
}
