//! Framed rank functions via merge sort trees (§4.4) and DENSE_RANK via a
//! range tree.
//!
//! One dense-code preprocessing pass (Figure 8) plus one merge sort tree over
//! the unique codes answers the whole family:
//!
//! * `RANK       = count_below(frame, group_min) + 1`
//! * `ROW_NUMBER = count_below(frame, code) + 1`
//! * `CUME_DIST  = count_below(frame, group_end) / frame_size`
//! * `PERCENT_RANK`, `NTILE` — arithmetic on the above.
//!
//! `DENSE_RANK` needs the number of *distinct* smaller keys, a 3-d range
//! count (§4.4), answered by the range tree with the previous-occurrence
//! trick applied to tie-group ids.
//!
//! All preprocessing products come from the partition's artifact cache; the
//! whole family over one (criterion, mask) pair shares a single sort and a
//! single code tree.

use super::{Ctx, Planned};
use crate::artifacts::MaskArtifact;
use crate::error::{Error, Result};
use crate::order::KeyColumns;
use crate::plan::CallPlan;
use crate::spec::{FuncKind, FunctionCall};
use crate::value::Value;
use holistic_core::codes::DenseCodes;
use holistic_core::index::fits_u32;
use holistic_core::{RangeSet, TreeIndex};
use rustc_hash::FxHashSet;
use std::sync::Arc;

/// Shared preprocessing for the rank family (all cache-resident).
struct RankPrep {
    keys: Arc<KeyColumns>,
    mask: Arc<MaskArtifact>,
    dc: Arc<DenseCodes>,
}

fn prepare(ctx: &Ctx<'_>, cp: &CallPlan) -> Result<RankPrep> {
    let keys = ctx.inner_keys_art(cp.keys.inner_keys())?;
    let mask = ctx.mask_art(cp.keys.mask())?;
    let dc = ctx.dense_codes_art(cp.keys.dense_codes())?;
    Ok(RankPrep { keys, mask, dc })
}

impl RankPrep {
    /// `(group_min, group_end, unique_code_or_none)` of the current row in
    /// *kept sorted-code* space. Rows dropped by FILTER still rank against
    /// the kept rows; their virtual code bounds come from binary search.
    fn code_bounds(&self, ctx: &Ctx<'_>, i: usize) -> (usize, usize, Option<usize>) {
        if self.mask.remap.is_kept(i) {
            let k = self.mask.remap.kept_index(i);
            (self.dc.group_min[k], self.dc.group_end[k], Some(self.dc.code[k]))
        } else {
            let row = ctx.rows[i];
            let perm = &self.dc.perm;
            let below = |x: usize| {
                self.keys.cmp_rows(self.mask.kept_rows[perm[x]], row) == std::cmp::Ordering::Less
            };
            let mut lo = 0;
            let mut hi = perm.len();
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if below(mid) {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            let gmin = lo;
            let mut hi2 = perm.len();
            let mut lo2 = gmin;
            while lo2 < hi2 {
                let mid = lo2 + (hi2 - lo2) / 2;
                if self.keys.rows_equal(self.mask.kept_rows[perm[mid]], row) {
                    lo2 = mid + 1;
                } else {
                    hi2 = mid;
                }
            }
            (gmin, lo2, None)
        }
    }

    /// Frame pieces remapped to kept space.
    fn kept_pieces(&self, ctx: &Ctx<'_>, i: usize) -> RangeSet {
        self.mask.remap.range_set(&ctx.frames.range_set(i))
    }
}

/// RANK / ROW_NUMBER / PERCENT_RANK / CUME_DIST / NTILE.
pub(crate) fn evaluate(ctx: &Ctx<'_>, call: &FunctionCall, cp: &CallPlan) -> Result<Vec<Value>> {
    if fits_u32(ctx.m() + 1) {
        evaluate_impl::<u32>(ctx, call, cp)
    } else {
        evaluate_impl::<u64>(ctx, call, cp)
    }
}

fn evaluate_impl<I: TreeIndex>(
    ctx: &Ctx<'_>,
    call: &FunctionCall,
    cp: &CallPlan,
) -> Result<Vec<Value>> {
    let prep = prepare(ctx, cp)?;
    let tree = ctx.code_mst::<I>(cp.keys.code_mst())?;

    // ROW_NUMBER of a FILTER-dropped row (1-based): key-smaller rows plus
    // equal-key rows that precede the current row positionally. Dropped rows
    // interleave several thresholds and clipped piece sets, so their probes
    // stay stateless and unblocked — they are the cold path.
    let row_number_dropped = |i: usize, pieces: &RangeSet| -> usize {
        let (gmin, gend, _) = prep.code_bounds(ctx, i);
        let smaller = tree.count_below_multi(pieces, I::from_usize(gmin));
        let ki = self_kept_prefix(&prep, i);
        let mut earlier = RangeSet::empty();
        for (a, b) in pieces.iter() {
            let b2 = b.min(ki);
            if a < b2 {
                earlier.push(a, b2);
            }
        }
        let eq_before = tree.count_below_multi(&earlier, I::from_usize(gend))
            - tree.count_below_multi(&earlier, I::from_usize(gmin));
        smaller + eq_before + 1
    };

    match call.kind {
        FuncKind::RowNumber => ctx.probe_counts(
            &tree,
            |i, push| {
                let pieces = prep.kept_pieces(ctx, i);
                match prep.code_bounds(ctx, i).2 {
                    Some(c) => {
                        push(&pieces, I::from_usize(c));
                        Ok(Planned::Counted(()))
                    }
                    None => Ok(Planned::Done(Value::Int(row_number_dropped(i, &pieces) as i64))),
                }
            },
            |_, (), below| Ok(Value::Int((below + 1) as i64)),
        ),
        FuncKind::Rank => ctx.probe_counts(
            &tree,
            |i, push| {
                let pieces = prep.kept_pieces(ctx, i);
                let (gmin, _, _) = prep.code_bounds(ctx, i);
                push(&pieces, I::from_usize(gmin));
                Ok(Planned::Counted(()))
            },
            |_, (), below| Ok(Value::Int((below + 1) as i64)),
        ),
        FuncKind::PercentRank => ctx.probe_counts(
            &tree,
            |i, push| {
                let pieces = prep.kept_pieces(ctx, i);
                let size = pieces.count();
                if size == 0 {
                    return Ok(Planned::Done(Value::Null));
                }
                let (gmin, _, _) = prep.code_bounds(ctx, i);
                push(&pieces, I::from_usize(gmin));
                Ok(Planned::Counted(size))
            },
            |_, size, below| {
                let rank = below + 1;
                Ok(Value::Float(if size <= 1 {
                    0.0
                } else {
                    (rank - 1) as f64 / (size - 1) as f64
                }))
            },
        ),
        FuncKind::CumeDist => ctx.probe_counts(
            &tree,
            |i, push| {
                let pieces = prep.kept_pieces(ctx, i);
                let size = pieces.count();
                if size == 0 {
                    return Ok(Planned::Done(Value::Null));
                }
                let (_, gend, _) = prep.code_bounds(ctx, i);
                push(&pieces, I::from_usize(gend));
                Ok(Planned::Counted(size))
            },
            |_, size, le| Ok(Value::Float(le as f64 / size as f64)),
        ),
        FuncKind::Ntile => {
            let buckets_expr = call.args[0].bind(ctx.table)?;
            ctx.probe_counts(
                &tree,
                |i, push| {
                    let b = match buckets_expr.eval(ctx.table, ctx.rows[i])? {
                        Value::Int(x) if x >= 1 => x as usize,
                        Value::Null => return Ok(Planned::Done(Value::Null)),
                        v => {
                            return Err(Error::InvalidArgument(format!(
                                "ntile: bucket count must be a positive integer, got {v}"
                            )))
                        }
                    };
                    let pieces = prep.kept_pieces(ctx, i);
                    let size = pieces.count();
                    if size == 0 {
                        return Ok(Planned::Done(Value::Null));
                    }
                    match prep.code_bounds(ctx, i).2 {
                        Some(c) => {
                            push(&pieces, I::from_usize(c));
                            Ok(Planned::Counted((size, b)))
                        }
                        None => {
                            let rn = row_number_dropped(i, &pieces);
                            Ok(Planned::Done(Value::Int(ntile_of(rn, size, b) as i64)))
                        }
                    }
                },
                |_, (size, b), below| Ok(Value::Int(ntile_of(below + 1, size, b) as i64)),
            )
        }
        _ => unreachable!("rank dispatch"),
    }
}

/// Number of kept positions strictly before partition position `i`.
fn self_kept_prefix(prep: &RankPrep, i: usize) -> usize {
    prep.mask.remap.range(0, i).1
}

/// SQL NTILE: `size` rows into `b` buckets; the first `size % b` buckets get
/// one extra row. `rn` is 1-based; the result is 1-based. `rn` may exceed
/// `size` when the current row lies outside its own frame (the paper's framed
/// extension allows that); the formula extrapolates consistently.
pub(crate) fn ntile_of(rn: usize, size: usize, b: usize) -> usize {
    debug_assert!(rn >= 1 && b >= 1);
    let q = size / b;
    let r = size % b;
    if q == 0 {
        // More buckets than rows: row k goes to bucket k.
        return rn;
    }
    let big = q + 1;
    if rn <= r * big {
        (rn - 1) / big + 1
    } else {
        r + (rn - 1 - r * big) / q + 1
    }
}

/// Framed DENSE_RANK via the 3-d range tree (§4.4).
pub(crate) fn evaluate_dense_rank(
    ctx: &Ctx<'_>,
    _call: &FunctionCall,
    cp: &CallPlan,
) -> Result<Vec<Value>> {
    if !fits_u32(ctx.m() + 1) {
        return Err(Error::Unsupported("DENSE_RANK partitions beyond u32 positions".into()));
    }
    let prep = prepare(ctx, cp)?;
    let rt_art = ctx.range_tree_art(cp.keys.range_tree())?;

    ctx.probe(|i| {
        let (a, b) = ctx.frames.bounds[i];
        let (ka, kb) = prep.mask.remap.range(a, b);
        // Number of tie groups with keys smaller than the current row's key:
        // the group id right below the row's group_min boundary.
        let (gmin, _, _) = prep.code_bounds(ctx, i);
        let gcount = if gmin == 0 { 0 } else { prep.dc.group_id[prep.dc.perm[gmin - 1]] + 1 };
        let base = rt_art.rt.count(ka, kb, gcount as u32, ka as u32 + 1);
        if !ctx.frames.has_exclusion() {
            return Ok(Value::Int((base + 1) as i64));
        }
        // Correct for smaller-key groups whose only frame occurrences sit in
        // the exclusion hole.
        let pieces = prep.mask.remap.range_set(&ctx.frames.range_set(i));
        let mut holes = [(0usize, 0usize); 2];
        let mut nh = 0usize;
        for (h1, h2) in ctx.frames.holes(i).iter() {
            let (h1, h2) = (h1.max(a).min(b), h2.max(a).min(b));
            let (h1, h2) = prep.mask.remap.range(h1, h2.max(h1));
            if h1 < h2 {
                holes[nh] = (h1, h2);
                nh += 1;
            }
        }
        let mut seen: FxHashSet<usize> = FxHashSet::default();
        let mut correction = 0usize;
        for &(h1, h2) in &holes[..nh] {
            for p in h1..h2 {
                let g = prep.dc.group_id[p];
                if g >= gcount || !seen.insert(g) {
                    continue;
                }
                let occ = &rt_art.occurrences[g];
                let in_pieces = pieces.iter().any(|(lo, hi)| {
                    let idx = occ.partition_point(|&q| q < lo);
                    idx < occ.len() && occ[idx] < hi
                });
                if !in_pieces {
                    correction += 1;
                }
            }
        }
        Ok(Value::Int((base - correction + 1) as i64))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ntile_distribution() {
        // 10 rows, 3 buckets → sizes 4, 3, 3.
        let tiles: Vec<usize> = (1..=10).map(|rn| ntile_of(rn, 10, 3)).collect();
        assert_eq!(tiles, vec![1, 1, 1, 1, 2, 2, 2, 3, 3, 3]);
        // More buckets than rows.
        let tiles: Vec<usize> = (1..=3).map(|rn| ntile_of(rn, 3, 5)).collect();
        assert_eq!(tiles, vec![1, 2, 3]);
        // Exact division.
        let tiles: Vec<usize> = (1..=6).map(|rn| ntile_of(rn, 6, 3)).collect();
        assert_eq!(tiles, vec![1, 1, 2, 2, 3, 3]);
        // One bucket.
        assert!((1..=4).all(|rn| ntile_of(rn, 4, 1) == 1));
    }
}
