//! The per-partition preprocessing-artifact cache — the *build* phase of the
//! plan → build → probe pipeline.
//!
//! Every preprocessing product an evaluator consumes (inner-sort dense
//! codes, merge sort trees, segment trees, the range tree, the mode index,
//! kept-row masks, materialized expression values) is addressed by a
//! canonical [`ArtifactKey`] and built **exactly once per partition**, no
//! matter how many calls request it. Calls whose plan keys coincide — e.g.
//! `RANK`, `ROW_NUMBER` and a framed `LEAD` over the same inner ORDER BY —
//! share the sort and the trees instead of redoing them per call.
//!
//! Keys are derived once, in the plan phase ([`crate::plan::CallKeys`]);
//! every request here *borrows* a plan-owned key, and [`ArtifactCache`]
//! clones it exactly once — when the key's slot is first created. The
//! `key_clones` counter pins this: it always equals the miss count.
//!
//! Artifacts are stored type-erased (`Arc<dyn Any>`) behind a `OnceLock` per
//! key: the slot map's lock is held only to fetch the slot, the build runs
//! outside it, and nested requests (an artifact building its ingredients)
//! recurse safely because dependencies form a DAG of distinct keys. Build
//! errors are cached too ([`Error`] is `Clone`), so a failing recipe fails
//! identically for every requester. Ingredient lookups happen *inside* the
//! build closures: a cache hit touches exactly one slot.
//!
//! Every artifact reports its heap footprint through [`ArtifactBytes`] when
//! built; the cache records per-slot `(label, bytes)` pairs that
//! `execute_profiled` aggregates into [`crate::ExecProfile::artifacts`].
//!
//! Index width (u32/u64) is intentionally not part of the key: it is a pure
//! function of the partition size ([`fits_u32`]), so all requests against
//! one cache agree on the width and the `downcast` below cannot fail.

use crate::error::{Error, Result};
use crate::eval::Ctx;
use crate::executor::{CacheStats, SpillStats};
use crate::hash::hash_value;
use crate::order::{dense_codes_for, KeyColumns};
use crate::plan::{sort_keys_of, ArtifactKey, OrderKey, SegFlavor};
use crate::remap::Remap;
use crate::value::Value;
use holistic_core::aggregate::DistinctAggregate;
use holistic_core::codes::DenseCodes;
use holistic_core::index::fits_u32;
use holistic_core::{
    mst_arena_len, mst_spill_build_len, AnnotatedMst, MergeSortTree, MstParams, MstShell,
    SpillableArena, TreeIndex,
};
use holistic_rangemode::RangeModeIndex;
use holistic_rangetree::RangeTree3;
use holistic_segtree::{CountMonoid, Monoid, SegmentTree};
use rustc_hash::FxHashMap;
use std::any::Any;
use std::mem::size_of;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock, Weak};

type Payload = Arc<dyn Any + Send + Sync>;
/// A built artifact plus the bytes the cache charged to the budget governor
/// on its behalf (0 for seeded and self-governed artifacts) — released when
/// the slot is invalidated or the cache dropped.
type Slot = Arc<OnceLock<std::result::Result<(Payload, usize), Error>>>;

/// Heap footprint of a cached artifact, recorded at build time and charged
/// against the memory budget.
///
/// String heap data behind `Arc<str>` values is counted once per owned
/// reference (see [`Value::heap_bytes`]) — an upper bound that prices what
/// keeping the artifact alive keeps alive. `Arc`-shared ingredients are
/// attributed to the artifact that owns them.
pub(crate) trait ArtifactBytes {
    /// Heap bytes owned by this artifact.
    fn bytes_built(&self) -> usize;

    /// True when the artifact manages its own budget charges (a
    /// [`SpillableMst`] charges per residency transition, not per build) —
    /// the cache then records its footprint but does not charge it.
    fn governor_charged(&self) -> bool {
        false
    }
}

impl ArtifactBytes for Vec<Value> {
    fn bytes_built(&self) -> usize {
        self.len() * size_of::<Value>() + self.iter().map(Value::heap_bytes).sum::<usize>()
    }
}

impl ArtifactBytes for KeyColumns {
    fn bytes_built(&self) -> usize {
        self.bytes()
    }
}

impl ArtifactBytes for DenseCodes {
    fn bytes_built(&self) -> usize {
        (self.code.len()
            + self.group_min.len()
            + self.group_end.len()
            + self.group_id.len()
            + self.perm.len())
            * size_of::<usize>()
    }
}

impl<I: TreeIndex> ArtifactBytes for MergeSortTree<I> {
    fn bytes_built(&self) -> usize {
        self.arena_bytes()
    }
}

impl<I: TreeIndex, A: DistinctAggregate> ArtifactBytes for AnnotatedMst<I, A> {
    fn bytes_built(&self) -> usize {
        self.bytes()
    }
}

impl<M: Monoid> ArtifactBytes for SegmentTree<M> {
    fn bytes_built(&self) -> usize {
        self.bytes()
    }
}

/// Internal atomic counters; snapshotted into the public [`CacheStats`].
#[derive(Debug, Default)]
pub(crate) struct AtomicStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub key_clones: AtomicU64,
    pub bytes_built: AtomicU64,
    pub inner_sorts: AtomicU64,
    pub mst_builds: AtomicU64,
    pub segtree_builds: AtomicU64,
    pub rangetree_builds: AtomicU64,
    pub modeindex_builds: AtomicU64,
}

impl AtomicStats {
    /// Accumulates this cache's counters into a query-level total.
    pub fn merge_into(&self, dst: &AtomicStats) {
        dst.hits.fetch_add(self.hits.load(Relaxed), Relaxed);
        dst.misses.fetch_add(self.misses.load(Relaxed), Relaxed);
        dst.key_clones.fetch_add(self.key_clones.load(Relaxed), Relaxed);
        dst.bytes_built.fetch_add(self.bytes_built.load(Relaxed), Relaxed);
        dst.inner_sorts.fetch_add(self.inner_sorts.load(Relaxed), Relaxed);
        dst.mst_builds.fetch_add(self.mst_builds.load(Relaxed), Relaxed);
        dst.segtree_builds.fetch_add(self.segtree_builds.load(Relaxed), Relaxed);
        dst.rangetree_builds.fetch_add(self.rangetree_builds.load(Relaxed), Relaxed);
        dst.modeindex_builds.fetch_add(self.modeindex_builds.load(Relaxed), Relaxed);
    }

    pub fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            key_clones: self.key_clones.load(Relaxed),
            bytes_built: self.bytes_built.load(Relaxed),
            inner_sorts: self.inner_sorts.load(Relaxed),
            mst_builds: self.mst_builds.load(Relaxed),
            segtree_builds: self.segtree_builds.load(Relaxed),
            rangetree_builds: self.rangetree_builds.load(Relaxed),
            modeindex_builds: self.modeindex_builds.load(Relaxed),
        }
    }
}

/// An artifact whose resident bytes the governor can reclaim by parking it
/// in a spill file. Candidates register themselves ([`BudgetGovernor::register`])
/// and are tried coldest-first when a charge pushes residency over budget.
pub(crate) trait ParkCandidate: Send + Sync {
    /// Attempts to spill the artifact's resident bytes; returns how many
    /// bytes were released (0 when in use, already parked, or I/O failed).
    fn try_park(&self) -> usize;
    /// Logical clock value of the last checkout (LRU ordering).
    fn last_touch(&self) -> u64;
    /// The owning partition (eviction is LRU *by partition*: all of a cold
    /// partition's artifacts go before any of a warmer one's).
    fn partition(&self) -> u64;
}

/// The query-wide memory-budget governor: one per execution, shared by every
/// per-partition [`ArtifactCache`]. Tracks resident artifact bytes, evicts
/// cold spillable artifacts when a charge overflows the budget, and turns
/// unsatisfiable charges into [`Error::BudgetExceeded`] — never a panic.
///
/// With no budget configured every charge succeeds; the governor then only
/// keeps the resident/peak telemetry that [`SpillStats`] reports.
pub(crate) struct BudgetGovernor {
    budget: Option<u64>,
    resident: AtomicU64,
    peak: AtomicU64,
    /// Logical clock for LRU ordering; bumped per checkout.
    clock: AtomicU64,
    /// Partition-id well for the caches sharing this governor.
    partition_seq: AtomicU64,
    bytes_spilled: AtomicU64,
    evictions: AtomicU64,
    refaults: AtomicU64,
    refault_bytes: AtomicU64,
    registry: Mutex<Vec<Weak<dyn ParkCandidate>>>,
}

impl BudgetGovernor {
    pub fn new(budget: Option<u64>) -> Self {
        BudgetGovernor {
            budget,
            resident: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            partition_seq: AtomicU64::new(0),
            bytes_spilled: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            refaults: AtomicU64::new(0),
            refault_bytes: AtomicU64::new(0),
            registry: Mutex::new(Vec::new()),
        }
    }

    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Next LRU clock value.
    pub fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Relaxed) + 1
    }

    /// Next partition id (one per [`ArtifactCache`]).
    pub fn next_partition(&self) -> u64 {
        self.partition_seq.fetch_add(1, Relaxed)
    }

    /// Registers a spillable artifact as an eviction candidate.
    pub fn register(&self, candidate: Weak<dyn ParkCandidate>) {
        self.registry.lock().expect("governor registry poisoned").push(candidate);
    }

    /// Charges `bytes` of resident footprint. Over budget, cold candidates
    /// are parked LRU-by-partition; if residency still cannot fit, the
    /// charge is rolled back and [`Error::BudgetExceeded`] returned.
    pub fn charge(&self, bytes: u64) -> Result<()> {
        self.resident.fetch_add(bytes, Relaxed);
        if let Some(b) = self.budget {
            if self.resident.load(Relaxed) > b {
                self.evict_down_to(b);
                if self.resident.load(Relaxed) > b {
                    self.resident.fetch_sub(bytes, Relaxed);
                    return Err(Error::BudgetExceeded { requested: bytes, budget: b });
                }
            }
        }
        self.peak.fetch_max(self.resident.load(Relaxed), Relaxed);
        Ok(())
    }

    /// Returns `bytes` of resident footprint (artifact parked or dropped).
    pub fn release(&self, bytes: u64) {
        self.resident.fetch_sub(bytes, Relaxed);
    }

    /// Records a re-fault of `bytes` from a spill file.
    pub fn note_refault(&self, bytes: u64) {
        self.refaults.fetch_add(1, Relaxed);
        self.refault_bytes.fetch_add(bytes, Relaxed);
    }

    /// Records `bytes` actually written to spill files (out-of-core builds
    /// and first-time parks; re-parks of an already written slab are free
    /// and report 0).
    pub fn note_spill_write(&self, bytes: u64) {
        self.bytes_spilled.fetch_add(bytes, Relaxed);
    }

    /// Parks cold candidates until residency is at most `target`.
    ///
    /// The registry lock is released before any candidate is touched:
    /// parking takes per-candidate locks and may be re-entered from a build
    /// in progress, so holding the registry across it would invite
    /// deadlock. Candidates busy elsewhere simply fail their `try_lock` and
    /// are skipped.
    fn evict_down_to(&self, target: u64) {
        let candidates: Vec<Arc<dyn ParkCandidate>> = {
            let mut reg = self.registry.lock().expect("governor registry poisoned");
            reg.retain(|w| w.strong_count() > 0);
            reg.iter().filter_map(Weak::upgrade).collect()
        };
        // A partition is as warm as its hottest artifact: evict whole cold
        // partitions before touching any artifact of a warmer one.
        let mut partition_touch: FxHashMap<u64, u64> = FxHashMap::default();
        for c in &candidates {
            let t = partition_touch.entry(c.partition()).or_insert(0);
            *t = (*t).max(c.last_touch());
        }
        let mut ordered = candidates;
        ordered.sort_by_key(|c| (partition_touch[&c.partition()], c.last_touch()));
        for c in ordered {
            if self.resident.load(Relaxed) <= target {
                break;
            }
            if c.try_park() > 0 {
                self.evictions.fetch_add(1, Relaxed);
            }
        }
    }

    /// Spill telemetry for [`crate::ExecProfile`] / the append engine.
    pub fn snapshot(&self) -> SpillStats {
        SpillStats {
            budget: self.budget,
            bytes_spilled: self.bytes_spilled.load(Relaxed),
            evictions: self.evictions.load(Relaxed),
            refaults: self.refaults.load(Relaxed),
            refault_bytes: self.refault_bytes.load(Relaxed),
            peak_resident: self.peak.load(Relaxed),
            resident: self.resident.load(Relaxed),
        }
    }
}

/// Residency state of a [`SpillableMst`]: exactly one of `tree` (resident)
/// or `shell` + `arena` (parked) is the source of truth; the arena sticks
/// around after a re-fault so later parks are free.
struct SpillInner<I: TreeIndex> {
    tree: Option<Arc<MergeSortTree<I>>>,
    shell: Option<MstShell<I>>,
    arena: Option<SpillableArena<I>>,
}

/// A merge sort tree whose arena slab the budget governor can park in a
/// spill file and re-fault on demand — the cached form of every MST
/// artifact. Evaluators never see this type: the getters check the tree out
/// ([`SpillableMst::checkout`]) and hand them a plain resident
/// [`MergeSortTree`]; a checked-out tree cannot be parked until its last
/// probe-side reference drops.
///
/// Budget accounting is per residency transition (charge on build/re-fault,
/// release on park/drop), so the artifact is self-governed:
/// [`ArtifactBytes::governor_charged`] returns true and the cache does not
/// double-charge the build.
pub(crate) struct SpillableMst<I: TreeIndex> {
    inner: Mutex<SpillInner<I>>,
    /// Full arena footprint when resident, in bytes.
    bytes: usize,
    partition: u64,
    touch: AtomicU64,
    registered: AtomicBool,
    gov: Arc<BudgetGovernor>,
}

impl<I: TreeIndex> SpillableMst<I> {
    /// Builds the tree under the governor's budget. Trees that fit build
    /// in memory (resident, charged); trees whose arena alone would
    /// dominate the budget — or whose charge fails even after eviction —
    /// build out-of-core via [`MergeSortTree::build_spilled`] and start
    /// parked, charging only the (smaller) transient build footprint.
    pub fn build(
        values: &[I],
        params: MstParams,
        gov: &Arc<BudgetGovernor>,
        partition: u64,
    ) -> Result<Self> {
        let bytes = mst_arena_len(values.len(), params) * size_of::<I>();
        let oversized = gov.budget().is_some_and(|b| (bytes as u64).saturating_mul(2) > b);
        let inner = if !oversized && gov.charge(bytes as u64).is_ok() {
            SpillInner {
                tree: Some(Arc::new(MergeSortTree::<I>::build(values, params))),
                shell: None,
                arena: None,
            }
        } else {
            // Out-of-core: charge the transient ping-pong buffers, stream
            // the arena to disk, release the transient charge. The tree is
            // born parked; the first checkout faults it in (and only then
            // charges the full arena).
            let transient = (mst_spill_build_len(values.len(), params) * size_of::<I>()) as u64;
            gov.charge(transient)?;
            let built = MergeSortTree::<I>::build_spilled(values, params);
            gov.release(transient);
            let (shell, arena) = built.map_err(|e| Error::Spill(e.to_string()))?;
            gov.note_spill_write(arena.bytes_written());
            SpillInner { tree: None, shell: Some(shell), arena: Some(arena) }
        };
        Ok(SpillableMst {
            inner: Mutex::new(inner),
            bytes,
            partition,
            touch: AtomicU64::new(gov.tick()),
            registered: AtomicBool::new(false),
            gov: Arc::clone(gov),
        })
    }

    /// Registers the artifact as an eviction candidate (idempotent; needs
    /// the `Arc` the cache stores, hence not done in `build`).
    pub fn register(this: &Arc<Self>) {
        if !this.registered.swap(true, Relaxed) {
            let weak: Weak<dyn ParkCandidate> = Arc::downgrade(this) as Weak<dyn ParkCandidate>;
            this.gov.register(weak);
        }
    }

    /// The resident tree, re-faulting it from the spill file if parked.
    /// Fails with [`Error::BudgetExceeded`] when the arena cannot be made
    /// resident even after evicting everything cold.
    pub fn checkout(&self) -> Result<Arc<MergeSortTree<I>>> {
        self.touch.store(self.gov.tick(), Relaxed);
        let mut inner = self.inner.lock().expect("spillable tree poisoned");
        if let Some(tree) = &inner.tree {
            return Ok(Arc::clone(tree));
        }
        // Charging while holding our own lock is safe: eviction only
        // `try_lock`s candidates, so it skips us instead of deadlocking.
        self.gov.charge(self.bytes as u64)?;
        let arena = inner.arena.as_mut().expect("parked tree lost its arena");
        let slab = match arena.fault() {
            Ok(slab) => slab,
            Err(e) => {
                self.gov.release(self.bytes as u64);
                return Err(Error::Spill(e.to_string()));
            }
        };
        self.gov.note_refault(self.bytes as u64);
        let shell = inner.shell.take().expect("parked tree lost its shell");
        let tree = Arc::new(MergeSortTree::from_shell(shell, slab));
        inner.tree = Some(Arc::clone(&tree));
        Ok(tree)
    }
}

impl<I: TreeIndex> ParkCandidate for SpillableMst<I> {
    fn try_park(&self) -> usize {
        let Ok(mut inner) = self.inner.try_lock() else { return 0 };
        let Some(tree) = inner.tree.take() else { return 0 };
        let tree = match Arc::try_unwrap(tree) {
            Ok(tree) => tree,
            Err(shared) => {
                // Checked out: a probe still holds the tree.
                inner.tree = Some(shared);
                return 0;
            }
        };
        let (shell, slab) = tree.into_shell();
        if inner.arena.is_none() {
            inner.arena = Some(SpillableArena::new(shell.segments()));
        }
        let arena = inner.arena.as_mut().expect("arena just ensured");
        let before = arena.bytes_written();
        match arena.park(&slab) {
            Ok(_) => {
                self.gov.note_spill_write(arena.bytes_written() - before);
                inner.shell = Some(shell);
                self.gov.release(self.bytes as u64);
                self.bytes
            }
            Err(_) => {
                // Spill I/O failed: stay resident, release nothing. The
                // charge that triggered eviction will surface the pressure
                // as BudgetExceeded if nothing else can be parked.
                inner.tree = Some(Arc::new(MergeSortTree::from_shell(shell, slab)));
                0
            }
        }
    }

    fn last_touch(&self) -> u64 {
        self.touch.load(Relaxed)
    }

    fn partition(&self) -> u64 {
        self.partition
    }
}

impl<I: TreeIndex> ArtifactBytes for SpillableMst<I> {
    fn bytes_built(&self) -> usize {
        self.bytes
    }

    fn governor_charged(&self) -> bool {
        true
    }
}

impl<I: TreeIndex> Drop for SpillableMst<I> {
    fn drop(&mut self) {
        let resident = self.inner.get_mut().map(|inner| inner.tree.is_some()).unwrap_or(false);
        if resident {
            self.gov.release(self.bytes as u64);
        }
    }
}

/// The per-partition artifact cache.
pub(crate) struct ArtifactCache {
    slots: Mutex<FxHashMap<ArtifactKey, Slot>>,
    /// `(label, bytes)` per slot actually built (seeded slots excluded).
    footprints: Mutex<Vec<(&'static str, usize)>>,
    stats: AtomicStats,
    /// Bumped by every invalidation; incremental consumers compare their
    /// remembered generation against [`ArtifactCache::generation`] to detect
    /// that borrowed artifacts may have been dropped underneath a delta.
    generation: AtomicU64,
    /// The execution's shared budget governor.
    gov: Arc<BudgetGovernor>,
    /// This cache's partition id under the governor (eviction order).
    partition: u64,
}

impl ArtifactCache {
    pub fn new(gov: Arc<BudgetGovernor>) -> Self {
        let partition = gov.next_partition();
        ArtifactCache {
            slots: Mutex::new(FxHashMap::default()),
            footprints: Mutex::new(Vec::new()),
            stats: AtomicStats::default(),
            generation: AtomicU64::new(0),
            gov,
            partition,
        }
    }

    pub fn stats(&self) -> &AtomicStats {
        &self.stats
    }

    /// The execution-wide budget governor this cache charges builds to.
    pub fn governor(&self) -> &Arc<BudgetGovernor> {
        &self.gov
    }

    /// This cache's partition id under the governor.
    pub fn partition(&self) -> u64 {
        self.partition
    }

    /// Releases the governor charges of `slots` (drop/invalidate paths).
    fn release_charges<'s>(&self, slots: impl Iterator<Item = &'s Slot>) {
        for slot in slots {
            if let Some(Ok((_, charged))) = slot.get() {
                if *charged > 0 {
                    self.gov.release(*charged as u64);
                }
            }
        }
    }

    /// The current invalidation generation: 0 for a fresh cache, +1 per
    /// [`ArtifactCache::invalidate_all`] / [`ArtifactCache::invalidate_where`]
    /// call (even when nothing matched — the *intent* to invalidate is what a
    /// consumer must observe).
    pub fn generation(&self) -> u64 {
        self.generation.load(Relaxed)
    }

    /// Drops every cached artifact. Footprints and hit/miss statistics are
    /// retained: they describe build work actually performed, which
    /// invalidation cannot undo. Returns the number of slots dropped.
    pub fn invalidate_all(&self) -> usize {
        let mut slots = self.slots.lock().expect("artifact cache poisoned");
        let n = slots.len();
        self.release_charges(slots.values());
        slots.clear();
        self.generation.fetch_add(1, Relaxed);
        n
    }

    /// Drops the cached artifacts whose key matches `pred` — the append
    /// engine's targeted hook: a delta that only grows the partition keeps
    /// order-independent artifacts and evicts the positional ones. Returns
    /// the number of slots dropped.
    pub fn invalidate_where(&self, mut pred: impl FnMut(&ArtifactKey) -> bool) -> usize {
        let mut slots = self.slots.lock().expect("artifact cache poisoned");
        let before = slots.len();
        slots.retain(|k, slot| {
            let drop_it = pred(k);
            if drop_it {
                if let Some(Ok((_, charged))) = slot.get() {
                    if *charged > 0 {
                        self.gov.release(*charged as u64);
                    }
                }
            }
            !drop_it
        });
        self.generation.fetch_add(1, Relaxed);
        before - slots.len()
    }

    /// Drains the per-slot build footprints recorded so far.
    pub fn take_footprints(&self) -> Vec<(&'static str, usize)> {
        std::mem::take(&mut *self.footprints.lock().expect("artifact cache poisoned"))
    }

    /// Pre-populates a slot with an already-built artifact (the executor
    /// seeds the window ORDER BY key columns this way). Counts as neither a
    /// hit nor a miss; later requests count as hits.
    pub fn seed<T: Any + Send + Sync>(&self, key: ArtifactKey, value: Arc<T>) {
        let slot: Slot = Arc::new(OnceLock::new());
        let _ = slot.set(Ok((value as Payload, 0)));
        self.slots.lock().expect("artifact cache poisoned").insert(key, slot);
    }

    /// Returns the artifact for `key`, building it with `build` on first
    /// request. Concurrent requesters block on the same slot; the build runs
    /// outside the map lock, so builds of *different* keys — including a
    /// build requesting its own ingredients — never contend.
    ///
    /// The key is borrowed: the caller keeps the plan-derived key alive and
    /// the cache clones it only when creating the slot (`key_clones` counts
    /// exactly those clones — one per miss, never per hit).
    pub fn get_or_build<T, F>(&self, key: &ArtifactKey, build: F) -> Result<Arc<T>>
    where
        T: Any + Send + Sync + ArtifactBytes,
        F: FnOnce() -> Result<T>,
    {
        let slot = {
            let mut slots = self.slots.lock().expect("artifact cache poisoned");
            match slots.get(key) {
                Some(slot) => Arc::clone(slot),
                None => {
                    self.stats.key_clones.fetch_add(1, Relaxed);
                    Arc::clone(
                        slots.entry(key.clone()).or_insert_with(|| Arc::new(OnceLock::new())),
                    )
                }
            }
        };
        let mut fresh = false;
        let res = slot.get_or_init(|| {
            fresh = true;
            build().and_then(|v| {
                let v = Arc::new(v);
                let bytes = v.bytes_built();
                self.stats.bytes_built.fetch_add(bytes as u64, Relaxed);
                self.footprints.lock().expect("artifact cache poisoned").push((key.label(), bytes));
                // Self-governed artifacts charge per residency transition;
                // everything else is charged for its lifetime here. A failed
                // charge is cached like any build error: the recipe fails
                // identically for every requester.
                let charged = if v.governor_charged() {
                    0
                } else {
                    self.gov.charge(bytes as u64)?;
                    bytes
                };
                Ok((v as Payload, charged))
            })
        });
        if fresh {
            self.stats.misses.fetch_add(1, Relaxed);
        } else {
            self.stats.hits.fetch_add(1, Relaxed);
        }
        match res {
            Ok((p, _)) => Ok(Arc::clone(p)
                .downcast::<T>()
                .expect("artifact payload type is fixed by its key")),
            Err(e) => Err(e.clone()),
        }
    }
}

impl Drop for ArtifactCache {
    fn drop(&mut self) {
        // Never panic in drop (we may already be unwinding): a poisoned
        // map simply forfeits its releases.
        let Ok(slots) = self.slots.get_mut() else { return };
        let gov = Arc::clone(&self.gov);
        for slot in slots.values() {
            if let Some(Ok((_, charged))) = slot.get() {
                if *charged > 0 {
                    gov.release(*charged as u64);
                }
            }
        }
    }
}

/// Kept-row mask artifact: which positions participate, plus the remapping
/// machinery every kept-row structure shares (§4.7's index remapping).
pub(crate) struct MaskArtifact {
    /// Per partition position: passes FILTER ∧ the family's NULL screen.
    pub keep: Vec<bool>,
    /// Position ↔ kept-index remapping.
    pub remap: Remap,
    /// Kept index → table row.
    pub kept_rows: Vec<usize>,
}

impl MaskArtifact {
    pub fn kept_len(&self) -> usize {
        self.kept_rows.len()
    }
}

impl ArtifactBytes for MaskArtifact {
    fn bytes_built(&self) -> usize {
        self.keep.len() + self.remap.bytes() + self.kept_rows.len() * size_of::<usize>()
    }
}

/// Distinct-aggregate preprocessing (§4.2): value hashes and shifted
/// previous-occurrence indices per kept position, in `usize` (widened to the
/// partition's tree index on demand).
pub(crate) struct DistinctPrepArt {
    /// Value hash per kept position.
    pub hashes: Vec<u64>,
    /// Shifted previous-occurrence index per kept position (Algorithm 1).
    pub prev: Vec<usize>,
    /// Kept values (payloads / exclusion corrections). `Arc`-shared with the
    /// kept-values artifact, which is the one charged for them.
    pub values: Arc<Vec<Value>>,
    /// hash → ascending kept positions; built only under frame exclusion.
    pub occurrences: FxHashMap<u64, Vec<usize>>,
}

impl ArtifactBytes for DistinctPrepArt {
    fn bytes_built(&self) -> usize {
        self.hashes.len() * size_of::<u64>()
            + self.prev.len() * size_of::<usize>()
            + self.occurrences.values().map(|v| v.len() * size_of::<usize>()).sum::<usize>()
    }
}

/// DENSE_RANK range-tree artifact (§4.4).
pub(crate) struct RangeTreeArt {
    pub rt: RangeTree3,
    /// Tie group → ascending kept positions; built only under exclusion.
    pub occurrences: Vec<Vec<usize>>,
}

impl ArtifactBytes for RangeTreeArt {
    fn bytes_built(&self) -> usize {
        self.rt.bytes()
            + self.occurrences.iter().map(|v| v.len() * size_of::<usize>()).sum::<usize>()
    }
}

/// MODE artifact: dense value ids (in value order) plus the √-decomposition
/// index over them.
pub(crate) struct ModeArt {
    /// id → value (ascending by `sql_cmp`).
    pub decode: Vec<Value>,
    pub index: RangeModeIndex,
}

impl ArtifactBytes for ModeArt {
    fn bytes_built(&self) -> usize {
        self.decode.len() * size_of::<Value>()
            + self.decode.iter().map(Value::heap_bytes).sum::<usize>()
            + self.index.bytes()
    }
}

impl Ctx<'_> {
    /// True when this partition's trees index with u32 (uniform per
    /// partition, hence absent from artifact keys).
    pub(crate) fn u32_trees(&self) -> bool {
        fits_u32(self.m() + 1)
    }

    /// Expression values per partition position. `key` must be a
    /// [`ArtifactKey::Values`] (plan-derived; see [`crate::plan::CallKeys`]).
    pub(crate) fn values_art(&self, key: &ArtifactKey) -> Result<Arc<Vec<Value>>> {
        let ArtifactKey::Values(e) = key else { unreachable!("values_art wants a Values key") };
        self.cache.get_or_build(key, || self.eval_positions(&e.to_expr()))
    }

    /// The kept-row mask artifact, from a [`ArtifactKey::Mask`] key.
    pub(crate) fn mask_art(&self, key: &ArtifactKey) -> Result<Arc<MaskArtifact>> {
        let ArtifactKey::Mask(mk) = key else { unreachable!("mask_art wants a Mask key") };
        self.cache.get_or_build(key, || {
            let m = self.m();
            let mut keep = match &mk.filter {
                None => vec![true; m],
                Some(f) => {
                    let bound = f.to_expr().bind(self.table)?;
                    let mut stats = crate::vm::ExprVmStats::default();
                    let keep = crate::vm::eval_filter_rows(
                        &bound,
                        self.table,
                        self.rows,
                        self.compiled_exprs,
                        &mut stats,
                    )?;
                    self.vm.absorb(&stats);
                    keep
                }
            };
            if let Some(screen) = &mk.screen {
                let vals = self.values_art(&ArtifactKey::Values(screen.clone()))?;
                for (i, k) in keep.iter_mut().enumerate() {
                    *k = *k && !vals[i].is_null();
                }
            }
            let remap = Remap::new(&keep);
            let kept_rows: Vec<usize> =
                (0..remap.kept_len()).map(|k| self.rows[remap.to_position(k)]).collect();
            Ok(MaskArtifact { keep, remap, kept_rows })
        })
    }

    /// Expression values per *kept* position ([`ArtifactKey::KeptValues`]).
    pub(crate) fn kept_values_art(&self, key: &ArtifactKey) -> Result<Arc<Vec<Value>>> {
        let ArtifactKey::KeptValues(e, mk) = key else {
            unreachable!("kept_values_art wants a KeptValues key")
        };
        self.cache.get_or_build(key, || {
            let values = self.values_art(&ArtifactKey::Values(e.clone()))?;
            let mask = self.mask_art(&ArtifactKey::Mask(mk.clone()))?;
            Ok((0..mask.kept_len())
                .map(|k| values[mask.remap.to_position(k)].clone())
                .collect::<Vec<Value>>())
        })
    }

    /// Materialized inner ORDER BY key columns (full table; independent of
    /// any mask, so structurally equal criteria share one evaluation).
    /// `key` must be an [`ArtifactKey::InnerKeys`].
    pub(crate) fn inner_keys_art(&self, key: &ArtifactKey) -> Result<Arc<KeyColumns>> {
        let ArtifactKey::InnerKeys(ks) = key else {
            unreachable!("inner_keys_art wants an InnerKeys key")
        };
        self.cache.get_or_build(key, || KeyColumns::evaluate(self.table, &sort_keys_of(ks)))
    }

    /// The inner sort: dense codes over the kept rows (Figure 8). Every
    /// cache miss here is one actual sort — the profile's `inner_sorts`.
    /// `key` must be an [`ArtifactKey::DenseCodes`].
    pub(crate) fn dense_codes_art(&self, key: &ArtifactKey) -> Result<Arc<DenseCodes>> {
        let ArtifactKey::DenseCodes(order, mk) = key else {
            unreachable!("dense_codes_art wants a DenseCodes key")
        };
        let OrderKey::Keys(ks) = order else {
            unreachable!("dense codes require an explicit criterion")
        };
        let stats = self.cache.stats();
        self.cache.get_or_build(key, || {
            let keys = self.inner_keys_art(&ArtifactKey::InnerKeys(ks.clone()))?;
            let mask = self.mask_art(&ArtifactKey::Mask(mk.clone()))?;
            stats.inner_sorts.fetch_add(1, Relaxed);
            Ok(dense_codes_for(&keys, &mask.kept_rows, self.parallel))
        })
    }

    /// Merge sort tree over the unique codes (rank family / framed LEAD),
    /// from an [`ArtifactKey::CodeMst`] key.
    pub(crate) fn code_mst<I: TreeIndex>(
        &self,
        key: &ArtifactKey,
    ) -> Result<Arc<MergeSortTree<I>>> {
        let ArtifactKey::CodeMst(order, mk) = key else {
            unreachable!("code_mst wants a CodeMst key")
        };
        let stats = self.cache.stats();
        let sp = self.cache.get_or_build::<SpillableMst<I>, _>(key, || {
            let dc = self.dense_codes_art(&ArtifactKey::DenseCodes(order.clone(), mk.clone()))?;
            stats.mst_builds.fetch_add(1, Relaxed);
            let codes: Vec<I> = dc.code.iter().map(|&c| I::from_usize(c)).collect();
            SpillableMst::build(&codes, self.params, self.cache.governor(), self.cache.partition())
        })?;
        SpillableMst::register(&sp);
        sp.checkout()
    }

    /// Merge sort tree over the permutation array (selection family). The
    /// `Identity` order is the identity permutation over the kept rows.
    /// `key` must be an [`ArtifactKey::PermMst`].
    pub(crate) fn perm_mst<I: TreeIndex>(
        &self,
        key: &ArtifactKey,
    ) -> Result<Arc<MergeSortTree<I>>> {
        let ArtifactKey::PermMst(order, mk) = key else {
            unreachable!("perm_mst wants a PermMst key")
        };
        let stats = self.cache.stats();
        let sp = self.cache.get_or_build::<SpillableMst<I>, _>(key, || {
            stats.mst_builds.fetch_add(1, Relaxed);
            let perm_i: Vec<I> = match order {
                OrderKey::Identity => {
                    let mask = self.mask_art(&ArtifactKey::Mask(mk.clone()))?;
                    (0..mask.kept_len()).map(I::from_usize).collect()
                }
                OrderKey::Keys(_) => {
                    let dc =
                        self.dense_codes_art(&ArtifactKey::DenseCodes(order.clone(), mk.clone()))?;
                    dc.perm.iter().map(|&p| I::from_usize(p)).collect()
                }
            };
            SpillableMst::build(&perm_i, self.params, self.cache.governor(), self.cache.partition())
        })?;
        SpillableMst::register(&sp);
        sp.checkout()
    }

    /// Distinct preprocessing: hashes, previous-occurrence indices and (under
    /// exclusion) per-value occurrence lists ([`ArtifactKey::DistinctPrep`]).
    pub(crate) fn distinct_prep_art(&self, key: &ArtifactKey) -> Result<Arc<DistinctPrepArt>> {
        let ArtifactKey::DistinctPrep(e, mk) = key else {
            unreachable!("distinct_prep_art wants a DistinctPrep key")
        };
        self.cache.get_or_build(key, || {
            let values = self.kept_values_art(&ArtifactKey::KeptValues(e.clone(), mk.clone()))?;
            let hashes: Vec<u64> = values.iter().map(hash_value).collect();
            let prev = holistic_core::prev_idcs_u64(&hashes, self.parallel);
            let mut occurrences: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
            if self.frames.has_exclusion() {
                for (k, &h) in hashes.iter().enumerate() {
                    occurrences.entry(h).or_default().push(k);
                }
            }
            Ok(DistinctPrepArt { hashes, prev, values: Arc::clone(&values), occurrences })
        })
    }

    /// Merge sort tree over the previous-occurrence indices (COUNT DISTINCT),
    /// from an [`ArtifactKey::DistinctCountMst`] key.
    pub(crate) fn distinct_count_mst<I: TreeIndex>(
        &self,
        key: &ArtifactKey,
    ) -> Result<Arc<MergeSortTree<I>>> {
        let ArtifactKey::DistinctCountMst(e, mk) = key else {
            unreachable!("distinct_count_mst wants a DistinctCountMst key")
        };
        let stats = self.cache.stats();
        let sp = self.cache.get_or_build::<SpillableMst<I>, _>(key, || {
            let prep = self.distinct_prep_art(&ArtifactKey::DistinctPrep(e.clone(), mk.clone()))?;
            stats.mst_builds.fetch_add(1, Relaxed);
            let prev: Vec<I> = prep.prev.iter().map(|&p| I::from_usize(p)).collect();
            SpillableMst::build(&prev, self.params, self.cache.governor(), self.cache.partition())
        })?;
        SpillableMst::register(&sp);
        sp.checkout()
    }

    /// The kept-row count segment tree shared by a mask's aggregates, from
    /// an [`ArtifactKey::SegTree`] `(None, _, Count)` key.
    pub(crate) fn count_segtree(&self, key: &ArtifactKey) -> Result<Arc<SegmentTree<CountMonoid>>> {
        let ArtifactKey::SegTree(None, mk, SegFlavor::Count) = key else {
            unreachable!("count_segtree wants the count segment tree key")
        };
        let stats = self.cache.stats();
        self.cache.get_or_build(key, || {
            let mask = self.mask_art(&ArtifactKey::Mask(mk.clone()))?;
            stats.segtree_builds.fetch_add(1, Relaxed);
            let counts: Vec<u64> = mask.keep.iter().map(|&k| k as u64).collect();
            Ok(SegmentTree::<CountMonoid>::build(&counts, self.parallel))
        })
    }

    /// DENSE_RANK's 3-d range tree over tie-group ids (u32 partitions only),
    /// from an [`ArtifactKey::RangeTree`] key.
    pub(crate) fn range_tree_art(&self, key: &ArtifactKey) -> Result<Arc<RangeTreeArt>> {
        let ArtifactKey::RangeTree(order, mk) = key else {
            unreachable!("range_tree_art wants a RangeTree key")
        };
        let stats = self.cache.stats();
        self.cache.get_or_build(key, || {
            let dc = self.dense_codes_art(&ArtifactKey::DenseCodes(order.clone(), mk.clone()))?;
            stats.rangetree_builds.fetch_add(1, Relaxed);
            let gids: Vec<u32> = dc.group_id.iter().map(|&g| g as u32).collect();
            let prev: Vec<u32> = holistic_core::prev_idcs_by_key(&gids, self.parallel)
                .iter()
                .map(|&p| p as u32)
                .collect();
            let rt = RangeTree3::build(&gids, &prev, self.parallel);
            let mut occurrences: Vec<Vec<usize>> = Vec::new();
            if self.frames.has_exclusion() {
                occurrences = vec![Vec::new(); dc.num_groups];
                for (k, &g) in dc.group_id.iter().enumerate() {
                    occurrences[g].push(k);
                }
            }
            Ok(RangeTreeArt { rt, occurrences })
        })
    }

    /// The MODE decode table and √-decomposition index, from an
    /// [`ArtifactKey::ModeIndex`] key.
    pub(crate) fn mode_art(&self, key: &ArtifactKey) -> Result<Arc<ModeArt>> {
        let ArtifactKey::ModeIndex(e, mk) = key else {
            unreachable!("mode_art wants a ModeIndex key")
        };
        let stats = self.cache.stats();
        self.cache.get_or_build(key, || {
            let values = self.kept_values_art(&ArtifactKey::KeptValues(e.clone(), mk.clone()))?;
            stats.modeindex_builds.fetch_add(1, Relaxed);
            // Dense ids in value order (ids ascend with sql_cmp) so the
            // index's smallest-id tie-break picks the smallest value.
            let mut sorted: Vec<&Value> = values.iter().collect();
            sorted.sort_by(|a, b| a.sql_cmp(b));
            sorted.dedup_by(|a, b| a.sql_eq(b));
            let decode: Vec<Value> = sorted.iter().map(|v| (*v).clone()).collect();
            let ids: Vec<u32> = values
                .iter()
                .map(|v| {
                    decode.binary_search_by(|probe| probe.sql_cmp(v)).expect("value interned")
                        as u32
                })
                .collect();
            let index = RangeModeIndex::build(&ids, decode.len());
            Ok(ModeArt { decode, index })
        })
    }
}

/// Forces one planned artifact into the cache (the build phase's worklist
/// driver). Dependencies resolve recursively through the getters; the
/// partition's index width is chosen here for width-generic artifacts.
pub(crate) fn force(ctx: &Ctx<'_>, key: &ArtifactKey) -> Result<()> {
    use ArtifactKey as K;
    match key {
        K::Values(_) => drop(ctx.values_art(key)?),
        K::Mask(_) => drop(ctx.mask_art(key)?),
        K::KeptValues(..) => drop(ctx.kept_values_art(key)?),
        K::InnerKeys(_) => drop(ctx.inner_keys_art(key)?),
        K::DenseCodes(..) => drop(ctx.dense_codes_art(key)?),
        K::CodeMst(..) => {
            if ctx.u32_trees() {
                drop(ctx.code_mst::<u32>(key)?);
            } else {
                drop(ctx.code_mst::<u64>(key)?);
            }
        }
        K::PermMst(..) => {
            if ctx.u32_trees() {
                drop(ctx.perm_mst::<u32>(key)?);
            } else {
                drop(ctx.perm_mst::<u64>(key)?);
            }
        }
        K::DistinctPrep(..) => drop(ctx.distinct_prep_art(key)?),
        K::DistinctCountMst(..) => {
            if ctx.u32_trees() {
                drop(ctx.distinct_count_mst::<u32>(key)?);
            } else {
                drop(ctx.distinct_count_mst::<u64>(key)?);
            }
        }
        K::SegTree(None, _, SegFlavor::Count) => drop(ctx.count_segtree(key)?),
        K::RangeTree(..) => {
            // Wide partitions error at probe time (DENSE_RANK is u32-only);
            // skipping here keeps the error message on the evaluator's path.
            if ctx.u32_trees() {
                drop(ctx.range_tree_art(key)?);
            }
        }
        K::ModeIndex(..) => drop(ctx.mode_art(key)?),
        // Data-dependent artifacts (SUM flavor, MIN/MAX ordinal trees,
        // annotated distinct trees) are never planned eagerly; they build
        // lazily through the same cache during the probe phase.
        K::DistinctAggMst(..) | K::OrdinalEnc(..) | K::SegTree(..) => {}
    }
    Ok(())
}
