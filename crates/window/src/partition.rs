//! PARTITION BY: hash-based partitioning of row indices.

use crate::error::Result;
use crate::expr::Expr;
use crate::hash::hash_values;
use crate::table::Table;
use crate::value::Value;
use rustc_hash::FxHashMap;

/// Splits the table's rows into partitions by the PARTITION BY expressions.
///
/// Rows whose keys are `sql_eq`-equal land in the same partition (NULL groups
/// with NULL, as in SQL). Partitions come out in first-appearance order so
/// results are deterministic. An empty key list yields one partition.
pub fn partition_rows(table: &Table, partition_by: &[Expr]) -> Result<Vec<Vec<usize>>> {
    let n = table.num_rows();
    if partition_by.is_empty() {
        return Ok(vec![(0..n).collect()]);
    }
    let bound: Vec<_> = partition_by.iter().map(|e| e.bind(table)).collect::<Result<Vec<_>>>()?;
    let keys: Vec<Vec<Value>> =
        bound.iter().map(|b| b.eval_all(table)).collect::<Result<Vec<_>>>()?;

    // Hash → candidate partition ids (collision chains compare full keys).
    let mut map: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
    let mut partitions: Vec<Vec<usize>> = Vec::new();
    let mut reps: Vec<usize> = Vec::new(); // representative row per partition
    let row_key = |row: usize| -> Vec<Value> { keys.iter().map(|k| k[row].clone()).collect() };
    for row in 0..n {
        let rk = row_key(row);
        let h = hash_values(&rk);
        let candidates = map.entry(h).or_default();
        let mut found = None;
        for &pid in candidates.iter() {
            let rep = reps[pid];
            if keys.iter().all(|k| k[rep].sql_eq(&k[row])) {
                found = Some(pid);
                break;
            }
        }
        match found {
            Some(pid) => partitions[pid].push(row),
            None => {
                let pid = partitions.len();
                candidates.push(pid);
                partitions.push(vec![row]);
                reps.push(row);
            }
        }
    }
    Ok(partitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::expr::col;

    #[test]
    fn no_keys_single_partition() {
        let t = Table::new(vec![("a", Column::ints(vec![1, 2, 3]))]).unwrap();
        let p = partition_rows(&t, &[]).unwrap();
        assert_eq!(p, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn partitions_by_value_first_appearance_order() {
        let t = Table::new(vec![("g", Column::strs(vec!["b", "a", "b", "c", "a"]))]).unwrap();
        let p = partition_rows(&t, &[col("g")]).unwrap();
        assert_eq!(p, vec![vec![0, 2], vec![1, 4], vec![3]]);
    }

    #[test]
    fn nulls_group_together() {
        let t =
            Table::new(vec![("g", Column::ints_opt(vec![None, Some(1), None, Some(1)]))]).unwrap();
        let p = partition_rows(&t, &[col("g")]).unwrap();
        assert_eq!(p, vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn multi_key_partitioning() {
        let t = Table::new(vec![
            ("a", Column::ints(vec![1, 1, 2, 1])),
            ("b", Column::ints(vec![1, 2, 1, 1])),
        ])
        .unwrap();
        let p = partition_rows(&t, &[col("a"), col("b")]).unwrap();
        assert_eq!(p, vec![vec![0, 3], vec![1], vec![2]]);
    }

    #[test]
    fn empty_table() {
        let t = Table::new(vec![("a", Column::ints(vec![]))]).unwrap();
        let p = partition_rows(&t, &[col("a")]).unwrap();
        assert!(p.is_empty());
    }
}
