//! A small expression language for function arguments, FILTER predicates and
//! frame bound expressions.
//!
//! SQL allows frame bounds to be arbitrary expressions (§2.2's stock-order
//! example uses `m * mod(l_extendedprice * 7703, 499) PRECEDING`), so bounds,
//! arguments and filters all share this evaluator. Expressions are bound to a
//! table once (resolving column names to indices), then evaluated per row.

use crate::column::Column;
use crate::error::{Error, Result};
use crate::table::Table;
use crate::value::Value;

/// An unbound expression tree.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Column reference by name.
    Col(String),
    /// Literal value.
    Lit(Value),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition (Date + Int adds days).
    Add,
    /// Subtraction (Date − Date yields day counts).
    Sub,
    /// Multiplication.
    Mul,
    /// Division (Int / Int truncates; division by zero yields NULL).
    Div,
    /// Modulo (the paper's non-monotonic frame generator uses `mod`).
    Mod,
    /// Comparisons, SQL three-valued.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Logical AND (three-valued).
    And,
    /// Logical OR (three-valued).
    Or,
}

/// Shorthand constructor for a column reference.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Col(name.into())
}

/// Shorthand constructor for a literal.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Lit(v.into())
}

macro_rules! binop_method {
    ($name:ident, $op:expr) => {
        /// Builds the corresponding binary expression.
        pub fn $name(self, rhs: Expr) -> Expr {
            Expr::Bin($op, Box::new(self), Box::new(rhs))
        }
    };
}

#[allow(clippy::should_implement_trait)] // builder methods mirror SQL operators
impl Expr {
    binop_method!(add, BinOp::Add);
    binop_method!(sub, BinOp::Sub);
    binop_method!(mul, BinOp::Mul);
    binop_method!(div, BinOp::Div);
    binop_method!(rem, BinOp::Mod);
    binop_method!(lt, BinOp::Lt);
    binop_method!(le, BinOp::Le);
    binop_method!(gt, BinOp::Gt);
    binop_method!(ge, BinOp::Ge);
    binop_method!(eq_, BinOp::Eq);
    binop_method!(ne, BinOp::Ne);
    binop_method!(and, BinOp::And);
    binop_method!(or, BinOp::Or);

    /// Logical NOT.
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Arithmetic negation.
    pub fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }

    /// Resolves column references against `table`.
    pub fn bind(&self, table: &Table) -> Result<BoundExpr> {
        Ok(match self {
            Expr::Col(name) => BoundExpr::Col(table.column_index(name)?),
            Expr::Lit(v) => BoundExpr::Lit(v.clone()),
            Expr::Bin(op, a, b) => {
                BoundExpr::Bin(*op, Box::new(a.bind(table)?), Box::new(b.bind(table)?))
            }
            Expr::Not(e) => BoundExpr::Not(Box::new(e.bind(table)?)),
            Expr::Neg(e) => BoundExpr::Neg(Box::new(e.bind(table)?)),
        })
    }
}

/// An expression with column references resolved to indices.
#[derive(Debug, Clone)]
pub enum BoundExpr {
    /// Column by index.
    Col(usize),
    /// Literal.
    Lit(Value),
    /// Binary operation.
    Bin(BinOp, Box<BoundExpr>, Box<BoundExpr>),
    /// Logical NOT.
    Not(Box<BoundExpr>),
    /// Negation.
    Neg(Box<BoundExpr>),
}

impl BoundExpr {
    /// Evaluates for row `row` of `table`.
    pub fn eval(&self, table: &Table, row: usize) -> Result<Value> {
        Ok(match self {
            BoundExpr::Col(idx) => table.column_at(*idx).get(row),
            BoundExpr::Lit(v) => v.clone(),
            BoundExpr::Bin(op, a, b) => {
                let va = a.eval(table, row)?;
                let vb = b.eval(table, row)?;
                eval_binop(*op, va, vb)?
            }
            BoundExpr::Not(e) => not_value(e.eval(table, row)?)?,
            BoundExpr::Neg(e) => neg_value(e.eval(table, row)?)?,
        })
    }

    /// Evaluates the expression for every row, materializing a value vector.
    pub fn eval_all(&self, table: &Table) -> Result<Vec<Value>> {
        (0..table.num_rows()).map(|i| self.eval(table, i)).collect()
    }

    /// Evaluates and materializes into a typed [`Column`].
    ///
    /// Runs through the compiled [`crate::vm`] stack machine, which builds
    /// typed column blocks directly (no per-row `Value` round-trip); a VM
    /// error falls back to the per-row interpreter so the canonical
    /// first-row error is reported.
    pub fn eval_column(&self, table: &Table) -> Result<Column> {
        let prog = crate::vm::Program::compile(self);
        let mut vm = crate::vm::ExprVm::new();
        match vm.run_column(&prog, table) {
            Ok(col) => Ok(col),
            Err(_) => Column::from_values(&self.eval_all(table)?),
        }
    }
}

/// Logical NOT over one value (shared by the interpreter and the VM).
pub(crate) fn not_value(v: Value) -> Result<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Bool(b) => Ok(Value::Bool(!b)),
        v => Err(Error::TypeMismatch { expected: "bool", got: v.type_name(), context: "NOT" }),
    }
}

/// Arithmetic negation over one value (shared by the interpreter and the VM).
pub(crate) fn neg_value(v: Value) -> Result<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Int(v) => Ok(Value::Int(-v)),
        Value::Float(v) => Ok(Value::Float(-v)),
        v => Err(Error::TypeMismatch {
            expected: "numeric",
            got: v.type_name(),
            context: "negation",
        }),
    }
}

pub(crate) fn eval_binop(op: BinOp, a: Value, b: Value) -> Result<Value> {
    use BinOp::*;
    // Logical operators have their own three-valued NULL rules.
    if matches!(op, And | Or) {
        let ab = |v: &Value| match v {
            Value::Null => None,
            Value::Bool(x) => Some(*x),
            _ => Some(v.is_truthy()),
        };
        let (x, y) = (ab(&a), ab(&b));
        return Ok(match (op, x, y) {
            (And, Some(false), _) | (And, _, Some(false)) => Value::Bool(false),
            (And, Some(true), Some(true)) => Value::Bool(true),
            (Or, Some(true), _) | (Or, _, Some(true)) => Value::Bool(true),
            (Or, Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        });
    }
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    if matches!(op, Lt | Le | Gt | Ge | Eq | Ne) {
        let ord = a.sql_cmp(&b);
        return Ok(Value::Bool(match op {
            Lt => ord.is_lt(),
            Le => ord.is_le(),
            Gt => ord.is_gt(),
            Ge => ord.is_ge(),
            Eq => ord.is_eq(),
            Ne => ord.is_ne(),
            _ => unreachable!(),
        }));
    }
    // Arithmetic.
    let type_err =
        |got: &'static str| Error::TypeMismatch { expected: "numeric", got, context: "arithmetic" };
    match (&a, &b) {
        (Value::Int(x), Value::Int(y)) => Ok(match op {
            Add => Value::Int(x.wrapping_add(*y)),
            Sub => Value::Int(x.wrapping_sub(*y)),
            Mul => Value::Int(x.wrapping_mul(*y)),
            Div => {
                if *y == 0 {
                    Value::Null
                } else {
                    Value::Int(x / y)
                }
            }
            Mod => {
                if *y == 0 {
                    Value::Null
                } else {
                    Value::Int(x.rem_euclid(*y))
                }
            }
            _ => unreachable!(),
        }),
        (Value::Date(x), Value::Int(y)) => Ok(match op {
            Add => Value::Date(x + *y as i32),
            Sub => Value::Date(x - *y as i32),
            _ => return Err(type_err("date")),
        }),
        (Value::Int(x), Value::Date(y)) if op == Add => Ok(Value::Date(*x as i32 + y)),
        (Value::Date(x), Value::Date(y)) if op == Sub => Ok(Value::Int((*x as i64) - (*y as i64))),
        _ => {
            let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) else {
                return Err(type_err(if a.as_f64().is_none() {
                    a.type_name()
                } else {
                    b.type_name()
                }));
            };
            Ok(match op {
                Add => Value::Float(x + y),
                Sub => Value::Float(x - y),
                Mul => Value::Float(x * y),
                Div => {
                    if y == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(x / y)
                    }
                }
                Mod => {
                    if y == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(x.rem_euclid(y))
                    }
                }
                _ => unreachable!(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn table() -> Table {
        Table::new(vec![
            ("a", Column::ints(vec![10, 20, 30])),
            ("b", Column::ints_opt(vec![Some(3), None, Some(7)])),
            ("d", Column::dates(vec![100, 200, 300])),
            ("f", Column::floats(vec![1.5, 2.5, 3.5])),
        ])
        .unwrap()
    }

    fn eval(e: Expr, row: usize) -> Value {
        e.bind(&table()).unwrap().eval(&table(), row).unwrap()
    }

    #[test]
    fn arithmetic_and_mod() {
        assert_eq!(eval(col("a").add(lit(5)), 0), Value::Int(15));
        assert_eq!(eval(col("a").mul(lit(7703)).rem(lit(499)), 1), Value::Int(20 * 7703 % 499));
        assert_eq!(eval(col("a").div(lit(0)), 0), Value::Null);
        assert_eq!(eval(col("f").add(col("a")), 0), Value::Float(11.5));
    }

    #[test]
    fn null_propagates() {
        assert_eq!(eval(col("b").add(lit(1)), 1), Value::Null);
        assert_eq!(eval(col("b").gt(lit(1)), 1), Value::Null);
        assert_eq!(eval(col("b").neg(), 1), Value::Null);
    }

    #[test]
    fn date_arithmetic() {
        assert_eq!(eval(col("d").add(lit(7)), 0), Value::Date(107));
        assert_eq!(eval(col("d").sub(col("d")), 2), Value::Int(0));
        assert_eq!(eval(col("d").sub(lit(30)), 1), Value::Date(170));
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(eval(col("a").gt(lit(15)), 0), Value::Bool(false));
        assert_eq!(eval(col("a").gt(lit(15)).or(col("a").lt(lit(15))), 0), Value::Bool(true));
        // NULL AND false = false; NULL AND true = NULL (three-valued).
        assert_eq!(eval(col("b").gt(lit(0)).and(lit(false)), 1), Value::Bool(false));
        assert_eq!(eval(col("b").gt(lit(0)).and(lit(true)), 1), Value::Null);
        assert_eq!(eval(col("b").gt(lit(0)).not(), 1), Value::Null);
    }

    #[test]
    fn unknown_column_fails_at_bind() {
        assert!(col("zzz").bind(&table()).is_err());
    }

    #[test]
    fn eval_column_materializes() {
        let c = col("a").add(lit(1)).bind(&table()).unwrap().eval_column(&table()).unwrap();
        assert_eq!(c.to_values(), vec![Value::Int(11), Value::Int(21), Value::Int(31)]);
    }
}
