//! The window operator: the plan → build → probe pipeline.
//!
//! Mirrors the paper's execution pipeline (Figure 14) with an explicit
//! planning phase in front: hash partitioning, per-partition ORDER BY sort,
//! then per-partition preprocessing-artifact build + embarrassingly parallel
//! probe. The plan phase (`plan.rs`) runs once per query and derives a
//! canonical key for every preprocessing product; per partition, a shared
//! artifact cache (`artifacts.rs`) builds each distinct product exactly
//! once no matter how many calls consume it. Partitions run in parallel;
//! inside a partition, build and probe phases parallelize as described in
//! §5.2.

use crate::artifacts::{self, ArtifactCache, AtomicStats, BudgetGovernor};
use crate::column::Column;
use crate::error::Result;
use crate::eval::direct::DirectCtx;
use crate::eval::{alt, direct, evaluate_call, Ctx};
use crate::frame::resolve_frames_opts;
use crate::order::{sort_permutation, KeyColumns};
use crate::partition::partition_rows;
use crate::plan::{
    canonical_order, plan_query, sort_keys_of, ArtifactKey, CanonicalSortKey, QueryPlan,
};
use crate::spec::{FunctionCall, WindowSpec};
use crate::strategy::{choose, CostModel, PartitionStats, Strategy, StrategyMode};
use crate::table::Table;
use crate::value::Value;
use crate::vm::{AtomicExprVm, ExprVmStats};
use holistic_core::MstParams;
use rayon::prelude::*;
use rustc_hash::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Execution tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Use rayon for partitioning, sorting, tree builds and probes.
    pub parallel: bool,
    /// Merge sort tree parameters (§5.1; default f = k = 32).
    pub params: MstParams,
    /// Share preprocessing artifacts across the query's calls (default).
    /// When off, every call gets a private cache — each call still reuses
    /// its *own* artifacts (e.g. framed LEAD builds one sort for its two
    /// trees) but nothing is shared between calls. Results are identical;
    /// only the work differs. Used by benchmarks quantifying sharing.
    pub share_artifacts: bool,
    /// Probe-kernel tuning (cursor-seeded vs. stateless tree probes).
    pub probe: ProbeOptions,
    /// Per-(partition × call) strategy selection: cost-based adaptive choice
    /// (default) or one forced strategy. Output is bit-identical under every
    /// mode — forcing exists for benchmarks and the differential fuzzer.
    pub strategy: StrategyMode,
    /// Cost-model constants driving [`StrategyMode::Adaptive`]. Defaults are
    /// calibrated by the `crossover_ext` benchmark.
    pub cost_model: CostModel,
    /// Evaluate frame-bound/FILTER/argument expressions through compiled
    /// stack-VM programs (default). The interpreter escape hatch exists for
    /// benchmarking and differential testing; results are bit-identical.
    pub compiled_exprs: bool,
    /// Memory budget in bytes for resident preprocessing artifacts (`None`
    /// = unbounded, the default). Under a budget, merge-sort-tree arenas
    /// spill to temp files when cold and oversized partitions build their
    /// trees out-of-core; results stay bit-identical, and a build that
    /// cannot fit even after spilling fails with
    /// [`crate::Error::BudgetExceeded`] instead of aborting.
    pub budget: Option<u64>,
}

/// Probe-kernel tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ProbeOptions {
    /// Seed tree probes with per-`(tree, boundary)` cursors that gallop from
    /// the previous row's positions (default). Results are bit-identical
    /// with cursors on or off — this only trades O(log n) searches for
    /// amortized O(1) galloping on monotonic frame sequences. The stateless
    /// path is kept for benchmarking and as a safety valve.
    pub cursors: bool,
    /// Answer MST probes in blocks of rows through the level-synchronous
    /// block kernels (default); blocked probes bypass cursors. Results are
    /// bit-identical with blocking on or off — the scalar escape hatch is
    /// kept for benchmarking and differential testing.
    pub block: bool,
}

impl Default for ProbeOptions {
    fn default() -> Self {
        ProbeOptions { cursors: true, block: true }
    }
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            parallel: true,
            params: MstParams::default(),
            share_artifacts: true,
            probe: ProbeOptions::default(),
            strategy: StrategyMode::default(),
            cost_model: CostModel::default(),
            compiled_exprs: true,
            budget: None,
        }
    }
}

impl ExecOptions {
    /// Fully serial execution (used by benchmarks isolating algorithms).
    pub fn serial() -> Self {
        ExecOptions {
            parallel: false,
            params: MstParams::default().serial(),
            share_artifacts: true,
            probe: ProbeOptions::default(),
            strategy: StrategyMode::default(),
            cost_model: CostModel::default(),
            compiled_exprs: true,
            budget: None,
        }
    }

    /// Caps resident preprocessing-artifact memory at `bytes`. See
    /// [`ExecOptions::budget`].
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.budget = Some(bytes);
        self
    }

    /// Forces one strategy for every (partition × call) where it applies;
    /// calls the strategy cannot evaluate fall back to the merge sort tree.
    pub fn force_strategy(mut self, s: Strategy) -> Self {
        self.strategy = StrategyMode::Force(s);
        self
    }

    /// Disables cross-call artifact sharing.
    pub fn no_sharing(mut self) -> Self {
        self.share_artifacts = false;
        self
    }

    /// Disables cursor-seeded probes (every tree probe searches from
    /// scratch). Used by benchmarks quantifying probe locality.
    pub fn stateless_probes(mut self) -> Self {
        self.probe.cursors = false;
        self
    }

    /// Escape hatch: evaluate expressions through the recursive interpreter
    /// instead of compiled VM programs. Bit-identical output; used by the
    /// differential fuzzer and the `probe_batch_ext` benchmark.
    pub fn interpreted_exprs(mut self) -> Self {
        self.compiled_exprs = false;
        self
    }

    /// Escape hatch: answer every MST probe row-at-a-time (cursor-seeded)
    /// instead of through the block kernels. Bit-identical output; used by
    /// the differential fuzzer and the `probe_batch_ext` benchmark.
    pub fn unbatched_probes(mut self) -> Self {
        self.probe.block = false;
        self
    }

    /// Every engine configuration the result must be invariant under:
    /// serial/parallel × cursor/stateless probes × shared/private artifact
    /// cache. The differential fuzzer and equivalence tests iterate this
    /// matrix; all eight configurations must produce bit-identical output.
    pub fn all_configs() -> [ExecOptions; 8] {
        let mut out = [ExecOptions::default(); 8];
        let mut i = 0;
        for parallel in [false, true] {
            for cursors in [true, false] {
                for share in [true, false] {
                    let mut o =
                        if parallel { ExecOptions::default() } else { ExecOptions::serial() };
                    o.probe.cursors = cursors;
                    o.share_artifacts = share;
                    out[i] = o;
                    i += 1;
                }
            }
        }
        out
    }

    /// A short human-readable label of this configuration (replay output).
    pub fn label(&self) -> String {
        let forced = match self.strategy {
            StrategyMode::Adaptive => String::new(),
            StrategyMode::Force(s) => format!("/force-{}", s.name()),
        };
        let budget = match self.budget {
            None => String::new(),
            Some(b) => format!("/budget-{b}"),
        };
        format!(
            "{}/{}/{}{}{}{}{}",
            if self.parallel { "parallel" } else { "serial" },
            if self.probe.cursors { "cursors" } else { "stateless" },
            if self.share_artifacts { "shared" } else { "private" },
            if self.compiled_exprs { "" } else { "/interp" },
            if self.probe.block { "" } else { "/scalar" },
            forced,
            budget,
        )
    }
}

/// Artifact-cache counters, accumulated over all per-partition caches of one
/// execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Artifact requests answered from the cache.
    pub hits: u64,
    /// Artifact requests that triggered a build.
    pub misses: u64,
    /// `ArtifactKey` clones performed by the cache. Keys are derived once in
    /// the plan phase and borrowed on every request; the cache clones one
    /// only when creating a new slot, so this always equals `misses` — the
    /// executor's tests pin that invariant.
    pub key_clones: u64,
    /// Total bytes of artifacts built (shallow per-artifact estimates).
    pub bytes_built: u64,
    /// Inner-sort (dense code) computations actually performed.
    pub inner_sorts: u64,
    /// Merge sort tree builds (code, permutation and distinct trees).
    pub mst_builds: u64,
    /// Segment tree builds (distributive aggregates).
    pub segtree_builds: u64,
    /// Range tree builds (DENSE_RANK).
    pub rangetree_builds: u64,
    /// Range-mode index builds (MODE).
    pub modeindex_builds: u64,
}

/// Probe-kernel counters, accumulated over every cursor of one execution
/// (serial loops and parallel probe chunks alike).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeKernelStats {
    /// Probe primitives that ran through an enabled cursor.
    pub cursor_probes: u64,
    /// Probe primitives that took the stateless path (cursors disabled).
    pub stateless_probes: u64,
    /// Searches answered by galloping from a memoized position.
    pub gallop_seeded: u64,
    /// Total galloping steps across all seeded searches.
    pub gallop_steps: u64,
    /// Full binary searches (no usable memo).
    pub full_searches: u64,
    /// Per-level memo misses that fell back to cascaded refinement.
    pub level_resets: u64,
    /// Block-kernel invocations (one per probe block per tree).
    pub block_calls: u64,
    /// Queries answered by the block kernels.
    pub block_queries: u64,
}

/// Lock-free accumulator for [`ProbeKernelStats`]; one per execution, shared
/// across partitions and probe chunks.
#[derive(Debug, Default)]
pub(crate) struct AtomicProbeKernel {
    cursor_probes: AtomicU64,
    stateless_probes: AtomicU64,
    gallop_seeded: AtomicU64,
    gallop_steps: AtomicU64,
    full_searches: AtomicU64,
    level_resets: AtomicU64,
    block_calls: AtomicU64,
    block_queries: AtomicU64,
}

impl AtomicProbeKernel {
    /// Folds one cursor's counters into the query-level totals.
    pub(crate) fn absorb(&self, s: &holistic_core::CursorStats) {
        self.cursor_probes.fetch_add(s.cursor_probes, Relaxed);
        self.stateless_probes.fetch_add(s.stateless_probes, Relaxed);
        self.gallop_seeded.fetch_add(s.gallop_seeded, Relaxed);
        self.gallop_steps.fetch_add(s.gallop_steps, Relaxed);
        self.full_searches.fetch_add(s.full_searches, Relaxed);
        self.level_resets.fetch_add(s.level_resets, Relaxed);
    }

    /// Folds one block-scratch's counters into the query-level totals.
    pub(crate) fn absorb_block(&self, s: &holistic_core::BlockStats) {
        self.block_calls.fetch_add(s.block_calls, Relaxed);
        self.block_queries.fetch_add(s.block_queries, Relaxed);
    }

    fn snapshot(&self) -> ProbeKernelStats {
        ProbeKernelStats {
            cursor_probes: self.cursor_probes.load(Relaxed),
            stateless_probes: self.stateless_probes.load(Relaxed),
            gallop_seeded: self.gallop_seeded.load(Relaxed),
            gallop_steps: self.gallop_steps.load(Relaxed),
            full_searches: self.full_searches.load(Relaxed),
            level_resets: self.level_resets.load(Relaxed),
            block_calls: self.block_calls.load(Relaxed),
            block_queries: self.block_queries.load(Relaxed),
        }
    }
}

/// Spill telemetry of one execution under a memory budget (all zeros, with
/// `budget: None`, when no budget is configured — unbudgeted executions
/// still track resident/peak bytes of governed artifacts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// The configured budget ([`ExecOptions::budget`]).
    pub budget: Option<u64>,
    /// Bytes actually written to spill files (out-of-core builds and
    /// first-time parks; re-parking an already-written slab is free).
    pub bytes_spilled: u64,
    /// Artifacts parked by the governor to make room for a charge.
    pub evictions: u64,
    /// Times a parked arena was re-faulted from its spill file.
    pub refaults: u64,
    /// Bytes re-faulted across those re-faults.
    pub refault_bytes: u64,
    /// High-water mark of resident governed bytes.
    pub peak_resident: u64,
    /// Resident governed bytes at the end of the execution.
    pub resident: u64,
}

/// Memory footprint of one artifact kind, accumulated over every build of
/// one execution (all partitions, all per-call caches).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArtifactFootprint {
    /// The artifact kind (an `ArtifactKey` label, e.g.
    /// `"code-mst"` or `"dense-codes"`).
    pub label: &'static str,
    /// Number of builds of this kind.
    pub builds: u64,
    /// Total bytes across those builds (shallow estimates; see the artifact
    /// cache docs).
    pub bytes: u64,
}

/// Per-(partition × call) strategy decisions of one execution, accumulated
/// across partitions. Indexed by [`Strategy::index`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StrategyProfile {
    /// Total decisions per strategy over all (partition × call) pairs.
    pub decisions: [u64; 5],
    /// Decisions per call (outer index = call position in the query).
    pub per_call: Vec<[u64; 5]>,
    /// Partitions where *every* call chose [`Strategy::Naive`] and the whole
    /// artifact machinery (cache, seeding, footprints) was skipped.
    pub cacheless_partitions: u64,
}

/// Phase timings and cache counters of one execution.
///
/// `build` covers the partition sort, frame resolution and the eager
/// prebuild of statically-planned artifacts; data-dependent artifacts (e.g.
/// the SUM segment tree, whose element type depends on the data) are built
/// lazily through the same cache and attributed to `probe`.
#[derive(Debug, Clone, Default)]
pub struct ExecProfile {
    /// Call validation + query planning (once per query).
    pub plan: Duration,
    /// Partition sorting, frame resolution and eager artifact builds,
    /// summed over partitions.
    pub build: Duration,
    /// Call evaluation (probing, plus lazy artifact builds), summed over
    /// partitions.
    pub probe: Duration,
    /// Frame resolution alone, summed over partitions. A sub-span of
    /// `build`; reported separately so the compiled-VM speedup on
    /// expression-bound frames is directly observable.
    pub resolve: Duration,
    /// Number of partitions processed.
    pub partitions: usize,
    /// Accumulated artifact-cache counters.
    pub cache: CacheStats,
    /// Accumulated probe-kernel counters (cursor galloping vs. full
    /// searches).
    pub probe_kernel: ProbeKernelStats,
    /// Per-kind artifact memory footprints, largest first.
    pub artifacts: Vec<ArtifactFootprint>,
    /// Per-(partition × call) strategy decisions.
    pub strategy: StrategyProfile,
    /// Expression-VM counters (programs compiled, rows evaluated by the VM
    /// vs. the interpreter, fallbacks).
    pub expr_vm: ExprVmStats,
    /// Memory-budget spill telemetry (bytes spilled, evictions, re-faults,
    /// peak resident).
    pub spill: SpillStats,
}

/// A window query: one OVER clause, many function calls.
#[derive(Debug, Clone)]
pub struct WindowQuery {
    /// The shared OVER clause.
    pub spec: WindowSpec,
    /// The function calls to evaluate against it.
    pub calls: Vec<FunctionCall>,
}

impl WindowQuery {
    /// Starts a query over the given OVER clause.
    pub fn over(spec: WindowSpec) -> Self {
        WindowQuery { spec, calls: Vec::new() }
    }

    /// Adds a function call.
    pub fn call(mut self, call: FunctionCall) -> Self {
        self.calls.push(call);
        self
    }

    /// Executes with default options; returns one output column per call, in
    /// the *original row order* of the input table.
    pub fn execute(&self, table: &Table) -> Result<Table> {
        self.execute_with(table, ExecOptions::default())
    }

    /// Executes with explicit options.
    pub fn execute_with(&self, table: &Table, opts: ExecOptions) -> Result<Table> {
        self.execute_profiled(table, opts).map(|(out, _)| out)
    }

    /// Executes with explicit options, returning phase timings and artifact
    /// cache counters alongside the output.
    pub fn execute_profiled(
        &self,
        table: &Table,
        opts: ExecOptions,
    ) -> Result<(Table, ExecProfile)> {
        let n = table.num_rows();

        // Plan phase: validate every call, then derive canonical artifact
        // keys and the per-partition prebuild worklist.
        let plan_start = Instant::now();
        for call in &self.calls {
            call.validate()?;
        }
        let plan: QueryPlan = plan_query(&self.spec, &self.calls);
        let plan_time = plan_start.elapsed();

        let partitions = partition_rows(table, &self.spec.partition_by)?;
        let window_keys = Arc::new(KeyColumns::evaluate(table, &self.spec.order_by)?);
        // The window ORDER BY key columns are query-level; each partition
        // cache is seeded with them so calls falling back to the window
        // order never re-evaluate the key expressions.
        let window_order = canonical_order(&self.spec.order_by);

        // Hoist *every* planned inner ORDER BY criterion to query level:
        // key columns cover the full table and are mask-independent, so one
        // evaluation serves all partitions (and the direct path, which has
        // no cache to share through). Skipped when there are no partitions,
        // preserving the no-work-no-error behaviour of empty inputs.
        let mut hoisted_keys: FxHashMap<Vec<CanonicalSortKey>, Arc<KeyColumns>> =
            FxHashMap::default();
        if !partitions.is_empty() {
            if !window_order.is_empty() {
                hoisted_keys.insert(window_order.clone(), Arc::clone(&window_keys));
            }
            for key in &plan.prebuild {
                if let ArtifactKey::InnerKeys(ks) = key {
                    if !hoisted_keys.contains_key(ks) {
                        let kc = Arc::new(KeyColumns::evaluate(table, &sort_keys_of(ks))?);
                        hoisted_keys.insert(ks.clone(), kc);
                    }
                }
            }
        }

        // Parallelize across partitions when there are many, inside a
        // partition when there are few (§5.2's task model collapses to this
        // two-level scheme here).
        let threads = rayon::current_num_threads();
        let across = opts.parallel && partitions.len() >= 2 * threads;
        let within = opts.parallel && !across;

        let build_nanos = AtomicU64::new(0);
        let probe_nanos = AtomicU64::new(0);
        let resolve_nanos = AtomicU64::new(0);
        // One budget governor per execution, shared by every per-partition
        // cache: charges accumulate across partitions, and eviction can park
        // a cold partition's trees to make room for a hot one's.
        let gov = Arc::new(BudgetGovernor::new(opts.budget));
        let totals = AtomicStats::default();
        let kernel = AtomicProbeKernel::default();
        let vm_acc = AtomicExprVm::new();
        // label → (builds, bytes), accumulated as each cache retires.
        let footprints = Mutex::new(FxHashMap::<&'static str, (u64, u64)>::default());
        let absorb_footprints = |cache: &ArtifactCache| {
            let built = cache.take_footprints();
            if built.is_empty() {
                return;
            }
            let mut map = footprints.lock().expect("footprint accumulator poisoned");
            for (label, bytes) in built {
                let e = map.entry(label).or_insert((0, 0));
                e.0 += 1;
                e.1 += bytes as u64;
            }
        };

        let seeded_cache = || {
            let cache = ArtifactCache::new(Arc::clone(&gov));
            for (ks, kc) in &hoisted_keys {
                cache.seed(ArtifactKey::InnerKeys(ks.clone()), Arc::clone(kc));
            }
            cache
        };
        // Strategy decisions, accumulated per partition. Additions commute,
        // so the totals are deterministic under partition parallelism.
        let strategy_acc = Mutex::new(StrategyProfile {
            per_call: vec![[0u64; 5]; self.calls.len()],
            ..StrategyProfile::default()
        });

        // Build + probe one partition; returns its sorted rows and one
        // output vector per call (scattered back to table order below).
        let process = |rows_unsorted: &Vec<usize>| -> Result<(Vec<usize>, Vec<Vec<Value>>)> {
            let build_start = Instant::now();
            let mut rows = rows_unsorted.clone();
            sort_permutation(&window_keys, &mut rows, within);
            let resolve_start = Instant::now();
            let mut vm_stats = ExprVmStats::default();
            let frames = resolve_frames_opts(
                table,
                &rows,
                &window_keys,
                &self.spec.frame,
                opts.compiled_exprs,
                &mut vm_stats,
            )?;
            resolve_nanos.fetch_add(resolve_start.elapsed().as_nanos() as u64, Relaxed);
            vm_acc.absorb(&vm_stats);
            let params = if within { opts.params } else { opts.params.serial() };

            // Pick a strategy per call. The choice is a pure function of
            // (mode, call class, frame stats, cost model) — none of which
            // depend on parallelism, cursors or sharing — so every engine
            // configuration makes identical choices and stays bit-identical.
            let pstats = PartitionStats::from_frames(&frames);
            // Under a budget, surcharge the MST's cost terms by how hard
            // this partition's tree would press on it (spill writes +
            // re-faults the base model doesn't price). The penalty is a pure
            // function of (partition size, params, budget) — identical
            // across engine configurations, so choices stay deterministic.
            let est_tree_bytes = (holistic_core::mst_arena_len(rows.len(), params)
                * if holistic_core::index::fits_u32(rows.len() + 1) { 4 } else { 8 })
                as u64;
            let model = opts.cost_model.under_memory_pressure(est_tree_bytes, opts.budget);
            let choices: Vec<Strategy> = plan
                .calls
                .iter()
                .map(|cp| choose(opts.strategy, cp.class, &pstats, &model))
                .collect();
            let all_naive = choices.iter().all(|&s| s == Strategy::Naive);
            {
                let mut sp = strategy_acc.lock().expect("strategy accumulator poisoned");
                for (ci, s) in choices.iter().enumerate() {
                    sp.decisions[s.index()] += 1;
                    sp.per_call[ci][s.index()] += 1;
                }
                if all_naive {
                    sp.cacheless_partitions += 1;
                }
            }

            let dctx = DirectCtx { table, rows: &rows, frames: &frames, inner_keys: &hoisted_keys };
            let mut outs: Vec<Vec<Value>> = Vec::with_capacity(self.calls.len());
            if all_naive {
                // Small-partition fast path: no cache, no seeding, no
                // footprint accounting — just direct evaluation.
                build_nanos.fetch_add(build_start.elapsed().as_nanos() as u64, Relaxed);
                let probe_start = Instant::now();
                for (call, cp) in self.calls.iter().zip(&plan.calls) {
                    outs.push(direct::evaluate(&dctx, call, cp)?);
                }
                probe_nanos.fetch_add(probe_start.elapsed().as_nanos() as u64, Relaxed);
            } else if opts.share_artifacts {
                let cache = seeded_cache();
                let ctx = Ctx {
                    table,
                    rows: &rows,
                    frames: &frames,
                    parallel: within,
                    params,
                    cache: &cache,
                    cursors: opts.probe.cursors,
                    kernel: &kernel,
                    block_probes: opts.probe.block,
                    compiled_exprs: opts.compiled_exprs,
                    vm: &vm_acc,
                };
                // Eager prebuild only for calls the MST actually serves;
                // alternates build lazily from the shared cache and the
                // direct path needs nothing.
                for (cp, &s) in plan.calls.iter().zip(&choices) {
                    if s == Strategy::Mst {
                        for key in cp.keys.eager() {
                            artifacts::force(&ctx, key)?;
                        }
                    }
                }
                build_nanos.fetch_add(build_start.elapsed().as_nanos() as u64, Relaxed);
                let probe_start = Instant::now();
                for ((call, cp), &s) in self.calls.iter().zip(&plan.calls).zip(&choices) {
                    outs.push(match s {
                        Strategy::Mst => evaluate_call(&ctx, call, cp)?,
                        Strategy::Naive => direct::evaluate(&dctx, call, cp)?,
                        other => alt::evaluate(&ctx, call, cp, other)?,
                    });
                }
                probe_nanos.fetch_add(probe_start.elapsed().as_nanos() as u64, Relaxed);
                cache.stats().merge_into(&totals);
                absorb_footprints(&cache);
            } else {
                build_nanos.fetch_add(build_start.elapsed().as_nanos() as u64, Relaxed);
                let probe_start = Instant::now();
                for ((call, cp), &s) in self.calls.iter().zip(&plan.calls).zip(&choices) {
                    if s == Strategy::Naive {
                        outs.push(direct::evaluate(&dctx, call, cp)?);
                        continue;
                    }
                    // A fresh cache per call: artifacts are still shared
                    // *within* the call, never across calls.
                    let cache = seeded_cache();
                    let ctx = Ctx {
                        table,
                        rows: &rows,
                        frames: &frames,
                        parallel: within,
                        params,
                        cache: &cache,
                        cursors: opts.probe.cursors,
                        kernel: &kernel,
                        block_probes: opts.probe.block,
                        compiled_exprs: opts.compiled_exprs,
                        vm: &vm_acc,
                    };
                    outs.push(match s {
                        Strategy::Mst => evaluate_call(&ctx, call, cp)?,
                        other => alt::evaluate(&ctx, call, cp, other)?,
                    });
                    cache.stats().merge_into(&totals);
                    absorb_footprints(&cache);
                }
                probe_nanos.fetch_add(probe_start.elapsed().as_nanos() as u64, Relaxed);
            }
            Ok((rows, outs))
        };

        let per_partition: Vec<(Vec<usize>, Vec<Vec<Value>>)> = if across {
            partitions.par_iter().map(process).collect::<Result<Vec<_>>>()?
        } else {
            partitions.iter().map(process).collect::<Result<Vec<_>>>()?
        };

        // Scatter back to original row order — one shared row map per
        // partition, one output vector per call.
        let mut out = Table::empty();
        for (ci, call) in self.calls.iter().enumerate() {
            let mut values = vec![Value::Null; n];
            for (rows, outs) in &per_partition {
                for (pos, &row) in rows.iter().enumerate() {
                    values[row] = outs[ci][pos].clone();
                }
            }
            out.add_column(call.output_name.clone(), Column::from_values(&values)?)?;
        }
        let mut artifacts: Vec<ArtifactFootprint> = footprints
            .into_inner()
            .expect("footprint accumulator poisoned")
            .into_iter()
            .map(|(label, (builds, bytes))| ArtifactFootprint { label, builds, bytes })
            .collect();
        artifacts.sort_by(|a, b| b.bytes.cmp(&a.bytes).then(a.label.cmp(b.label)));
        let profile = ExecProfile {
            plan: plan_time,
            build: Duration::from_nanos(build_nanos.load(Relaxed)),
            probe: Duration::from_nanos(probe_nanos.load(Relaxed)),
            resolve: Duration::from_nanos(resolve_nanos.load(Relaxed)),
            partitions: partitions.len(),
            cache: totals.snapshot(),
            probe_kernel: kernel.snapshot(),
            artifacts,
            strategy: strategy_acc.into_inner().expect("strategy accumulator poisoned"),
            expr_vm: vm_acc.snapshot(),
            spill: gov.snapshot(),
        };
        Ok((out, profile))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::frame::{FrameBound, FrameSpec};
    use crate::order::SortKey;
    use crate::spec::{FunctionCall, WindowSpec};

    fn ints(vals: Vec<i64>) -> Table {
        Table::new(vec![("x", Column::ints(vals))]).unwrap()
    }

    #[test]
    fn running_sum_over_rows_frame() {
        let t = ints(vec![3, 1, 2]);
        let q = WindowQuery::over(
            WindowSpec::new()
                .order_by(vec![SortKey::asc(col("x"))])
                .frame(FrameSpec::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow)),
        )
        .call(FunctionCall::sum(col("x")).named("s"));
        let out = q.execute(&t).unwrap();
        // Original row order: x=3 → 6, x=1 → 1, x=2 → 3.
        assert_eq!(
            out.column("s").unwrap().to_values(),
            vec![Value::Int(6), Value::Int(1), Value::Int(3)]
        );
    }

    #[test]
    fn moving_median_small() {
        let t = ints(vec![5, 1, 4, 2, 3]);
        let q = WindowQuery::over(WindowSpec::new().order_by(vec![SortKey::asc(col("x"))]).frame(
            FrameSpec::rows(FrameBound::Preceding(lit(1i64)), FrameBound::Following(lit(1i64))),
        ))
        .call(FunctionCall::median(col("x")).named("med"));
        let out = q.execute(&t).unwrap();
        // Sorted: 1 2 3 4 5; medians of windows: [1,2]→2? PERCENTILE_DISC(0.5)
        // of 2 elements is the 1st (ceil(0.5*2)=1) → 1; of 3 elements → 2nd.
        // Window per row (sorted): [1,2]→1, [1,2,3]→2, [2,3,4]→3, [3,4,5]→4, [4,5]→4.
        let by_x: Vec<(i64, i64)> = (0..5)
            .map(|r| {
                let x = t.column("x").unwrap().get(r).as_i64().unwrap();
                let m = out.column("med").unwrap().get(r).as_i64().unwrap();
                (x, m)
            })
            .collect();
        let mut by_x = by_x;
        by_x.sort_unstable();
        assert_eq!(by_x, vec![(1, 1), (2, 2), (3, 3), (4, 4), (5, 4)]);
    }

    #[test]
    fn partitions_do_not_interact() {
        let t = Table::new(vec![
            ("g", Column::strs(vec!["a", "b", "a", "b"])),
            ("x", Column::ints(vec![1, 10, 2, 20])),
        ])
        .unwrap();
        let q = WindowQuery::over(
            WindowSpec::new()
                .partition_by(vec![col("g")])
                .order_by(vec![SortKey::asc(col("x"))])
                .frame(FrameSpec::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow)),
        )
        .call(FunctionCall::sum(col("x")).named("s"));
        let out = q.execute(&t).unwrap();
        assert_eq!(
            out.column("s").unwrap().to_values(),
            vec![Value::Int(1), Value::Int(10), Value::Int(3), Value::Int(30)]
        );
    }

    #[test]
    fn count_distinct_over_running_frame() {
        let t = ints(vec![7, 7, 8, 7, 9]);
        // Order by position: use a row-number column.
        let t2 = Table::new(vec![
            ("x", Column::ints(vec![7, 7, 8, 7, 9])),
            ("pos", Column::ints(vec![0, 1, 2, 3, 4])),
        ])
        .unwrap();
        let _ = t;
        let q = WindowQuery::over(
            WindowSpec::new()
                .order_by(vec![SortKey::asc(col("pos"))])
                .frame(FrameSpec::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow)),
        )
        .call(FunctionCall::count_distinct(col("x")).named("cd"));
        let out = q.execute(&t2).unwrap();
        assert_eq!(
            out.column("cd").unwrap().to_values(),
            vec![Value::Int(1), Value::Int(1), Value::Int(2), Value::Int(2), Value::Int(3)]
        );
    }

    #[test]
    fn empty_table_executes() {
        let t = ints(vec![]);
        let q = WindowQuery::over(WindowSpec::new()).call(FunctionCall::count_star().named("c"));
        let out = q.execute(&t).unwrap();
        assert_eq!(out.column("c").unwrap().len(), 0);
    }

    #[test]
    fn rank_with_two_orderings() {
        // The paper's §2.4 pattern: frame by date, rank by value.
        let t = Table::new(vec![
            ("date", Column::ints(vec![1, 2, 3, 4])),
            ("tps", Column::ints(vec![10, 30, 20, 40])),
        ])
        .unwrap();
        let q = WindowQuery::over(
            WindowSpec::new()
                .order_by(vec![SortKey::asc(col("date"))])
                .frame(FrameSpec::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow)),
        )
        .call(FunctionCall::rank(vec![SortKey::desc(col("tps"))]).named("r"));
        let out = q.execute(&t).unwrap();
        // date 1: rank of 10 among {10} = 1; date 2: 30 among {10,30} = 1;
        // date 3: 20 among {10,30,20} = 2; date 4: 40 among all = 1.
        assert_eq!(
            out.column("r").unwrap().to_values(),
            vec![Value::Int(1), Value::Int(1), Value::Int(2), Value::Int(1)]
        );
    }

    #[test]
    fn profile_reports_phases_and_counters() {
        let t = ints(vec![5, 1, 4, 2, 3]);
        let q = WindowQuery::over(
            WindowSpec::new()
                .order_by(vec![SortKey::asc(col("x"))])
                .frame(FrameSpec::rows(FrameBound::Preceding(lit(2i64)), FrameBound::CurrentRow)),
        )
        .call(FunctionCall::median(col("x")).named("med"))
        .call(FunctionCall::sum(col("x")).named("s"));
        // Force the MST so the tiny partition doesn't take the cacheless
        // direct path (this test pins the cache counters).
        let opts = ExecOptions::serial().force_strategy(Strategy::Mst);
        let (out, profile) = q.execute_profiled(&t, opts).unwrap();
        assert_eq!(out.column("med").unwrap().len(), 5);
        assert_eq!(profile.partitions, 1);
        assert!(profile.cache.misses > 0);
        assert_eq!(profile.strategy.decisions[Strategy::Mst.index()], 2);
        assert_eq!(profile.strategy.cacheless_partitions, 0);
        // The median needs exactly one inner sort; the sum needs none.
        assert_eq!(profile.cache.inner_sorts, 1);
        assert_eq!(profile.cache.segtree_builds, 2); // count + sum trees
    }

    #[test]
    fn key_clones_equal_misses_and_footprints_reported() {
        // Keys are derived in the plan phase and borrowed on every request;
        // the cache clones one only when creating a slot. If any evaluator
        // re-derived a key on the probe path (the old lazy-build behaviour),
        // hits would outnumber slots yet clones would exceed misses.
        let t = Table::new(vec![
            ("x", Column::ints(vec![5, 1, 4, 2, 3, 9, 8, 7])),
            ("f", Column::floats(vec![0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5])),
        ])
        .unwrap();
        let q = WindowQuery::over(
            WindowSpec::new()
                .order_by(vec![SortKey::asc(col("x"))])
                .frame(FrameSpec::rows(FrameBound::Preceding(lit(3i64)), FrameBound::CurrentRow)),
        )
        .call(FunctionCall::sum(col("f")).named("s"))
        .call(FunctionCall::avg(col("f")).named("a"))
        .call(FunctionCall::min(col("x")).named("lo"))
        .call(FunctionCall::sum_distinct(col("x")).named("sd"))
        .call(FunctionCall::median(col("x")).named("med"))
        .call(FunctionCall::rank(vec![SortKey::desc(col("x"))]).named("r"));
        for opts in ExecOptions::all_configs() {
            let opts = opts.force_strategy(Strategy::Mst);
            let (_, profile) = q.execute_profiled(&t, opts).unwrap();
            assert!(profile.cache.hits > 0, "{}: sharing expected", opts.label());
            assert_eq!(
                profile.cache.key_clones,
                profile.cache.misses,
                "{}: a request cloned its key without creating a slot",
                opts.label()
            );
            // Every build was charged to a footprint bucket.
            let builds: u64 = profile.artifacts.iter().map(|a| a.builds).sum();
            assert_eq!(builds, profile.cache.misses, "{}", opts.label());
            let bytes: u64 = profile.artifacts.iter().map(|a| a.bytes).sum();
            assert_eq!(bytes, profile.cache.bytes_built, "{}", opts.label());
            assert!(profile.artifacts.iter().any(|a| a.label == "segtree-sum-f64"));
            assert!(profile.artifacts.windows(2).all(|w| w[0].bytes >= w[1].bytes));
        }
    }

    #[test]
    fn sharing_toggle_preserves_results() {
        let t = Table::new(vec![
            ("g", Column::ints(vec![0, 1, 0, 1, 0, 1, 0, 1])),
            ("x", Column::ints(vec![5, 3, 8, 1, 9, 2, 7, 4])),
        ])
        .unwrap();
        let q = WindowQuery::over(
            WindowSpec::new()
                .partition_by(vec![col("g")])
                .order_by(vec![SortKey::asc(col("x"))])
                .frame(FrameSpec::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow)),
        )
        .call(FunctionCall::rank(vec![SortKey::desc(col("x"))]).named("r"))
        .call(FunctionCall::row_number(vec![SortKey::desc(col("x"))]).named("rn"))
        .call(FunctionCall::median(col("x")).named("med"));
        let shared = q.execute_with(&t, ExecOptions::serial()).unwrap();
        let private = q.execute_with(&t, ExecOptions::serial().no_sharing()).unwrap();
        for name in ["r", "rn", "med"] {
            assert_eq!(
                shared.column(name).unwrap().to_values(),
                private.column(name).unwrap().to_values(),
                "column {name} differs between shared and private caches"
            );
        }
    }
}
