//! The window operator: partitioning, sorting, frame resolution and function
//! dispatch.
//!
//! Mirrors the paper's execution pipeline (Figure 14): hash partitioning,
//! per-partition ORDER BY sort, then per-call preprocessing + tree build +
//! embarrassingly parallel probe phase. Partitions run in parallel; inside a
//! partition, build and probe phases parallelize as described in §5.2.

use crate::column::Column;
use crate::error::Result;
use crate::eval::{evaluate_call, Ctx};
use crate::frame::resolve_frames;
use crate::order::{sort_permutation, KeyColumns};
use crate::partition::partition_rows;
use crate::spec::{FunctionCall, WindowSpec};
use crate::table::Table;
use crate::value::Value;
use holistic_core::MstParams;
use rayon::prelude::*;

/// Execution tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Use rayon for partitioning, sorting, tree builds and probes.
    pub parallel: bool,
    /// Merge sort tree parameters (§5.1; default f = k = 32).
    pub params: MstParams,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { parallel: true, params: MstParams::default() }
    }
}

impl ExecOptions {
    /// Fully serial execution (used by benchmarks isolating algorithms).
    pub fn serial() -> Self {
        ExecOptions { parallel: false, params: MstParams::default().serial() }
    }
}

/// A window query: one OVER clause, many function calls.
#[derive(Debug, Clone)]
pub struct WindowQuery {
    /// The shared OVER clause.
    pub spec: WindowSpec,
    /// The function calls to evaluate against it.
    pub calls: Vec<FunctionCall>,
}

impl WindowQuery {
    /// Starts a query over the given OVER clause.
    pub fn over(spec: WindowSpec) -> Self {
        WindowQuery { spec, calls: Vec::new() }
    }

    /// Adds a function call.
    pub fn call(mut self, call: FunctionCall) -> Self {
        self.calls.push(call);
        self
    }

    /// Executes with default options; returns one output column per call, in
    /// the *original row order* of the input table.
    pub fn execute(&self, table: &Table) -> Result<Table> {
        self.execute_with(table, ExecOptions::default())
    }

    /// Executes with explicit options.
    pub fn execute_with(&self, table: &Table, opts: ExecOptions) -> Result<Table> {
        let n = table.num_rows();
        for call in &self.calls {
            call.validate()?;
        }
        let partitions = partition_rows(table, &self.spec.partition_by)?;
        let window_keys = KeyColumns::evaluate(table, &self.spec.order_by)?;

        // Parallelize across partitions when there are many, inside a
        // partition when there are few (§5.2's task model collapses to this
        // two-level scheme here).
        let threads = rayon::current_num_threads();
        let across = opts.parallel && partitions.len() >= 2 * threads;
        let within = opts.parallel && !across;

        let process = |rows_unsorted: &Vec<usize>| -> Result<Vec<(Vec<usize>, Vec<Value>)>> {
            let mut rows = rows_unsorted.clone();
            sort_permutation(&window_keys, &mut rows, within);
            let frames = resolve_frames(table, &rows, &window_keys, &self.spec.frame)?;
            let ctx = Ctx {
                table,
                rows: &rows,
                frames: &frames,
                window_keys: &window_keys,
                parallel: within,
                params: if within { opts.params } else { opts.params.serial() },
            };
            self.calls
                .iter()
                .map(|call| Ok((rows.clone(), evaluate_call(&ctx, call)?)))
                .collect()
        };

        let per_partition: Vec<Vec<(Vec<usize>, Vec<Value>)>> = if across {
            partitions.par_iter().map(process).collect::<Result<Vec<_>>>()?
        } else {
            partitions.iter().map(process).collect::<Result<Vec<_>>>()?
        };

        // Scatter back to original row order.
        let mut out = Table::empty();
        for (ci, call) in self.calls.iter().enumerate() {
            let mut values = vec![Value::Null; n];
            for part in &per_partition {
                let (rows, vals) = &part[ci];
                for (pos, &row) in rows.iter().enumerate() {
                    values[row] = vals[pos].clone();
                }
            }
            out.add_column(call.output_name.clone(), Column::from_values(&values)?)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::frame::{FrameBound, FrameSpec};
    use crate::order::SortKey;
    use crate::spec::{FunctionCall, WindowSpec};

    fn ints(vals: Vec<i64>) -> Table {
        Table::new(vec![("x", Column::ints(vals))]).unwrap()
    }

    #[test]
    fn running_sum_over_rows_frame() {
        let t = ints(vec![3, 1, 2]);
        let q = WindowQuery::over(
            WindowSpec::new()
                .order_by(vec![SortKey::asc(col("x"))])
                .frame(FrameSpec::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow)),
        )
        .call(FunctionCall::sum(col("x")).named("s"));
        let out = q.execute(&t).unwrap();
        // Original row order: x=3 → 6, x=1 → 1, x=2 → 3.
        assert_eq!(
            out.column("s").unwrap().to_values(),
            vec![Value::Int(6), Value::Int(1), Value::Int(3)]
        );
    }

    #[test]
    fn moving_median_small() {
        let t = ints(vec![5, 1, 4, 2, 3]);
        let q = WindowQuery::over(
            WindowSpec::new()
                .order_by(vec![SortKey::asc(col("x"))])
                .frame(FrameSpec::rows(
                    FrameBound::Preceding(lit(1i64)),
                    FrameBound::Following(lit(1i64)),
                )),
        )
        .call(FunctionCall::median(col("x")).named("med"));
        let out = q.execute(&t).unwrap();
        // Sorted: 1 2 3 4 5; medians of windows: [1,2]→2? PERCENTILE_DISC(0.5)
        // of 2 elements is the 1st (ceil(0.5*2)=1) → 1; of 3 elements → 2nd.
        // Window per row (sorted): [1,2]→1, [1,2,3]→2, [2,3,4]→3, [3,4,5]→4, [4,5]→4.
        let by_x: Vec<(i64, i64)> = (0..5)
            .map(|r| {
                let x = t.column("x").unwrap().get(r).as_i64().unwrap();
                let m = out.column("med").unwrap().get(r).as_i64().unwrap();
                (x, m)
            })
            .collect();
        let mut by_x = by_x;
        by_x.sort_unstable();
        assert_eq!(by_x, vec![(1, 1), (2, 2), (3, 3), (4, 4), (5, 4)]);
    }

    #[test]
    fn partitions_do_not_interact() {
        let t = Table::new(vec![
            ("g", Column::strs(vec!["a", "b", "a", "b"])),
            ("x", Column::ints(vec![1, 10, 2, 20])),
        ])
        .unwrap();
        let q = WindowQuery::over(
            WindowSpec::new()
                .partition_by(vec![col("g")])
                .order_by(vec![SortKey::asc(col("x"))])
                .frame(FrameSpec::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow)),
        )
        .call(FunctionCall::sum(col("x")).named("s"));
        let out = q.execute(&t).unwrap();
        assert_eq!(
            out.column("s").unwrap().to_values(),
            vec![Value::Int(1), Value::Int(10), Value::Int(3), Value::Int(30)]
        );
    }

    #[test]
    fn count_distinct_over_running_frame() {
        let t = ints(vec![7, 7, 8, 7, 9]);
        // Order by position: use a row-number column.
        let t2 = Table::new(vec![
            ("x", Column::ints(vec![7, 7, 8, 7, 9])),
            ("pos", Column::ints(vec![0, 1, 2, 3, 4])),
        ])
        .unwrap();
        let _ = t;
        let q = WindowQuery::over(
            WindowSpec::new()
                .order_by(vec![SortKey::asc(col("pos"))])
                .frame(FrameSpec::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow)),
        )
        .call(FunctionCall::count_distinct(col("x")).named("cd"));
        let out = q.execute(&t2).unwrap();
        assert_eq!(
            out.column("cd").unwrap().to_values(),
            vec![Value::Int(1), Value::Int(1), Value::Int(2), Value::Int(2), Value::Int(3)]
        );
    }

    #[test]
    fn empty_table_executes() {
        let t = ints(vec![]);
        let q = WindowQuery::over(WindowSpec::new())
            .call(FunctionCall::count_star().named("c"));
        let out = q.execute(&t).unwrap();
        assert_eq!(out.column("c").unwrap().len(), 0);
    }

    #[test]
    fn rank_with_two_orderings() {
        // The paper's §2.4 pattern: frame by date, rank by value.
        let t = Table::new(vec![
            ("date", Column::ints(vec![1, 2, 3, 4])),
            ("tps", Column::ints(vec![10, 30, 20, 40])),
        ])
        .unwrap();
        let q = WindowQuery::over(
            WindowSpec::new()
                .order_by(vec![SortKey::asc(col("date"))])
                .frame(FrameSpec::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow)),
        )
        .call(FunctionCall::rank(vec![SortKey::desc(col("tps"))]).named("r"));
        let out = q.execute(&t).unwrap();
        // date 1: rank of 10 among {10} = 1; date 2: 30 among {10,30} = 1;
        // date 3: 20 among {10,30,20} = 2; date 4: 40 among all = 1.
        assert_eq!(
            out.column("r").unwrap().to_values(),
            vec![Value::Int(1), Value::Int(1), Value::Int(2), Value::Int(1)]
        );
    }
}
