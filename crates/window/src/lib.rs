//! # holistic-window — the window operator substrate
//!
//! A self-contained columnar window-function engine built around the merge
//! sort tree algorithms of Vogelsgesang et al. (SIGMOD 2022). It plays the
//! role Hyper plays in the paper: partitioning, ORDER BY, frame resolution,
//! and evaluation of **all** SQL:2011 window and aggregate functions over
//! **arbitrary frames** — including the paper's proposed extensions:
//!
//! * framed `DISTINCT` aggregates (`COUNT(DISTINCT x) OVER (...)`, §4.2/§4.3),
//! * framed rank functions with an independent ORDER BY (§4.4),
//! * framed percentiles and value functions (§4.5),
//! * framed `LEAD`/`LAG` (§4.6),
//! * `FILTER`, `IGNORE NULLS`, frame exclusion, per-row and non-monotonic
//!   frame bounds (§4.7).
//!
//! ```
//! use holistic_window::prelude::*;
//!
//! let t = Table::new(vec![
//!     ("day", Column::ints(vec![1, 2, 3, 4, 5])),
//!     ("price", Column::ints(vec![10, 50, 20, 40, 30])),
//! ]).unwrap();
//!
//! // Moving median over the last 2 days:
//! let out = WindowQuery::over(
//!     WindowSpec::new()
//!         .order_by(vec![SortKey::asc(col("day"))])
//!         .frame(FrameSpec::rows(FrameBound::Preceding(lit(2i64)), FrameBound::CurrentRow)),
//! )
//! .call(FunctionCall::median(col("price")).named("med"))
//! .execute(&t)
//! .unwrap();
//!
//! let med: Vec<_> = out.column("med").unwrap().to_values();
//! assert_eq!(med[4], Value::Int(30)); // median of {20, 40, 30}
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod append;
mod artifacts;
pub mod column;
pub mod csv;
pub mod error;
mod eval;
pub mod executor;
pub mod expr;
pub mod frame;
pub mod hash;
pub mod order;
pub mod partition;
mod plan;
pub mod profile;
pub mod remap;
pub mod spec;
pub mod strategy;
pub mod table;
pub mod value;
pub mod vm;

pub use append::{AppendProfile, AppendResult, IncrementalEngine};
pub use column::Column;
pub use error::{Error, Result};
pub use executor::{
    CacheStats, ExecOptions, ExecProfile, ProbeKernelStats, ProbeOptions, SpillStats,
    StrategyProfile, WindowQuery,
};
pub use expr::{col, lit, BinOp, Expr};
pub use frame::{FrameBound, FrameExclusion, FrameMode, FrameSpec};
pub use order::SortKey;
pub use spec::{FuncKind, FunctionCall, WindowSpec};
pub use strategy::{CallClass, CostModel, PartitionStats, StatsAcc, Strategy, StrategyMode};
pub use table::Table;
pub use value::{DataType, Value};
pub use vm::{ExprVm, ExprVmStats, Program};

/// Convenient glob import.
pub mod prelude {
    pub use crate::append::{AppendProfile, AppendResult, IncrementalEngine};
    pub use crate::column::Column;
    pub use crate::executor::{
        CacheStats, ExecOptions, ExecProfile, ProbeKernelStats, ProbeOptions, SpillStats,
        WindowQuery,
    };
    pub use crate::expr::{col, lit, Expr};
    pub use crate::frame::{FrameBound, FrameExclusion, FrameSpec};
    pub use crate::order::SortKey;
    pub use crate::spec::{FuncKind, FunctionCall, WindowSpec};
    pub use crate::strategy::{CostModel, Strategy, StrategyMode};
    pub use crate::table::Table;
    pub use crate::value::Value;
}
