//! Window query specification: the engine's public API surface.
//!
//! A [`crate::executor::WindowQuery`] bundles one OVER clause ([`WindowSpec`]) with any number
//! of window function calls evaluated against it — mirroring the paper's
//! `WINDOW w AS (...)` examples where several functions share a frame (§2.4).
//!
//! The proposed SQL extensions map onto [`FunctionCall`] fields:
//!
//! * `DISTINCT` aggregates over frames → [`FunctionCall::distinct`],
//! * the function-level `ORDER BY` (ranking / selection criterion,
//!   independent of the frame order) → [`FunctionCall::inner_order`],
//! * `FILTER (WHERE ...)` → [`FunctionCall::filter`],
//! * `IGNORE NULLS` → [`FunctionCall::ignore_nulls`].

use crate::error::{Error, Result};
use crate::expr::Expr;
use crate::frame::FrameSpec;
use crate::order::SortKey;

/// Which window function to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuncKind {
    /// `COUNT(*)`.
    CountStar,
    /// `COUNT(expr)` — non-null rows.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `ROW_NUMBER(order)` against the frame (§4.4).
    RowNumber,
    /// `RANK(order)` against the frame (§4.4).
    Rank,
    /// `DENSE_RANK(order)` against the frame — range tree backed (§4.4).
    DenseRank,
    /// `PERCENT_RANK(order)`.
    PercentRank,
    /// `CUME_DIST(order)`.
    CumeDist,
    /// `NTILE(buckets)` by frame row number.
    Ntile,
    /// `PERCENTILE_DISC(fraction) (order)` (§4.5).
    PercentileDisc,
    /// `PERCENTILE_CONT(fraction) (order)` (§4.5).
    PercentileCont,
    /// `MEDIAN(expr)` ≡ `PERCENTILE_DISC(0.5)` ordered by the expression (the
    /// paper's framed-median benchmarks, §6.2–§6.5).
    Median,
    /// `FIRST_VALUE(expr [order])`.
    FirstValue,
    /// `LAST_VALUE(expr [order])`.
    LastValue,
    /// `NTH_VALUE(expr, n [order])`.
    NthValue,
    /// `LEAD(expr [, offset [, default]] [order])` (§4.6).
    Lead,
    /// `LAG(expr [, offset [, default]] [order])` (§4.6).
    Lag,
    /// `MODE(expr)` over the frame — most frequent non-null value, ties to
    /// the smallest. Not expressible with merge sort trees (§3.1); backed by
    /// a √-decomposition range mode index (extension beyond the paper).
    Mode,
}

impl FuncKind {
    /// True for the distributive/algebraic aggregate family.
    pub fn is_aggregate(self) -> bool {
        use FuncKind::*;
        matches!(self, CountStar | Count | Sum | Avg | Min | Max)
    }

    /// True for the holistic MODE aggregate.
    pub fn is_mode(self) -> bool {
        self == FuncKind::Mode
    }

    /// True for the rank family.
    pub fn is_rank(self) -> bool {
        use FuncKind::*;
        matches!(self, RowNumber | Rank | DenseRank | PercentRank | CumeDist | Ntile)
    }

    /// True for the selection family (percentiles and value functions).
    pub fn is_selection(self) -> bool {
        use FuncKind::*;
        matches!(self, PercentileDisc | PercentileCont | Median | FirstValue | LastValue | NthValue)
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        use FuncKind::*;
        match self {
            CountStar => "count(*)",
            Count => "count",
            Sum => "sum",
            Avg => "avg",
            Min => "min",
            Max => "max",
            RowNumber => "row_number",
            Rank => "rank",
            DenseRank => "dense_rank",
            PercentRank => "percent_rank",
            CumeDist => "cume_dist",
            Ntile => "ntile",
            PercentileDisc => "percentile_disc",
            PercentileCont => "percentile_cont",
            Median => "median",
            FirstValue => "first_value",
            LastValue => "last_value",
            NthValue => "nth_value",
            Lead => "lead",
            Lag => "lag",
            Mode => "mode",
        }
    }
}

/// One window function call.
#[derive(Debug, Clone)]
pub struct FunctionCall {
    /// The function.
    pub kind: FuncKind,
    /// Positional arguments (meaning depends on `kind`).
    pub args: Vec<Expr>,
    /// The function-level ORDER BY — the paper's second ordering (§2.4).
    /// Empty means: rank functions fall back to the window ORDER BY; value
    /// functions and LEAD/LAG use frame position order (classic semantics).
    pub inner_order: Vec<SortKey>,
    /// DISTINCT flag (aggregates only).
    pub distinct: bool,
    /// FILTER (WHERE ...) predicate.
    pub filter: Option<Expr>,
    /// IGNORE NULLS (value functions).
    pub ignore_nulls: bool,
    /// Output column name.
    pub output_name: String,
}

impl FunctionCall {
    /// A call with default options.
    pub fn new(kind: FuncKind, args: Vec<Expr>) -> Self {
        FunctionCall {
            kind,
            args,
            inner_order: Vec::new(),
            distinct: false,
            filter: None,
            ignore_nulls: false,
            output_name: kind.name().to_string(),
        }
    }

    /// Sets the function-level ORDER BY.
    pub fn order_by(mut self, keys: Vec<SortKey>) -> Self {
        self.inner_order = keys;
        self
    }

    /// Sets DISTINCT.
    pub fn distinct(mut self) -> Self {
        self.distinct = true;
        self
    }

    /// Sets FILTER.
    pub fn filter(mut self, predicate: Expr) -> Self {
        self.filter = Some(predicate);
        self
    }

    /// Sets IGNORE NULLS.
    pub fn ignore_nulls(mut self) -> Self {
        self.ignore_nulls = true;
        self
    }

    /// Names the output column.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.output_name = name.into();
        self
    }

    // ---- convenience constructors mirroring SQL ----

    /// `COUNT(*)`.
    pub fn count_star() -> Self {
        Self::new(FuncKind::CountStar, vec![])
    }

    /// `COUNT(expr)`.
    pub fn count(expr: Expr) -> Self {
        Self::new(FuncKind::Count, vec![expr])
    }

    /// `COUNT(DISTINCT expr)` — the paper's flagship example (§1, §4.2).
    pub fn count_distinct(expr: Expr) -> Self {
        Self::new(FuncKind::Count, vec![expr]).distinct()
    }

    /// `SUM(expr)`.
    pub fn sum(expr: Expr) -> Self {
        Self::new(FuncKind::Sum, vec![expr])
    }

    /// `SUM(DISTINCT expr)` (§4.3).
    pub fn sum_distinct(expr: Expr) -> Self {
        Self::new(FuncKind::Sum, vec![expr]).distinct()
    }

    /// `AVG(expr)`.
    pub fn avg(expr: Expr) -> Self {
        Self::new(FuncKind::Avg, vec![expr])
    }

    /// `MIN(expr)`.
    pub fn min(expr: Expr) -> Self {
        Self::new(FuncKind::Min, vec![expr])
    }

    /// `MAX(expr)`.
    pub fn max(expr: Expr) -> Self {
        Self::new(FuncKind::Max, vec![expr])
    }

    /// `ROW_NUMBER(ORDER BY ...)`.
    pub fn row_number(order: Vec<SortKey>) -> Self {
        Self::new(FuncKind::RowNumber, vec![]).order_by(order)
    }

    /// `RANK(ORDER BY ...)` (§2.4, §4.4).
    pub fn rank(order: Vec<SortKey>) -> Self {
        Self::new(FuncKind::Rank, vec![]).order_by(order)
    }

    /// `DENSE_RANK(ORDER BY ...)` (§4.4).
    pub fn dense_rank(order: Vec<SortKey>) -> Self {
        Self::new(FuncKind::DenseRank, vec![]).order_by(order)
    }

    /// `PERCENT_RANK(ORDER BY ...)`.
    pub fn percent_rank(order: Vec<SortKey>) -> Self {
        Self::new(FuncKind::PercentRank, vec![]).order_by(order)
    }

    /// `CUME_DIST(ORDER BY ...)`.
    pub fn cume_dist(order: Vec<SortKey>) -> Self {
        Self::new(FuncKind::CumeDist, vec![]).order_by(order)
    }

    /// `NTILE(buckets)` (bucket count may be a per-row expression).
    pub fn ntile(buckets: Expr, order: Vec<SortKey>) -> Self {
        Self::new(FuncKind::Ntile, vec![buckets]).order_by(order)
    }

    /// `PERCENTILE_DISC(fraction ORDER BY key)` (§4.5).
    pub fn percentile_disc(fraction: f64, key: SortKey) -> Self {
        Self::new(FuncKind::PercentileDisc, vec![crate::expr::lit(fraction)]).order_by(vec![key])
    }

    /// `PERCENTILE_CONT(fraction ORDER BY key)` (§4.5).
    pub fn percentile_cont(fraction: f64, key: SortKey) -> Self {
        Self::new(FuncKind::PercentileCont, vec![crate::expr::lit(fraction)]).order_by(vec![key])
    }

    /// Framed median of an expression (the §6 benchmark function).
    pub fn median(expr: Expr) -> Self {
        Self::new(FuncKind::Median, vec![]).order_by(vec![SortKey::asc(expr)])
    }

    /// `FIRST_VALUE(expr [ORDER BY ...])`.
    pub fn first_value(expr: Expr) -> Self {
        Self::new(FuncKind::FirstValue, vec![expr])
    }

    /// `LAST_VALUE(expr [ORDER BY ...])`.
    pub fn last_value(expr: Expr) -> Self {
        Self::new(FuncKind::LastValue, vec![expr])
    }

    /// `NTH_VALUE(expr, n [ORDER BY ...])`.
    pub fn nth_value(expr: Expr, n: Expr) -> Self {
        Self::new(FuncKind::NthValue, vec![expr, n])
    }

    /// `LEAD(expr, offset, default)`.
    pub fn lead(expr: Expr, offset: i64, default: Expr) -> Self {
        Self::new(FuncKind::Lead, vec![expr, crate::expr::lit(offset), default])
    }

    /// `LAG(expr, offset, default)`.
    pub fn lag(expr: Expr, offset: i64, default: Expr) -> Self {
        Self::new(FuncKind::Lag, vec![expr, crate::expr::lit(offset), default])
    }

    /// `MODE(expr)` over the frame (extension; see [`FuncKind::Mode`]).
    pub fn mode(expr: Expr) -> Self {
        Self::new(FuncKind::Mode, vec![expr])
    }

    /// The expression whose NULL rows this call's preprocessing drops (the
    /// family-specific half of the kept-row mask; FILTER is the other half):
    /// aggregates and MODE screen their argument, percentiles their ORDER BY
    /// key, value functions and LEAD/LAG their argument only under IGNORE
    /// NULLS. Rank functions screen nothing — NULL keys still rank.
    pub(crate) fn null_screen(&self) -> Option<&Expr> {
        use FuncKind::*;
        match self.kind {
            Count | Sum | Avg | Min | Max | Mode => self.args.first(),
            PercentileDisc | PercentileCont | Median => self.inner_order.first().map(|k| &k.expr),
            FirstValue | LastValue | NthValue | Lead | Lag if self.ignore_nulls => {
                self.args.first()
            }
            _ => None,
        }
    }

    /// The ordering criterion a rank-family call actually uses: its own
    /// function-level ORDER BY, falling back to the window ORDER BY.
    pub(crate) fn rank_order<'a>(&'a self, spec: &'a WindowSpec) -> &'a [SortKey] {
        if self.inner_order.is_empty() {
            &spec.order_by
        } else {
            &self.inner_order
        }
    }

    /// Validates structural constraints that don't need the data.
    pub fn validate(&self) -> Result<()> {
        use FuncKind::*;
        let argc = self.args.len();
        let expect = |ok: bool, what: &str| {
            if ok {
                Ok(())
            } else {
                Err(Error::InvalidArgument(format!("{}: {what}", self.kind.name())))
            }
        };
        match self.kind {
            CountStar => expect(argc == 0, "takes no arguments")?,
            Count | Sum | Avg | Min | Max => expect(argc == 1, "takes one argument")?,
            RowNumber | Rank | DenseRank | PercentRank | CumeDist => {
                expect(argc == 0, "takes no arguments")?
            }
            Ntile => expect(argc == 1, "takes the bucket count")?,
            PercentileDisc | PercentileCont => {
                expect(argc == 1, "takes the fraction")?;
                expect(self.inner_order.len() == 1, "needs exactly one ORDER BY key")?;
            }
            Median => expect(self.inner_order.len() == 1, "needs exactly one ORDER BY key")?,
            FirstValue | LastValue => expect(argc == 1, "takes one argument")?,
            NthValue => expect(argc == 2, "takes expr and n")?,
            Lead | Lag => expect((1..=3).contains(&argc), "takes 1 to 3 arguments")?,
            Mode => expect(argc == 1, "takes one argument")?,
        }
        if self.kind == Mode && self.distinct {
            return Err(Error::InvalidArgument(
                "mode: DISTINCT is meaningless (every value counts once per occurrence)".into(),
            ));
        }
        if self.distinct && !self.kind.is_aggregate() {
            return Err(Error::InvalidArgument(format!(
                "{}: DISTINCT only applies to aggregates",
                self.kind.name()
            )));
        }
        if self.ignore_nulls && !matches!(self.kind, FirstValue | LastValue | NthValue | Lead | Lag)
        {
            return Err(Error::InvalidArgument(format!(
                "{}: IGNORE NULLS only applies to value functions",
                self.kind.name()
            )));
        }
        Ok(())
    }
}

/// The shared OVER clause.
#[derive(Debug, Clone)]
pub struct WindowSpec {
    /// PARTITION BY expressions.
    pub partition_by: Vec<Expr>,
    /// Window ORDER BY (establishes the frame order).
    pub order_by: Vec<SortKey>,
    /// The frame.
    pub frame: FrameSpec,
}

impl WindowSpec {
    /// An empty OVER () — one partition, whole-partition frame.
    pub fn new() -> Self {
        WindowSpec {
            partition_by: Vec::new(),
            order_by: Vec::new(),
            frame: FrameSpec::whole_partition(),
        }
    }

    /// Adds PARTITION BY keys.
    pub fn partition_by(mut self, exprs: Vec<Expr>) -> Self {
        self.partition_by = exprs;
        self
    }

    /// Adds the window ORDER BY; switches the default frame to SQL's
    /// `RANGE UNBOUNDED PRECEDING .. CURRENT ROW` if no frame was set
    /// explicitly before.
    pub fn order_by(mut self, keys: Vec<SortKey>) -> Self {
        self.order_by = keys;
        self
    }

    /// Sets the frame.
    pub fn frame(mut self, frame: FrameSpec) -> Self {
        self.frame = frame;
        self
    }
}

impl Default for WindowSpec {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};

    #[test]
    fn builders_produce_expected_shapes() {
        let c = FunctionCall::count_distinct(col("x"));
        assert_eq!(c.kind, FuncKind::Count);
        assert!(c.distinct);
        c.validate().unwrap();

        let m = FunctionCall::median(col("price"));
        assert_eq!(m.kind, FuncKind::Median);
        assert_eq!(m.inner_order.len(), 1);
        m.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert!(FunctionCall::new(FuncKind::CountStar, vec![col("x")]).validate().is_err());
        assert!(FunctionCall::new(FuncKind::Sum, vec![]).validate().is_err());
        assert!(FunctionCall::new(FuncKind::PercentileDisc, vec![lit(0.5)]).validate().is_err()); // missing ORDER BY
        assert!(FunctionCall::rank(vec![]).distinct().validate().is_err());
        assert!(FunctionCall::rank(vec![]).ignore_nulls().validate().is_err());
        assert!(FunctionCall::first_value(col("x")).ignore_nulls().validate().is_ok());
    }

    #[test]
    fn kind_families() {
        assert!(FuncKind::Sum.is_aggregate());
        assert!(FuncKind::Rank.is_rank());
        assert!(FuncKind::Median.is_selection());
        assert!(!FuncKind::Lead.is_selection());
    }
}
