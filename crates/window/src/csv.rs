//! Minimal CSV import/export for [`Table`] — enough for a downstream user to
//! load real data into the engine (no external CSV crate; RFC-4180-style
//! quoting).
//!
//! Types are inferred per column from the data: `Int` ⊂ `Float`; ISO dates
//! (`YYYY-MM-DD`) become [`crate::value::Value::Date`]; `true`/`false` become
//! booleans; empty fields are NULL; everything else is a string.

use crate::column::Column;
use crate::error::{Error, Result};
use crate::table::Table;
use crate::value::{days_to_ymd, ymd_to_days, DataType, Value};

/// Parses CSV text (first line = headers) into a table.
pub fn table_from_csv(text: &str) -> Result<Table> {
    let mut records = parse_records(text);
    if records.is_empty() {
        return Ok(Table::empty());
    }
    let headers = records.remove(0);
    let ncols = headers.len();
    for (i, rec) in records.iter().enumerate() {
        if rec.len() != ncols {
            return Err(Error::InvalidArgument(format!(
                "csv row {} has {} fields, expected {ncols}",
                i + 2,
                rec.len()
            )));
        }
    }
    let mut table = Table::empty();
    for (c, name) in headers.iter().enumerate() {
        let raw: Vec<&str> = records.iter().map(|r| r[c].as_str()).collect();
        let dt = infer_type(&raw);
        let mut col = Column::new_empty(dt);
        for field in raw {
            col.push(parse_value(field, dt))?;
        }
        table.add_column(name.clone(), col)?;
    }
    Ok(table)
}

/// Serializes a table to CSV text (headers + rows; NULL = empty field).
pub fn table_to_csv(table: &Table) -> String {
    let mut out = String::new();
    let names: Vec<&str> = table.iter().map(|(n, _)| n).collect();
    out.push_str(&names.iter().map(|n| quote(n)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for row in 0..table.num_rows() {
        let fields: Vec<String> = table
            .iter()
            .map(|(_, c)| match c.get(row) {
                Value::Null => String::new(),
                Value::Str(s) => quote(&s),
                Value::Date(d) => {
                    let (y, m, dd) = days_to_ymd(d);
                    format!("{y:04}-{m:02}-{dd:02}")
                }
                v => v.to_string(),
            })
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

fn quote(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Splits CSV text into records of unquoted fields.
fn parse_records(text: &str) -> Vec<Vec<String>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    while let Some(ch) = chars.next() {
        any = true;
        if in_quotes {
            match ch {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => in_quotes = false,
                c => field.push(c),
            }
        } else {
            match ch {
                '"' => in_quotes = true,
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                c => field.push(c),
            }
        }
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    records
}

fn parse_date(s: &str) -> Option<i32> {
    let bytes = s.as_bytes();
    if bytes.len() != 10 || bytes[4] != b'-' || bytes[7] != b'-' {
        return None;
    }
    let y: i32 = s[0..4].parse().ok()?;
    let m: u32 = s[5..7].parse().ok()?;
    let d: u32 = s[8..10].parse().ok()?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    let days = ymd_to_days(y, m, d);
    // Round-trip check rejects nonsense like Feb 30.
    if days_to_ymd(days) == (y, m, d) {
        Some(days)
    } else {
        None
    }
}

fn infer_type(fields: &[&str]) -> DataType {
    let mut dt: Option<DataType> = None;
    for &f in fields {
        if f.is_empty() {
            continue; // NULL, compatible with everything
        }
        let this = if f.parse::<i64>().is_ok() {
            DataType::Int
        } else if f.parse::<f64>().is_ok() {
            DataType::Float
        } else if parse_date(f).is_some() {
            DataType::Date
        } else if f == "true" || f == "false" {
            DataType::Bool
        } else {
            DataType::Str
        };
        dt = Some(match (dt, this) {
            (None, t) => t,
            (Some(a), b) if a == b => a,
            (Some(DataType::Int), DataType::Float) | (Some(DataType::Float), DataType::Int) => {
                DataType::Float
            }
            _ => DataType::Str,
        });
        if dt == Some(DataType::Str) {
            break;
        }
    }
    dt.unwrap_or(DataType::Str)
}

fn parse_value(field: &str, dt: DataType) -> Value {
    if field.is_empty() {
        return Value::Null;
    }
    match dt {
        DataType::Int => Value::Int(field.parse().expect("inferred int")),
        DataType::Float => Value::Float(field.parse().expect("inferred float")),
        DataType::Date => Value::Date(parse_date(field).expect("inferred date")),
        DataType::Bool => Value::Bool(field == "true"),
        DataType::Str => Value::str(field),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let csv = "a,b,c,d,e\n1,1.5,2020-02-29,true,hello\n2,,1999-12-31,false,\"x,y\"\n,3.0,,,z\n";
        let t = table_from_csv(csv).unwrap();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.column("a").unwrap().data_type(), DataType::Int);
        assert_eq!(t.column("b").unwrap().data_type(), DataType::Float);
        assert_eq!(t.column("c").unwrap().data_type(), DataType::Date);
        assert_eq!(t.column("d").unwrap().data_type(), DataType::Bool);
        assert_eq!(t.column("e").unwrap().data_type(), DataType::Str);
        assert_eq!(t.column("a").unwrap().get(2), Value::Null);
        assert_eq!(t.column("b").unwrap().get(1), Value::Null);
        assert_eq!(t.column("e").unwrap().get(1), Value::str("x,y"));
        // Round trip through text again.
        let text = table_to_csv(&t);
        let t2 = table_from_csv(&text).unwrap();
        for (name, c) in t.iter() {
            let c2 = t2.column(name).unwrap();
            for i in 0..t.num_rows() {
                assert!(c.get(i).sql_eq(&c2.get(i)), "{name} row {i}");
            }
        }
    }

    #[test]
    fn quoted_fields_with_newlines_and_quotes() {
        let csv = "x\n\"line1\nline2\"\n\"he said \"\"hi\"\"\"\n";
        let t = table_from_csv(csv).unwrap();
        assert_eq!(t.column("x").unwrap().get(0), Value::str("line1\nline2"));
        assert_eq!(t.column("x").unwrap().get(1), Value::str("he said \"hi\""));
    }

    #[test]
    fn mixed_int_float_becomes_float() {
        let t = table_from_csv("v\n1\n2.5\n").unwrap();
        assert_eq!(t.column("v").unwrap().data_type(), DataType::Float);
        assert_eq!(t.column("v").unwrap().get(0), Value::Float(1.0));
    }

    #[test]
    fn mixed_incompatible_becomes_string() {
        let t = table_from_csv("v\n1\nhello\n").unwrap();
        assert_eq!(t.column("v").unwrap().data_type(), DataType::Str);
        assert_eq!(t.column("v").unwrap().get(0), Value::str("1"));
    }

    #[test]
    fn invalid_dates_are_strings() {
        let t = table_from_csv("v\n2020-02-30\n2020-13-01\n").unwrap();
        assert_eq!(t.column("v").unwrap().data_type(), DataType::Str);
    }

    #[test]
    fn ragged_rows_error() {
        assert!(table_from_csv("a,b\n1\n").is_err());
    }

    #[test]
    fn empty_input() {
        assert_eq!(table_from_csv("").unwrap().num_rows(), 0);
        // Headers only → zero-row table with columns.
        let t = table_from_csv("a,b\n").unwrap();
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn crlf_line_endings() {
        let t = table_from_csv("a,b\r\n1,2\r\n3,4\r\n").unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.column("b").unwrap().get(1), Value::Int(4));
    }
}
