//! Phase-instrumented evaluation of a framed COUNT DISTINCT — the cost
//! breakdown of Figure 14.
//!
//! Reproduces the paper's phases one by one with wall-clock timers:
//! partitioning & window-order sorting, hash population (Algorithm 1 line 4),
//! thread-local sorting + run merging (line 5, split for multithreading),
//! prevIdcs computation (lines 7ff.), the per-layer merge sort tree build,
//! and the embarrassingly parallel result probe.

use crate::error::Result;
use crate::executor::{CacheStats, ExecOptions, WindowQuery};
use crate::expr::Expr;
use crate::frame::{resolve_frames, FrameSpec};
use crate::hash::hash_value;
use crate::order::{sort_permutation, KeyColumns, SortKey};
use crate::table::Table;
use holistic_core::sort::{merge_runs, sort_runs};
use holistic_core::{MergeSortTree, MstParams};
use std::time::{Duration, Instant};

/// One named phase and its wall time.
pub type Phase = (String, Duration);

/// Runs a full query through the plan → build → probe executor and reports
/// the three pipeline phases alongside the artifact-cache counters and the
/// output table.
///
/// The build phase covers partition sorting, frame resolution and the eager
/// prebuild of planned artifacts; lazily-built (data-dependent) artifacts
/// are attributed to the probe phase.
pub fn profile_query(
    query: &WindowQuery,
    table: &Table,
    opts: ExecOptions,
) -> Result<(Vec<Phase>, CacheStats, Table)> {
    let (out, profile) = query.execute_profiled(table, opts)?;
    let phases = vec![
        ("plan".to_string(), profile.plan),
        ("build artifacts".to_string(), profile.build),
        ("probe".to_string(), profile.probe),
    ];
    Ok((phases, profile.cache, out))
}

/// Runs a framed `COUNT(DISTINCT value)` over `ORDER BY order_key` with the
/// given frame, timing each execution phase. Returns the phase list and the
/// per-row distinct counts (so callers can verify correctness).
pub fn profile_distinct_count(
    table: &Table,
    order_key: SortKey,
    value: &Expr,
    frame: &FrameSpec,
    tasks: usize,
) -> Result<(Vec<Phase>, Vec<i64>)> {
    let mut phases: Vec<Phase> = Vec::new();
    fn timed_into(phases: &mut Vec<Phase>, name: &str, t0: Instant) {
        phases.push((name.to_string(), t0.elapsed()));
    }
    macro_rules! timed {
        ($name:expr, $t0:expr) => {
            timed_into(&mut phases, $name, $t0)
        };
    }

    // Phase: partition & order-by sort (the window operator set-up).
    let t0 = Instant::now();
    let keys = KeyColumns::evaluate(table, std::slice::from_ref(&order_key))?;
    let mut rows: Vec<usize> = (0..table.num_rows()).collect();
    sort_permutation(&keys, &mut rows, true);
    timed!("partition + order-by sort", t0);

    let t0 = Instant::now();
    let frames = resolve_frames(table, &rows, &keys, frame)?;
    timed!("resolve frames", t0);

    // Phase: populate the hash array (Algorithm 1, line 4).
    let t0 = Instant::now();
    let bound = value.bind(table)?;
    let mut pairs: Vec<(u64, u32)> = Vec::with_capacity(rows.len());
    for (pos, &r) in rows.iter().enumerate() {
        pairs.push((hash_value(&bound.eval(table, r)?), pos as u32));
    }
    timed!("populate hash array", t0);

    // Phase: thread-local sort (line 5, first half).
    let t0 = Instant::now();
    let bounds = sort_runs::<u64, (u64, u32)>(&mut pairs, tasks);
    timed!("sort thread-local", t0);

    // Phase: merge sorted runs (line 5, second half).
    let t0 = Instant::now();
    let sorted = merge_runs::<u64, (u64, u32)>(&pairs, &bounds, true);
    timed!("merge sorted runs", t0);

    // Phase: compute prevIdcs (lines 7 and following).
    let t0 = Instant::now();
    let mut prev = vec![0u32; sorted.len()];
    for w in sorted.windows(2) {
        if w[1].0 == w[0].0 {
            prev[w[1].1 as usize] = w[0].1 + 1;
        }
    }
    timed!("compute prevIdcs", t0);

    // Phases: merge sort tree layers.
    let (tree, layer_times) = MergeSortTree::<u32>::build_profiled(&prev, MstParams::default());
    for (l, lt) in layer_times.iter().enumerate() {
        phases.push((format!("build tree layer {}", l + 1), *lt));
    }

    // Phase: compute the results.
    let t0 = Instant::now();
    let mut counts = vec![0i64; rows.len()];
    for (i, c) in counts.iter_mut().enumerate() {
        let (a, b) = frames.bounds[i];
        *c = tree.count_below(a, b, a as u32 + 1) as i64;
    }
    timed!("compute results", t0);

    // Report counts in original row order.
    let mut by_row = vec![0i64; rows.len()];
    for (pos, &r) in rows.iter().enumerate() {
        by_row[r] = counts[pos];
    }
    Ok((phases, by_row))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::expr::col;
    use crate::frame::FrameBound;

    #[test]
    fn profile_matches_engine_result() {
        let t = Table::new(vec![
            ("d", Column::ints(vec![4, 1, 3, 2, 5, 6])),
            ("v", Column::ints(vec![7, 7, 8, 9, 7, 8])),
        ])
        .unwrap();
        let frame = FrameSpec::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow);
        let (phases, counts) =
            profile_distinct_count(&t, SortKey::asc(col("d")), &col("v"), &frame, 4).unwrap();
        assert!(phases.iter().any(|(n, _)| n.starts_with("build tree layer")));
        assert!(phases.iter().any(|(n, _)| n == "compute results"));
        // Order by d: rows sorted → d=1(v7), 2(v9), 3(v8), 4(v7), 5(v7), 6(v8).
        // Running distinct counts: 1, 2, 3, 3, 3, 3 — back in original row
        // order (d=4 is 4th):
        assert_eq!(counts, vec![3, 1, 3, 2, 3, 3]);
    }

    #[test]
    fn profile_query_reports_pipeline_phases() {
        use crate::spec::{FunctionCall, WindowSpec};
        let t = Table::new(vec![("x", Column::ints(vec![3, 1, 2, 5, 4]))]).unwrap();
        let q = WindowQuery::over(
            WindowSpec::new()
                .order_by(vec![SortKey::asc(col("x"))])
                .frame(FrameSpec::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow)),
        )
        .call(FunctionCall::median(col("x")).named("med"));
        // Force the MST: the tiny partition would otherwise take the
        // cacheless direct path and report no artifact builds.
        let opts = ExecOptions::serial().force_strategy(crate::strategy::Strategy::Mst);
        let (phases, stats, out) = profile_query(&q, &t, opts).unwrap();
        let names: Vec<&str> = phases.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["plan", "build artifacts", "probe"]);
        assert!(stats.misses > 0);
        assert_eq!(out.column("med").unwrap().len(), 5);
    }
}
