//! Index remapping for FILTER clauses and IGNORE NULLS (§4.5, §4.7).
//!
//! Rows excluded by a FILTER predicate (or NULLs ignored by percentiles and
//! value functions) are simply never inserted into the merge sort tree; frame
//! bounds computed in full-partition positions are then translated into the
//! compacted "kept" space with a prefix-count array. O(n) preprocessing, O(1)
//! per translation.

use holistic_core::RangeSet;

/// A compaction of partition positions to kept positions.
pub struct Remap {
    /// `kept_before[i]` = number of kept positions `< i` (length n+1).
    kept_before: Vec<usize>,
    /// Kept positions in order (kept index → partition position).
    kept: Vec<usize>,
}

impl Remap {
    /// Builds from a keep mask over partition positions.
    pub fn new(keep: &[bool]) -> Self {
        let mut kept_before = Vec::with_capacity(keep.len() + 1);
        let mut kept = Vec::new();
        let mut c = 0usize;
        kept_before.push(0);
        for (i, &k) in keep.iter().enumerate() {
            if k {
                kept.push(i);
                c += 1;
            }
            kept_before.push(c);
        }
        Remap { kept_before, kept }
    }

    /// The identity remap (everything kept).
    pub fn identity(n: usize) -> Self {
        Remap { kept_before: (0..=n).collect(), kept: (0..n).collect() }
    }

    /// Number of kept positions.
    pub fn kept_len(&self) -> usize {
        self.kept.len()
    }

    /// Footprint in bytes of both index arrays (for artifact accounting).
    pub fn bytes(&self) -> usize {
        (self.kept_before.len() + self.kept.len()) * std::mem::size_of::<usize>()
    }

    /// True when nothing was dropped.
    pub fn is_identity(&self) -> bool {
        self.kept.len() + 1 == self.kept_before.len()
            && self.kept.iter().enumerate().all(|(k, &p)| k == p)
    }

    /// Partition position of kept index `k`.
    #[inline]
    pub fn to_position(&self, k: usize) -> usize {
        self.kept[k]
    }

    /// Translates a partition-position range into kept space.
    #[inline]
    pub fn range(&self, a: usize, b: usize) -> (usize, usize) {
        let n = self.kept_before.len() - 1;
        (self.kept_before[a.min(n)], self.kept_before[b.min(n)])
    }

    /// Translates a multi-piece frame into kept space (pieces may become
    /// empty and vanish).
    pub fn range_set(&self, rs: &RangeSet) -> RangeSet {
        let mut out = RangeSet::empty();
        for (a, b) in rs.iter() {
            let (ka, kb) = self.range(a, b);
            out.push(ka, kb);
        }
        out
    }

    /// True when partition position `i` was kept.
    #[inline]
    pub fn is_kept(&self, i: usize) -> bool {
        self.kept_before[i + 1] > self.kept_before[i]
    }

    /// Kept index of partition position `i` (only valid when kept).
    #[inline]
    pub fn kept_index(&self, i: usize) -> usize {
        debug_assert!(self.is_kept(i));
        self.kept_before[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_compaction() {
        let r = Remap::new(&[true, false, true, true, false]);
        assert_eq!(r.kept_len(), 3);
        assert_eq!(r.to_position(0), 0);
        assert_eq!(r.to_position(1), 2);
        assert_eq!(r.to_position(2), 3);
        assert_eq!(r.range(0, 5), (0, 3));
        assert_eq!(r.range(1, 4), (1, 3));
        assert_eq!(r.range(1, 2), (1, 1)); // dropped-only span is empty
        assert!(r.is_kept(0) && !r.is_kept(1));
        assert_eq!(r.kept_index(3), 2);
    }

    #[test]
    fn identity_remap() {
        let r = Remap::identity(4);
        assert!(r.is_identity());
        assert_eq!(r.range(1, 3), (1, 3));
        let m = Remap::new(&[true, true]);
        assert!(m.is_identity());
        let m = Remap::new(&[true, false]);
        assert!(!m.is_identity());
    }

    #[test]
    fn range_set_translation() {
        let r = Remap::new(&[true, false, false, true, true, false, true]);
        let rs = RangeSet::from_ranges(&[(0, 2), (3, 6)]);
        let out = r.range_set(&rs);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![(0, 1), (1, 3)]);
    }

    #[test]
    fn out_of_bounds_clamped() {
        let r = Remap::new(&[true, true]);
        assert_eq!(r.range(0, 10), (0, 2));
    }

    #[test]
    fn all_dropped() {
        let r = Remap::new(&[false, false]);
        assert_eq!(r.kept_len(), 0);
        assert_eq!(r.range(0, 2), (0, 0));
    }
}
