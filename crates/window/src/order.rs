//! ORDER BY machinery: sort keys, comparators, permutations, peer groups and
//! dense code preprocessing over arbitrary SQL values.
//!
//! The merge sort tree only stores integers; this module is the boundary
//! where SQL ordering intricacies (multiple criteria, DESC, NULLS FIRST/LAST)
//! are folded into integer codes, exactly as §5.1 prescribes.

use crate::error::Result;
use crate::expr::Expr;
use crate::table::Table;
use crate::value::Value;
use holistic_core::codes::DenseCodes;
use rayon::prelude::*;
use std::cmp::Ordering;

/// One ORDER BY criterion.
#[derive(Debug, Clone)]
pub struct SortKey {
    /// The key expression.
    pub expr: Expr,
    /// Descending order.
    pub desc: bool,
    /// NULL placement (SQL default: last for ASC, first for DESC).
    pub nulls_first: bool,
}

impl SortKey {
    /// Ascending, NULLS LAST.
    pub fn asc(expr: Expr) -> Self {
        SortKey { expr, desc: false, nulls_first: false }
    }

    /// Descending, NULLS FIRST.
    pub fn desc(expr: Expr) -> Self {
        SortKey { expr, desc: true, nulls_first: true }
    }

    /// Overrides NULL placement.
    pub fn nulls_first(mut self, yes: bool) -> Self {
        self.nulls_first = yes;
        self
    }
}

/// Materialized sort key values for a set of rows, with comparison flags.
#[derive(Clone)]
pub struct KeyColumns {
    keys: Vec<(Vec<Value>, bool, bool)>, // (values per row, desc, nulls_first)
}

impl KeyColumns {
    /// Evaluates `sort_keys` for every row of `table`.
    pub fn evaluate(table: &Table, sort_keys: &[SortKey]) -> Result<Self> {
        let mut keys = Vec::with_capacity(sort_keys.len());
        for sk in sort_keys {
            let bound = sk.expr.bind(table)?;
            keys.push((bound.eval_all(table)?, sk.desc, sk.nulls_first));
        }
        Ok(KeyColumns { keys })
    }

    /// Extends already-materialized key columns with rows `from_row..` of a
    /// grown table — the O(b) append path: only the new rows are evaluated.
    /// `sort_keys` must be the criteria this instance was built from.
    pub fn extend(&mut self, table: &Table, sort_keys: &[SortKey], from_row: usize) -> Result<()> {
        debug_assert_eq!(self.keys.len(), sort_keys.len());
        let n = table.num_rows();
        for (sk, (vals, _, _)) in sort_keys.iter().zip(self.keys.iter_mut()) {
            let bound = sk.expr.bind(table)?;
            vals.reserve(n - from_row);
            for r in from_row..n {
                vals.push(bound.eval(table, r)?);
            }
        }
        Ok(())
    }

    /// Number of criteria.
    pub fn is_trivial(&self) -> bool {
        self.keys.is_empty()
    }

    /// Footprint in bytes of the materialized key columns: the `Value`
    /// spines plus the string heap behind `Arc<str>` keys, counted once per
    /// owned reference (see [`Value::heap_bytes`]). The per-ref count is a
    /// deliberate upper bound — it prices what keeping these columns alive
    /// keeps alive, which is what a memory budget must charge for.
    pub fn bytes(&self) -> usize {
        self.keys
            .iter()
            .map(|(vals, _, _)| {
                vals.len() * std::mem::size_of::<Value>()
                    + vals.iter().map(Value::heap_bytes).sum::<usize>()
            })
            .sum()
    }

    /// Compares two rows under the full criteria list.
    pub fn cmp_rows(&self, a: usize, b: usize) -> Ordering {
        for (vals, desc, nulls_first) in &self.keys {
            let (va, vb) = (&vals[a], &vals[b]);
            let ord = match (va.is_null(), vb.is_null()) {
                (true, true) => Ordering::Equal,
                (true, false) => {
                    if *nulls_first {
                        Ordering::Less
                    } else {
                        Ordering::Greater
                    }
                }
                (false, true) => {
                    if *nulls_first {
                        Ordering::Greater
                    } else {
                        Ordering::Less
                    }
                }
                (false, false) => {
                    let o = va.sql_cmp(vb);
                    if *desc {
                        o.reverse()
                    } else {
                        o
                    }
                }
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }

    /// True when two rows are peers (equal under every criterion).
    pub fn rows_equal(&self, a: usize, b: usize) -> bool {
        self.cmp_rows(a, b) == Ordering::Equal
    }

    /// The key value of the single criterion for row `i` (used by RANGE
    /// frames, which SQL restricts to exactly one numeric key).
    pub fn single_key(&self, i: usize) -> Option<(&Value, bool)> {
        if self.keys.len() == 1 {
            Some((&self.keys[0].0[i], self.keys[0].1))
        } else {
            None
        }
    }
}

/// Sorts `rows` (indices into the table) stably by `keys`, ties broken by the
/// original index for determinism. This is the window operator's ORDER BY
/// phase; it reuses the platform sorter as the paper reuses Hyper's (§5.3).
pub fn sort_permutation(keys: &KeyColumns, rows: &mut [usize], parallel: bool) {
    let cmp = |&a: &usize, &b: &usize| keys.cmp_rows(a, b).then_with(|| a.cmp(&b));
    if parallel && rows.len() >= 4096 {
        rows.par_sort_unstable_by(cmp);
    } else {
        rows.sort_unstable_by(cmp);
    }
}

/// Dense code preprocessing (Figure 8) over arbitrary comparators.
///
/// `rows[pos]` maps partition positions to table rows; the returned codes are
/// in *position* space (0-based positions within the sorted partition), ready
/// to feed into a merge sort tree.
pub fn dense_codes_for(keys: &KeyColumns, rows: &[usize], parallel: bool) -> DenseCodes {
    let n = rows.len();
    let mut perm: Vec<usize> = (0..n).collect();
    let cmp = |&a: &usize, &b: &usize| keys.cmp_rows(rows[a], rows[b]).then_with(|| a.cmp(&b));
    if parallel && n >= 4096 {
        perm.par_sort_unstable_by(cmp);
    } else {
        perm.sort_unstable_by(cmp);
    }
    let mut code = vec![0usize; n];
    let mut group_min = vec![0usize; n];
    let mut group_end = vec![0usize; n];
    let mut group_id = vec![0usize; n];
    let mut num_groups = 0usize;
    let mut r = 0;
    while r < n {
        let mut e = r + 1;
        while e < n && keys.rows_equal(rows[perm[e]], rows[perm[r]]) {
            e += 1;
        }
        for (off, &pos) in perm[r..e].iter().enumerate() {
            code[pos] = r + off;
            group_min[pos] = r;
            group_end[pos] = e;
            group_id[pos] = num_groups;
        }
        num_groups += 1;
        r = e;
    }
    DenseCodes { code, group_min, group_end, group_id, perm, num_groups }
}

/// Peer group boundaries of an already-sorted position range: for each
/// position, the `[start, end)` of its group of equals under `keys`.
pub fn peer_bounds(keys: &KeyColumns, rows: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let n = rows.len();
    let mut start = vec![0usize; n];
    let mut end = vec![0usize; n];
    let mut g = 0;
    while g < n {
        let mut e = g + 1;
        while e < n && keys.rows_equal(rows[e], rows[g]) {
            e += 1;
        }
        for s in g..e {
            start[s] = g;
            end[s] = e;
        }
        g = e;
    }
    (start, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::expr::col;

    fn table() -> Table {
        Table::new(vec![
            ("k", Column::ints_opt(vec![Some(3), Some(1), None, Some(3), Some(2)])),
            ("t", Column::ints(vec![0, 1, 2, 3, 4])),
        ])
        .unwrap()
    }

    #[test]
    fn asc_sorts_nulls_last() {
        let t = table();
        let keys = KeyColumns::evaluate(&t, &[SortKey::asc(col("k"))]).unwrap();
        let mut rows: Vec<usize> = (0..5).collect();
        sort_permutation(&keys, &mut rows, false);
        assert_eq!(rows, vec![1, 4, 0, 3, 2]);
    }

    #[test]
    fn desc_sorts_nulls_first() {
        let t = table();
        let keys = KeyColumns::evaluate(&t, &[SortKey::desc(col("k"))]).unwrap();
        let mut rows: Vec<usize> = (0..5).collect();
        sort_permutation(&keys, &mut rows, false);
        assert_eq!(rows, vec![2, 0, 3, 4, 1]);
    }

    #[test]
    fn nulls_first_override() {
        let t = table();
        let keys = KeyColumns::evaluate(&t, &[SortKey::asc(col("k")).nulls_first(true)]).unwrap();
        let mut rows: Vec<usize> = (0..5).collect();
        sort_permutation(&keys, &mut rows, false);
        assert_eq!(rows, vec![2, 1, 4, 0, 3]);
    }

    #[test]
    fn multi_key_comparison() {
        let t = Table::new(vec![
            ("a", Column::ints(vec![1, 1, 2])),
            ("b", Column::ints(vec![9, 3, 0])),
        ])
        .unwrap();
        let keys =
            KeyColumns::evaluate(&t, &[SortKey::asc(col("a")), SortKey::desc(col("b"))]).unwrap();
        let mut rows: Vec<usize> = (0..3).collect();
        sort_permutation(&keys, &mut rows, false);
        assert_eq!(rows, vec![0, 1, 2]); // (1,9) < (1,3) under b DESC, then (2,0)
    }

    #[test]
    fn dense_codes_over_rows() {
        let t = table();
        let keys = KeyColumns::evaluate(&t, &[SortKey::asc(col("k"))]).unwrap();
        // Partition = rows [0, 1, 3, 4] in this order (values 3, 1, 3, 2).
        let rows = vec![0usize, 1, 3, 4];
        let dc = dense_codes_for(&keys, &rows, false);
        assert_eq!(dc.perm, vec![1, 3, 0, 2]); // positions sorted: 1 (v1), 3 (v2), 0, 2 (v3, v3)
        assert_eq!(dc.code, vec![2, 0, 3, 1]);
        assert_eq!(dc.group_min, vec![2, 0, 2, 1]);
        assert_eq!(dc.group_end, vec![4, 1, 4, 2]);
        assert_eq!(dc.num_groups, 3);
    }

    #[test]
    fn peer_bounds_group_equal_keys() {
        let t = Table::new(vec![("k", Column::ints(vec![5, 5, 7, 7, 7, 9]))]).unwrap();
        let keys = KeyColumns::evaluate(&t, &[SortKey::asc(col("k"))]).unwrap();
        let rows: Vec<usize> = (0..6).collect();
        let (start, end) = peer_bounds(&keys, &rows);
        assert_eq!(start, vec![0, 0, 2, 2, 2, 5]);
        assert_eq!(end, vec![2, 2, 5, 5, 5, 6]);
    }

    #[test]
    fn bytes_counts_string_heap_payloads() {
        // Regression: `bytes()` used to count only the `Value` spine, so
        // string-key partitions under-reported footprints and a memory
        // budget would be blown silently.
        let payloads = ["a long order-by key that clearly dwarfs the spine"; 64];
        let t = Table::new(vec![("s", Column::strs(payloads.to_vec()))]).unwrap();
        let keys = KeyColumns::evaluate(&t, &[SortKey::asc(col("s"))]).unwrap();
        let payload_total: usize = payloads.iter().map(|s| s.len()).sum();
        assert!(
            keys.bytes() >= payload_total,
            "footprint {} must cover {} heap bytes",
            keys.bytes(),
            payload_total
        );
        // And the spine is still counted on top of the payload.
        assert!(keys.bytes() >= payload_total + 64 * std::mem::size_of::<Value>());
    }

    #[test]
    fn empty_order_by_makes_everything_peers() {
        let t = table();
        let keys = KeyColumns::evaluate(&t, &[]).unwrap();
        assert!(keys.is_trivial());
        let rows: Vec<usize> = (0..5).collect();
        let (start, end) = peer_bounds(&keys, &rows);
        assert!(start.iter().all(|&s| s == 0));
        assert!(end.iter().all(|&e| e == 5));
    }
}
