//! Scalar values and their SQL comparison semantics.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A dynamically typed scalar.
///
/// Dates are days since 1970-01-01 (a distinct type so that RANGE frames can
/// do day arithmetic); strings are reference counted so rows copy cheaply.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(Arc<str>),
    /// Days since the epoch.
    Date(i32),
    /// Boolean.
    Bool(bool),
}

/// The type of a [`Value`] / column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Days since the epoch.
    Date,
    /// Boolean.
    Bool,
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// True when NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The type name, for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Date(_) => "date",
            Value::Bool(_) => "bool",
        }
    }

    /// Heap bytes behind this value, beyond the enum spine: the UTF-8
    /// payload of a string, zero for everything else. Each owned `Arc<str>`
    /// reference reports the full payload — footprint accounting counts the
    /// payload once per owned ref, an upper bound that prices what keeping
    /// the referencing artifact alive keeps alive.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Value::Str(s) => s.len(),
            _ => 0,
        }
    }

    /// Numeric view (ints, floats and dates), used by RANGE frame arithmetic.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Date(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Date(v) => Some(*v as i64),
            _ => None,
        }
    }

    /// Boolean view (for FILTER predicates; NULL is falsy, per SQL).
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// SQL comparison: NULLs compare equal to each other and *greater* than
    /// every non-null (the engine's canonical NULLS LAST order; sort keys can
    /// flip it). Cross-type numeric comparisons (int/float) are supported;
    /// other type mixes order by type name to stay total.
    pub fn sql_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Greater,
            (_, Null) => Ordering::Less,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Date(a), Date(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            (Bool(a), Bool(b)) => a.cmp(b),
            (a, b) => a.type_name().cmp(b.type_name()),
        }
    }

    /// SQL equality for grouping and DISTINCT: NULL is equal to NULL (as in
    /// `GROUP BY` / `IS NOT DISTINCT FROM`).
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.sql_cmp(other) == Ordering::Equal
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => {
                let (y, m, day) = crate::value::days_to_ymd(*d);
                write!(f, "{y:04}-{m:02}-{day:02}")
            }
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.sql_eq(other)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Days-since-epoch → (year, month, day), proleptic Gregorian.
pub fn days_to_ymd(days: i32) -> (i32, u32, u32) {
    // Howard Hinnant's civil_from_days.
    let z = i64::from(days) + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    ((y + if m <= 2 { 1 } else { 0 }) as i32, m, d)
}

/// (year, month, day) → days since epoch, proleptic Gregorian.
pub fn ymd_to_days(y: i32, m: u32, d: u32) -> i32 {
    // Howard Hinnant's days_from_civil.
    let y = y as i64 - if m <= 2 { 1 } else { 0 };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = if m > 2 { m - 3 } else { m + 9 } as i64;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era * 146_097 + doe - 719_468) as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_ordering_is_last() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(5)), Ordering::Greater);
        assert_eq!(Value::Int(5).sql_cmp(&Value::Null), Ordering::Less);
        assert_eq!(Value::Null.sql_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).sql_cmp(&Value::Int(3)), Ordering::Equal);
    }

    #[test]
    fn nan_is_ordered_totally() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.sql_cmp(&nan), Ordering::Equal);
        assert_eq!(Value::Float(1.0).sql_cmp(&nan), Ordering::Less);
    }

    #[test]
    fn string_and_bool_compare() {
        assert_eq!(Value::str("abc").sql_cmp(&Value::str("abd")), Ordering::Less);
        assert_eq!(Value::Bool(false).sql_cmp(&Value::Bool(true)), Ordering::Less);
    }

    #[test]
    fn sql_eq_treats_nulls_equal() {
        assert!(Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Null.sql_eq(&Value::Int(0)));
    }

    #[test]
    fn date_roundtrip() {
        for &(y, m, d) in &[(1970, 1, 1), (1992, 1, 2), (1998, 12, 31), (2000, 2, 29), (1900, 3, 1)]
        {
            let days = ymd_to_days(y, m, d);
            assert_eq!(days_to_ymd(days), (y, m, d), "{y}-{m}-{d}");
        }
        assert_eq!(ymd_to_days(1970, 1, 1), 0);
        assert_eq!(ymd_to_days(1970, 1, 2), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Date(0).to_string(), "1970-01-01");
    }
}
