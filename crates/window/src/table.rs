//! Named column collections.

use crate::column::Column;
use crate::error::{Error, Result};

/// A table: equally long named columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    columns: Vec<(String, Column)>,
    rows: usize,
}

impl Table {
    /// An empty table.
    pub fn empty() -> Self {
        Table::default()
    }

    /// Builds from `(name, column)` pairs; all columns must have equal length.
    pub fn new(columns: Vec<(impl Into<String>, Column)>) -> Result<Self> {
        let mut t = Table::default();
        for (name, col) in columns {
            t.add_column(name, col)?;
        }
        Ok(t)
    }

    /// Adds a column.
    pub fn add_column(&mut self, name: impl Into<String>, col: Column) -> Result<()> {
        if self.columns.is_empty() {
            self.rows = col.len();
        } else if col.len() != self.rows {
            return Err(Error::LengthMismatch { expected: self.rows, got: col.len() });
        }
        self.columns.push((name.into(), col));
        Ok(())
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Looks a column up by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c)
            .ok_or_else(|| Error::UnknownColumn(name.to_string()))
    }

    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| Error::UnknownColumn(name.to_string()))
    }

    /// Column by position.
    pub fn column_at(&self, idx: usize) -> &Column {
        &self.columns[idx].1
    }

    /// Iterates `(name, column)`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Column)> {
        self.columns.iter().map(|(n, c)| (n.as_str(), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn build_and_lookup() {
        let t = Table::new(vec![
            ("a", Column::ints(vec![1, 2, 3])),
            ("b", Column::strs(vec!["x", "y", "z"])),
        ])
        .unwrap();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.column("b").unwrap().get(1), Value::str("y"));
        assert_eq!(t.column_index("a").unwrap(), 0);
        assert!(t.column("c").is_err());
    }

    #[test]
    fn rejects_ragged_columns() {
        let r = Table::new(vec![("a", Column::ints(vec![1, 2, 3])), ("b", Column::ints(vec![1]))]);
        assert!(matches!(r, Err(Error::LengthMismatch { expected: 3, got: 1 })));
    }

    #[test]
    fn empty_table() {
        let t = Table::empty();
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.num_columns(), 0);
    }
}
