//! Named column collections.

use crate::column::Column;
use crate::error::{Error, Result};

/// A table: equally long named columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    columns: Vec<(String, Column)>,
    rows: usize,
}

impl Table {
    /// An empty table.
    pub fn empty() -> Self {
        Table::default()
    }

    /// Builds from `(name, column)` pairs; all columns must have equal length.
    pub fn new(columns: Vec<(impl Into<String>, Column)>) -> Result<Self> {
        let mut t = Table::default();
        for (name, col) in columns {
            t.add_column(name, col)?;
        }
        Ok(t)
    }

    /// Adds a column.
    pub fn add_column(&mut self, name: impl Into<String>, col: Column) -> Result<()> {
        if self.columns.is_empty() {
            self.rows = col.len();
        } else if col.len() != self.rows {
            return Err(Error::LengthMismatch { expected: self.rows, got: col.len() });
        }
        self.columns.push((name.into(), col));
        Ok(())
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Looks a column up by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c)
            .ok_or_else(|| Error::UnknownColumn(name.to_string()))
    }

    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| Error::UnknownColumn(name.to_string()))
    }

    /// Column by position.
    pub fn column_at(&self, idx: usize) -> &Column {
        &self.columns[idx].1
    }

    /// Iterates `(name, column)`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Column)> {
        self.columns.iter().map(|(n, c)| (n.as_str(), c))
    }

    /// Appends the rows of `batch` (the delta-API ingest path): `batch` must
    /// carry exactly this table's columns, by name and order, with
    /// push-compatible types. On error the table is left unchanged.
    pub fn append_rows(&mut self, batch: &Table) -> Result<()> {
        if batch.num_columns() != self.num_columns() {
            return Err(Error::LengthMismatch {
                expected: self.num_columns(),
                got: batch.num_columns(),
            });
        }
        for ((name, _), (bname, _)) in self.columns.iter().zip(batch.columns.iter()) {
            if name != bname {
                return Err(Error::UnknownColumn(bname.clone()));
            }
        }
        // Validate all pushes against clones first so a mid-batch type error
        // cannot leave the table ragged.
        let mut grown: Vec<Column> = self.columns.iter().map(|(_, c)| c.clone()).collect();
        for (col, (_, src)) in grown.iter_mut().zip(batch.columns.iter()) {
            for i in 0..batch.rows {
                col.push(src.get(i))?;
            }
        }
        for ((_, dst), col) in self.columns.iter_mut().zip(grown) {
            *dst = col;
        }
        self.rows += batch.rows;
        Ok(())
    }

    /// Rows `[a, b)` as a new table with the same columns (exact types and
    /// validity preserved — the natural way to carve a table into
    /// [`Table::append_rows`]-compatible batches).
    pub fn slice_rows(&self, a: usize, b: usize) -> Table {
        Table {
            columns: self.columns.iter().map(|(n, c)| (n.clone(), c.slice(a, b))).collect(),
            rows: b - a,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn build_and_lookup() {
        let t = Table::new(vec![
            ("a", Column::ints(vec![1, 2, 3])),
            ("b", Column::strs(vec!["x", "y", "z"])),
        ])
        .unwrap();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.column("b").unwrap().get(1), Value::str("y"));
        assert_eq!(t.column_index("a").unwrap(), 0);
        assert!(t.column("c").is_err());
    }

    #[test]
    fn rejects_ragged_columns() {
        let r = Table::new(vec![("a", Column::ints(vec![1, 2, 3])), ("b", Column::ints(vec![1]))]);
        assert!(matches!(r, Err(Error::LengthMismatch { expected: 3, got: 1 })));
    }

    #[test]
    fn empty_table() {
        let t = Table::empty();
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.num_columns(), 0);
    }
}
